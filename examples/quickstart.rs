//! Quickstart: build a ring, 3-color it with Cole–Vishkin, check the result
//! locally, and contrast it with the zero-round random coloring.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rlnc::langs::cole_vishkin::{oriented_ring_instance, ColeVishkinRingColoring};
use rlnc::langs::coloring::{improperly_colored_nodes, ColoringDecider, ProperColoring};
use rlnc::langs::random_coloring::RandomColoring;
use rlnc::prelude::*;
use rlnc_core::decision::decide;
use rlnc_core::RandomizedLocalAlgorithm;

fn main() {
    let n = 1 << 12;
    println!("== rlnc quickstart: 3-coloring the {n}-node oriented ring ==\n");

    // 1. Build the instance: cycle + consecutive identities + orientation inputs.
    let (graph, input, ids) = oriented_ring_instance(n);
    let instance = Instance::new(&graph, &input, &ids);

    // 2. Run the Cole–Vishkin O(log* n)-round 3-coloring.
    let algo = ColeVishkinRingColoring::for_ring_size(n);
    println!(
        "Cole–Vishkin: {} color-reduction iterations, {} communication rounds",
        algo.iterations(),
        algo.rounds()
    );
    let output = Simulator::new().run(&algo, &instance);

    // 3. Check the output: globally (language membership) and locally (the
    //    one-round decider every node could run).
    let language = ProperColoring::new(3);
    let io = IoConfig::new(&graph, &input, &output);
    println!("proper 3-coloring: {}", language.contains(&io));
    println!(
        "one-round decider accepts at every node: {}",
        decide(&ColoringDecider::new(3), &io, &ids)
    );

    // 4. Contrast with the zero-round random coloring (the ε-slack
    //    constructor of §1.1): fast, but only *almost* proper.
    let random = RandomColoring::new(3);
    let random_output = Simulator::new().run_randomized(&random, &instance, SeedSequence::new(2015));
    let random_io = IoConfig::new(&graph, &input, &random_output);
    let improper = improperly_colored_nodes(&language, &random_io);
    println!(
        "\nzero-round random coloring ({}): {} of {} nodes improperly colored ({:.1}%, theory 5/9 ≈ 55.6%)",
        random.name(),
        improper,
        n,
        100.0 * improper as f64 / n as f64
    );
}

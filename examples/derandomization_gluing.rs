//! The Theorem-1 machinery end to end: hard instances, anchors, gluing, and
//! the decay of the acceptance probability.
//!
//! ```text
//! cargo run --release --example derandomization_gluing
//! ```

use rlnc::langs::coloring::{GlobalGreedyColoring, ProperColoring};
use rlnc::langs::faulty::FaultyConstructor;
use rlnc::prelude::*;
use rlnc_core::algorithm::Coins;
use rlnc_core::decision::FnRandomizedDecider;
use rlnc_core::derand::boosting::{boosting_bound, boosting_repetitions, disjoint_union_acceptance};
use rlnc_core::derand::gluing::{anchor_candidates, anchor_count, separation_distance, GluingExperiment};
use rlnc_core::derand::hard_instances::{consecutive_cycle_candidates, HardInstanceSearch};
use rlnc_graph::traversal::is_connected;
use rand::Rng;

fn main() {
    let p = 0.75f64; // decider guarantee
    let r = 0.9f64; // claimed constructor success probability
    let trials = 3_000;
    let cycle_size = 24usize;

    // A "Monte-Carlo constructor that errs": a correct greedy 3-coloring
    // with 5% per-node corruption.
    let constructor = FaultyConstructor::new(
        GlobalGreedyColoring::new(cycle_size as u32, 3),
        0.05,
        Label::from_u64(0),
    );
    // A BPLD decider: accept at good balls, reject at bad balls with
    // probability p.
    let decider = FnRandomizedDecider::new(1, "reject-bad-balls", move |view: &View, coins: &Coins| {
        let mine = view.output(view.center_local());
        let ok = mine.as_u64() >= 1
            && mine.as_u64() <= 3
            && view.center_neighbors().iter().all(|&i| view.output(i) != mine);
        if ok {
            true
        } else {
            !coins.for_center(view).random_bool(p)
        }
    });

    let language = ProperColoring::new(3);
    let search = HardInstanceSearch::new(&language);
    let hard = consecutive_cycle_candidates([cycle_size]);
    let beta = search.failure_probability(&constructor, &hard[0], trials, 7).p_hat;
    println!("== Theorem 1 machinery ==\n");
    println!("constructor failure probability on the hard instance: β ≈ {beta:.3}");
    println!("decider guarantee: p = {p}\n");

    // Claim 3: disjoint-union boosting.
    let nu = boosting_repetitions(r, p, beta);
    println!("Claim 3 (disjoint unions): ν = 1 + ⌈ln(rp)/ln(1−βp)⌉ = {nu}");
    println!("{:>4} {:>22} {:>18}", "ν", "Pr[D accepts C(G)]", "bound (1−βp)^ν");
    for copies in [1usize, 2, 4, nu.min(8)] {
        let est = disjoint_union_acceptance(&constructor, &decider, &hard, copies, trials, 11 + copies as u64);
        println!("{:>4} {:>22.3} {:>18.3}", copies, est.p_hat, boosting_bound(p, beta, copies));
    }

    // Theorem 1: the connected gluing.
    let mu = anchor_count(p);
    let needed = separation_distance(0, 1, p);
    println!("\nTheorem 1 (connected gluing): µ = ⌈1/(2p−1)⌉ = {mu}, anchors pairwise ≥ {needed} apart");
    for parts_count in [2usize, 4, 8] {
        let parts = consecutive_cycle_candidates(vec![cycle_size; parts_count]);
        let anchors: Vec<_> = parts.iter().map(|h| anchor_candidates(h, 0, 1, p)[0]).collect();
        let experiment = GluingExperiment::build(parts, anchors, 0, 1);
        let far = experiment.acceptance_far_from_all_anchors(&constructor, &decider, trials, 23);
        println!(
            "ν' = {parts_count}: glued graph connected = {}, max degree = {}, Pr[accept far from anchors] = {:.3}",
            is_connected(experiment.graph()),
            experiment.graph().max_degree(),
            far.p_hat
        );
    }
    println!(
        "\nThe acceptance probability decays geometrically, so a constructor with success \
probability r and a BPLD decider cannot coexist with the assumption that no \
deterministic O(1)-round algorithm exists — which is the contradiction at the \
heart of Theorem 1."
    );
}

//! The `amos` golden-ratio decider (§2.3.1 of the paper): a zero-round
//! randomized decider with guarantee `(√5 − 1)/2 ≈ 0.618` for a language no
//! deterministic constant-round algorithm can decide.
//!
//! ```text
//! cargo run --release --example amos_decider
//! ```

use rlnc::langs::amos::{selection_output, Amos, AmosGoldenDecider, GOLDEN_GUARANTEE};
use rlnc::prelude::*;
use rlnc_core::decision::acceptance_probability;
use rlnc_graph::generators::path;

fn main() {
    let n = 101;
    let trials = 50_000;
    let graph = path(n);
    let input = Labeling::empty(n);
    let ids = IdAssignment::consecutive(&graph);
    let decider = AmosGoldenDecider::new();
    let language = Amos::new();

    println!("== amos on the {n}-node path (diameter {}) ==", n - 1);
    println!("golden-ratio guarantee p = {GOLDEN_GUARANTEE:.6}\n");
    println!("{:<12} {:>12} {:>14} {:>14} {:>10}", "selected", "in amos?", "Pr[accept]", "theory p^k", "side ok?");

    for k in 0..=4usize {
        // Spread the selected nodes across the path — far apart, so no node
        // can see two of them within any constant radius.
        let selected: Vec<NodeId> = (0..k).map(|i| NodeId::from_index(i * (n - 1) / k.max(1))).collect();
        let output = selection_output(n, &selected);
        let io = IoConfig::new(&graph, &input, &output);
        let in_language = language.contains(&io);
        let est = acceptance_probability(&decider, &io, &ids, trials, 618 + k as u64);
        let theory = GOLDEN_GUARANTEE.powi(k as i32);
        let side_ok = if in_language { est.p_hat > 0.5 } else { 1.0 - est.p_hat > 0.5 };
        println!(
            "{:<12} {:>12} {:>14.4} {:>14.4} {:>10}",
            k, in_language, est.p_hat, theory, side_ok
        );
    }

    println!(
        "\nBoth error sides stay above 1/2, so amos ∈ BPLD, while deciding it \
deterministically needs Ω(diameter) rounds — the separation that motivates \
extending Naor–Stockmeyer derandomization from LD to BPLD."
    );
}

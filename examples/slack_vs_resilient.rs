//! ε-slack vs f-resilient relaxations (§1.1, §4, §5): randomization helps
//! for the former and not for the latter.
//!
//! ```text
//! cargo run --release --example slack_vs_resilient
//! ```

use rlnc::langs::coloring::{ProperColoring, RankColoring};
use rlnc::langs::random_coloring::RandomColoring;
use rlnc::prelude::*;
use rlnc_core::relaxation::{EpsilonSlack, FResilient};
use rlnc_core::DistributedLanguage;
use rlnc_graph::generators::cycle;

fn main() {
    let n = 2048;
    let trials = 300;
    let graph = cycle(n);
    let input = Labeling::empty(n);
    let ids = IdAssignment::consecutive(&graph);
    let instance = Instance::new(&graph, &input, &ids);

    let random = RandomColoring::new(3);
    let order_invariant = RankColoring::new(2, 3);

    println!("== ε-slack vs f-resilient 3-coloring on the {n}-cycle ==\n");
    println!(
        "{:<34} {:>26} {:>26}",
        "relaxation", "random 3-coloring (0 rounds)", "rank coloring (t = 2)"
    );

    let relaxations: Vec<(String, Box<dyn DistributedLanguage>)> = vec![
        ("0.60-slack".into(), Box::new(EpsilonSlack::new(ProperColoring::new(3), 0.60))),
        ("0.58-slack".into(), Box::new(EpsilonSlack::new(ProperColoring::new(3), 0.58))),
        ("8-resilient".into(), Box::new(FResilient::new(ProperColoring::new(3), 8))),
        ("64-resilient".into(), Box::new(FResilient::new(ProperColoring::new(3), 64))),
    ];

    for (name, relaxation) in &relaxations {
        let random_success = Simulator::new().construction_success(
            &random,
            &instance,
            relaxation.as_ref(),
            trials,
            42,
        );
        // The rank coloring is deterministic: it either lands in the
        // relaxation or it does not.
        let deterministic_output = Simulator::new().run(&order_invariant, &instance);
        let deterministic_ok =
            relaxation.contains(&IoConfig::new(&graph, &input, &deterministic_output));
        println!(
            "{:<34} {:>26} {:>26}",
            name,
            format!("Pr[success] = {:.3}", random_success.p_hat),
            if deterministic_ok { "succeeds" } else { "fails" }
        );
    }

    println!(
        "\nRandomization buys the ε-slack relaxations (success probability ≈ 1) but not \
the f-resilient ones (success probability 0 for every constant-round algorithm, \
randomized or not — Corollary 1)."
    );
}

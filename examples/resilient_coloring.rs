//! `f`-resilient coloring (§4, Corollary 1): why randomization does not
//! help.
//!
//! On the consecutive-identity cycle, every order-invariant constant-round
//! algorithm colors almost all nodes identically, so it cannot land in the
//! `f`-resilient relaxation of 3-coloring; and the Corollary-1 randomized
//! decider certifies membership in `L_f` with guarantee above 1/2, which is
//! exactly what feeds Theorem 1.
//!
//! ```text
//! cargo run --release --example resilient_coloring
//! ```

use rlnc::langs::coloring::{improperly_colored_nodes, ProperColoring, RankColoring};
use rlnc::prelude::*;
use rlnc_core::decision::acceptance_probability;
use rlnc_core::relaxation::FResilient;
use rlnc_core::resilient::{resilient_acceptance_probability, ResilientDecider};
use rlnc_graph::generators::cycle;

fn main() {
    let n = 4096;
    let f = 8usize;
    let graph = cycle(n);
    let input = Labeling::empty(n);
    let ids = IdAssignment::consecutive(&graph);
    let instance = Instance::new(&graph, &input, &ids);
    let language = ProperColoring::new(3);
    let relaxed = FResilient::new(ProperColoring::new(3), f);

    println!("== {f}-resilient 3-coloring on the consecutive-ID {n}-cycle ==\n");
    println!("{:<24} {:>10} {:>14} {:>18}", "order-invariant algo", "radius t", "bad balls", "in L_f (f = 8)?");
    for t in 0..=3u32 {
        let algo = RankColoring::new(t, 3);
        let output = Simulator::new().run(&algo, &instance);
        let io = IoConfig::new(&graph, &input, &output);
        let bad = improperly_colored_nodes(&language, &io);
        println!(
            "{:<24} {:>10} {:>14} {:>18}",
            format!("rank-coloring(t={t})"),
            t,
            bad,
            relaxed.contains(&io)
        );
    }
    println!(
        "\nEvery order-invariant t-round algorithm outputs one color at ≥ n − (2t−1) \
nodes of this cycle, so the number of bad balls scales with n — never ≤ f."
    );

    // The Corollary-1 decider: membership in L_f is certified with
    // probability > 1/2 on both sides.
    let decider = ResilientDecider::new(ProperColoring::new(3), f);
    println!(
        "\nCorollary-1 decider: p = {:.4} ∈ (2^(-1/f), 2^(-1/(f+1))) = ({:.4}, {:.4})",
        resilient_acceptance_probability(f),
        2f64.powf(-1.0 / f as f64),
        2f64.powf(-1.0 / (f as f64 + 1.0)),
    );
    // Yes-instance: a proper coloring with a handful of planted conflicts.
    let mut planted = Labeling::from_fn(&graph, |v| Label::from_u64(u64::from(v.0 % 2) + 1));
    planted.set(NodeId(100), Label::from_u64(1));
    let io_yes = IoConfig::new(&graph, &input, &planted);
    let bad_yes = improperly_colored_nodes(&language, &io_yes);
    let est_yes = acceptance_probability(&decider, &io_yes, &ids, 20_000, 1);
    println!(
        "yes-instance ({bad_yes} bad balls ≤ f): Pr[all accept] = {:.3} (> 1/2: {})",
        est_yes.p_hat,
        est_yes.p_hat > 0.5
    );
    // No-instance: the all-ones coloring.
    let all_ones = Labeling::from_fn(&graph, |_| Label::from_u64(1));
    let io_no = IoConfig::new(&graph, &input, &all_ones);
    let est_no = acceptance_probability(&decider, &io_no, &ids, 20_000, 2);
    println!(
        "no-instance ({n} bad balls > f): Pr[some reject] = {:.6} (> 1/2: {})",
        1.0 - est_no.p_hat,
        1.0 - est_no.p_hat > 0.5
    );
    println!("\nL_f ∈ BPLD ⟹ (Theorem 1) a randomized O(1)-round constructor for L_f would imply a deterministic one — which E4 shows cannot exist.");
}

//! Distributions: the standard (full-range / unit-interval) distribution
//! and uniform range sampling.

use crate::{Rng, RngCore};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: uniform over all values for integers,
/// uniform on `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardUniform;

macro_rules! impl_standard_int {
    ($($t:ty => $next:ident),* $(,)?) => {
        $(impl Distribution<$t> for StandardUniform {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$next() as $t
            }
        })*
    };
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

impl Distribution<u128> for StandardUniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Distribution<bool> for StandardUniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for StandardUniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits, uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for StandardUniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform range sampling.
pub mod uniform {
    use super::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// A range that can be sampled from directly (`rng.random_range(a..b)`).
    pub trait SampleRange<T> {
        /// Samples a single value uniformly from `self`.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Maps a 64-bit word to `[0, width)` without modulo bias
    /// (Lemire's multiply-shift method).
    #[inline]
    fn bounded(word: u64, width: u64) -> u64 {
        ((u128::from(word) * u128::from(width)) >> 64) as u64
    }

    macro_rules! impl_sample_range_uint {
        ($($t:ty),* $(,)?) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample from empty range");
                    let width = (self.end - self.start) as u64;
                    self.start + bounded(rng.next_u64(), width) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample from empty range");
                    if start == <$t>::MIN && end == <$t>::MAX {
                        return rng.next_u64() as $t;
                    }
                    let width = (end - start) as u64 + 1;
                    start + bounded(rng.next_u64(), width) as $t
                }
            }
        )*};
    }

    impl_sample_range_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_sample_range_int {
        ($($t:ty),* $(,)?) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample from empty range");
                    let width = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    self.start.wrapping_add(bounded(rng.next_u64(), width) as $t)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample from empty range");
                    if start == <$t>::MIN && end == <$t>::MAX {
                        return rng.next_u64() as $t;
                    }
                    let width = (end as i64).wrapping_sub(start as i64) as u64 + 1;
                    start.wrapping_add(bounded(rng.next_u64(), width) as $t)
                }
            }
        )*};
    }

    impl_sample_range_int!(i8, i16, i32, i64, isize);

    macro_rules! impl_sample_range_float {
        ($($t:ty => $bits:expr, $shift:expr),* $(,)?) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample from empty range");
                    let unit = (rng.next_u64() >> $shift) as $t
                        * (1.0 / (1u64 << $bits) as $t);
                    self.start + unit * (self.end - self.start)
                }
            }
        )*};
    }

    impl_sample_range_float!(f64 => 53, 11, f32 => 24, 40);
}

//! Concrete generators: `SmallRng` (xoshiro256++) and the lazily-seeded
//! `ThreadRng` returned by [`crate::rng()`].

use crate::{RngCore, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

/// A small, fast, non-cryptographic generator (xoshiro256++).
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    #[inline]
    fn step(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0xFE9B_5742_F515_1297,
            ];
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

/// A freshly seeded generator for non-reproducible use; obtained via
/// [`crate::rng()`]. Each call yields an independent stream.
#[derive(Debug, Clone)]
pub struct ThreadRng {
    inner: SmallRng,
}

impl ThreadRng {
    pub(crate) fn fresh() -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let count = COUNTER.fetch_add(1, Ordering::Relaxed);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0x5DEE_CE66);
        let thread = std::thread::current().id();
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        std::hash::Hash::hash(&thread, &mut hasher);
        let tid = std::hash::Hasher::finish(&hasher);
        ThreadRng {
            inner: SmallRng::seed_from_u64(nanos ^ count.rotate_left(32) ^ tid),
        }
    }
}

impl RngCore for ThreadRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

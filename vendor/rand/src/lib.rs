//! Offline, API-compatible subset of the `rand` crate (0.9 naming).
//!
//! This workspace builds in a hermetic environment with no access to
//! crates.io, so the handful of `rand` APIs the code actually uses are
//! vendored here: [`RngCore`], [`Rng`], [`SeedableRng`], [`rng()`],
//! [`rngs::SmallRng`], [`seq::SliceRandom`], and [`seq::IndexedRandom`].
//! The generators are real PRNGs (xoshiro256++ for `SmallRng`), not
//! placeholders, so Monte-Carlo statistics remain sound; only
//! bit-compatibility with upstream `rand` streams is sacrificed.

pub mod distr;
pub mod rngs;
pub mod seq;

use distr::uniform::SampleRange;
use distr::{Distribution, StandardUniform};

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution
    /// (uniform over all values for integers, `[0, 1)` for floats).
    fn random<T>(&mut self) -> T
    where
        StandardUniform: Distribution<T>,
    {
        StandardUniform.sample(self)
    }

    /// Samples a value uniformly from the given range.
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "random_bool: p not in [0, 1]");
        // Compare 53 uniform mantissa bits against p.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type, a byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a 64-bit seed by expanding it with
    /// SplitMix64, so that nearby seeds give decorrelated streams.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Creates a generator seeded from another generator.
    fn from_rng(rng: &mut impl RngCore) -> Self {
        let mut seed = Self::Seed::default();
        rng.fill_bytes(seed.as_mut());
        Self::from_seed(seed)
    }
}

/// Returns a lazily-seeded generator for quick, non-reproducible use
/// (`rand::rng()` in upstream 0.9; formerly `thread_rng()`).
pub fn rng() -> rngs::ThreadRng {
    rngs::ThreadRng::fresh()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn seed_determinism() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn nearby_seeds_decorrelate() {
        let mut a = SmallRng::seed_from_u64(0);
        let mut b = SmallRng::seed_from_u64(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&x));
            let y: u64 = rng.random_range(1..=3);
            assert!((1..=3).contains(&y));
            let z: usize = rng.random_range(0..7);
            assert!(z < 7);
            let f: f64 = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_frequency_is_sane() {
        let mut rng = SmallRng::seed_from_u64(42);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn float_samples_are_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }
}

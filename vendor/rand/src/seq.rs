//! Sequence-related extensions: shuffling and random element selection.

use crate::Rng;

/// In-place slice shuffling.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }
}

/// Random selection of elements from an indexable sequence.
pub trait IndexedRandom {
    /// The element type.
    type Output;

    /// Returns a uniformly random element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;

    /// Returns `amount` distinct elements, uniformly at random and without
    /// replacement (all of them if `amount >= len`), in random order.
    fn choose_multiple<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&Self::Output>;
}

impl<T> IndexedRandom for [T] {
    type Output = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }

    fn choose_multiple<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&T> {
        let amount = amount.min(self.len());
        // Partial Fisher–Yates over an index vector.
        let mut indices: Vec<usize> = (0..self.len()).collect();
        for i in 0..amount {
            let j = rng.random_range(i..indices.len());
            indices.swap(i, j);
        }
        indices[..amount]
            .iter()
            .map(|&i| &self[i])
            .collect::<Vec<_>>()
            .into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn choose_multiple_is_distinct() {
        let mut rng = SmallRng::seed_from_u64(2);
        let v: Vec<u64> = (0..100).collect();
        let picked: Vec<u64> = v.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }
}

//! No-op derive macros backing the vendored `serde` stub.
//!
//! The stub's traits carry blanket implementations, so the derives have
//! nothing to generate — they exist so `#[derive(Serialize, Deserialize)]`
//! (and `#[serde(...)]` helper attributes, should they appear) parse and
//! expand cleanly.

use proc_macro::TokenStream;

/// Expands `#[derive(Serialize)]` to nothing; the blanket impl in the
/// `serde` stub already covers every type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands `#[derive(Deserialize)]` to nothing; the blanket impl in the
/// `serde` stub already covers every type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

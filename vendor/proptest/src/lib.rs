//! Offline mini property-testing harness, API-compatible with the subset
//! of `proptest` this workspace uses.
//!
//! Supported surface:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header and
//!   `fn name(arg in strategy, ...)` test items;
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`];
//! * integer/float range strategies (`0u64..5000`, `0.0..1.0`, `a..=b`)
//!   and [`collection::vec`];
//! * [`prelude`] re-exporting all of the above plus `any::<T>()`.
//!
//! Unlike full proptest there is no shrinking: a failing case reports its
//! case number and generated inputs and panics. Cases are generated from a
//! fixed per-case seed, so failures are reproducible run-to-run.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! One-stop import for tests: `use proptest::prelude::*;`.
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Fails the enclosing property if `cond` is false (without aborting the
/// whole process the way `assert!` would inside a closure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the enclosing property if the two expressions are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                ::std::stringify!($left), ::std::stringify!($right), left, right
            ));
        }
    }};
}

/// Fails the enclosing property if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if *left == *right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} != {}\n  both: {:?}",
                ::std::stringify!($left), ::std::stringify!($right), left
            ));
        }
    }};
}

/// Defines property-based tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                $crate::test_runner::run_cases(
                    ::std::stringify!($name),
                    &__config,
                    |__rng| {
                        $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)*
                        let __described = ::std::format!(
                            ::std::concat!($(::std::stringify!($arg), " = {:?}, ",)* ""),
                            $(&$arg),*
                        );
                        let __outcome: ::std::result::Result<(), ::std::string::String> =
                            (|| { $body ::std::result::Result::Ok(()) })();
                        __outcome.map_err(|e| (__described, e))
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),*) $body
            )*
        }
    };
}

//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::distr::uniform::SampleRange;
use rand::distr::{Distribution, StandardUniform};
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.clone().sample_single(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A strategy drawing from the whole domain of `T`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Returns the strategy generating arbitrary values of `T`
/// (uniform over the whole domain).
pub fn any<T>() -> Any<T>
where
    StandardUniform: Distribution<T>,
{
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T> Strategy for Any<T>
where
    StandardUniform: Distribution<T>,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.random()
    }
}

//! The case-execution loop and its configuration.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Configuration of a [`crate::proptest!`] block.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

/// The RNG handed to strategies: deterministic per `(property, case)`, so
/// failures reproduce across runs and machines.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// The generator for case number `case` of the property named `name`.
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            acc ^= u64::from(byte);
            acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(acc ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Runs `config.cases` cases of one property, panicking on the first
/// failure with the case number and the generated inputs.
pub fn run_cases<F>(name: &str, config: &Config, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), (String, String)>,
{
    for i in 0..u64::from(config.cases) {
        let mut rng = TestRng::for_case(name, i);
        if let Err((inputs, message)) = case(&mut rng) {
            panic!(
                "property '{name}' failed at case {i}/{total}\n  inputs: {inputs}\n  {message}",
                total = config.cases,
            );
        }
    }
}

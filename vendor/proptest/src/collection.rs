//! Strategies for collections.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// A strategy producing `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Creates a strategy for `Vec`s with lengths in `size` (as in
/// `proptest::collection::vec(0u64..10, 2..5)`).
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty length range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.clone());
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

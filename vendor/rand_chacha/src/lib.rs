//! Offline vendored ChaCha generators for this workspace.
//!
//! A genuine ChaCha8 block function (D. J. Bernstein's design: 16-word
//! state, 8 rounds as 4 column/diagonal double-rounds) driving the
//! [`rand::RngCore`] interface. Streams are deterministic functions of the
//! 256-bit seed, which is all the workspace's reproducibility machinery
//! (`SeedSequence`, per-node coins) relies on; bit-compatibility with the
//! upstream `rand_chacha` crate is not promised.

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// One ChaCha quarter round on four state words.
#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

macro_rules! chacha_rng {
    ($name:ident, $doc_rounds:expr, $double_rounds:expr) => {
        #[doc = concat!("A ChaCha generator with ", $doc_rounds, " rounds.")]
        #[derive(Debug, Clone)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            buffer: [u32; 16],
            /// Next unread word in `buffer`; 16 means "exhausted".
            index: usize,
        }

        impl $name {
            fn refill(&mut self) {
                let mut state = [0u32; 16];
                state[..4].copy_from_slice(&CHACHA_CONSTANTS);
                state[4..12].copy_from_slice(&self.key);
                state[12] = self.counter as u32;
                state[13] = (self.counter >> 32) as u32;
                state[14] = 0;
                state[15] = 0;
                let initial = state;
                for _ in 0..$double_rounds {
                    // Column round.
                    quarter_round(&mut state, 0, 4, 8, 12);
                    quarter_round(&mut state, 1, 5, 9, 13);
                    quarter_round(&mut state, 2, 6, 10, 14);
                    quarter_round(&mut state, 3, 7, 11, 15);
                    // Diagonal round.
                    quarter_round(&mut state, 0, 5, 10, 15);
                    quarter_round(&mut state, 1, 6, 11, 12);
                    quarter_round(&mut state, 2, 7, 8, 13);
                    quarter_round(&mut state, 3, 4, 9, 14);
                }
                for (word, init) in state.iter_mut().zip(initial.iter()) {
                    *word = word.wrapping_add(*init);
                }
                self.buffer = state;
                self.index = 0;
                self.counter = self.counter.wrapping_add(1);
            }

            #[inline]
            fn next_word(&mut self) -> u32 {
                if self.index >= 16 {
                    self.refill();
                }
                let word = self.buffer[self.index];
                self.index += 1;
                word
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (i, word) in key.iter_mut().enumerate() {
                    let mut bytes = [0u8; 4];
                    bytes.copy_from_slice(&seed[i * 4..(i + 1) * 4]);
                    *word = u32::from_le_bytes(bytes);
                }
                $name {
                    key,
                    counter: 0,
                    buffer: [0; 16],
                    index: 16,
                }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                self.next_word()
            }

            fn next_u64(&mut self) -> u64 {
                let lo = u64::from(self.next_word());
                let hi = u64::from(self.next_word());
                (hi << 32) | lo
            }
        }
    };
}

chacha_rng!(ChaCha8Rng, "8", 4);
chacha_rng!(ChaCha12Rng, "12", 6);
chacha_rng!(ChaCha20Rng, "20", 10);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(11);
        let mut b = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(11);
        let mut b = ChaCha8Rng::seed_from_u64(12);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn chacha20_known_answer_zero_key() {
        // RFC 7539-style block with 8-byte counter layout and zero nonce:
        // first word of the ChaCha20 keystream for the all-zero key.
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        assert_eq!(rng.next_u32(), 0xade0_b876);
    }

    #[test]
    fn stream_spans_block_boundaries() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let first: Vec<u32> = (0..40).map(|_| rng.next_u32()).collect();
        let mut again = ChaCha8Rng::seed_from_u64(0);
        let second: Vec<u32> = (0..40).map(|_| again.next_u32()).collect();
        assert_eq!(first, second);
        let distinct: std::collections::HashSet<u32> = first.iter().copied().collect();
        assert!(distinct.len() > 35, "words should look random");
    }

    #[test]
    fn random_bool_works_through_rand_traits() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4_500..5_500).contains(&hits), "got {hits}");
    }
}

//! Offline, API-compatible subset of `rayon`, backed by a persistent
//! work-stealing thread pool ([`pool`]).
//!
//! Provides `par_iter()` / `into_par_iter()` with the adapters the
//! workspace uses (`enumerate`, `map`) and the terminal operations
//! (`collect`, `sum`, `for_each`, `reduce`). Work is dispatched as
//! chunked index ranges over the process-global pool and results are
//! reassembled in order, so parallel execution is a pure drop-in for
//! sequential: same outputs, same ordering, different wall-clock.
//! `sum` and `reduce` fold the in-order results on the caller (never
//! per-chunk partials), so even non-associative reductions are
//! byte-identical to sequential at every thread count.
//!
//! Sources are *index-addressable*, not materialized: ranges dispatch
//! by `(start, len)` arithmetic and slices by subslice, so no
//! intermediate `Vec` of indices or references is ever built — neither
//! by the parallel chunking nor by the inline sequential path.

use std::ops::Range;
use std::sync::Mutex;

pub mod pool;

pub mod prelude {
    //! Traits that make `.par_iter()` / `.into_par_iter()` available.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Returns the number of worker threads used for parallel operations:
/// the `RLNC_THREADS` environment variable if set to an integer ≥ 1,
/// otherwise the machine's available parallelism (see
/// [`pool::thread_count`]).
pub fn current_num_threads() -> usize {
    pool::thread_count()
}

std::thread_local! {
    static WORKER_INDEX: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// If the current thread is a worker of a parallel operation, returns its
/// index within that operation; `None` on threads outside any parallel
/// region (matching upstream rayon's API). Callers use this to avoid
/// nested parallelism: a computation already running inside a parallel
/// region should process its own work sequentially.
pub fn current_thread_index() -> Option<usize> {
    WORKER_INDEX.with(|cell| cell.get())
}

pub(crate) fn set_worker_index(index: Option<usize>) {
    WORKER_INDEX.with(|cell| cell.set(index));
}

/// Worker threads spawned by the persistent pool since process start.
///
/// The pool spawns its workers exactly once — the first parallel region
/// with an effective thread count above one — and parks them between
/// regions, so this is *not* a per-call spawn count: it stays at
/// `current_num_threads() - 1` (or 0 before the first region / when
/// running with one thread) for the life of the process. The
/// observability layer exports it as the `rayon.scoped_spawns` timing
/// metric, alongside the richer `pool.{tasks,steals,parks,workers}`
/// counters from [`pool::stats`]. Not part of upstream rayon's API.
pub fn scoped_spawn_count() -> u64 {
    pool::stats().workers
}

/// An index-addressable parallel source: `len` items, with item `i`
/// produced on demand by `item(i)`. Dispatch walks `(start, len)`
/// chunks of the index space, so a source is never materialized into an
/// intermediate vector — neither for chunking nor for the sequential
/// fast path.
pub trait IndexedSource: Sync {
    /// The element type produced by this source.
    type Item: Send;

    /// Number of items in the source.
    fn len(&self) -> usize;

    /// Whether the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produces item `i` (`i < self.len()`).
    fn item(&self, i: usize) -> Self::Item;

    /// Maps items `start..start + len` through `f` in order, appending
    /// the results to `out`. Both the sequential fast path and each
    /// pool task body route through this, so sources backed by a native
    /// iterator (slices) override it to drop the per-item bounds check
    /// — `(0..n).map(|i| f(&items[i]))` defeats autovectorization that
    /// `items.iter().map(f)` keeps.
    fn extend_mapped<R, F>(&self, start: usize, len: usize, f: &F, out: &mut Vec<R>)
    where
        F: Fn(Self::Item) -> R,
    {
        out.extend((start..start + len).map(|i| f(self.item(i))));
    }

    /// Applies `f` to items `start..start + len` in order with no result
    /// buffer; same override rationale as [`IndexedSource::extend_mapped`].
    fn apply<F>(&self, start: usize, len: usize, f: &F)
    where
        F: Fn(Self::Item),
    {
        for i in start..start + len {
            f(self.item(i));
        }
    }
}

/// A `Range` dispatched by `(start, len)` arithmetic.
pub struct RangeSource<I> {
    start: I,
    len: usize,
}

impl IndexedSource for RangeSource<usize> {
    type Item = usize;

    fn len(&self) -> usize {
        self.len
    }

    fn item(&self, i: usize) -> usize {
        self.start + i
    }
}

impl IndexedSource for RangeSource<u64> {
    type Item = u64;

    fn len(&self) -> usize {
        self.len
    }

    fn item(&self, i: usize) -> u64 {
        self.start + i as u64
    }
}

/// A borrowed slice dispatched by subslice indexing (no `Vec<&T>`).
pub struct SliceSource<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync> IndexedSource for SliceSource<'data, T> {
    type Item = &'data T;

    fn len(&self) -> usize {
        self.items.len()
    }

    fn item(&self, i: usize) -> &'data T {
        &self.items[i]
    }

    fn extend_mapped<R, F>(&self, start: usize, len: usize, f: &F, out: &mut Vec<R>)
    where
        F: Fn(&'data T) -> R,
    {
        out.extend(self.items[start..start + len].iter().map(f));
    }

    fn apply<F>(&self, start: usize, len: usize, f: &F)
    where
        F: Fn(&'data T),
    {
        self.items[start..start + len].iter().for_each(f);
    }
}

/// Adapter pairing each item with its index ([`ParIter::enumerate`]).
pub struct Enumerated<S> {
    inner: S,
}

impl<S: IndexedSource> IndexedSource for Enumerated<S> {
    type Item = (usize, S::Item);

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn item(&self, i: usize) -> (usize, S::Item) {
        (i, self.inner.item(i))
    }
}

/// Balanced `(start, len)` chunk bounds covering `0..n`.
fn chunk_bounds(n: usize, chunks: usize) -> Vec<(usize, usize)> {
    let chunks = chunks.clamp(1, n.max(1));
    let base = n / chunks;
    let extra = n % chunks;
    let mut bounds = Vec::with_capacity(chunks);
    let mut start = 0usize;
    for i in 0..chunks {
        let len = base + usize::from(i < extra);
        bounds.push((start, len));
        start += len;
    }
    bounds
}

/// Chunks per effective thread. Mild oversubscription so work stealing
/// can rebalance uneven chunks without making tasks too fine.
const CHUNKS_PER_THREAD: usize = 2;

/// True when dispatch should run inline on the caller: effective
/// thread count one, a trivially small region, or a nested region (the
/// caller is already a pool worker, so nested parallelism degrades to
/// sequential work exactly like the old scoped-thread stub).
fn sequential_dispatch(n: usize) -> bool {
    n <= 1 || pool::thread_count() <= 1 || current_thread_index().is_some()
}

/// Maps every source item through `f` and returns the results in
/// source order.
fn indexed_collect<S, R, F>(source: &S, f: &F) -> Vec<R>
where
    S: IndexedSource,
    R: Send,
    F: Fn(S::Item) -> R + Sync,
{
    let n = source.len();
    if sequential_dispatch(n) {
        let mut out = Vec::with_capacity(n);
        source.extend_mapped(0, n, f, &mut out);
        return out;
    }
    let bounds = chunk_bounds(n, pool::thread_count() * CHUNKS_PER_THREAD);
    let slots: Vec<Mutex<Vec<R>>> = bounds.iter().map(|_| Mutex::new(Vec::new())).collect();
    pool::run_region(bounds.len(), &|chunk| {
        let (start, len) = bounds[chunk];
        let mut out = Vec::with_capacity(len);
        source.extend_mapped(start, len, f, &mut out);
        *slots[chunk].lock().expect("rlnc-pool result slot poisoned") = out;
    });
    let mut results = Vec::with_capacity(n);
    for slot in slots {
        results.append(&mut slot.into_inner().expect("rlnc-pool result slot poisoned"));
    }
    results
}

/// Applies `f` to every source item with no result buffer at all — the
/// result-free dispatch path behind [`ParIter::for_each`].
fn indexed_for_each<S, F>(source: &S, f: &F)
where
    S: IndexedSource,
    F: Fn(S::Item) + Sync,
{
    let n = source.len();
    if sequential_dispatch(n) {
        source.apply(0, n, f);
        return;
    }
    let bounds = chunk_bounds(n, pool::thread_count() * CHUNKS_PER_THREAD);
    pool::run_region(bounds.len(), &|chunk| {
        let (start, len) = bounds[chunk];
        source.apply(start, len, f);
    });
}

/// A parallel iterator over an index-addressable source.
pub struct ParIter<S> {
    source: S,
}

impl<S: IndexedSource> ParIter<S> {
    /// Pairs each item with its index, like [`Iterator::enumerate`].
    pub fn enumerate(self) -> ParIter<Enumerated<S>> {
        ParIter {
            source: Enumerated { inner: self.source },
        }
    }

    /// Lazily maps each item through `f`; the mapping runs in parallel at
    /// the terminal operation.
    pub fn map<R, F>(self, f: F) -> ParMap<S, F>
    where
        R: Send,
        F: Fn(S::Item) -> R + Sync,
    {
        ParMap {
            source: self.source,
            f,
        }
    }

    /// Collects the items in order.
    pub fn collect<C: FromIterator<S::Item>>(self) -> C {
        let n = self.source.len();
        (0..n).map(|i| self.source.item(i)).collect()
    }

    /// Applies `f` to every item in parallel, building no result vector.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(S::Item) + Sync,
    {
        indexed_for_each(&self.source, &f);
    }
}

/// A parallel iterator with a pending `map` stage.
pub struct ParMap<S, F> {
    source: S,
    f: F,
}

impl<S, R, F> ParMap<S, F>
where
    S: IndexedSource,
    R: Send,
    F: Fn(S::Item) -> R + Sync,
{
    fn run(self) -> Vec<R> {
        indexed_collect(&self.source, &self.f)
    }

    /// Runs the map in parallel and collects the results in order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        self.run().into_iter().collect()
    }

    /// Runs the map in parallel and sums the results (in source order,
    /// so non-associative sums match sequential bit-for-bit).
    pub fn sum<Out: std::iter::Sum<R>>(self) -> Out {
        self.run().into_iter().sum()
    }

    /// Runs the map in parallel and reduces the results in order.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R,
        OP: Fn(R, R) -> R,
    {
        self.run().into_iter().fold(identity(), op)
    }
}

/// Splits a `Vec` into balanced per-chunk `Vec`s, preserving order.
fn vec_chunks<T>(mut items: Vec<T>, chunks: usize) -> Vec<Vec<T>> {
    let bounds = chunk_bounds(items.len(), chunks);
    let mut out: Vec<Vec<T>> = Vec::with_capacity(bounds.len());
    for &(_, len) in bounds.iter().rev() {
        out.push(items.split_off(items.len() - len));
    }
    out.reverse();
    out
}

/// Dispatches by-value `Vec` items over the pool: each chunk of the
/// vector becomes one task that takes its input chunk and fills its
/// own result slot, so ordering is preserved without sorting.
fn vec_collect<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if sequential_dispatch(n) {
        return items.into_iter().map(f).collect();
    }
    let chunks = vec_chunks(items, pool::thread_count() * CHUNKS_PER_THREAD);
    let inputs: Vec<Mutex<Option<Vec<T>>>> =
        chunks.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let slots: Vec<Mutex<Vec<R>>> = inputs.iter().map(|_| Mutex::new(Vec::new())).collect();
    pool::run_region(inputs.len(), &|chunk| {
        let input = inputs[chunk]
            .lock()
            .expect("rlnc-pool input chunk poisoned")
            .take()
            .expect("rlnc-pool input chunk taken twice");
        let out: Vec<R> = input.into_iter().map(f).collect();
        *slots[chunk].lock().expect("rlnc-pool result slot poisoned") = out;
    });
    let mut results = Vec::with_capacity(n);
    for slot in slots {
        results.append(&mut slot.into_inner().expect("rlnc-pool result slot poisoned"));
    }
    results
}

/// Result-free by-value dispatch behind [`VecParIter::for_each`].
fn vec_for_each<T, F>(items: Vec<T>, f: &F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    let n = items.len();
    if sequential_dispatch(n) {
        items.into_iter().for_each(f);
        return;
    }
    let chunks = vec_chunks(items, pool::thread_count() * CHUNKS_PER_THREAD);
    let inputs: Vec<Mutex<Option<Vec<T>>>> =
        chunks.into_iter().map(|c| Mutex::new(Some(c))).collect();
    pool::run_region(inputs.len(), &|chunk| {
        let input = inputs[chunk]
            .lock()
            .expect("rlnc-pool input chunk poisoned")
            .take()
            .expect("rlnc-pool input chunk taken twice");
        input.into_iter().for_each(f);
    });
}

/// A parallel iterator over by-value `Vec` items.
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> VecParIter<T> {
    /// Pairs each item with its index, like [`Iterator::enumerate`].
    pub fn enumerate(self) -> VecParIter<(usize, T)> {
        VecParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Lazily maps each item through `f`; the mapping runs in parallel at
    /// the terminal operation.
    pub fn map<R, F>(self, f: F) -> VecParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        VecParMap {
            items: self.items,
            f,
        }
    }

    /// Collects the items in order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Applies `f` to every item in parallel, building no result vector
    /// (the old stub collected a throwaway `Vec<()>` here).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        vec_for_each(self.items, &f);
    }
}

/// A by-value parallel iterator with a pending `map` stage.
pub struct VecParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, R, F> VecParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    fn run(self) -> Vec<R> {
        vec_collect(self.items, &self.f)
    }

    /// Runs the map in parallel and collects the results in order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        self.run().into_iter().collect()
    }

    /// Runs the map in parallel and sums the results (in input order).
    pub fn sum<Out: std::iter::Sum<R>>(self) -> Out {
        self.run().into_iter().sum()
    }

    /// Runs the map in parallel and reduces the results in order.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R,
        OP: Fn(R, R) -> R,
    {
        self.run().into_iter().fold(identity(), op)
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// The item type.
    type Item: Send;

    /// The concrete parallel iterator produced.
    type Iter;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;

    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = ParIter<RangeSource<usize>>;

    fn into_par_iter(self) -> Self::Iter {
        ParIter {
            source: RangeSource {
                start: self.start,
                len: self.end.saturating_sub(self.start),
            },
        }
    }
}

impl IntoParallelIterator for Range<u64> {
    type Item = u64;
    type Iter = ParIter<RangeSource<u64>>;

    fn into_par_iter(self) -> Self::Iter {
        let len = usize::try_from(self.end.saturating_sub(self.start))
            .expect("parallel u64 range too long for this platform");
        ParIter {
            source: RangeSource {
                start: self.start,
                len,
            },
        }
    }
}

/// Conversion into a parallel iterator over shared references.
pub trait IntoParallelRefIterator<'data> {
    /// The reference item type.
    type Item: Send;

    /// The concrete parallel iterator produced.
    type Iter;

    /// Returns a parallel iterator over `&self`'s elements.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = ParIter<SliceSource<'data, T>>;

    fn par_iter(&'data self) -> Self::Iter {
        ParIter {
            source: SliceSource { items: self },
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = ParIter<SliceSource<'data, T>>;

    fn par_iter(&'data self) -> Self::Iter {
        ParIter {
            source: SliceSource { items: self },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..10_000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..10_000usize).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_sum_matches_sequential() {
        let total: u64 = (0..1_000u64).into_par_iter().map(|i| i * i).sum();
        assert_eq!(total, (0..1_000u64).map(|i| i * i).sum::<u64>());
    }

    #[test]
    fn u64_range_offsets_are_respected() {
        let v: Vec<u64> = (1_000_000_000_000u64..1_000_000_001_000u64)
            .into_par_iter()
            .map(|i| i)
            .collect();
        assert_eq!(v.len(), 1_000);
        assert_eq!(v[0], 1_000_000_000_000);
        assert_eq!(v[999], 1_000_000_000_999);
    }

    #[test]
    fn par_iter_enumerate_map() {
        let data = vec![10, 20, 30];
        let v: Vec<usize> = data.par_iter().enumerate().map(|(i, &x)| i + x).collect();
        assert_eq!(v, vec![10, 21, 32]);
    }

    #[test]
    fn for_each_visits_every_item_once() {
        let hits = AtomicU64::new(0);
        let sum = AtomicU64::new(0);
        (0..5_000u64).into_par_iter().for_each(|i| {
            hits.fetch_add(1, Ordering::Relaxed);
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 5_000);
        assert_eq!(sum.load(Ordering::Relaxed), (0..5_000u64).sum::<u64>());
        let vec_hits = AtomicU64::new(0);
        vec![1u64, 2, 3]
            .into_par_iter()
            .for_each(|x| {
                vec_hits.fetch_add(x, Ordering::Relaxed);
            });
        assert_eq!(vec_hits.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn worker_threads_know_their_index() {
        assert_eq!(crate::current_thread_index(), None);
        let indices: Vec<Option<usize>> = (0..4 * crate::current_num_threads())
            .into_par_iter()
            .map(|_| crate::current_thread_index())
            .collect();
        if crate::current_num_threads() > 1 {
            assert!(indices.iter().all(|i| i.is_some()));
            let threads = crate::current_num_threads();
            assert!(indices.iter().flatten().all(|&i| i < threads));
        }
        // Back on the caller thread, the marker must be gone.
        assert_eq!(crate::current_thread_index(), None);
    }

    #[test]
    fn nested_regions_run_inline() {
        let nested: Vec<Vec<u64>> = (0..8u64)
            .into_par_iter()
            .map(|outer| (0..100u64).into_par_iter().map(|i| outer * i).collect())
            .collect();
        for (outer, inner) in nested.iter().enumerate() {
            assert_eq!(inner.len(), 100);
            assert_eq!(inner[99], outer as u64 * 99);
        }
    }

    #[test]
    fn pool_workers_are_spawned_once_and_counted() {
        let _: Vec<usize> = (0..10_000usize).into_par_iter().map(|i| i).collect();
        let after_first = crate::scoped_spawn_count();
        let _: Vec<usize> = (0..10_000usize).into_par_iter().map(|i| i).collect();
        // A persistent pool never re-spawns: the count is the number of
        // resident workers, not a per-region tally.
        assert_eq!(crate::scoped_spawn_count(), after_first);
        if crate::current_num_threads() > 1 {
            assert_eq!(after_first, crate::current_num_threads() as u64 - 1);
            let stats = crate::pool::stats();
            assert!(stats.tasks > 0);
            assert_eq!(stats.workers, after_first);
        } else {
            assert_eq!(after_first, 0);
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u64> = Vec::<u64>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<u64> = vec![7u64].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
        let empty_range: Vec<usize> = (5..5usize).into_par_iter().map(|x| x).collect();
        assert!(empty_range.is_empty());
    }
}

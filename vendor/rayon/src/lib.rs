//! Offline, API-compatible subset of `rayon`, backed by `std::thread::scope`.
//!
//! Provides `par_iter()` / `into_par_iter()` with the adapters the
//! workspace uses (`enumerate`, `map`) and the terminal operations
//! (`collect`, `sum`, `for_each`, `reduce`). Work is split into one
//! contiguous chunk per available core and results are reassembled in
//! order, so parallel execution is a pure drop-in for sequential: same
//! outputs, same ordering, different wall-clock.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

pub mod prelude {
    //! Traits that make `.par_iter()` / `.into_par_iter()` available.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Returns the number of worker threads used for parallel operations.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

std::thread_local! {
    static WORKER_INDEX: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// If the current thread is a worker of a parallel operation, returns its
/// index within that operation; `None` on threads outside any parallel
/// region (matching upstream rayon's API). Callers use this to avoid
/// nested parallelism: a computation already running inside a parallel
/// region should process its own work sequentially.
pub fn current_thread_index() -> Option<usize> {
    WORKER_INDEX.with(|cell| cell.get())
}

/// Scoped threads spawned by this stub since process start.
///
/// Unlike the real crates.io rayon — which reuses a persistent worker
/// pool — this stub pays a fresh `std::thread::scope` spawn per chunk of
/// every parallel region, so measured parallel speedups *understate* what
/// the real crate would deliver. This counter quantifies that overhead:
/// the observability layer exports it as the `rayon.scoped_spawns` timing
/// metric (it depends on core count, so it is never part of the
/// deterministic trace section). Not part of upstream rayon's API; remove
/// callers when swapping the crates.io implementation back in.
static SPAWN_COUNT: AtomicU64 = AtomicU64::new(0);

/// Total scoped worker threads spawned by parallel operations so far.
pub fn scoped_spawn_count() -> u64 {
    SPAWN_COUNT.load(Ordering::Relaxed)
}

/// Splits `items` into per-thread chunks, applies `f` in parallel, and
/// returns the results in the original order.
fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_size = n.div_ceil(threads);
    let mut items = items;
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    while !items.is_empty() {
        let tail = items.split_off(items.len().saturating_sub(chunk_size));
        chunks.push(tail);
    }
    chunks.reverse();
    let f = &f;
    let chunk_results: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .enumerate()
            .map(|(index, chunk)| {
                SPAWN_COUNT.fetch_add(1, Ordering::Relaxed);
                scope.spawn(move || {
                    WORKER_INDEX.with(|cell| cell.set(Some(index)));
                    chunk.into_iter().map(f).collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon stub worker panicked"))
            .collect()
    });
    chunk_results.into_iter().flatten().collect()
}

/// A materialized parallel iterator over items of type `T`.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Pairs each item with its index, like [`Iterator::enumerate`].
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Lazily maps each item through `f`; the mapping runs in parallel at
    /// the terminal operation.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Collects the items in order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Applies `f` to every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        parallel_map(self.items, |item| f(item));
    }
}

/// A parallel iterator with a pending `map` stage.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, R, F> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    fn run(self) -> Vec<R> {
        parallel_map(self.items, self.f)
    }

    /// Runs the map in parallel and collects the results in order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        self.run().into_iter().collect()
    }

    /// Runs the map in parallel and sums the results.
    pub fn sum<S: std::iter::Sum<R>>(self) -> S {
        self.run().into_iter().sum()
    }

    /// Runs the map in parallel and reduces the results in order.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R,
        OP: Fn(R, R) -> R,
    {
        self.run().into_iter().fold(identity(), op)
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// The item type.
    type Item: Send;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for Range<u64> {
    type Item = u64;

    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Conversion into a parallel iterator over shared references.
pub trait IntoParallelRefIterator<'data> {
    /// The reference item type.
    type Item: Send;

    /// Returns a parallel iterator over `&self`'s elements.
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;

    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;

    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..10_000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..10_000usize).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_sum_matches_sequential() {
        let total: u64 = (0..1_000u64).into_par_iter().map(|i| i * i).sum();
        assert_eq!(total, (0..1_000u64).map(|i| i * i).sum::<u64>());
    }

    #[test]
    fn par_iter_enumerate_map() {
        let data = vec![10, 20, 30];
        let v: Vec<usize> = data.par_iter().enumerate().map(|(i, &x)| i + x).collect();
        assert_eq!(v, vec![10, 21, 32]);
    }

    #[test]
    fn worker_threads_know_their_index() {
        assert_eq!(crate::current_thread_index(), None);
        let indices: Vec<Option<usize>> = (0..4 * crate::current_num_threads())
            .into_par_iter()
            .map(|_| crate::current_thread_index())
            .collect();
        if crate::current_num_threads() > 1 {
            assert!(indices.iter().all(|i| i.is_some()));
        }
        // Back on the caller thread, the marker must be gone.
        assert_eq!(crate::current_thread_index(), None);
    }

    #[test]
    fn scoped_spawns_are_counted() {
        let before = crate::scoped_spawn_count();
        let _: Vec<usize> = (0..10_000usize).into_par_iter().map(|i| i).collect();
        if crate::current_num_threads() > 1 {
            assert!(crate::scoped_spawn_count() > before);
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u64> = Vec::<u64>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<u64> = vec![7u64].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }
}

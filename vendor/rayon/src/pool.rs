//! A persistent work-stealing thread pool, std-only.
//!
//! The pool is a lazily-initialized process-global: the first parallel
//! region with an effective thread count above one spawns `threads - 1`
//! parked workers that live for the rest of the process. Each region is
//! dispatched as a batch of index tasks (`0..n_tasks`) distributed
//! round-robin over per-worker deques with a shared injector for
//! overflow; idle workers steal from the back of other deques (owner
//! pops the front), park on a condvar when every queue is empty, and
//! are woken by submitters. The calling thread does not block while its
//! region runs — it helps, executing any queued task until none are
//! findable, and only then waits on the region's completion latch.
//!
//! ## Determinism
//!
//! The pool never affects *results*: regions are pure index fan-outs
//! and callers reassemble outputs by index, so outputs are byte-
//! identical at every thread count (including the inline sequential
//! path used when the effective thread count is one). Only the
//! counters exported by [`stats`] — tasks dispatched, steals, parks,
//! workers spawned — are schedule-dependent, which is why the
//! observability layer keeps them in the *timing* trace section.
//!
//! ## Thread count
//!
//! The effective thread count is read once per process: the
//! `RLNC_THREADS` environment variable if it parses to an integer ≥ 1,
//! otherwise [`std::thread::available_parallelism`]. A count of one
//! means "no pool": every region runs inline on the caller, spawning
//! nothing, which is what makes `RLNC_THREADS=1` byte-for-byte equal
//! to sequential execution *and* scheduling-free.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Snapshot of the pool's lifetime counters (all schedule-dependent:
/// timing-section material, never part of a deterministic trace).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads spawned since process start. At most
    /// `thread_count() - 1`, and `0` until the first real region.
    pub workers: u64,
    /// Index tasks dispatched through the pool (inline sequential
    /// regions do not count — they never touch a queue).
    pub tasks: u64,
    /// Tasks taken from another worker's deque.
    pub steals: u64,
    /// Times a worker went to sleep on the wake condvar.
    pub parks: u64,
}

/// One unit of region work: "run task `index` of the region behind
/// `region`".
#[derive(Clone, Copy)]
struct Task {
    region: *const Region,
    index: usize,
}

// SAFETY: `Task` is a plain (pointer, index) pair. The `Region` it
// points to lives on the stack of the `run_region` call that enqueued
// it, and `run_region` does not return until the region's completion
// latch reports every task finished — so a queued or executing task
// never outlives its region (see the latch argument in `run_region`).
unsafe impl Send for Task {}

/// A parallel region: the work closure plus a completion latch.
struct Region {
    /// The region body. The `'static` lifetime is a lie told by
    /// `run_region` (see the SAFETY comment there); the latch below is
    /// what makes it sound.
    func: &'static (dyn Fn(usize) + Sync),
    /// Tasks not yet finished. Guarded decrement + condvar instead of
    /// an atomic so the waiter cannot miss the final notification.
    remaining: Mutex<usize>,
    done: Condvar,
    /// First panic payload from any task, re-thrown on the caller.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Region {
    /// Runs task `index`, capturing a panic instead of unwinding the
    /// executing thread, then ticks the completion latch. After the
    /// final tick the region may be freed at any moment, so this method
    /// must not touch `self` after releasing the `remaining` lock.
    fn execute(&self, index: usize) {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (self.func)(index)));
        if let Err(payload) = result {
            let mut slot = self.panic.lock().unwrap();
            slot.get_or_insert(payload);
        }
        let mut left = self.remaining.lock().unwrap();
        *left -= 1;
        if *left == 0 {
            // The waiter needs `remaining`'s lock to observe the zero,
            // so it cannot free the region before we release it.
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        *self.remaining.lock().unwrap() == 0
    }

    fn wait_done(&self) {
        let mut left = self.remaining.lock().unwrap();
        while *left > 0 {
            left = self.done.wait(left).unwrap();
        }
    }
}

struct Pool {
    /// One deque per worker; owners pop the front, thieves the back.
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Overflow queue, drained by everyone (not counted as stealing).
    injector: Mutex<VecDeque<Task>>,
    /// Lock + condvar for the parking protocol. Submitters push tasks
    /// *first*, then notify under this lock; a worker about to park
    /// re-checks every queue while holding it, so a wakeup can never
    /// be lost between the last check and the wait.
    idle: Mutex<()>,
    wake: Condvar,
    /// Rotates the deque a region's first task lands on, so concurrent
    /// submitters do not all pile onto deque 0.
    round_robin: AtomicUsize,
    tasks: AtomicU64,
    steals: AtomicU64,
    parks: AtomicU64,
    workers: u64,
}

impl Pool {
    /// Takes one queued task: own deque first (workers only), then the
    /// injector, then the back of every other deque (a steal).
    fn find_task(&self, me: Option<usize>) -> Option<Task> {
        if let Some(w) = me {
            if let Some(task) = self.deques[w].lock().unwrap().pop_front() {
                return Some(task);
            }
        }
        if let Some(task) = self.injector.lock().unwrap().pop_front() {
            return Some(task);
        }
        let n = self.deques.len();
        let start = me.map_or(0, |w| w + 1);
        for k in 0..n {
            let victim = (start + k) % n;
            if Some(victim) == me {
                continue;
            }
            if let Some(task) = self.deques[victim].lock().unwrap().pop_back() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(task);
            }
        }
        None
    }

    fn any_task_queued(&self) -> bool {
        if !self.injector.lock().unwrap().is_empty() {
            return true;
        }
        self.deques.iter().any(|d| !d.lock().unwrap().is_empty())
    }

    /// Enqueues a region's `n_tasks` index tasks round-robin over the
    /// worker deques, then wakes every parked worker.
    fn submit(&self, region: &Region, n_tasks: usize) {
        self.tasks.fetch_add(n_tasks as u64, Ordering::Relaxed);
        let region: *const Region = region;
        let n = self.deques.len();
        let base = self.round_robin.fetch_add(1, Ordering::Relaxed);
        for index in 0..n_tasks {
            let task = Task { region, index };
            self.deques[(base + index) % n].lock().unwrap().push_back(task);
        }
        // Tasks are visible (pushed under the deque locks) before the
        // notification, and parking workers re-check under `idle`.
        let _idle = self.idle.lock().unwrap();
        self.wake.notify_all();
    }
}

fn worker_loop(pool: &'static Pool, worker: usize) {
    crate::set_worker_index(Some(worker));
    loop {
        if let Some(task) = pool.find_task(Some(worker)) {
            // SAFETY: the region outlives the task (see `Task`).
            unsafe { &*task.region }.execute(task.index);
            continue;
        }
        let guard = pool.idle.lock().unwrap();
        if pool.any_task_queued() {
            continue;
        }
        pool.parks.fetch_add(1, Ordering::Relaxed);
        drop(pool.wake.wait(guard).unwrap());
    }
}

static THREADS: OnceLock<usize> = OnceLock::new();

/// The effective thread count: `RLNC_THREADS` if it parses to an
/// integer ≥ 1, else [`std::thread::available_parallelism`]. Read once
/// per process (the pool size cannot change after initialization).
pub fn thread_count() -> usize {
    *THREADS.get_or_init(|| {
        std::env::var("RLNC_THREADS")
            .ok()
            .and_then(|raw| raw.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

static POOL: OnceLock<&'static Pool> = OnceLock::new();

fn global_pool(threads: usize) -> &'static Pool {
    POOL.get_or_init(|| {
        let workers = threads - 1;
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            idle: Mutex::new(()),
            wake: Condvar::new(),
            round_robin: AtomicUsize::new(0),
            tasks: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            workers: workers as u64,
        }));
        for worker in 0..workers {
            std::thread::Builder::new()
                .name(format!("rlnc-pool-{worker}"))
                .spawn(move || worker_loop(pool, worker))
                .expect("failed to spawn rlnc-pool worker");
        }
        pool
    })
}

/// Counters for the observability layer; all zeros until the first
/// real parallel region initializes the pool.
pub fn stats() -> PoolStats {
    match POOL.get() {
        Some(pool) => PoolStats {
            workers: pool.workers,
            tasks: pool.tasks.load(Ordering::Relaxed),
            steals: pool.steals.load(Ordering::Relaxed),
            parks: pool.parks.load(Ordering::Relaxed),
        },
        None => PoolStats::default(),
    }
}

/// Runs task on the caller thread on behalf of the pool: the caller
/// temporarily becomes worker `thread_count() - 1` (an index no pool
/// worker uses) so nested-parallelism detection keeps working inside
/// the task, then reverts to a plain outside-the-pool thread.
fn execute_as_caller(task: Task) {
    let previous = crate::current_thread_index();
    crate::set_worker_index(Some(thread_count() - 1));
    // SAFETY: the region outlives the task (see `Task`).
    unsafe { &*task.region }.execute(task.index);
    crate::set_worker_index(previous);
}

/// Runs `f(0), f(1), …, f(n_tasks - 1)`, possibly in parallel, and
/// returns once every call has finished.
///
/// This is the single dispatch primitive behind every parallel
/// iterator. Three situations run inline on the caller, spawning and
/// queueing nothing: an effective thread count of one, a single-task
/// region, and a nested region (the caller is already inside a pool
/// task — running inline preserves the old scoped-thread stub's
/// guarantee that nested parallelism degrades to sequential work).
pub fn run_region(n_tasks: usize, f: &(dyn Fn(usize) + Sync)) {
    if n_tasks == 0 {
        return;
    }
    let threads = thread_count();
    if threads <= 1 || n_tasks == 1 || crate::current_thread_index().is_some() {
        for index in 0..n_tasks {
            f(index);
        }
        return;
    }
    let pool = global_pool(threads);
    // SAFETY: `func` borrows the caller's stack, and the transmute
    // forges a 'static lifetime for it. This is sound because no task
    // can outlive this call: every task ticks the region's completion
    // latch exactly once *after* its `func` call returns, and this
    // function does not return until the latch reaches zero — so by
    // the time the borrow would dangle, no queued or running task
    // references it.
    let func: &(dyn Fn(usize) + Sync) = f;
    let func: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(func) };
    let region = Region {
        func,
        remaining: Mutex::new(n_tasks),
        done: Condvar::new(),
        panic: Mutex::new(None),
    };
    pool.submit(&region, n_tasks);
    // Help instead of blocking: drain findable tasks (this region's or
    // any concurrent region's), and only wait on the latch once the
    // queues are dry. A claimed task is always executed, and tasks
    // never wait on other tasks (nested regions run inline), so this
    // cannot deadlock — including against the serve layer's scoped
    // client threads submitting regions concurrently.
    loop {
        if region.is_done() {
            break;
        }
        match pool.find_task(None) {
            Some(task) => execute_as_caller(task),
            None => {
                region.wait_done();
                break;
            }
        }
    }
    let payload = region.panic.lock().unwrap().take();
    if let Some(payload) = payload {
        std::panic::resume_unwind(payload);
    }
}

//! Offline stub of `serde` for this hermetic workspace.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! never invokes a serialization backend (there is no `serde_json` or
//! similar in the dependency tree). This stub therefore provides the two
//! trait names with blanket implementations, plus no-op derive macros, so
//! that `#[derive(Serialize, Deserialize)]` and `T: Serialize` bounds
//! compile unchanged. Swapping in real serde later requires only a
//! manifest change, since all usage sites are already written against the
//! real API.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; every type satisfies it.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`; every sized type
/// satisfies it.
pub trait Deserialize<'de> {}

impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Deserialization sub-module, mirroring `serde::de`.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Serialization sub-module, mirroring `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}

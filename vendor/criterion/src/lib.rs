//! Offline stand-in for `criterion`: same macro/builder surface
//! (`criterion_group!`, `criterion_main!`, benchmark groups, `Bencher`,
//! `BenchmarkId`, `Throughput`), measuring with plain `std::time::Instant`
//! and printing per-benchmark mean/min times to stdout. No statistical
//! analysis, plots, or saved baselines — enough to keep `cargo bench`
//! runnable and the bench targets compiling in a hermetic environment.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            name,
            sample_size: self.default_sample_size,
            measurement_time: Duration::from_secs(3),
            throughput: None,
            _criterion: std::marker::PhantomData,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_one(&id.into().render(), sample_size, Duration::from_secs(3), f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares the work per iteration, for elements/second reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under the given id.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().render());
        run_one(&label, self.sample_size, self.measurement_time, |b| f(b));
        self
    }

    /// Benchmarks `f` with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.render());
        run_one(&label, self.sample_size, self.measurement_time, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times closures handed to it by a benchmark function.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` repeatedly, recording one wall-clock sample per run, until
    /// the sample count or the time budget is reached.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up run.
        std::hint::black_box(f());
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t0.elapsed());
            if started.elapsed() > self.budget {
                break;
            }
        }
    }
}

/// A benchmark identifier: a function name plus an optional parameter.
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter, within an implicit function.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: s,
            parameter: None,
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_string(),
            parameter: None,
        }
    }
}

/// Work performed per iteration, used for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_one<F>(label: &str, sample_size: usize, budget: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        budget,
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {label}: no samples recorded");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    println!(
        "  {label}: mean {mean:?}, min {min:?} over {} samples",
        bencher.samples.len()
    );
}

/// Bundles benchmark functions into a callable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // When cargo invokes a harness=false bench target during
            // `cargo test`, it passes test-runner flags; skip the actual
            // benchmarking in that mode so tests stay fast.
            if std::env::args().any(|a| a == "--test" || a == "--list") {
                return;
            }
            $($group();)+
        }
    };
}

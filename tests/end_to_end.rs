//! Cross-crate integration tests: each test exercises the public API the
//! way the examples and the experiment harness do, at reduced scale.

use rlnc::langs::amos::{selection_output, Amos, AmosGoldenDecider, GOLDEN_GUARANTEE};
use rlnc::langs::cole_vishkin::{oriented_ring_instance, ColeVishkinRingColoring};
use rlnc::langs::coloring::{improperly_colored_nodes, ColoringDecider, ProperColoring, RankColoring};
use rlnc::langs::mis::{LubyMis, MaximalIndependentSet};
use rlnc::langs::random_coloring::RandomColoring;
use rlnc::prelude::*;
use rlnc_core::decision::{acceptance_probability, decide};
use rlnc_core::relaxation::{EpsilonSlack, FResilient};
use rlnc_core::resilient::ResilientDecider;
use rlnc_core::rounds::run_via_message_passing;
use rlnc_graph::generators::cycle;

#[test]
fn cole_vishkin_pipeline_produces_locally_checkable_colorings() {
    for n in [16usize, 65, 256] {
        let (graph, input, ids) = oriented_ring_instance(n);
        let algo = ColeVishkinRingColoring::for_ring_size(n);
        let instance = Instance::new(&graph, &input, &ids);
        let output = Simulator::new().run(&algo, &instance);
        let io = IoConfig::new(&graph, &input, &output);
        assert!(ProperColoring::new(3).contains(&io));
        assert!(decide(&ColoringDecider::new(3), &io, &ids));
        // The promise F_k holds with k = 8 (degree 2, labels ≤ 8 bytes).
        assert!(FkPromise::new(8).check(&graph, &input, &output));
    }
}

#[test]
fn amos_decider_guarantee_holds_end_to_end() {
    let graph = cycle(40);
    let input = Labeling::empty(40);
    let ids = IdAssignment::consecutive(&graph);
    let decider = AmosGoldenDecider::new();
    // One selected node: acceptance ≈ p.
    let one = selection_output(40, &[NodeId(7)]);
    let io = IoConfig::new(&graph, &input, &one);
    assert!(Amos::new().contains(&io));
    let est = acceptance_probability(&decider, &io, &ids, 4000, 1);
    assert!((est.p_hat - GOLDEN_GUARANTEE).abs() < 0.04);
    // Two antipodal selected nodes: rejection ≥ p.
    let two = selection_output(40, &[NodeId(0), NodeId(20)]);
    let io = IoConfig::new(&graph, &input, &two);
    assert!(!Amos::new().contains(&io));
    let est = acceptance_probability(&decider, &io, &ids, 4000, 2);
    assert!(1.0 - est.p_hat > 0.55);
}

#[test]
fn randomization_helps_for_slack_but_not_for_resilient() {
    let n = 512;
    let graph = cycle(n);
    let input = Labeling::empty(n);
    let ids = IdAssignment::consecutive(&graph);
    let instance = Instance::new(&graph, &input, &ids);
    let random = RandomColoring::new(3);
    // ε-slack: the zero-round randomized constructor succeeds with high
    // probability.
    let slack = EpsilonSlack::new(ProperColoring::new(3), 0.62);
    let est = Simulator::new().construction_success(&random, &instance, &slack, 200, 3);
    assert!(est.p_hat > 0.9);
    // f-resilient: neither the randomized nor the order-invariant
    // deterministic constructor ever succeeds.
    let resilient = FResilient::new(ProperColoring::new(3), 8);
    let est = Simulator::new().construction_success(&random, &instance, &resilient, 100, 4);
    assert_eq!(est.successes, 0);
    let rank_output = Simulator::new().run(&RankColoring::new(2, 3), &instance);
    assert!(!resilient.contains(&IoConfig::new(&graph, &input, &rank_output)));
}

#[test]
fn resilient_decider_is_a_bpld_witness_for_l_f() {
    let n = 64;
    let f = 3usize;
    let graph = cycle(n);
    let input = Labeling::empty(n);
    let ids = IdAssignment::consecutive(&graph);
    let decider = ResilientDecider::new(ProperColoring::new(2), f);
    // Yes-instance: proper 2-coloring with one planted conflict (3 bad balls).
    let mut output = Labeling::from_fn(&graph, |v| Label::from_u64(u64::from(v.0 % 2) + 1));
    output.set(NodeId(10), Label::from_u64(1));
    let io = IoConfig::new(&graph, &input, &output);
    let bad = improperly_colored_nodes(&ProperColoring::new(2), &io);
    assert!(bad <= f);
    let yes = acceptance_probability(&decider, &io, &ids, 6000, 5);
    assert!(yes.p_hat > 0.5);
    // No-instance: all-ones (every ball bad).
    let all_ones = Labeling::from_fn(&graph, |_| Label::from_u64(1));
    let io = IoConfig::new(&graph, &input, &all_ones);
    let no = acceptance_probability(&decider, &io, &ids, 6000, 6);
    assert!(1.0 - no.p_hat > 0.5);
}

#[test]
fn message_passing_and_ball_views_agree_for_library_algorithms() {
    let n = 48;
    let graph = cycle(n);
    let input = Labeling::empty(n);
    let ids = IdAssignment::spread(&graph, 11);
    let instance = Instance::new(&graph, &input, &ids);
    let algo = RankColoring::new(2, 3);
    assert_eq!(
        Simulator::new().run(&algo, &instance),
        run_via_message_passing(&algo, &instance)
    );
}

#[test]
fn luby_mis_is_verified_by_the_lcl_language_across_families() {
    let mut rng = rand::rng();
    for family in [
        rlnc_graph::generators::Family::Cycle,
        rlnc_graph::generators::Family::Grid,
        rlnc_graph::generators::Family::Cubic,
    ] {
        let graph = family.generate(48, &mut rng);
        let n = graph.node_count();
        let input = Labeling::empty(n);
        let ids = IdAssignment::consecutive(&graph);
        let instance = Instance::new(&graph, &input, &ids);
        let algo = LubyMis::for_graph_size(n);
        let output = Simulator::new().run_randomized(&algo, &instance, SeedSequence::new(17));
        let io = IoConfig::new(&graph, &input, &output);
        assert!(
            MaximalIndependentSet::new().contains(&io),
            "Luby MIS failed on {}",
            family.name()
        );
    }
}

#[test]
fn experiment_harness_smoke_run_is_consistent_with_the_paper() {
    for report in rlnc::experiments::run_all(rlnc::experiments::Scale::Smoke) {
        assert!(
            report.all_consistent(),
            "experiment {} disagrees with the paper: {:?}",
            report.id,
            report.findings
        );
    }
}

//! Property-based tests (proptest) on the core invariants of the toolkit.

use proptest::prelude::*;
use rlnc::langs::coloring::ProperColoring;
use rlnc::prelude::*;
use rlnc_core::relaxation::{EpsilonSlack, FResilient};
use rlnc_core::resilient::resilient_acceptance_probability;
use rlnc_core::{DistributedLanguage, FnAlgorithm};
use rlnc_graph::ball::Ball;
use rlnc_graph::generators::{cycle, random_bounded_degree, random_tree};
use rlnc_graph::ops::{disjoint_union, glue_instances};
use rlnc_graph::traversal::{bfs_distances, is_connected};
use rlnc_par::rng::SeedSequence;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arbitrary_graph(seed: u64, n: usize, kind: u8) -> rlnc_graph::Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    match kind % 3 {
        0 => cycle(n.max(3)),
        1 => random_tree(n.max(2), &mut rng),
        _ => random_bounded_degree(n.max(3), 4, 0.4, &mut rng),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Balls never contain nodes beyond the requested radius, and the
    /// center is always local index 0 at distance 0.
    #[test]
    fn ball_extraction_respects_radius(seed in 0u64..5000, n in 3usize..40, radius in 0u32..5, kind in 0u8..3) {
        let graph = arbitrary_graph(seed, n, kind);
        let center = NodeId::from_index(seed as usize % graph.node_count());
        let ball = Ball::extract(&graph, center, radius);
        let distances = bfs_distances(&graph, center);
        prop_assert_eq!(ball.host_node(0), center);
        prop_assert_eq!(ball.distance(0), 0);
        for i in 0..ball.len() {
            let host = ball.host_node(i);
            prop_assert_eq!(u32::from(distances[host.index()]), ball.distance(i));
            prop_assert!(ball.distance(i) <= radius);
        }
        // Every node within the radius is in the ball.
        let within = distances.iter().filter(|&&d| d != u32::MAX && d <= radius).count();
        prop_assert_eq!(within, ball.len());
    }

    /// The disjoint union preserves node and edge counts and never connects
    /// the parts.
    #[test]
    fn disjoint_union_preserves_structure(seed in 0u64..5000, n1 in 3usize..24, n2 in 3usize..24) {
        let a = cycle(n1);
        let b = arbitrary_graph(seed, n2, 1);
        let union = disjoint_union(&[&a, &b]);
        prop_assert_eq!(union.graph.node_count(), a.node_count() + b.node_count());
        prop_assert_eq!(union.graph.edge_count(), a.edge_count() + b.edge_count());
        prop_assert!(union.graph.validate().is_ok());
        // No edge crosses the parts.
        for (u, v) in union.graph.edges() {
            prop_assert_eq!(union.part_of(u).0, union.part_of(v).0);
        }
    }

    /// Gluing cycles produces a connected graph of maximum degree at most 3
    /// (the k > 2 requirement of Theorem 1) with the right node count.
    #[test]
    fn gluing_is_connected_and_degree_bounded(sizes in proptest::collection::vec(6usize..20, 2..5)) {
        let parts: Vec<rlnc_graph::Graph> = sizes.iter().map(|&s| cycle(s)).collect();
        let with_anchors: Vec<(&rlnc_graph::Graph, NodeId)> =
            parts.iter().map(|g| (g, NodeId(0))).collect();
        let glued = glue_instances(&with_anchors);
        prop_assert!(is_connected(&glued.graph));
        prop_assert!(glued.graph.max_degree() <= 3);
        let expected: usize = sizes.iter().sum::<usize>() + 2 * sizes.len();
        prop_assert_eq!(glued.graph.node_count(), expected);
        prop_assert!(glued.graph.validate().is_ok());
    }

    /// Order types are invariant under strictly increasing identity maps,
    /// and so are the outputs of rank-based algorithms.
    #[test]
    fn rank_algorithms_are_order_invariant(seed in 0u64..5000, n in 4usize..32, stretch in 2u64..50) {
        let graph = arbitrary_graph(seed, n, 2);
        let input = Labeling::empty(graph.node_count());
        let ids = IdAssignment::consecutive(&graph);
        let stretched = ids.map_monotone(|x| x * stretch + 3);
        let algo = FnAlgorithm::new(1, "rank", |v: &View| Label::from_u64(v.center_rank() as u64));
        let a = Simulator::sequential().run(&algo, &Instance::new(&graph, &input, &ids));
        let b = Simulator::sequential().run(&algo, &Instance::new(&graph, &input, &stretched));
        prop_assert_eq!(a, b);
    }

    /// Relaxation monotonicity: L ⊆ L_f ⊆ L_{f+1}, and L_f ⊆ (f/n)-slack.
    #[test]
    fn relaxations_are_monotone(seed in 0u64..5000, n in 6usize..40, f in 0usize..6) {
        let graph = cycle(n);
        let input = Labeling::empty(n);
        // A random (possibly improper) coloring.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let colors: Vec<Label> = (0..graph.node_count())
            .map(|_| Label::from_u64(rand::Rng::random_range(&mut rng, 1..=3u64)))
            .collect();
        let output = Labeling::new(colors);
        let io = IoConfig::new(&graph, &input, &output);
        let base = ProperColoring::new(3);
        let lf = FResilient::new(ProperColoring::new(3), f);
        let lf1 = FResilient::new(ProperColoring::new(3), f + 1);
        let slack = EpsilonSlack::new(ProperColoring::new(3), f as f64 / n as f64);
        if base.contains(&io) {
            prop_assert!(lf.contains(&io));
        }
        if lf.contains(&io) {
            prop_assert!(lf1.contains(&io));
            prop_assert!(slack.contains(&io));
        }
    }

    /// The Corollary-1 acceptance probability lies strictly inside the
    /// prescribed interval and satisfies both strict inequalities.
    #[test]
    fn resilient_probability_interval(f in 1usize..40) {
        let p = resilient_acceptance_probability(f);
        prop_assert!(p > 2f64.powf(-1.0 / f as f64));
        prop_assert!(p < 2f64.powf(-1.0 / (f as f64 + 1.0)));
        prop_assert!(p.powi(f as i32) > 0.5);
        prop_assert!(p.powi(f as i32 + 1) < 0.5);
    }

    /// Randomized simulation is reproducible: the same execution seed gives
    /// the same outputs, and the parallel and sequential simulators agree.
    #[test]
    fn randomized_simulation_is_deterministic_per_seed(seed in 0u64..5000, n in 3usize..32) {
        let graph = cycle(n.max(3));
        let input = Labeling::empty(graph.node_count());
        let ids = IdAssignment::consecutive(&graph);
        let instance = Instance::new(&graph, &input, &ids);
        let algo = rlnc::langs::random_coloring::RandomColoring::new(3);
        let s = SeedSequence::new(seed).child(1);
        let a = Simulator::new().run_randomized(&algo, &instance, s);
        let b = Simulator::sequential().run_randomized(&algo, &instance, s);
        prop_assert_eq!(a, b);
    }

    /// Labels round-trip through their integer encoding.
    #[test]
    fn label_u64_round_trip(value in 0u64..u64::MAX) {
        prop_assert_eq!(Label::from_u64(value).as_u64(), value);
    }
}

//! # rlnc — Randomized Local Network Computing
//!
//! A LOCAL-model simulation and derandomization toolkit reproducing
//! *Randomized Local Network Computing* (Feuilloley & Fraigniaud,
//! SPAA 2015). This facade crate re-exports the workspace members:
//!
//! * [`graph`] — graphs, generators, identity assignments, balls, gluing.
//! * [`par`] — parallel Monte-Carlo trials, deterministic RNG streams,
//!   statistics.
//! * [`core`] — the LOCAL model, languages, decision classes (LD/BPLD),
//!   relaxations, and the Theorem-1 derandomization machinery.
//! * [`engine`] — the batched execution engine: build an `ExecutionPlan`
//!   once per fixed instance, run `algorithm × K seeds` against cached
//!   views with a `BatchRunner` (bit-identical to the per-trial path),
//!   including composite `UnionPlan`/`GluedPlan` kernels for the
//!   derandomization argument.
//! * [`derand`] — the staged, engine-backed Theorem-1 pipeline
//!   (`DerandPipeline`): ramsey lift → hard-instance search → boosted
//!   disjoint union → connected gluing, generic over any language plus
//!   constructor/decider pair.
//! * [`langs`] — concrete languages and algorithms (coloring, Cole–Vishkin,
//!   MIS, matching, AMOS, LLL, ...).
//! * [`sweep`] — the declarative scenario-sweep engine: named grids over
//!   graph family × size × identity scheme × workload, a batched
//!   reproducible executor, and JSON/CSV/markdown result export.
//! * [`serve`] — sharded sweep execution (`ShardSpec`, `sweep --shard`)
//!   and the resident `sweep-serve` service: a line-protocol server with
//!   warm plan caches, streamed records, and a matching client.
//! * [`obs`] — zero-dependency observability: a process-global registry of
//!   atomic counters/gauges/histograms/spans, disabled by default, whose
//!   exports split into a *deterministic* section (byte-identical across
//!   thread schedules and batch sizes) and a *timing* section.
//! * [`experiments`] — the harness that regenerates the paper's
//!   quantitative claims.
//!
//! ## Quickstart
//!
//! ```
//! use rlnc::prelude::*;
//!
//! // Build an oriented ring, 3-color it with Cole–Vishkin, and verify.
//! let (graph, input, ids) = rlnc::langs::cole_vishkin::oriented_ring_instance(64);
//! let algo = rlnc::langs::cole_vishkin::ColeVishkinRingColoring::for_ring_size(64);
//! let instance = Instance::new(&graph, &input, &ids);
//! let output = Simulator::new().run(&algo, &instance);
//! let coloring = rlnc::langs::coloring::ProperColoring::new(3);
//! assert!(coloring.contains(&IoConfig::new(&graph, &input, &output)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rlnc_core as core;
pub use rlnc_derand as derand;
pub use rlnc_engine as engine;
pub use rlnc_experiments as experiments;
pub use rlnc_graph as graph;
pub use rlnc_langs as langs;
pub use rlnc_obs as obs;
pub use rlnc_par as par;
pub use rlnc_serve as serve;
pub use rlnc_sweep as sweep;

/// The most commonly used items across the workspace.
pub mod prelude {
    pub use rlnc_core::prelude::*;
    pub use rlnc_derand::{DerandPipeline, OneSidedLclDecider, PipelineParams};
    pub use rlnc_engine::{BatchRunner, ExecutionPlan, GluedPlan, UnionPlan};
    pub use rlnc_graph::{Graph, GraphBuilder, IdAssignment, NodeId};
    pub use rlnc_par::{MonteCarlo, Scale, SeedSequence};
    pub use rlnc_sweep::{Registry, SweepExecutor};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_wired() {
        let graph = crate::graph::generators::cycle(5);
        assert_eq!(graph.node_count(), 5);
        let est = crate::par::MonteCarlo::new(100).estimate(|_| true);
        assert_eq!(est.successes, 100);
        assert!(crate::sweep::Registry::builtin().get("smoke").is_some());
        let input = crate::core::labels::Labeling::empty(5);
        let ids = crate::graph::IdAssignment::consecutive(&graph);
        let instance = crate::core::config::Instance::new(&graph, &input, &ids);
        let plan = crate::engine::ExecutionPlan::for_instance(&instance, 1);
        assert_eq!(plan.node_count(), 5);
        assert_eq!(crate::derand::PipelineCase::ALL.len(), 3);
        // Observability is disabled by default; a snapshot still renders.
        assert!(!crate::obs::enabled());
        assert!(crate::obs::snapshot().to_json().contains("rlnc-trace-v1"));
    }
}

//! Property-based invariants of the derandomization machinery, mirroring
//! the style of `crates/graph/tests/generator_props.rs`:
//!
//! * the gluing construction always yields a connected graph of maximum
//!   degree ≤ max(3, part degree), with the right node count, and
//!   preserves per-component ball outputs — an order-invariant algorithm
//!   computes the same output at every node whose ball avoids the anchor,
//!   on the glued graph as on the standalone part;
//! * the Ramsey refinement (`consistent_id_set`) returns a subset of its
//!   universe that is large enough to relabel every observed ball, and is
//!   monotone under identity-universe extension for the residue-class
//!   algorithms the finite construction converges on.

use proptest::prelude::*;
use rlnc_core::algorithm::FnAlgorithm;
use rlnc_core::derand::gluing::GluingExperiment;
use rlnc_core::derand::hard_instances::consecutive_cycle_candidates;
use rlnc_core::derand::ramsey::{collect_templates, consistent_id_set};
use rlnc_core::labels::Label;
use rlnc_core::prelude::*;
use rlnc_graph::traversal::{bfs_distances, is_connected};
use rlnc_graph::NodeId;

/// An order-invariant radius-1 algorithm reading everything a view exposes
/// except raw identity values: structure, distances, identity order, and
/// inputs.
fn order_invariant_digest() -> FnAlgorithm<impl Fn(&View) -> Label + Sync> {
    FnAlgorithm::new(1, "oi-digest", |v: &View| {
        let mut digest = (v.center_degree() as u64) << 7;
        for i in 0..v.len() {
            digest = digest
                .wrapping_mul(31)
                .wrapping_add(v.rank(i) as u64 ^ (u64::from(v.distance(i)) << 3))
                .wrapping_add(v.input(i).as_u64());
        }
        Label::from_u64(digest)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn gluing_is_connected_bounded_degree_and_preserves_far_balls(
        part_size in 8usize..20,
        nu in 2usize..5,
        anchor_offset in 0usize..8,
        seed in 0u64..1_000,
    ) {
        let sizes: Vec<usize> = (0..nu).map(|i| part_size + (i + seed as usize) % 3).collect();
        let parts = consecutive_cycle_candidates(sizes.clone());
        let anchors: Vec<NodeId> = sizes
            .iter()
            .map(|&s| NodeId((anchor_offset % s) as u32))
            .collect();
        let originals: usize = sizes.iter().sum();
        let t = 1u32;
        let experiment = GluingExperiment::build(parts.clone(), anchors.clone(), t, 1);

        // Structure: connected, degree ≤ 3 (cycles have degree 2; inserted
        // subdivision nodes reach 3), exact node count, full labelings.
        prop_assert!(is_connected(experiment.graph()));
        prop_assert!(experiment.graph().max_degree() <= 3);
        prop_assert_eq!(experiment.graph().node_count(), originals + 2 * nu);
        prop_assert_eq!(experiment.ids.len(), originals + 2 * nu);
        prop_assert_eq!(experiment.input.len(), originals + 2 * nu);

        // Per-component ball preservation: an order-invariant algorithm
        // agrees between the standalone part and the glued graph at every
        // node farther than t from the part's anchor (its ball then avoids
        // both the subdivided edge and the inserted nodes, and the uniform
        // per-part identity shift preserves the order type).
        let algo = order_invariant_digest();
        let glued_instance = experiment.as_hard_instance();
        let glued_out = Simulator::new().run(&algo, &glued_instance.as_instance());
        for (part_index, part) in parts.iter().enumerate() {
            let part_out = Simulator::new().run(&algo, &part.as_instance());
            let dist = bfs_distances(&part.graph, anchors[part_index]);
            for v in part.graph.nodes() {
                if dist[v.index()] > t {
                    let glued_node = experiment.gluing.map(part_index, v);
                    prop_assert!(
                        glued_out.get(glued_node) == part_out.get(v),
                        "part {} node {} (distance {} from anchor) diverged",
                        part_index,
                        v,
                        dist[v.index()]
                    );
                }
            }
        }
    }

    #[test]
    fn consistent_id_set_is_a_refinement_and_monotone_under_extension(
        n in 4usize..10,
        base in 24u64..60,
        extension in 6u64..30,
        modulus in 2u64..4,
        seed in 0u64..1_000,
    ) {
        let graph = rlnc_graph::generators::cycle(n);
        let input = Labeling::empty(n);
        let ids = rlnc_graph::IdAssignment::consecutive(&graph);
        let inst = Instance::new(&graph, &input, &ids);
        let algo = FnAlgorithm::new(0, "id-residue", move |v: &View| {
            Label::from_u64(v.center_id() % modulus)
        });
        let templates = collect_templates(&[inst], 0);

        // Round the universes to multiples of the modulus so every residue
        // class of the larger universe is at least as large as the largest
        // class of the smaller one.
        let base = base - base % modulus;
        let small: Vec<u64> = (1..=base).collect();
        let large: Vec<u64> = (1..=(base + extension * modulus)).collect();
        let refined_small = consistent_id_set(&algo, &templates, &small, 300, seed);
        let refined_large = consistent_id_set(&algo, &templates, &large, 300, seed);

        for refined in [&refined_small, &refined_large] {
            // A sorted subset of the universe, still usable for relabeling.
            prop_assert!(!refined.is_empty());
            prop_assert!(refined.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(refined.iter().all(|x| large.contains(x)));
            // Consistency: the refinement converges on one residue class.
            let residues: std::collections::HashSet<u64> =
                refined.iter().map(|x| x % modulus).collect();
            prop_assert!(residues.len() == 1, "refined {:?} spans several classes", refined);
        }
        prop_assert!(refined_small.iter().all(|x| small.contains(x)));
        // Monotonicity: extending the universe never shrinks the refined
        // set (each residue class of the extension dominates its
        // counterpart).
        prop_assert!(
            refined_large.len() >= refined_small.len(),
            "universe extension shrank the refined set: {} -> {}",
            refined_small.len(),
            refined_large.len()
        );
    }

    #[test]
    fn consistent_id_set_keeps_whole_universe_for_order_invariant_algorithms(
        n in 4usize..12,
        universe_size in 16u64..64,
        seed in 0u64..1_000,
    ) {
        let graph = rlnc_graph::generators::cycle(n);
        let input = Labeling::empty(n);
        let ids = rlnc_graph::IdAssignment::consecutive(&graph);
        let inst = Instance::new(&graph, &input, &ids);
        let algo = FnAlgorithm::new(1, "rank", |v: &View| Label::from_u64(v.center_rank() as u64));
        let templates = collect_templates(&[inst], 1);
        let universe: Vec<u64> = (1..=universe_size).collect();
        let refined = consistent_id_set(&algo, &templates, &universe, 60, seed);
        prop_assert!(refined.len() == universe.len(), "no identity should be removed");
    }
}

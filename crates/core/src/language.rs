//! Distributed languages and the LCL subclass (§2.2 and §4 of the paper).
//!
//! A **distributed language** `L` is a family of input-output
//! configurations `(G, (x, y))`. A language defines a *construction task*
//! (given `(G, x, id)`, produce `y` with `(G,(x,y)) ∈ L`) and a *decision
//! task* (given `(G,(x,y), id)`, accept at every node iff `(G,(x,y)) ∈ L`).
//!
//! The class **LCL** (§4, after [Naor–Stockmeyer]) consists of the languages
//! defined by excluding a finite collection `Bad(L)` of balls of some
//! constant radius `t`: a configuration is in `L` iff *no* node's radius-`t`
//! ball (with inputs and outputs) is bad. The `f`-resilient relaxation of
//! Definition 1 — "at most `f` bad balls" — and the ε-slack relaxation are
//! built on top of this trait in [`crate::relaxation`].

use crate::config::IoConfig;
use rlnc_graph::NodeId;

/// A distributed language: a predicate on input-output configurations.
///
/// Membership never depends on node identities (the paper's languages are
/// identity-free by definition).
pub trait DistributedLanguage: Sync {
    /// Returns `true` if the configuration belongs to the language.
    fn contains(&self, io: &IoConfig<'_>) -> bool;

    /// Human-readable name used in experiment tables.
    fn name(&self) -> String {
        std::any::type_name::<Self>().rsplit("::").next().unwrap_or("language").to_string()
    }
}

/// A locally checkable labelling (LCL) language: membership is the absence
/// of "bad balls" of constant radius.
pub trait LclLanguage: Sync {
    /// The checking radius `t` (the maximum radius of the excluded balls).
    fn radius(&self) -> u32;

    /// Returns `true` if the radius-`t` ball centered at `v` (with its
    /// inputs and outputs) belongs to `Bad(L)`.
    fn is_bad_ball(&self, io: &IoConfig<'_>, v: NodeId) -> bool;

    /// Human-readable name used in experiment tables.
    fn name(&self) -> String {
        std::any::type_name::<Self>().rsplit("::").next().unwrap_or("lcl").to_string()
    }
}

/// Every LCL language is a distributed language: membership is "no bad
/// ball anywhere".
impl<L: LclLanguage> DistributedLanguage for L {
    fn contains(&self, io: &IoConfig<'_>) -> bool {
        io.graph.nodes().all(|v| !self.is_bad_ball(io, v))
    }

    fn name(&self) -> String {
        LclLanguage::name(self)
    }
}

/// The nodes whose balls are bad — the set `F(G)` from the proof of
/// Corollary 1.
pub fn bad_nodes<L: LclLanguage + ?Sized>(language: &L, io: &IoConfig<'_>) -> Vec<NodeId> {
    io.graph
        .nodes()
        .filter(|&v| language.is_bad_ball(io, v))
        .collect()
}

/// Number of bad balls `|F(G)|` in the configuration.
pub fn bad_ball_count<L: LclLanguage + ?Sized>(language: &L, io: &IoConfig<'_>) -> usize {
    io.graph
        .nodes()
        .filter(|&v| language.is_bad_ball(io, v))
        .count()
}

/// A language defined by a closure over whole configurations (used for
/// global, non-local languages such as `majority` or `amos`).
pub struct FnLanguage<F> {
    name: String,
    predicate: F,
}

impl<F: Fn(&IoConfig<'_>) -> bool + Sync> FnLanguage<F> {
    /// Wraps a closure as a distributed language.
    pub fn new(name: impl Into<String>, predicate: F) -> Self {
        FnLanguage {
            name: name.into(),
            predicate,
        }
    }
}

impl<F: Fn(&IoConfig<'_>) -> bool + Sync> DistributedLanguage for FnLanguage<F> {
    fn contains(&self, io: &IoConfig<'_>) -> bool {
        (self.predicate)(io)
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

/// An LCL language defined by a closure on (configuration, center) pairs.
pub struct FnLcl<F> {
    name: String,
    radius: u32,
    bad: F,
}

impl<F: Fn(&IoConfig<'_>, NodeId) -> bool + Sync> FnLcl<F> {
    /// Wraps a closure as an LCL language of the given checking radius.
    pub fn new(name: impl Into<String>, radius: u32, bad: F) -> Self {
        FnLcl {
            name: name.into(),
            radius,
            bad,
        }
    }
}

impl<F: Fn(&IoConfig<'_>, NodeId) -> bool + Sync> LclLanguage for FnLcl<F> {
    fn radius(&self) -> u32 {
        self.radius
    }

    fn is_bad_ball(&self, io: &IoConfig<'_>, v: NodeId) -> bool {
        (self.bad)(io, v)
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::{Label, Labeling};
    use rlnc_graph::generators::cycle;

    /// Toy LCL: a ball is bad when the center outputs the same value as
    /// some neighbor (i.e. proper coloring with radius 1).
    fn conflict_lcl() -> FnLcl<impl Fn(&IoConfig<'_>, NodeId) -> bool + Sync> {
        FnLcl::new("conflict", 1, |io: &IoConfig<'_>, v: NodeId| {
            io.graph
                .neighbor_ids(v)
                .any(|w| io.output.get(w) == io.output.get(v))
        })
    }

    #[test]
    fn lcl_membership_is_no_bad_ball() {
        let g = cycle(6);
        let x = Labeling::empty(6);
        let proper = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0 % 2)));
        let lang = conflict_lcl();
        let io = IoConfig::new(&g, &x, &proper);
        assert!(lang.contains(&io));
        assert_eq!(bad_ball_count(&lang, &io), 0);

        let mut broken = proper.clone();
        broken.set(NodeId(0), Label::from_u64(1)); // same as both neighbors of 0? neighbor 1 has 1.
        let io_bad = IoConfig::new(&g, &x, &broken);
        assert!(!lang.contains(&io_bad));
        let bad = bad_nodes(&lang, &io_bad);
        assert!(bad.contains(&NodeId(0)));
        assert!(bad.contains(&NodeId(1)));
        assert!(bad.contains(&NodeId(5)));
        assert_eq!(bad_ball_count(&lang, &io_bad), 3);
    }

    #[test]
    fn fn_language_wraps_global_predicates() {
        let g = cycle(5);
        let x = Labeling::empty(5);
        let y = Labeling::from_fn(&g, |v| Label::from_bool(v.0 == 2));
        let at_most_one = FnLanguage::new("amos-like", |io: &IoConfig<'_>| {
            io.graph.nodes().filter(|&v| io.output.get(v).as_bool()).count() <= 1
        });
        let io = IoConfig::new(&g, &x, &y);
        assert!(at_most_one.contains(&io));
        assert_eq!(at_most_one.name(), "amos-like");
        let y2 = Labeling::from_fn(&g, |_| Label::from_bool(true));
        let io2 = IoConfig::new(&g, &x, &y2);
        assert!(!at_most_one.contains(&io2));
    }

    #[test]
    fn lcl_names_and_radius() {
        let lang = conflict_lcl();
        assert_eq!(LclLanguage::name(&lang), "conflict");
        assert_eq!(DistributedLanguage::name(&lang), "conflict");
        assert_eq!(lang.radius(), 1);
    }
}

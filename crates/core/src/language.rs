//! Distributed languages and the LCL subclass (§2.2 and §4 of the paper).
//!
//! A **distributed language** `L` is a family of input-output
//! configurations `(G, (x, y))`. A language defines a *construction task*
//! (given `(G, x, id)`, produce `y` with `(G,(x,y)) ∈ L`) and a *decision
//! task* (given `(G,(x,y), id)`, accept at every node iff `(G,(x,y)) ∈ L`).
//!
//! The class **LCL** (§4, after [Naor–Stockmeyer]) consists of the languages
//! defined by excluding a finite collection `Bad(L)` of balls of some
//! constant radius `t`: a configuration is in `L` iff *no* node's radius-`t`
//! ball (with inputs and outputs) is bad. The `f`-resilient relaxation of
//! Definition 1 — "at most `f` bad balls" — and the ε-slack relaxation are
//! built on top of this trait in [`crate::relaxation`].

use crate::config::IoConfig;
use crate::labels::Labeling;
use crate::view::View;
use rlnc_graph::NodeId;
use std::cell::RefCell;

/// A distributed language: a predicate on input-output configurations.
///
/// Membership never depends on node identities (the paper's languages are
/// identity-free by definition).
pub trait DistributedLanguage: Sync {
    /// Returns `true` if the configuration belongs to the language.
    fn contains(&self, io: &IoConfig<'_>) -> bool;

    /// Human-readable name used in experiment tables.
    fn name(&self) -> String {
        std::any::type_name::<Self>().rsplit("::").next().unwrap_or("language").to_string()
    }
}

/// A locally checkable labelling (LCL) language: membership is the absence
/// of "bad balls" of constant radius.
pub trait LclLanguage: Sync {
    /// The checking radius `t` (the maximum radius of the excluded balls).
    fn radius(&self) -> u32;

    /// Returns `true` if the radius-`t` ball centered at `v` (with its
    /// inputs and outputs) belongs to `Bad(L)`.
    fn is_bad_ball(&self, io: &IoConfig<'_>, v: NodeId) -> bool;

    /// View-native bad-ball check: evaluates the predicate directly on a
    /// decision [`View`] of radius at least `t` (the view's center plays
    /// the role of `v`). An LCL predicate of radius `t` evaluated at the
    /// center of such a view reads only data inside the view, so this is
    /// exactly [`LclLanguage::is_bad_ball`] on the ball-restricted
    /// configuration — the generic deciders
    /// ([`crate::resilient::ResilientDecider`],
    /// [`crate::one_sided::OneSidedLclDecider`]) verdict through this hook.
    ///
    /// The default implementation falls back to the `IoConfig` path
    /// ([`is_bad_view_via_config`]) through a reusable thread-local scratch;
    /// concrete languages should override it to read the view directly so
    /// the verdict performs no heap allocation at all (every language in
    /// `rlnc-langs` does).
    ///
    /// # Panics
    /// Panics if the view carries no outputs (a construction view).
    fn is_bad_view(&self, view: &View) -> bool {
        is_bad_view_via_config(self, view)
    }

    /// Human-readable name used in experiment tables.
    fn name(&self) -> String {
        std::any::type_name::<Self>().rsplit("::").next().unwrap_or("lcl").to_string()
    }
}

thread_local! {
    /// Reusable input/output labelings for [`is_bad_view_via_config`]: the
    /// buffers grow to the largest ball seen on this thread and are then
    /// reused, so even the fallback path stops allocating per verdict.
    static VIEW_CONFIG_SCRATCH: RefCell<(Labeling, Labeling)> =
        RefCell::new((Labeling::default(), Labeling::default()));
}

/// The fallback body of [`LclLanguage::is_bad_view`]: rebuilds the view's
/// ball as a standalone input-output configuration (through a thread-local
/// reusable scratch) and evaluates [`LclLanguage::is_bad_ball`] at the
/// center. Exposed so benchmarks and equivalence tests can pin the two
/// paths against each other.
///
/// # Panics
/// Panics if the view carries no outputs.
pub fn is_bad_view_via_config<L: LclLanguage + ?Sized>(language: &L, view: &View) -> bool {
    VIEW_CONFIG_SCRATCH.with(|cell| {
        let (input, output) = &mut *cell.borrow_mut();
        view.write_inputs_to(input);
        view.write_outputs_to(output);
        let local_io = IoConfig::new(view.local_graph(), input, output);
        language.is_bad_ball(&local_io, NodeId::from_index(view.center_local()))
    })
}

/// Every LCL language is a distributed language: membership is "no bad
/// ball anywhere".
impl<L: LclLanguage> DistributedLanguage for L {
    fn contains(&self, io: &IoConfig<'_>) -> bool {
        io.graph.nodes().all(|v| !self.is_bad_ball(io, v))
    }

    fn name(&self) -> String {
        LclLanguage::name(self)
    }
}

/// The nodes whose balls are bad — the set `F(G)` from the proof of
/// Corollary 1.
pub fn bad_nodes<L: LclLanguage + ?Sized>(language: &L, io: &IoConfig<'_>) -> Vec<NodeId> {
    io.graph
        .nodes()
        .filter(|&v| language.is_bad_ball(io, v))
        .collect()
}

/// Number of bad balls `|F(G)|` in the configuration.
pub fn bad_ball_count<L: LclLanguage + ?Sized>(language: &L, io: &IoConfig<'_>) -> usize {
    io.graph
        .nodes()
        .filter(|&v| language.is_bad_ball(io, v))
        .count()
}

/// A language defined by a closure over whole configurations (used for
/// global, non-local languages such as `majority` or `amos`).
pub struct FnLanguage<F> {
    name: String,
    predicate: F,
}

impl<F: Fn(&IoConfig<'_>) -> bool + Sync> FnLanguage<F> {
    /// Wraps a closure as a distributed language.
    pub fn new(name: impl Into<String>, predicate: F) -> Self {
        FnLanguage {
            name: name.into(),
            predicate,
        }
    }
}

impl<F: Fn(&IoConfig<'_>) -> bool + Sync> DistributedLanguage for FnLanguage<F> {
    fn contains(&self, io: &IoConfig<'_>) -> bool {
        (self.predicate)(io)
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

/// An LCL language defined by a closure on (configuration, center) pairs.
pub struct FnLcl<F> {
    name: String,
    radius: u32,
    bad: F,
}

impl<F: Fn(&IoConfig<'_>, NodeId) -> bool + Sync> FnLcl<F> {
    /// Wraps a closure as an LCL language of the given checking radius.
    pub fn new(name: impl Into<String>, radius: u32, bad: F) -> Self {
        FnLcl {
            name: name.into(),
            radius,
            bad,
        }
    }
}

impl<F: Fn(&IoConfig<'_>, NodeId) -> bool + Sync> LclLanguage for FnLcl<F> {
    fn radius(&self) -> u32 {
        self.radius
    }

    fn is_bad_ball(&self, io: &IoConfig<'_>, v: NodeId) -> bool {
        (self.bad)(io, v)
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::{Label, Labeling};
    use rlnc_graph::generators::cycle;

    /// Toy LCL: a ball is bad when the center outputs the same value as
    /// some neighbor (i.e. proper coloring with radius 1).
    fn conflict_lcl() -> FnLcl<impl Fn(&IoConfig<'_>, NodeId) -> bool + Sync> {
        FnLcl::new("conflict", 1, |io: &IoConfig<'_>, v: NodeId| {
            io.graph
                .neighbor_ids(v)
                .any(|w| io.output.get(w) == io.output.get(v))
        })
    }

    #[test]
    fn lcl_membership_is_no_bad_ball() {
        let g = cycle(6);
        let x = Labeling::empty(6);
        let proper = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0 % 2)));
        let lang = conflict_lcl();
        let io = IoConfig::new(&g, &x, &proper);
        assert!(lang.contains(&io));
        assert_eq!(bad_ball_count(&lang, &io), 0);

        let mut broken = proper.clone();
        broken.set(NodeId(0), Label::from_u64(1)); // same as both neighbors of 0? neighbor 1 has 1.
        let io_bad = IoConfig::new(&g, &x, &broken);
        assert!(!lang.contains(&io_bad));
        let bad = bad_nodes(&lang, &io_bad);
        assert!(bad.contains(&NodeId(0)));
        assert!(bad.contains(&NodeId(1)));
        assert!(bad.contains(&NodeId(5)));
        assert_eq!(bad_ball_count(&lang, &io_bad), 3);
    }

    #[test]
    fn fn_language_wraps_global_predicates() {
        let g = cycle(5);
        let x = Labeling::empty(5);
        let y = Labeling::from_fn(&g, |v| Label::from_bool(v.0 == 2));
        let at_most_one = FnLanguage::new("amos-like", |io: &IoConfig<'_>| {
            io.graph.nodes().filter(|&v| io.output.get(v).as_bool()).count() <= 1
        });
        let io = IoConfig::new(&g, &x, &y);
        assert!(at_most_one.contains(&io));
        assert_eq!(at_most_one.name(), "amos-like");
        let y2 = Labeling::from_fn(&g, |_| Label::from_bool(true));
        let io2 = IoConfig::new(&g, &x, &y2);
        assert!(!at_most_one.contains(&io2));
    }

    #[test]
    fn default_is_bad_view_matches_is_bad_ball() {
        use crate::view::View;
        use rlnc_graph::IdAssignment;
        let g = cycle(8);
        let x = Labeling::empty(8);
        let mut y = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0 % 2)));
        y.set(NodeId(3), Label::from_u64(0)); // conflicts with 2 and 4
        let ids = IdAssignment::consecutive(&g);
        let io = IoConfig::new(&g, &x, &y);
        let lang = conflict_lcl();
        for v in g.nodes() {
            // At the language radius and one beyond: both the default hook
            // and the explicit fallback agree with the full-configuration
            // predicate.
            for radius in [1u32, 2] {
                let view = View::collect_io(&io, &ids, v, radius);
                assert_eq!(lang.is_bad_view(&view), lang.is_bad_ball(&io, v), "node {v:?}");
                assert_eq!(
                    is_bad_view_via_config(&lang, &view),
                    lang.is_bad_ball(&io, v),
                    "fallback at node {v:?}"
                );
            }
        }
    }

    #[test]
    fn lcl_names_and_radius() {
        let lang = conflict_lcl();
        assert_eq!(LclLanguage::name(&lang), "conflict");
        assert_eq!(DistributedLanguage::name(&lang), "conflict");
        assert_eq!(lang.radius(), 1);
    }
}

//! Relaxations of LCL languages: `ε`-slack and `f`-resilient (§1.1 and §4).
//!
//! * The **ε-slack relaxation** tolerates that an ε-fraction of the nodes
//!   output values violating the specification: `(G,(x,y))` belongs to the
//!   relaxation iff the number of bad balls is at most `ε · n`. The paper
//!   shows randomization *helps* for this relaxation (a zero-round random
//!   coloring achieves it with constant probability, no deterministic
//!   constant-round algorithm does).
//! * The **f-resilient relaxation** `L_f` (Definition 1) tolerates at most
//!   `f` bad balls, a constant independent of `n`. The paper's Corollary 1
//!   shows randomization does *not* help for this relaxation, because `L_f`
//!   is in BPLD (see [`crate::resilient`]) and Theorem 1 applies.
//!
//! Neither relaxation of a non-trivial LCL is itself locally checkable:
//! counting bad balls against a global threshold is a global property. They
//! are therefore exposed as [`DistributedLanguage`]s (global predicates),
//! not as [`LclLanguage`]s.

use crate::config::IoConfig;
use crate::language::{bad_ball_count, DistributedLanguage, LclLanguage};

/// The `f`-resilient relaxation `L_f` of an LCL language `L`: at most `f`
/// balls of `(G,(x,y))` belong to `Bad(L)`.
#[derive(Debug, Clone)]
pub struct FResilient<L> {
    inner: L,
    f: usize,
}

impl<L: LclLanguage> FResilient<L> {
    /// Wraps an LCL language into its `f`-resilient relaxation.
    pub fn new(inner: L, f: usize) -> Self {
        FResilient { inner, f }
    }

    /// The tolerated number of bad balls.
    pub fn tolerance(&self) -> usize {
        self.f
    }

    /// The underlying LCL language.
    pub fn inner(&self) -> &L {
        &self.inner
    }

    /// Number of bad balls in a configuration (the quantity compared
    /// against `f`).
    pub fn bad_count(&self, io: &IoConfig<'_>) -> usize {
        bad_ball_count(&self.inner, io)
    }
}

impl<L: LclLanguage> DistributedLanguage for FResilient<L> {
    fn contains(&self, io: &IoConfig<'_>) -> bool {
        // Early-exit count: stop as soon as f + 1 bad balls are seen.
        let mut bad = 0usize;
        for v in io.graph.nodes() {
            if self.inner.is_bad_ball(io, v) {
                bad += 1;
                if bad > self.f {
                    return false;
                }
            }
        }
        true
    }

    fn name(&self) -> String {
        format!("{}-resilient({})", self.f, LclLanguage::name(&self.inner))
    }
}

/// The ε-slack relaxation of an LCL language `L`: at most `ε · n` bad balls.
#[derive(Debug, Clone)]
pub struct EpsilonSlack<L> {
    inner: L,
    epsilon: f64,
}

impl<L: LclLanguage> EpsilonSlack<L> {
    /// Wraps an LCL language into its ε-slack relaxation.
    ///
    /// # Panics
    /// Panics if `epsilon` is outside `[0, 1]`.
    pub fn new(inner: L, epsilon: f64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must lie in [0, 1]");
        EpsilonSlack { inner, epsilon }
    }

    /// The tolerated fraction of bad balls.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The underlying LCL language.
    pub fn inner(&self) -> &L {
        &self.inner
    }

    /// The absolute number of bad balls tolerated on an `n`-node graph.
    pub fn tolerance_for(&self, n: usize) -> usize {
        (self.epsilon * n as f64).floor() as usize
    }

    /// The fraction of bad balls in a configuration.
    pub fn bad_fraction(&self, io: &IoConfig<'_>) -> f64 {
        if io.node_count() == 0 {
            return 0.0;
        }
        bad_ball_count(&self.inner, io) as f64 / io.node_count() as f64
    }
}

impl<L: LclLanguage> DistributedLanguage for EpsilonSlack<L> {
    fn contains(&self, io: &IoConfig<'_>) -> bool {
        bad_ball_count(&self.inner, io) <= self.tolerance_for(io.node_count())
    }

    fn name(&self) -> String {
        format!("{:.2}-slack({})", self.epsilon, LclLanguage::name(&self.inner))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::{Label, Labeling};
    use crate::language::FnLcl;
    use rlnc_graph::generators::cycle;
    use rlnc_graph::NodeId;

    fn coloring_lcl() -> FnLcl<impl Fn(&IoConfig<'_>, NodeId) -> bool + Sync> {
        FnLcl::new("proper-coloring", 1, |io: &IoConfig<'_>, v: NodeId| {
            io.graph
                .neighbor_ids(v)
                .any(|w| io.output.get(w) == io.output.get(v))
        })
    }

    /// A 2-coloring of C_12 with a block of `bad_pairs` monochromatic edges
    /// planted at the start.
    fn coloring_with_conflicts(n: usize, monochrome_prefix: usize) -> (rlnc_graph::Graph, Labeling, Labeling) {
        let g = cycle(n);
        let x = Labeling::empty(n);
        let y = Labeling::from_fn(&g, |v| {
            if (v.0 as usize) < monochrome_prefix {
                Label::from_u64(1)
            } else {
                Label::from_u64(u64::from(v.0 % 2))
            }
        });
        (g, x, y)
    }

    #[test]
    fn proper_coloring_is_in_every_relaxation() {
        let (g, x, y) = coloring_with_conflicts(12, 0);
        let io = IoConfig::new(&g, &x, &y);
        let lang = coloring_lcl();
        assert!(lang.contains(&io));
        assert!(FResilient::new(coloring_lcl(), 0).contains(&io));
        assert!(EpsilonSlack::new(coloring_lcl(), 0.0).contains(&io));
    }

    #[test]
    fn f_resilient_counts_bad_balls() {
        // Prefix of 4 nodes all colored 1 on C_12: nodes 0..=4 have a
        // monochromatic neighbor (node 4's neighbor 3 is colored 1; node 0's
        // neighbor 11 is colored 1 since 11 % 2 = 1), so the bad-ball count
        // is computed once and compared against f.
        let (g, x, y) = coloring_with_conflicts(12, 4);
        let io = IoConfig::new(&g, &x, &y);
        let lang = coloring_lcl();
        let bad = crate::language::bad_ball_count(&lang, &io);
        assert!(bad >= 4);
        assert!(!FResilient::new(coloring_lcl(), bad - 1).contains(&io));
        assert!(FResilient::new(coloring_lcl(), bad).contains(&io));
        assert!(FResilient::new(coloring_lcl(), bad + 3).contains(&io));
        let relaxed = FResilient::new(coloring_lcl(), bad);
        assert_eq!(relaxed.bad_count(&io), bad);
        assert_eq!(relaxed.tolerance(), bad);
        assert!(relaxed.name().contains("resilient"));
    }

    #[test]
    fn epsilon_slack_scales_with_n() {
        let (g, x, y) = coloring_with_conflicts(20, 4);
        let io = IoConfig::new(&g, &x, &y);
        let lang = coloring_lcl();
        let bad = crate::language::bad_ball_count(&lang, &io);
        let frac = bad as f64 / 20.0;
        let slack_tight = EpsilonSlack::new(coloring_lcl(), frac - 0.05);
        let slack_loose = EpsilonSlack::new(coloring_lcl(), frac + 0.05);
        assert!(!slack_tight.contains(&io));
        assert!(slack_loose.contains(&io));
        assert!((slack_loose.bad_fraction(&io) - frac).abs() < 1e-9);
        assert_eq!(slack_loose.tolerance_for(100), ((frac + 0.05) * 100.0).floor() as usize);
        assert!(slack_loose.name().contains("slack"));
    }

    #[test]
    fn relaxation_monotonicity() {
        // L ⊆ L_f ⊆ L_{f+1} and L_f ⊆ (f/n)-slack for every configuration.
        for prefix in 0..6 {
            let (g, x, y) = coloring_with_conflicts(16, prefix);
            let io = IoConfig::new(&g, &x, &y);
            let base = coloring_lcl();
            for f in 0..6 {
                let lf = FResilient::new(coloring_lcl(), f);
                let lf1 = FResilient::new(coloring_lcl(), f + 1);
                if base.contains(&io) {
                    assert!(lf.contains(&io));
                }
                if lf.contains(&io) {
                    assert!(lf1.contains(&io));
                    let eps = EpsilonSlack::new(coloring_lcl(), f as f64 / 16.0);
                    assert!(eps.contains(&io));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn epsilon_out_of_range_rejected() {
        let _ = EpsilonSlack::new(coloring_lcl(), 1.5);
    }
}

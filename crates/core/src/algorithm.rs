//! Algorithm traits: deterministic and randomized Monte-Carlo LOCAL
//! algorithms, and the shared-coin abstraction.
//!
//! A `t`-round LOCAL algorithm is modeled as a function of the radius-`t`
//! [`View`] of each node (§2.1 of the paper establishes the equivalence with
//! the message-passing formulation; `rlnc-core::rounds` tests it). A
//! randomized Monte-Carlo algorithm additionally has access, at every node,
//! to a *private source of independent random bits* which "may well be
//! exchanged between nodes during the execution": concretely, the output at
//! `v` may read the coin stream of any node inside `v`'s view, and two
//! nodes reading the coins of a common neighbor see the *same* bits. The
//! [`Coins`] type implements exactly that semantics by deriving one
//! deterministic stream per (execution, node) pair.

use crate::labels::Label;
use crate::view::View;
use rand_chacha::ChaCha8Rng;
use rlnc_par::rng::SeedSequence;
use rlnc_graph::NodeId;

/// Per-execution source of per-node private coins.
///
/// `Coins::for_node(v)` always returns the same stream for the same
/// execution and node, no matter which simulated node asks for it — the
/// shared-randomness semantics of the LOCAL model.
#[derive(Debug, Clone, Copy)]
pub struct Coins {
    seed: SeedSequence,
}

impl Coins {
    /// Creates the coin source of one execution (one Monte-Carlo trial).
    pub fn new(seed: SeedSequence) -> Self {
        Coins { seed }
    }

    /// The private coin stream of node `v`.
    pub fn for_node(&self, v: NodeId) -> ChaCha8Rng {
        self.seed.child(u64::from(v.0)).rng()
    }

    /// The private coin stream of the node at local index `i` of a view.
    pub fn for_view_node(&self, view: &View, i: usize) -> ChaCha8Rng {
        self.for_node(view.host_node(i))
    }

    /// The coin stream of the view's center.
    pub fn for_center(&self, view: &View) -> ChaCha8Rng {
        self.for_node(view.host_node(view.center_local()))
    }
}

/// A deterministic `t`-round LOCAL construction algorithm.
pub trait LocalAlgorithm: Sync {
    /// Number of communication rounds (the radius of the views it reads).
    fn radius(&self) -> u32;

    /// Output label of the node at the center of `view`.
    fn output(&self, view: &View) -> Label;

    /// Human-readable name used in experiment tables.
    fn name(&self) -> String {
        std::any::type_name::<Self>().rsplit("::").next().unwrap_or("algorithm").to_string()
    }
}

/// A randomized Monte-Carlo `t`-round LOCAL construction algorithm.
pub trait RandomizedLocalAlgorithm: Sync {
    /// Number of communication rounds.
    fn radius(&self) -> u32;

    /// Output label of the node at the center of `view`, with access to the
    /// private coins of every node in the view.
    fn output(&self, view: &View, coins: &Coins) -> Label;

    /// Human-readable name used in experiment tables.
    fn name(&self) -> String {
        std::any::type_name::<Self>().rsplit("::").next().unwrap_or("algorithm").to_string()
    }
}

/// Every deterministic algorithm is trivially a randomized one that ignores
/// its coins (`LD ⊆ BPLD` at the algorithm level).
impl<A: LocalAlgorithm> RandomizedLocalAlgorithm for A {
    fn radius(&self) -> u32 {
        LocalAlgorithm::radius(self)
    }

    fn output(&self, view: &View, _coins: &Coins) -> Label {
        LocalAlgorithm::output(self, view)
    }

    fn name(&self) -> String {
        LocalAlgorithm::name(self)
    }
}

/// A deterministic algorithm defined by a closure (convenient in tests and
/// for small ad-hoc algorithms).
pub struct FnAlgorithm<F> {
    radius: u32,
    name: String,
    f: F,
}

impl<F: Fn(&View) -> Label + Sync> FnAlgorithm<F> {
    /// Wraps a closure as a `radius`-round deterministic algorithm.
    pub fn new(radius: u32, name: impl Into<String>, f: F) -> Self {
        FnAlgorithm {
            radius,
            name: name.into(),
            f,
        }
    }
}

impl<F: Fn(&View) -> Label + Sync> LocalAlgorithm for FnAlgorithm<F> {
    fn radius(&self) -> u32 {
        self.radius
    }

    fn output(&self, view: &View) -> Label {
        (self.f)(view)
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

/// A randomized algorithm defined by a closure.
pub struct FnRandomizedAlgorithm<F> {
    radius: u32,
    name: String,
    f: F,
}

impl<F: Fn(&View, &Coins) -> Label + Sync> FnRandomizedAlgorithm<F> {
    /// Wraps a closure as a `radius`-round randomized algorithm.
    pub fn new(radius: u32, name: impl Into<String>, f: F) -> Self {
        FnRandomizedAlgorithm {
            radius,
            name: name.into(),
            f,
        }
    }
}

impl<F: Fn(&View, &Coins) -> Label + Sync> RandomizedLocalAlgorithm for FnRandomizedAlgorithm<F> {
    fn radius(&self) -> u32 {
        self.radius
    }

    fn output(&self, view: &View, coins: &Coins) -> Label {
        (self.f)(view, coins)
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Instance;
    use crate::labels::Labeling;
    use rand::Rng;
    use rlnc_graph::generators::cycle;
    use rlnc_graph::IdAssignment;

    #[test]
    fn coins_are_per_node_and_reproducible() {
        let coins = Coins::new(SeedSequence::new(5).child(0));
        let mut a1 = coins.for_node(NodeId(3));
        let mut a2 = coins.for_node(NodeId(3));
        let mut b = coins.for_node(NodeId(4));
        let x1: u64 = a1.random();
        let x2: u64 = a2.random();
        let y: u64 = b.random();
        assert_eq!(x1, x2);
        assert_ne!(x1, y);
    }

    #[test]
    fn different_executions_have_different_coins() {
        let c1 = Coins::new(SeedSequence::new(5).child(0));
        let c2 = Coins::new(SeedSequence::new(5).child(1));
        let x: u64 = c1.for_node(NodeId(0)).random();
        let y: u64 = c2.for_node(NodeId(0)).random();
        assert_ne!(x, y);
    }

    #[test]
    fn fn_algorithm_wraps_closures() {
        let g = cycle(5);
        let x = Labeling::empty(5);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let algo = FnAlgorithm::new(0, "id-parity", |view: &View| {
            Label::from_u64(view.center_id() % 2)
        });
        assert_eq!(LocalAlgorithm::radius(&algo), 0);
        assert_eq!(LocalAlgorithm::name(&algo), "id-parity");
        let view = View::collect(&inst, NodeId(2), 0);
        assert_eq!(LocalAlgorithm::output(&algo, &view).as_u64(), 1);
        // Blanket impl: usable as a randomized algorithm too.
        let coins = Coins::new(SeedSequence::new(1));
        assert_eq!(
            RandomizedLocalAlgorithm::output(&algo, &view, &coins).as_u64(),
            1
        );
    }

    #[test]
    fn fn_randomized_algorithm_uses_coins() {
        let g = cycle(5);
        let x = Labeling::empty(5);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let algo = FnRandomizedAlgorithm::new(0, "coin-flip", |view: &View, coins: &Coins| {
            let mut rng = coins.for_center(view);
            Label::from_bool(rng.random_bool(0.5))
        });
        let view = View::collect(&inst, NodeId(0), 0);
        let c1 = Coins::new(SeedSequence::new(9).child(0));
        let out1 = algo.output(&view, &c1);
        let out2 = algo.output(&view, &c1);
        assert_eq!(out1, out2, "same coins, same output");
        assert_eq!(algo.name(), "coin-flip");
        assert_eq!(algo.radius(), 0);
    }
}

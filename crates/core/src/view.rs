//! The radius-`t` view of a node: everything a `t`-round LOCAL algorithm
//! may depend on.
//!
//! Per §2.1 of the paper, a `t`-round algorithm at node `v` can be viewed
//! as a function of the ball `B_G(v, t)` together with the inputs and
//! identities of the nodes in that ball (and, for decision algorithms, the
//! outputs as well). [`View`] materializes exactly that object. The center
//! is always local index `0`.

use crate::config::{Instance, IoConfig};
use crate::labels::{Label, Labeling};
use rlnc_graph::arena::BallArena;
use rlnc_graph::ball::{Ball, BallSignature};
use rlnc_graph::{Graph, IdAssignment, NodeId};
use std::sync::Arc;

/// The information visible to one node after `t` rounds of communication.
#[derive(Debug, Clone)]
pub struct View {
    /// The ball `B_G(v, t)` (local indices; center is local index 0).
    pub ball: Ball,
    /// The center node, as a host-graph index.
    pub center: NodeId,
    /// Radius of the view.
    pub radius: u32,
    ids: Vec<u64>,
    inputs: Vec<Label>,
    outputs: Option<Vec<Label>>,
    /// Degree of the center in the host graph (known even at radius 0: a
    /// node always knows its own port count in the LOCAL model).
    host_degree: usize,
    /// Packed-u64 SoA mirror of `inputs` (one [`Label::packed_key`] per
    /// local index), valid when every input fits a key. The structure-of-
    /// arrays layout behind the language layer's branchless verdict
    /// kernels: one contiguous `u64` lane instead of pointer-chased label
    /// bytes.
    soa_inputs: SoaLane,
    /// Packed-u64 SoA mirror of the output labels, maintained through
    /// [`View::refresh_outputs`] without steady-state allocation.
    soa_outputs: SoaLane,
}

/// Storage behind one packed-u64 SoA label lane of a [`View`].
///
/// Batch-collected radius-1 views slice a **single flat lane** packed once
/// per [`BallArena`] pass (`Shared` — one `(offset, len)` window per view,
/// no per-view copies); views assembled in isolation, or whose labels are
/// rewritten after construction (the decision scratch's per-trial output
/// refresh), carry a private buffer (`Owned`). `None` marks views with no
/// lane at all: radius ≠ 1, or outputs not collected yet.
#[derive(Debug, Clone)]
enum SoaLane {
    /// No lane maintained.
    None,
    /// A per-view buffer; `valid` is false when some label failed to pack.
    Owned { keys: Vec<u64>, valid: bool },
    /// An `(offset, len)` window into one arena-wide flat lane.
    Shared {
        lane: Arc<Vec<u64>>,
        offset: usize,
        len: usize,
        valid: bool,
    },
}

impl SoaLane {
    fn as_slice(&self) -> Option<&[u64]> {
        match self {
            SoaLane::None => None,
            SoaLane::Owned { keys, valid } => valid.then_some(keys.as_slice()),
            SoaLane::Shared {
                lane,
                offset,
                len,
                valid,
            } => valid.then(|| &lane[*offset..*offset + *len]),
        }
    }

    /// Heap bytes attributable to *this view alone*. Shared lanes report
    /// zero here: the arena-wide lane is counted exactly once by whoever
    /// holds the view set (see [`View::shared_lane_refs`]).
    fn owned_bytes(&self) -> usize {
        match self {
            SoaLane::Owned { keys, .. } => keys.len() * std::mem::size_of::<u64>(),
            _ => 0,
        }
    }

    /// `(address, bytes)` of the whole shared flat lane, when this lane is
    /// a window into one.
    fn shared_ref(&self) -> Option<(usize, u64)> {
        match self {
            SoaLane::Shared { lane, .. } => Some((
                Arc::as_ptr(lane) as usize,
                (lane.len() * std::mem::size_of::<u64>()) as u64,
            )),
            _ => None,
        }
    }

    /// Detaches to owned storage of exactly `len` keys (shared windows are
    /// abandoned, not written through) and returns the key buffer plus the
    /// validity slot, ready to be rewritten. Allocation-free once owned.
    fn owned_parts(&mut self, len: usize) -> (&mut [u64], &mut bool) {
        if !matches!(self, SoaLane::Owned { .. }) {
            *self = SoaLane::Owned {
                keys: vec![0; len],
                valid: false,
            };
        }
        match self {
            SoaLane::Owned { keys, valid } => {
                keys.resize(len, 0);
                (keys.as_mut_slice(), valid)
            }
            _ => unreachable!("just made owned"),
        }
    }
}

/// Packs labels into their SoA key array; `valid` is false when any
/// label is too long to pack (the array then keeps a placeholder so
/// lengths stay in sync, but accessors hide it).
fn pack_label_keys(labels: &[Label]) -> (Vec<u64>, bool) {
    let mut keys = Vec::with_capacity(labels.len());
    let mut valid = true;
    for label in labels {
        match label.packed_key() {
            Some(key) => keys.push(key),
            None => {
                keys.push(0);
                valid = false;
            }
        }
    }
    (keys, valid)
}

/// Reusable per-host-node key buffer behind [`View::refresh_outputs_all`]
/// and [`View::refresh_outputs_from`]: one [`Label::packed_key`] per host
/// node per labeling, gathered by every refreshed view, instead of one
/// pack per ball membership. Allocation-free after warm-up for a fixed
/// host size.
#[derive(Debug, Clone, Default)]
pub struct HostLaneScratch {
    /// Packed key per host node (zero placeholder when unpackable).
    keys: Vec<u64>,
    /// Whether each host node's label packed.
    ok: Vec<bool>,
}

impl HostLaneScratch {
    /// An empty scratch; [`HostLaneScratch::pack`] sizes it.
    pub fn new() -> Self {
        HostLaneScratch::default()
    }

    /// Packs every label of `output` once, ready for per-view gathering.
    pub fn pack(&mut self, output: &Labeling) {
        let n = output.len();
        self.keys.clear();
        self.keys.resize(n, 0);
        self.ok.clear();
        self.ok.resize(n, false);
        for i in 0..n {
            if let Some(key) = output.get(NodeId::from_index(i)).packed_key() {
                self.keys[i] = key;
                self.ok[i] = true;
            }
        }
    }
}

impl View {
    /// Collects the view of node `v` in a construction instance
    /// (graph + inputs + identities; no outputs yet).
    pub fn collect(instance: &Instance<'_>, v: NodeId, radius: u32) -> View {
        let ball = Ball::extract(instance.graph, v, radius);
        let ids = ball.members.iter().map(|&w| instance.ids.id(w)).collect();
        let inputs = ball
            .members
            .iter()
            .map(|&w| instance.input.get(w).clone())
            .collect();
        let host_degree = instance.graph.degree(v);
        View::from_parts(ball, v, radius, ids, inputs, None, host_degree)
    }

    /// Collects the view of node `v` in an input-output configuration with
    /// identities (what a decision algorithm sees).
    pub fn collect_io(io: &IoConfig<'_>, ids: &IdAssignment, v: NodeId, radius: u32) -> View {
        let ball = Ball::extract(io.graph, v, radius);
        let id_vec = ball.members.iter().map(|&w| ids.id(w)).collect();
        let inputs = ball.members.iter().map(|&w| io.input.get(w).clone()).collect();
        let outputs = ball
            .members
            .iter()
            .map(|&w| io.output.get(w).clone())
            .collect();
        let host_degree = io.graph.degree(v);
        View::from_parts(ball, v, radius, id_vec, inputs, Some(outputs), host_degree)
    }

    /// Collects the views of **every** node of a construction instance in
    /// one batched pass.
    ///
    /// Ball extraction runs through a single
    /// [`BallArena`] (one shared bounded-BFS
    /// scratch, flat member/distance/offset arrays), so this is the fast
    /// path for Monte-Carlo loops that reuse the same instance across many
    /// trials: collect once, evaluate per trial. The result is
    /// bit-identical to calling [`View::collect`] per node.
    pub fn collect_all(instance: &Instance<'_>, radius: u32) -> Vec<View> {
        Self::collect_all_inner(instance.graph, instance.input, instance.ids, None, radius)
    }

    /// Collects the decision views (with outputs) of every node of an
    /// input-output configuration in one batched pass; the batched
    /// counterpart of [`View::collect_io`], bit-identical per node.
    pub fn collect_all_io(io: &IoConfig<'_>, ids: &IdAssignment, radius: u32) -> Vec<View> {
        Self::collect_all_inner(io.graph, io.input, ids, Some(io.output), radius)
    }

    /// Shared body of the batched collectors: one arena pass, one view per
    /// node, outputs gathered when present.
    ///
    /// Radius-1 collections also pack the SoA label lanes here — **one
    /// flat lane per labeling**, built by a single
    /// [`BallArena::pack_flat_lane`] pass (one [`Label::packed_key`] per
    /// host node) and shared by every view as an `(offset, len)` window —
    /// instead of one private per-view copy packed per ball member.
    fn collect_all_inner(
        graph: &Graph,
        input: &Labeling,
        ids: &IdAssignment,
        output: Option<&Labeling>,
        radius: u32,
    ) -> Vec<View> {
        let arena = BallArena::extract_all(graph, radius);
        let pack = |labels: &Labeling| {
            let (lane, valid) = arena.pack_flat_lane(|w| labels.get(w).packed_key());
            (Arc::new(lane), valid)
        };
        let input_lane = (radius == 1).then(|| pack(input));
        let output_lane = match (radius, output) {
            (1, Some(out)) => Some(pack(out)),
            _ => None,
        };
        let lane_bytes = |lane: &Option<(Arc<Vec<u64>>, bool)>| {
            lane.as_ref()
                .map_or(0, |(l, _)| (l.len() * std::mem::size_of::<u64>()) as u64)
        };
        let resident = lane_bytes(&input_lane) + lane_bytes(&output_lane);
        if resident > 0 {
            // The working-set gauge counts each flat lane exactly once —
            // never once per view.
            arena.record_resident_lanes(resident);
        }
        (0..arena.len())
            .map(|i| {
                let v = NodeId::from_index(i);
                let members = arena.members(i);
                let id_vec = members.iter().map(|&w| ids.id(w)).collect();
                let inputs = members.iter().map(|&w| input.get(w).clone()).collect();
                let outputs: Option<Vec<Label>> = output
                    .map(|out| members.iter().map(|&w| out.get(w).clone()).collect());
                let range = arena.flat_range(i);
                let window = |lane: &Option<(Arc<Vec<u64>>, bool)>| match lane {
                    Some((lane, valid)) => SoaLane::Shared {
                        lane: Arc::clone(lane),
                        offset: range.start,
                        len: range.len(),
                        valid: *valid,
                    },
                    None => SoaLane::None,
                };
                View {
                    ball: arena.ball(i),
                    center: v,
                    radius,
                    soa_inputs: window(&input_lane),
                    soa_outputs: window(&output_lane),
                    ids: id_vec,
                    inputs,
                    outputs,
                    host_degree: graph.degree(v),
                }
            })
            .collect()
    }

    /// Assembles a view from pre-extracted parts — the constructor behind
    /// the batched collectors above (and available to external planners
    /// that materialize views from their own arenas).
    ///
    /// # Panics
    /// Panics if `ids` or `inputs` (or `outputs`, when present) do not have
    /// exactly one entry per ball member.
    pub fn from_parts(
        ball: Ball,
        center: NodeId,
        radius: u32,
        ids: Vec<u64>,
        inputs: Vec<Label>,
        outputs: Option<Vec<Label>>,
        host_degree: usize,
    ) -> View {
        assert_eq!(ball.len(), ids.len(), "one identity per ball member");
        assert_eq!(ball.len(), inputs.len(), "one input label per ball member");
        if let Some(outs) = &outputs {
            assert_eq!(ball.len(), outs.len(), "one output label per ball member");
        }
        // Lane maintenance is pure overhead for views no kernel reads
        // through the SoA accessors: every branchless kernel walks
        // `center_neighbor_indices()`, the radius-1 acceptance shape, so
        // wider views (e.g. the radius-2 minimality languages) skip the
        // lanes entirely — no packing on refresh, no memory growth.
        // Views assembled one at a time own their lanes; the batched
        // collectors instead window one arena-wide flat lane.
        let (soa_inputs, soa_outputs) = if radius == 1 {
            let (keys, valid) = pack_label_keys(&inputs);
            let so = match &outputs {
                Some(outs) => {
                    let (keys, valid) = pack_label_keys(outs);
                    SoaLane::Owned { keys, valid }
                }
                None => SoaLane::None,
            };
            (SoaLane::Owned { keys, valid }, so)
        } else {
            (SoaLane::None, SoaLane::None)
        };
        View {
            ball,
            center,
            radius,
            ids,
            inputs,
            outputs,
            host_degree,
            soa_inputs,
            soa_outputs,
        }
    }

    /// Overwrites this view's output labels from a host-graph labeling,
    /// following the ball membership. Turns a cached construction view into
    /// the decision view of `(G, (x, output))` without re-extracting
    /// anything — the per-trial refresh step of the engine's decision
    /// scratch.
    pub fn refresh_outputs(&mut self, output: &Labeling) {
        let lanes = self.radius == 1;
        match &mut self.outputs {
            Some(outs) => {
                if lanes {
                    let (keys, valid_slot) = self.soa_outputs.owned_parts(outs.len());
                    let mut valid = true;
                    for (i, (slot, &w)) in outs.iter_mut().zip(&self.ball.members).enumerate() {
                        slot.clone_from(output.get(w));
                        match slot.packed_key() {
                            Some(key) => keys[i] = key,
                            None => {
                                keys[i] = 0;
                                valid = false;
                            }
                        }
                    }
                    *valid_slot = valid;
                } else {
                    for (slot, &w) in outs.iter_mut().zip(&self.ball.members) {
                        slot.clone_from(output.get(w));
                    }
                }
            }
            None => {
                let outs: Vec<Label> = self
                    .ball
                    .members
                    .iter()
                    .map(|&w| output.get(w).clone())
                    .collect();
                if lanes {
                    let (keys, valid) = pack_label_keys(&outs);
                    self.soa_outputs = SoaLane::Owned { keys, valid };
                }
                self.outputs = Some(outs);
            }
        }
    }

    /// [`View::refresh_outputs`] against pre-packed host keys: byte labels
    /// are refreshed exactly as there, but the lane entries are *gathered*
    /// from `packed` — whose [`HostLaneScratch::pack`] ran once per
    /// labeling, one [`Label::packed_key`] per host node — instead of
    /// re-packed per ball member. Bit-identical to
    /// [`View::refresh_outputs`].
    ///
    /// # Panics
    /// Panics (on index) if `packed` was packed from a labeling smaller
    /// than this view's host graph.
    pub fn refresh_outputs_from(&mut self, output: &Labeling, packed: &HostLaneScratch) {
        if self.radius != 1 {
            return self.refresh_outputs(output);
        }
        match &mut self.outputs {
            Some(outs) => {
                let (keys, valid_slot) = self.soa_outputs.owned_parts(outs.len());
                let mut valid = true;
                for (i, (slot, &w)) in outs.iter_mut().zip(&self.ball.members).enumerate() {
                    slot.clone_from(output.get(w));
                    keys[i] = packed.keys[w.index()];
                    valid &= packed.ok[w.index()];
                }
                *valid_slot = valid;
            }
            None => {
                let outs: Vec<Label> = self
                    .ball
                    .members
                    .iter()
                    .map(|&w| output.get(w).clone())
                    .collect();
                let (keys, valid_slot) = self.soa_outputs.owned_parts(outs.len());
                let mut valid = true;
                for (i, &w) in self.ball.members.iter().enumerate() {
                    keys[i] = packed.keys[w.index()];
                    valid &= packed.ok[w.index()];
                }
                *valid_slot = valid;
                self.outputs = Some(outs);
            }
        }
    }

    /// Refreshes the outputs of every view from one host labeling in a
    /// single batched pass: `scratch` packs each host node's label **once**
    /// (`n` packs instead of Σ|ball| per-member packs), then every view
    /// gathers its lane entries from the scratch. Bit-identical to calling
    /// [`View::refresh_outputs`] on each view in order.
    pub fn refresh_outputs_all(
        views: &mut [View],
        output: &Labeling,
        scratch: &mut HostLaneScratch,
    ) {
        if views.iter().any(|v| v.radius == 1) {
            scratch.pack(output);
        }
        for view in views {
            view.refresh_outputs_from(output, scratch);
        }
    }

    /// Approximate heap bytes held by this view: ball membership and
    /// distances, the induced CSR adjacency, identities, and the
    /// input/output label bytes. The per-view term of the engine's
    /// `working_set_bytes` cache-behavior proxy exported by `bench-export`
    /// and the observability layer.
    ///
    /// Only *owned* SoA lane buffers count here; a shared arena-wide flat
    /// lane is not this view's memory — callers sum it exactly once via
    /// [`View::shared_lane_refs`] (counting it per view was the
    /// working-set accounting drift this split fixes).
    pub fn memory_bytes(&self) -> u64 {
        use std::mem::size_of;
        let label_bytes = |labels: &[Label]| -> usize {
            labels
                .iter()
                .map(|l| size_of::<Label>() + l.as_bytes().len())
                .sum()
        };
        let ball_graph = (self.ball.graph.node_count() + 1) * size_of::<u32>()
            + 2 * self.ball.graph.edge_count() * size_of::<u32>();
        let mut total = self.ball.members.len() * size_of::<NodeId>()
            + self.ball.distances.len() * size_of::<u32>()
            + ball_graph
            + self.ids.len() * size_of::<u64>()
            + label_bytes(&self.inputs);
        if let Some(outs) = &self.outputs {
            total += label_bytes(outs);
        }
        total += self.soa_inputs.owned_bytes() + self.soa_outputs.owned_bytes();
        total as u64
    }

    /// The arena-wide flat lanes this view windows, as `(address, bytes)`
    /// of each *whole* lane. Holders of a view set (e.g.
    /// `ExecutionPlan::working_set_bytes`) dedup by address so a lane
    /// shared by N views is counted exactly once.
    pub fn shared_lane_refs(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.soa_inputs
            .shared_ref()
            .into_iter()
            .chain(self.soa_outputs.shared_ref())
    }

    /// The packed-key SoA lane over the input labels, or `None` when the
    /// view is not radius 1 or some input is too long to pack (kernels
    /// must then take the byte-level fallback path).
    /// `keys[i] == self.input(i).packed_key().unwrap()` when present.
    pub fn soa_inputs(&self) -> Option<&[u64]> {
        self.soa_inputs.as_slice()
    }

    /// The packed-key SoA lane over the output labels, or `None` when the
    /// view is not radius 1, has no outputs yet, or some output is too
    /// long to pack. `keys[i] == self.output(i).packed_key().unwrap()`
    /// when present.
    pub fn soa_outputs(&self) -> Option<&[u64]> {
        if self.outputs.is_some() {
            self.soa_outputs.as_slice()
        } else {
            None
        }
    }

    /// Number of nodes visible in the view.
    pub fn len(&self) -> usize {
        self.ball.len()
    }

    /// Returns `true` if the view is empty (never happens for valid views).
    pub fn is_empty(&self) -> bool {
        self.ball.is_empty()
    }

    /// The ball's own graph (local indices).
    pub fn local_graph(&self) -> &Graph {
        &self.ball.graph
    }

    /// Local index of the center (always 0).
    pub fn center_local(&self) -> usize {
        0
    }

    /// Host-graph node behind local index `i`.
    pub fn host_node(&self, i: usize) -> NodeId {
        self.ball.host_node(i)
    }

    /// Identity of local node `i`.
    pub fn id(&self, i: usize) -> u64 {
        self.ids[i]
    }

    /// Identity of the center.
    pub fn center_id(&self) -> u64 {
        self.ids[0]
    }

    /// Input label of local node `i`.
    pub fn input(&self, i: usize) -> &Label {
        &self.inputs[i]
    }

    /// Output label of local node `i`.
    ///
    /// # Panics
    /// Panics if the view was collected without outputs (a construction
    /// view rather than a decision view).
    pub fn output(&self, i: usize) -> &Label {
        &self.outputs.as_ref().expect("view has no outputs")[i]
    }

    /// Returns `true` if the view carries output labels.
    pub fn has_outputs(&self) -> bool {
        self.outputs.is_some()
    }

    /// Distance of local node `i` from the center.
    pub fn distance(&self, i: usize) -> u32 {
        self.ball.distance(i)
    }

    /// Degree of the center *in the host graph*. For radius ≥ 1 this equals
    /// the center's degree inside the ball; for radius 0 it is the port
    /// count the LOCAL model still exposes to the node.
    pub fn center_degree(&self) -> usize {
        self.host_degree
    }

    /// Local indices of the center's neighbors inside the view (empty for
    /// radius-0 views).
    pub fn center_neighbors(&self) -> Vec<usize> {
        self.local_graph()
            .neighbor_ids(NodeId(0))
            .map(|w| w.index())
            .collect()
    }

    /// Iterator over the local indices of the center's neighbors — the
    /// allocation-free counterpart of [`View::center_neighbors`], for
    /// verdict hot paths.
    pub fn center_neighbor_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.local_graph().neighbor_ids(NodeId(0)).map(|w| w.index())
    }

    /// Copies this view's input labels into `out` (resized to the view's
    /// length), reusing `out`'s buffers. Together with
    /// [`View::write_outputs_to`] this is the fill step of the language
    /// layer's reusable ball-configuration scratch.
    pub fn write_inputs_to(&self, out: &mut crate::labels::Labeling) {
        out.resize_to(self.len());
        for (i, label) in self.inputs.iter().enumerate() {
            out.copy_into(NodeId::from_index(i), label);
        }
    }

    /// Copies this view's output labels into `out` (resized to the view's
    /// length), reusing `out`'s buffers.
    ///
    /// # Panics
    /// Panics if the view carries no outputs (a construction view).
    pub fn write_outputs_to(&self, out: &mut crate::labels::Labeling) {
        let outputs = self.outputs.as_ref().expect("view has no outputs");
        out.resize_to(self.len());
        for (i, label) in outputs.iter().enumerate() {
            out.copy_into(NodeId::from_index(i), label);
        }
    }

    /// Rank (0-based) of the center's identity among all identities in the
    /// view — the only identity information an order-invariant algorithm
    /// may use about the center.
    pub fn center_rank(&self) -> usize {
        let my = self.ids[0];
        self.ids.iter().filter(|&&x| x < my).count()
    }

    /// Rank of local node `i`'s identity within the view.
    pub fn rank(&self, i: usize) -> usize {
        let my = self.ids[i];
        self.ids.iter().filter(|&&x| x < my).count()
    }

    /// Canonical signature of the view: structure, distances, identity
    /// order type, and input labels (plus outputs when present). Two views
    /// with equal signatures are indistinguishable to any order-invariant
    /// algorithm.
    pub fn signature(&self) -> BallSignature {
        let order: Vec<u32> = (0..self.len()).map(|i| self.rank(i) as u32).collect();
        let mut edges: Vec<(u32, u32)> = self
            .local_graph()
            .edges()
            .map(|(u, v)| (u.0, v.0))
            .collect();
        edges.sort_unstable();
        let payloads = (0..self.len())
            .map(|i| {
                let mut p = Vec::new();
                p.push(self.inputs[i].len() as u8);
                p.extend_from_slice(self.inputs[i].as_bytes());
                if let Some(outs) = &self.outputs {
                    p.push(outs[i].len() as u8);
                    p.extend_from_slice(outs[i].as_bytes());
                }
                p
            })
            .collect();
        BallSignature {
            radius: self.radius,
            distances: (0..self.len()).map(|i| self.distance(i)).collect(),
            edges,
            id_order: order,
            payloads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::{Label, Labeling};
    use rlnc_graph::generators::{cycle, star};
    use rlnc_graph::IdAssignment;

    fn setup(n: usize) -> (Graph, Labeling, IdAssignment) {
        let g = cycle(n);
        let x = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0) % 2));
        let ids = IdAssignment::consecutive(&g);
        (g, x, ids)
    }

    #[test]
    fn view_center_is_local_zero() {
        let (g, x, ids) = setup(8);
        let inst = Instance::new(&g, &x, &ids);
        let view = View::collect(&inst, NodeId(5), 2);
        assert_eq!(view.center_local(), 0);
        assert_eq!(view.host_node(0), NodeId(5));
        assert_eq!(view.center_id(), 6);
        assert_eq!(view.len(), 5);
        assert!(!view.has_outputs());
    }

    #[test]
    fn view_exposes_inputs_and_ranks() {
        let (g, x, ids) = setup(8);
        let inst = Instance::new(&g, &x, &ids);
        let view = View::collect(&inst, NodeId(3), 1);
        assert_eq!(view.input(0).as_u64(), 1);
        // Center id 4; neighbors ids 3 and 5 -> rank 1.
        assert_eq!(view.center_rank(), 1);
        assert_eq!(view.center_degree(), 2);
        assert_eq!(view.center_neighbors().len(), 2);
    }

    #[test]
    fn radius_zero_view_knows_degree() {
        let g = star(6);
        let x = Labeling::empty(6);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let view = View::collect(&inst, NodeId(0), 0);
        assert_eq!(view.len(), 1);
        assert_eq!(view.center_degree(), 5);
        assert!(view.center_neighbors().is_empty());
    }

    #[test]
    fn io_view_exposes_outputs() {
        let (g, x, ids) = setup(6);
        let y = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0)));
        let io = IoConfig::new(&g, &x, &y);
        let view = View::collect_io(&io, &ids, NodeId(2), 1);
        assert!(view.has_outputs());
        assert_eq!(view.output(0).as_u64(), 2);
        let neighbor_outputs: Vec<u64> = view
            .center_neighbors()
            .iter()
            .map(|&i| view.output(i).as_u64())
            .collect();
        assert!(neighbor_outputs.contains(&1) && neighbor_outputs.contains(&3));
    }

    #[test]
    #[should_panic(expected = "no outputs")]
    fn construction_view_has_no_outputs() {
        let (g, x, ids) = setup(5);
        let inst = Instance::new(&g, &x, &ids);
        let view = View::collect(&inst, NodeId(0), 1);
        let _ = view.output(0);
    }

    #[test]
    fn batched_collection_matches_per_node_collection() {
        let (g, x, ids) = setup(12);
        let inst = Instance::new(&g, &x, &ids);
        for radius in [0u32, 1, 2, 4] {
            let batched = View::collect_all(&inst, radius);
            assert_eq!(batched.len(), 12);
            for v in g.nodes() {
                let reference = View::collect(&inst, v, radius);
                let ours = &batched[v.index()];
                assert_eq!(ours.ball, reference.ball);
                assert_eq!(ours.ids, reference.ids);
                assert_eq!(ours.inputs, reference.inputs);
                assert_eq!(ours.center, reference.center);
                assert_eq!(ours.center_degree(), reference.center_degree());
                assert_eq!(ours.signature(), reference.signature());
            }
        }
    }

    #[test]
    fn batched_io_collection_matches_per_node_collection() {
        let (g, x, ids) = setup(10);
        let y = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0) % 3));
        let io = IoConfig::new(&g, &x, &y);
        let batched = View::collect_all_io(&io, &ids, 2);
        for v in g.nodes() {
            let reference = View::collect_io(&io, &ids, v, 2);
            let ours = &batched[v.index()];
            assert_eq!(ours.outputs, reference.outputs);
            assert_eq!(ours.signature(), reference.signature());
        }
    }

    #[test]
    fn refresh_outputs_turns_construction_views_into_decision_views() {
        let (g, x, ids) = setup(8);
        let y = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0) + 10));
        let io = IoConfig::new(&g, &x, &y);
        let inst = Instance::new(&g, &x, &ids);
        let mut views = View::collect_all(&inst, 1);
        for view in &mut views {
            assert!(!view.has_outputs());
            view.refresh_outputs(&y);
        }
        for v in g.nodes() {
            let reference = View::collect_io(&io, &ids, v, 1);
            assert_eq!(views[v.index()].outputs, reference.outputs);
        }
        // Refreshing again with different outputs overwrites in place.
        let z = Labeling::from_fn(&g, |_| Label::from_u64(7));
        views[0].refresh_outputs(&z);
        assert_eq!(views[0].output(0).as_u64(), 7);
    }

    #[test]
    fn soa_lanes_mirror_the_labels() {
        let (g, x, ids) = setup(8);
        let inst = Instance::new(&g, &x, &ids);
        let mut view = View::collect(&inst, NodeId(3), 1);
        // Construction views have input keys but no output lane yet.
        let in_keys = view.soa_inputs().expect("small labels always pack");
        for i in 0..view.len() {
            assert_eq!(in_keys[i], view.input(i).packed_key().unwrap());
        }
        assert!(view.soa_outputs().is_none());
        // Refreshing outputs populates the output lane in lock-step.
        let y = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0) + 10));
        view.refresh_outputs(&y);
        let out_keys = view.soa_outputs().expect("small labels always pack");
        for i in 0..view.len() {
            assert_eq!(out_keys[i], view.output(i).packed_key().unwrap());
        }
        // An unpackable (8-byte) output invalidates the lane; packable
        // outputs on a later refresh restore it.
        let wide = Labeling::from_fn(&g, |_| Label::from_bytes(vec![1; 8]));
        view.refresh_outputs(&wide);
        assert!(view.soa_outputs().is_none());
        view.refresh_outputs(&y);
        assert!(view.soa_outputs().is_some());
        // memory_bytes accounts for the SoA lanes.
        let with_lanes = view.memory_bytes();
        assert!(with_lanes > 0);
        // Wider views never carry lanes: every SoA kernel walks the
        // radius-1 neighborhood, so radius ≥ 2 skips the maintenance.
        let mut wide_view = View::collect(&inst, NodeId(3), 2);
        assert!(wide_view.soa_inputs().is_none());
        wide_view.refresh_outputs(&y);
        assert!(wide_view.soa_outputs().is_none());
        assert_eq!(wide_view.output(wide_view.center_local()), y.get(NodeId(3)));
    }

    #[test]
    fn batched_radius_one_views_share_one_flat_lane() {
        let (g, x, ids) = setup(12);
        let y = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0) % 3));
        let io = IoConfig::new(&g, &x, &y);
        let views = View::collect_all_io(&io, &ids, 1);
        // Lanes mirror the labels exactly as the owned path does.
        for view in &views {
            let in_keys = view.soa_inputs().expect("inputs pack");
            let out_keys = view.soa_outputs().expect("outputs pack");
            for i in 0..view.len() {
                assert_eq!(in_keys[i], view.input(i).packed_key().unwrap());
                assert_eq!(out_keys[i], view.output(i).packed_key().unwrap());
            }
        }
        // Every view windows the same two flat lanes (same addresses)...
        let refs: Vec<Vec<(usize, u64)>> =
            views.iter().map(|v| v.shared_lane_refs().collect()).collect();
        assert_eq!(refs[0].len(), 2, "one input and one output lane");
        for r in &refs {
            assert_eq!(r, &refs[0]);
        }
        // ...whose total size is one u64 per ball membership per lane.
        let total_members: usize = views.iter().map(View::len).sum();
        let lane_bytes: u64 = refs[0].iter().map(|&(_, b)| b).sum();
        assert_eq!(lane_bytes, (2 * total_members * 8) as u64);
        // The per-view accounting no longer carries the lane: an
        // identically collected standalone view (owned lanes) is bigger by
        // exactly its two windows.
        let solo = View::collect_io(&io, &ids, NodeId(4), 1);
        let batched = &views[4];
        assert_eq!(
            solo.memory_bytes(),
            batched.memory_bytes() + (2 * batched.len() * 8) as u64
        );
        // Refreshing detaches the output window into an owned buffer; the
        // input lane stays shared.
        let mut detached = views[4].clone();
        let z = Labeling::from_fn(&g, |_| Label::from_u64(9));
        detached.refresh_outputs(&z);
        assert_eq!(detached.shared_lane_refs().count(), 1);
        assert_eq!(
            detached.soa_outputs().unwrap()[0],
            Label::from_u64(9).packed_key().unwrap()
        );
    }

    #[test]
    fn refresh_outputs_all_matches_per_view_refresh() {
        let (g, x, ids) = setup(10);
        let inst = Instance::new(&g, &x, &ids);
        for radius in [0u32, 1, 2] {
            let mut per_view = View::collect_all(&inst, radius);
            let mut batched = per_view.clone();
            let mut scratch = HostLaneScratch::new();
            // The middle labeling has an unpackable label, exercising the
            // validity propagation through the gather path.
            let labelings = [
                Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0) + 5)),
                Labeling::from_fn(&g, |v| {
                    if v.0 == 3 {
                        Label::from_bytes(vec![1; 8])
                    } else {
                        Label::from_u64(1)
                    }
                }),
                Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0) % 2)),
            ];
            for y in &labelings {
                for view in &mut per_view {
                    view.refresh_outputs(y);
                }
                View::refresh_outputs_all(&mut batched, y, &mut scratch);
                for (a, b) in per_view.iter().zip(&batched) {
                    assert_eq!(a.outputs, b.outputs);
                    assert_eq!(a.soa_outputs(), b.soa_outputs());
                    assert_eq!(a.soa_inputs(), b.soa_inputs());
                }
            }
        }
    }

    #[test]
    fn from_parts_reassembles_a_collected_view() {
        let (g, x, ids) = setup(9);
        let inst = Instance::new(&g, &x, &ids);
        let reference = View::collect(&inst, NodeId(4), 2);
        let rebuilt = View::from_parts(
            reference.ball.clone(),
            reference.center,
            reference.radius,
            reference.ids.clone(),
            reference.inputs.clone(),
            None,
            reference.center_degree(),
        );
        assert_eq!(rebuilt.signature(), reference.signature());
        assert_eq!(rebuilt.center_id(), reference.center_id());
    }

    #[test]
    #[should_panic(expected = "one identity per ball member")]
    fn from_parts_rejects_mismatched_ids() {
        let (g, x, ids) = setup(5);
        let inst = Instance::new(&g, &x, &ids);
        let reference = View::collect(&inst, NodeId(0), 1);
        let _ = View::from_parts(
            reference.ball.clone(),
            reference.center,
            1,
            vec![1],
            reference.inputs.clone(),
            None,
            2,
        );
    }

    #[test]
    fn signatures_capture_order_not_values() {
        let (g, x, _) = setup(10);
        let ids_a = IdAssignment::consecutive(&g);
        let ids_b = IdAssignment::spread(&g, 77);
        let inst_a = Instance::new(&g, &x, &ids_a);
        let inst_b = Instance::new(&g, &x, &ids_b);
        let sig_a = View::collect(&inst_a, NodeId(4), 2).signature();
        let sig_b = View::collect(&inst_b, NodeId(4), 2).signature();
        assert_eq!(sig_a, sig_b);
        // Different inputs change the signature.
        let x2 = Labeling::empty(10);
        let inst_c = Instance::new(&g, &x2, &ids_a);
        let sig_c = View::collect(&inst_c, NodeId(4), 2).signature();
        assert_ne!(sig_a, sig_c);
    }
}

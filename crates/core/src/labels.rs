//! Labels (input/output strings) and the bounded promise `F_k`.
//!
//! In the paper every node holds an input string `x(v) ∈ {0,1}*` and
//! produces an output string `y(v) ∈ {0,1}*`. The derandomization theorem
//! is stated under the promise `F_k`: the graph has maximum degree at most
//! `k` and all input and output strings have length at most `k`.
//!
//! Labels are stored as short byte strings. The promise bounds the label
//! *byte* length; since every language in this workspace uses an alphabet of
//! constant size (colors `≤ Δ+1`, booleans, small counters), this keeps the
//! promise semantics of the paper — a finite label alphabet per `k` — while
//! avoiding bit-level bookkeeping.

use rlnc_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A bounded label: the input or output string of a single node.
#[derive(Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Label(Vec<u8>);

/// Hand-written so that [`Clone::clone_from`] reuses the destination's byte
/// buffer (the derived impl would reallocate on every call). This is what
/// makes the engine's per-trial output refreshes and the language layer's
/// view-native verdict scratch allocation-free in the steady state.
impl Clone for Label {
    fn clone(&self) -> Self {
        Label(self.0.clone())
    }

    fn clone_from(&mut self, source: &Self) {
        self.0.clone_from(&source.0);
    }
}

impl Label {
    /// The empty label (used for "no input").
    pub fn empty() -> Self {
        Label(Vec::new())
    }

    /// A label holding raw bytes.
    pub fn from_bytes(bytes: impl Into<Vec<u8>>) -> Self {
        Label(bytes.into())
    }

    /// A label encoding a small non-negative integer (colors, marks,
    /// counters) using the minimal number of big-endian bytes.
    pub fn from_u64(value: u64) -> Self {
        if value == 0 {
            return Label(vec![0]);
        }
        let bytes = value.to_be_bytes();
        let first = bytes.iter().position(|&b| b != 0).unwrap();
        Label(bytes[first..].to_vec())
    }

    /// A boolean label (`1` or `0`), used for selected/marked predicates.
    pub fn from_bool(value: bool) -> Self {
        Label(vec![u8::from(value)])
    }

    /// Decodes the label as a big-endian integer (empty label decodes to 0).
    ///
    /// # Panics
    /// Panics if the label is longer than 8 bytes.
    pub fn as_u64(&self) -> u64 {
        assert!(self.0.len() <= 8, "label too long to decode as u64");
        let mut out = 0u64;
        for &b in &self.0 {
            out = (out << 8) | u64::from(b);
        }
        out
    }

    /// Decodes the label as a boolean (any non-zero content is `true`).
    pub fn as_bool(&self) -> bool {
        self.0.iter().any(|&b| b != 0)
    }

    /// Raw bytes of the label.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Number of value bits in a packed SoA key ([`Label::packed_key`]).
    pub const PACKED_VALUE_BITS: u32 = 56;

    /// Packs the label into a single `u64` "SoA key": the byte length in
    /// the top 8 bits, the big-endian value ([`Label::as_u64`]) in the
    /// low 56. Defined exactly for labels of at most 7 bytes — every
    /// label the workspace's languages emit — and injective there: two
    /// labels have equal keys iff they are byte-for-byte equal (length
    /// plus value determine the bytes, leading zeros included, so even
    /// non-canonical encodings compare correctly). Returns `None` for
    /// longer labels, which invalidates the caller's cached key array
    /// rather than producing a wrong comparison.
    pub fn packed_key(&self) -> Option<u64> {
        (self.0.len() <= 7)
            .then(|| ((self.0.len() as u64) << Self::PACKED_VALUE_BITS) | self.as_u64())
    }

    /// The value half of a packed key: for any label `l` with
    /// `l.packed_key() == Some(k)`, `Label::key_value(k) == l.as_u64()`
    /// — and the value half is nonzero exactly when `l.as_bool()`.
    pub fn key_value(key: u64) -> u64 {
        key & ((1u64 << Self::PACKED_VALUE_BITS) - 1)
    }

    /// Length of the label in bytes (the quantity bounded by `F_k`).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` for the empty label.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.len() <= 8 {
            write!(f, "{}", self.as_u64())
        } else {
            write!(f, "0x{}", self.0.iter().map(|b| format!("{b:02x}")).collect::<String>())
        }
    }
}

impl From<u64> for Label {
    fn from(value: u64) -> Self {
        Label::from_u64(value)
    }
}

impl From<bool> for Label {
    fn from(value: bool) -> Self {
        Label::from_bool(value)
    }
}

/// A per-node labeling: the function `x : V → {0,1}*` (or `y`).
#[derive(Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Labeling {
    labels: Vec<Label>,
}

/// Hand-written so that [`Clone::clone_from`] clones element-wise into the
/// existing label buffers (see [`Label`]'s `clone_from`).
impl Clone for Labeling {
    fn clone(&self) -> Self {
        Labeling {
            labels: self.labels.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.labels.clone_from(&source.labels);
    }
}

impl Labeling {
    /// All-empty labeling on `n` nodes (the "no input" configuration used
    /// by input-less tasks such as coloring).
    pub fn empty(n: usize) -> Self {
        Labeling {
            labels: vec![Label::empty(); n],
        }
    }

    /// Builds a labeling from an explicit per-node vector.
    pub fn new(labels: Vec<Label>) -> Self {
        Labeling { labels }
    }

    /// Builds a labeling by evaluating `f` at every node of `graph`.
    pub fn from_fn(graph: &Graph, f: impl Fn(NodeId) -> Label) -> Self {
        Labeling {
            labels: graph.nodes().map(f).collect(),
        }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if the labeling covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Label of node `v`.
    #[inline]
    pub fn get(&self, v: NodeId) -> &Label {
        &self.labels[v.index()]
    }

    /// Sets the label of node `v`.
    pub fn set(&mut self, v: NodeId, label: Label) {
        self.labels[v.index()] = label;
    }

    /// Copies `source` into node `v`'s slot, reusing the slot's byte buffer
    /// (no allocation once the buffer has enough capacity).
    pub fn copy_into(&mut self, v: NodeId, source: &Label) {
        self.labels[v.index()].clone_from(source);
    }

    /// Resizes the labeling to cover exactly `n` nodes. New slots hold the
    /// empty label; surviving slots keep their byte buffers, so repeated
    /// resize-and-fill cycles (the language layer's verdict scratch) are
    /// allocation-free in the steady state.
    pub fn resize_to(&mut self, n: usize) {
        self.labels.resize_with(n, Label::empty);
    }

    /// Iterates over `(node, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Label)> {
        self.labels
            .iter()
            .enumerate()
            .map(|(i, l)| (NodeId::from_index(i), l))
    }

    /// Maximum label length in bytes (0 for an empty labeling).
    pub fn max_len(&self) -> usize {
        self.labels.iter().map(Label::len).max().unwrap_or(0)
    }

    /// Underlying vector of labels, indexed by node.
    pub fn as_slice(&self) -> &[Label] {
        &self.labels
    }

    /// Concatenates two labelings (for disjoint unions of instances).
    pub fn concatenate(&self, other: &Labeling) -> Labeling {
        let mut labels = self.labels.clone();
        labels.extend(other.labels.iter().cloned());
        Labeling { labels }
    }
}

/// The promise `F_k`: degree at most `k`, input and output labels of length
/// at most `k` (bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FkPromise {
    /// The bound `k`.
    pub k: usize,
}

impl FkPromise {
    /// Creates the promise with bound `k`. Theorem 1 requires `k > 2`.
    pub fn new(k: usize) -> Self {
        FkPromise { k }
    }

    /// Checks whether a graph satisfies the degree part of the promise.
    pub fn check_graph(&self, graph: &Graph) -> bool {
        graph.max_degree() <= self.k
    }

    /// Checks whether a labeling satisfies the label-length part.
    pub fn check_labeling(&self, labeling: &Labeling) -> bool {
        labeling.max_len() <= self.k
    }

    /// Checks the full promise on an input-output configuration.
    pub fn check(&self, graph: &Graph, input: &Labeling, output: &Labeling) -> bool {
        self.check_graph(graph) && self.check_labeling(input) && self.check_labeling(output)
    }

    /// Returns `true` if the bound allows the Theorem-1 gluing (`k > 2`).
    pub fn allows_gluing(&self) -> bool {
        self.k > 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlnc_graph::generators::{cycle, star};

    #[test]
    fn label_round_trips_u64() {
        for v in [0u64, 1, 2, 7, 255, 256, 65_535, 1 << 40] {
            assert_eq!(Label::from_u64(v).as_u64(), v);
        }
        assert_eq!(Label::from_u64(0).len(), 1);
        assert_eq!(Label::from_u64(255).len(), 1);
        assert_eq!(Label::from_u64(256).len(), 2);
    }

    #[test]
    fn label_bool_and_bytes() {
        assert!(Label::from_bool(true).as_bool());
        assert!(!Label::from_bool(false).as_bool());
        assert!(!Label::empty().as_bool());
        assert_eq!(Label::from_bytes(vec![1, 2]).as_u64(), 258);
        assert_eq!(Label::from(5u64).as_u64(), 5);
        assert_eq!(Label::from(true), Label::from_bool(true));
    }

    #[test]
    fn packed_keys_are_injective_and_decode() {
        let labels = [
            Label::empty(),
            Label::from_u64(0),
            Label::from_u64(1),
            Label::from_u64(255),
            Label::from_u64(256),
            Label::from_u64((1 << 56) - 1),
            Label::from_bytes(vec![0, 5]),   // non-canonical 5
            Label::from_bytes(vec![0, 0, 5]), // another non-canonical 5
            Label::from_bool(true),
            Label::from_bool(false),
        ];
        for a in &labels {
            let ka = a.packed_key().expect("short labels always pack");
            assert_eq!(Label::key_value(ka), a.as_u64());
            assert_eq!(Label::key_value(ka) != 0, a.as_bool());
            for b in &labels {
                let kb = b.packed_key().unwrap();
                assert_eq!(ka == kb, a == b, "key equality must be label equality: {a:?} {b:?}");
            }
        }
        // 8-byte labels decode as u64 but exceed the 56-bit value field.
        assert_eq!(Label::from_bytes(vec![1; 8]).packed_key(), None);
        assert_eq!(Label::from_bytes(vec![0; 9]).packed_key(), None);
    }

    #[test]
    fn label_display() {
        assert_eq!(format!("{}", Label::from_u64(42)), "42");
        assert_eq!(format!("{}", Label::empty()), "0");
    }

    #[test]
    fn labeling_get_set_iter() {
        let g = cycle(5);
        let mut l = Labeling::empty(5);
        assert_eq!(l.len(), 5);
        l.set(NodeId(2), Label::from_u64(9));
        assert_eq!(l.get(NodeId(2)).as_u64(), 9);
        assert_eq!(l.get(NodeId(0)), &Label::empty());
        let from_fn = Labeling::from_fn(&g, |v| Label::from_u64(v.0 as u64));
        assert_eq!(from_fn.get(NodeId(3)).as_u64(), 3);
        let pairs: Vec<_> = from_fn.iter().collect();
        assert_eq!(pairs.len(), 5);
        assert_eq!(from_fn.max_len(), 1);
    }

    #[test]
    fn labeling_concatenate() {
        let a = Labeling::new(vec![Label::from_u64(1), Label::from_u64(2)]);
        let b = Labeling::new(vec![Label::from_u64(3)]);
        let c = a.concatenate(&b);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(NodeId(2)).as_u64(), 3);
    }

    #[test]
    fn fk_promise_checks() {
        let g = cycle(6);
        let promise = FkPromise::new(3);
        assert!(promise.check_graph(&g));
        assert!(promise.allows_gluing());
        assert!(!FkPromise::new(2).allows_gluing());
        let hub = star(10);
        assert!(!promise.check_graph(&hub));
        let short = Labeling::from_fn(&g, |_| Label::from_u64(3));
        let long = Labeling::from_fn(&g, |_| Label::from_bytes(vec![0; 8]));
        assert!(promise.check_labeling(&short));
        assert!(!promise.check_labeling(&long));
        assert!(promise.check(&g, &short, &short));
        assert!(!promise.check(&g, &short, &long));
    }
}

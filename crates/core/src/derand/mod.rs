//! The derandomization machinery of Theorem 1 and Appendix A.
//!
//! The proof of Theorem 1 has four moving parts, each with its own module:
//!
//! * [`hard_instances`] — Claim 2: for every (order-invariant) algorithm
//!   that is not correct, find instances on which it fails, with
//!   constraints on the diameter and on the minimum identity so the
//!   instances can later be combined.
//! * [`boosting`] — Claim 3: running the construction algorithm on the
//!   disjoint union of `ν` hard instances drives the probability that the
//!   decider accepts below any threshold, with `ν` given by Eq. (3).
//! * [`gluing`] — Claims 4–5 and the final construction: anchor sets of
//!   `µ = ⌈1/(2p−1)⌉` far-apart nodes, the "accepts far from `u`" events,
//!   and the connected gluing with its `ν′` bound.
//! * [`ramsey`] — Appendix A / Claim 1: turning an arbitrary algorithm into
//!   an order-invariant one by restricting identities to a Ramsey-style
//!   consistent ID set.
//!
//! The Monte-Carlo estimators in these modules are the **reference
//! implementations**: simple per-trial loops that re-collect every view
//! (and, for the gluing's far-from-anchor events, re-run one BFS per
//! anchor) on every trial. The production path lives in the `rlnc-derand`
//! crate, whose staged pipeline routes the same computations through
//! `rlnc-engine` composite plans — bit-identical streams (the engine's
//! equivalence suite proves it against the functions here), typically
//! several times faster (see the `boosted-union-acceptance` and
//! `glued-acceptance` groups of `rlnc-experiments bench-export`).

pub mod boosting;
pub mod gluing;
pub mod hard_instances;
pub mod ramsey;

pub use boosting::{boosting_repetitions, disjoint_union_acceptance};
pub use gluing::{anchor_count, gluing_repetitions, separation_distance, GluingExperiment};
pub use hard_instances::{HardInstance, HardInstanceSearch};
pub use ramsey::{consistent_id_set, OrderInvariantLift};

//! The Appendix-A reduction to order-invariant algorithms (Claim 1).
//!
//! Appendix A proves that any `t`-round deterministic construction
//! algorithm `A` (under the promise `F_k`) can be replaced by an
//! order-invariant algorithm `A'`: using Ramsey's theorem, one finds an
//! infinite identity set `U` such that, for every ordered labeled ball
//! type, the output of `A` at the center is the same for *every* assignment
//! of identities from `U` that respects the ball's order. `A'` then
//! relabels each ball canonically with the smallest values of `U` and runs
//! `A`.
//!
//! This module implements a finite, testable version of both halves:
//!
//! * [`consistent_id_set`] performs the Ramsey-style refinement over a
//!   *finite* identity universe: it repeatedly samples order-respecting
//!   assignments from the current candidate set, and greedily removes
//!   identities that participate in disagreements, until the sampled
//!   assignments all give the same output for every supplied ball type (or
//!   the set becomes too small). For finite `t`, `k`, and graph families
//!   this is exactly the construction's computational content.
//! * [`OrderInvariantLift`] is `A'`: it relabels the view's ball with the
//!   smallest identities of the chosen set (respecting the original order)
//!   and runs `A`. The lift is order-invariant *by construction*; the
//!   consistency of the ID set is what makes it agree with `A` on instances
//!   whose identities come from the set.

use crate::algorithm::LocalAlgorithm;
use crate::config::Instance;
use crate::labels::{Label, Labeling};
use crate::view::View;
use rand::seq::IndexedRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rlnc_graph::{IdAssignment, NodeId};

/// A concrete ordered labeled ball on which consistency is enforced: a host
/// graph position together with the data needed to re-run the algorithm
/// under re-assigned identities.
#[derive(Debug, Clone)]
pub struct BallTemplate {
    /// The ball's own graph (local indices, center = node 0).
    pub graph: rlnc_graph::Graph,
    /// Input labels of the ball's nodes (local indices).
    pub inputs: Labeling,
    /// The rank each local node's identity must receive (the ball's order
    /// type σ), i.e. `order[i]` is the position of node `i`'s identity in
    /// increasing order.
    pub order: Vec<usize>,
}

impl BallTemplate {
    /// Extracts the template of the radius-`t` ball of `v` in an instance.
    pub fn from_instance(instance: &Instance<'_>, v: NodeId, radius: u32) -> Self {
        let view = View::collect(instance, v, radius);
        BallTemplate::from_view(&view)
    }

    /// Extracts the template underlying a view.
    pub fn from_view(view: &View) -> Self {
        BallTemplate {
            graph: view.local_graph().clone(),
            inputs: Labeling::new((0..view.len()).map(|i| view.input(i).clone()).collect()),
            order: (0..view.len()).map(|i| view.rank(i)).collect(),
        }
    }

    /// Number of nodes in the ball (the `r` of the Ramsey argument).
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Returns `true` for the empty template (never produced by extraction).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Runs `algo` at the center of this ball with the identities drawn
    /// from `chosen` (which must be sorted increasing and have length
    /// `self.len()`), assigned according to the ball's order type.
    pub fn evaluate<A: LocalAlgorithm + ?Sized>(&self, algo: &A, chosen: &[u64]) -> Label {
        assert_eq!(chosen.len(), self.len());
        debug_assert!(chosen.windows(2).all(|w| w[0] < w[1]));
        let ids: Vec<u64> = self.order.iter().map(|&rank| chosen[rank]).collect();
        let ids = IdAssignment::new(ids);
        let instance = Instance::new(&self.graph, &self.inputs, &ids);
        let view = View::collect(&instance, NodeId(0), algo.radius());
        algo.output(&view)
    }
}

/// Collects the ball templates of every node of every instance, deduplicated
/// by view signature so each ordered labeled ball type appears once.
pub fn collect_templates(instances: &[Instance<'_>], radius: u32) -> Vec<BallTemplate> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for instance in instances {
        for v in instance.graph.nodes() {
            let view = View::collect(instance, v, radius);
            if seen.insert(view.signature()) {
                out.push(BallTemplate::from_view(&view));
            }
        }
    }
    out
}

/// Finds a subset of `universe` on which `algo` is *consistent* for every
/// supplied ball template: sampled order-respecting identity assignments
/// from the subset all produce the same center output.
///
/// Returns the refined (sorted) identity set. The refinement samples
/// `samples_per_round` assignments per template per round and removes the
/// highest-frequency offender on disagreement, stopping when every template
/// is consistent across its samples or when the set reaches the minimum
/// usable size (the largest template).
pub fn consistent_id_set<A: LocalAlgorithm + ?Sized>(
    algo: &A,
    templates: &[BallTemplate],
    universe: &[u64],
    samples_per_round: usize,
    seed: u64,
) -> Vec<u64> {
    let mut ids: Vec<u64> = universe.to_vec();
    ids.sort_unstable();
    ids.dedup();
    let max_ball = templates.iter().map(BallTemplate::len).max().unwrap_or(0);
    assert!(
        ids.len() >= max_ball,
        "identity universe smaller than the largest ball"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    loop {
        let mut disagreement: Option<Vec<u64>> = None;
        'templates: for template in templates {
            let r = template.len();
            if r == 0 {
                continue;
            }
            // Reference output: the r smallest identities of the current set.
            let reference = template.evaluate(algo, &ids[..r]);
            for _ in 0..samples_per_round {
                let mut subset: Vec<u64> = ids
                    .choose_multiple(&mut rng, r)
                    .copied()
                    .collect();
                subset.sort_unstable();
                if template.evaluate(algo, &subset) != reference {
                    disagreement = Some(subset);
                    break 'templates;
                }
            }
        }
        match disagreement {
            None => return ids,
            Some(subset) => {
                if ids.len() <= max_ball {
                    // Cannot refine further; return the minimal consistent-by-
                    // construction set (a single assignment per ball type).
                    return ids;
                }
                // Remove the largest identity of the offending assignment —
                // a simple, deterministic-ish refinement step that always
                // terminates and, for identity-threshold/parity algorithms,
                // converges to a consistent residue class.
                let victim = *subset.last().unwrap();
                ids.retain(|&x| x != victim);
            }
        }
    }
}

/// The Appendix-A algorithm `A'`: relabel each view's ball with the
/// smallest identities of a fixed set `U` (respecting the original relative
/// order) and run the wrapped algorithm on the relabeled ball.
pub struct OrderInvariantLift<'a, A: ?Sized> {
    inner: &'a A,
    id_set: Vec<u64>,
}

impl<'a, A: LocalAlgorithm + ?Sized> OrderInvariantLift<'a, A> {
    /// Builds the lift from a (sorted) identity set. The set must be at
    /// least as large as any ball the algorithm will ever see.
    pub fn new(inner: &'a A, mut id_set: Vec<u64>) -> Self {
        id_set.sort_unstable();
        id_set.dedup();
        assert!(!id_set.is_empty(), "identity set must be non-empty");
        OrderInvariantLift { inner, id_set }
    }

    /// The identity set backing the lift.
    pub fn id_set(&self) -> &[u64] {
        &self.id_set
    }
}

impl<'a, A: LocalAlgorithm + ?Sized> LocalAlgorithm for OrderInvariantLift<'a, A> {
    fn radius(&self) -> u32 {
        self.inner.radius()
    }

    fn output(&self, view: &View) -> Label {
        let template = BallTemplate::from_view(view);
        let r = template.len();
        assert!(
            r <= self.id_set.len(),
            "identity set of size {} cannot relabel a ball of {} nodes",
            self.id_set.len(),
            r
        );
        template.evaluate(self.inner, &self.id_set[..r])
    }

    fn name(&self) -> String {
        format!("order-invariant-lift({})", self.inner.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::FnAlgorithm;
    use crate::order_invariant::{check_order_invariance, standard_monotone_maps};
    use crate::simulator::Simulator;
    use rlnc_graph::generators::cycle;

    fn cycle_instance(n: usize) -> (rlnc_graph::Graph, Labeling, IdAssignment) {
        let g = cycle(n);
        let x = Labeling::empty(n);
        let ids = IdAssignment::consecutive(&g);
        (g, x, ids)
    }

    #[test]
    fn ball_template_round_trip() {
        let (g, x, ids) = cycle_instance(10);
        let inst = Instance::new(&g, &x, &ids);
        let template = BallTemplate::from_instance(&inst, NodeId(4), 1);
        assert_eq!(template.len(), 3);
        // Evaluating the identity-reading algorithm with chosen ids returns
        // the id assigned to the center (rank 1 of {3,4,5} order → middle).
        let algo = FnAlgorithm::new(1, "own-id", |v: &View| Label::from_u64(v.center_id()));
        let out = template.evaluate(&algo, &[100, 200, 300]);
        assert_eq!(out.as_u64(), 200);
    }

    #[test]
    fn lift_is_order_invariant_even_for_id_dependent_algorithms() {
        let (g, x, ids) = cycle_instance(12);
        // "Output own id mod 3" is not order-invariant...
        let raw = FnAlgorithm::new(1, "id-mod-3", |v: &View| Label::from_u64(v.center_id() % 3));
        let maps = standard_monotone_maps();
        let map_refs: Vec<&dyn Fn(u64) -> u64> =
            maps.iter().map(|m| m.as_ref() as &dyn Fn(u64) -> u64).collect();
        assert!(!check_order_invariance(&raw, &g, &x, &ids, &map_refs));
        // ...but its lift is.
        let lift = OrderInvariantLift::new(&raw, (1..=16).collect());
        assert!(check_order_invariance(&lift, &g, &x, &ids, &map_refs));
        assert!(lift.name().contains("lift"));
        assert_eq!(lift.radius(), 1);
    }

    #[test]
    fn lift_agrees_with_inner_algorithm_on_order_invariant_inner() {
        // For an already order-invariant algorithm, the lift computes the
        // same outputs on every instance (the relabeling is invisible).
        let (g, x, ids) = cycle_instance(14);
        let inst = Instance::new(&g, &x, &ids);
        let inner = FnAlgorithm::new(1, "rank", |v: &View| Label::from_u64(v.center_rank() as u64));
        let lift = OrderInvariantLift::new(&inner, (100..200).collect());
        let sim = Simulator::new();
        assert_eq!(sim.run(&inner, &inst), sim.run(&lift, &inst));
    }

    #[test]
    fn consistent_id_set_for_parity_algorithm_settles_on_one_parity() {
        // Radius-0 algorithm "output own id parity": consistency over a ball
        // type forces the refined set into a single residue class mod 2.
        let (g, x, ids) = cycle_instance(8);
        let inst = Instance::new(&g, &x, &ids);
        let templates = collect_templates(&[inst], 0);
        assert_eq!(templates.len(), 1);
        let algo = FnAlgorithm::new(0, "id-parity", |v: &View| Label::from_u64(v.center_id() % 2));
        let universe: Vec<u64> = (1..=60).collect();
        let refined = consistent_id_set(&algo, &templates, &universe, 400, 7);
        assert!(!refined.is_empty());
        let parities: std::collections::HashSet<u64> = refined.iter().map(|x| x % 2).collect();
        assert_eq!(parities.len(), 1, "refined set {refined:?} must be single-parity");
    }

    #[test]
    fn consistent_id_set_is_a_no_op_for_order_invariant_algorithms() {
        let (g, x, ids) = cycle_instance(10);
        let inst = Instance::new(&g, &x, &ids);
        let templates = collect_templates(&[inst], 1);
        let algo = FnAlgorithm::new(1, "rank", |v: &View| Label::from_u64(v.center_rank() as u64));
        let universe: Vec<u64> = (1..=40).collect();
        let refined = consistent_id_set(&algo, &templates, &universe, 30, 3);
        assert_eq!(refined.len(), 40, "no identities should be removed");
    }

    #[test]
    fn lift_with_consistent_set_reproduces_inner_outputs_on_in_set_instances() {
        // Build an instance whose identities all lie in the refined set and
        // have the right parity; then A and A' agree (the Appendix-A
        // correctness argument, finitely).
        let algo = FnAlgorithm::new(0, "id-parity", |v: &View| Label::from_u64(v.center_id() % 2));
        let g = cycle(6);
        let x = Labeling::empty(6);
        let inst_templates = {
            let ids = IdAssignment::consecutive(&g);
            let inst = Instance::new(&g, &x, &ids);
            collect_templates(&[inst], 0)
        };
        let universe: Vec<u64> = (1..=60).collect();
        let refined = consistent_id_set(&algo, &inst_templates, &universe, 400, 11);
        let parity = refined[0] % 2;
        // Instance using only identities from the refined parity class.
        let in_set_ids = IdAssignment::new(
            (0..6).map(|i| refined.get(i).copied().unwrap_or(2 * i as u64 + 2 + parity)).collect(),
        );
        let inst = Instance::new(&g, &x, &in_set_ids);
        let lift = OrderInvariantLift::new(&algo, refined.clone());
        let sim = Simulator::new();
        assert_eq!(sim.run(&algo, &inst), sim.run(&lift, &inst));
    }
}

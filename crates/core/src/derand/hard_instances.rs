//! Hard-instance search (Claim 2).
//!
//! Claim 2 states: if no `t`-round deterministic algorithm solves `L`, then
//! there is a `β > 0` (namely `1/N`, `N` the number of order-invariant
//! `t`-round algorithms) such that for all `D_min` and `I_min` there is an
//! instance of diameter at least `D_min`, with all identities at least
//! `I_min`, on which the randomized constructor fails with probability at
//! least `β`.
//!
//! The constructive ingredient is: *for every (order-invariant) algorithm,
//! pick an instance on which it fails*. This module implements that search
//! over candidate instance generators: it runs an algorithm on candidates,
//! checks the output against the language, and returns failing instances
//! satisfying the diameter / minimum-identity side conditions. It also
//! estimates the empirical failure probability β of a *randomized*
//! constructor on an instance.

use crate::algorithm::{LocalAlgorithm, RandomizedLocalAlgorithm};
use crate::config::{Instance, IoConfig};
use crate::labels::Labeling;
use crate::language::DistributedLanguage;
use crate::simulator::Simulator;
use rlnc_graph::traversal::diameter_double_sweep;
use rlnc_graph::{Graph, IdAssignment, NodeId};
use rlnc_par::stats::Estimate;

/// An owned instance: graph + input + identities, self-contained so hard
/// instances can be collected, shifted, and later glued.
#[derive(Debug, Clone)]
pub struct HardInstance {
    /// The network.
    pub graph: Graph,
    /// The input labeling.
    pub input: Labeling,
    /// The identity assignment.
    pub ids: IdAssignment,
}

impl HardInstance {
    /// Creates an owned instance.
    pub fn new(graph: Graph, input: Labeling, ids: IdAssignment) -> Self {
        assert_eq!(graph.node_count(), input.len());
        assert_eq!(graph.node_count(), ids.len());
        HardInstance { graph, input, ids }
    }

    /// Borrows the instance in the form the simulator consumes.
    pub fn as_instance(&self) -> Instance<'_> {
        Instance::new(&self.graph, &self.input, &self.ids)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// A lower bound on the diameter (double-sweep BFS).
    pub fn diameter_lower_bound(&self) -> u32 {
        diameter_double_sweep(&self.graph, NodeId(0))
    }

    /// Minimum identity present in the instance.
    pub fn min_id(&self) -> u64 {
        self.ids.min_id()
    }

    /// Maximum identity present in the instance.
    pub fn max_id(&self) -> u64 {
        self.ids.max_id()
    }

    /// The same instance with all identities shifted upward by `offset`
    /// (order type preserved; used to enforce the `I_min` requirement and
    /// to make identity ranges disjoint before a union or gluing).
    pub fn shifted_ids(&self, offset: u64) -> HardInstance {
        HardInstance {
            graph: self.graph.clone(),
            input: self.input.clone(),
            ids: self.ids.shifted(offset),
        }
    }
}

/// Searches candidate instances for ones on which algorithms fail.
pub struct HardInstanceSearch<'l, L: ?Sized> {
    language: &'l L,
    min_diameter: u32,
    min_id: u64,
}

impl<'l, L: DistributedLanguage + ?Sized> HardInstanceSearch<'l, L> {
    /// Creates a search for failures against `language`.
    pub fn new(language: &'l L) -> Self {
        HardInstanceSearch {
            language,
            min_diameter: 0,
            min_id: 1,
        }
    }

    /// Requires found instances to have diameter at least `d` (the `D_min`
    /// of Claim 2).
    pub fn with_min_diameter(mut self, d: u32) -> Self {
        self.min_diameter = d;
        self
    }

    /// Requires found instances to use identities at least `i` (the `I_min`
    /// of Claim 2).
    pub fn with_min_id(mut self, i: u64) -> Self {
        self.min_id = i.max(1);
        self
    }

    /// Returns `true` if a deterministic algorithm fails on the instance
    /// (its output configuration is not in the language).
    pub fn fails_on<A: LocalAlgorithm + ?Sized>(&self, algo: &A, instance: &HardInstance) -> bool {
        let inst = instance.as_instance();
        let output = Simulator::sequential().run(algo, &inst);
        let io = IoConfig::from_instance(&inst, &output);
        !self.language.contains(&io)
    }

    /// Finds, among the candidates, the first instance satisfying the
    /// diameter and identity constraints on which `algo` fails.
    ///
    /// Candidates violating only the identity constraint are transparently
    /// fixed by shifting their identities upward (allowed by
    /// order-invariance, as in the proof of Claim 2).
    pub fn find_failure<A: LocalAlgorithm + ?Sized>(
        &self,
        algo: &A,
        candidates: impl IntoIterator<Item = HardInstance>,
    ) -> Option<HardInstance> {
        for candidate in candidates {
            let candidate = self.enforce_min_id(candidate);
            if candidate.diameter_lower_bound() < self.min_diameter {
                continue;
            }
            if self.fails_on(algo, &candidate) {
                return Some(candidate);
            }
        }
        None
    }

    /// Builds the set `H` of Claim 2: one failing instance per algorithm in
    /// the provided family, with identity ranges made pairwise disjoint so
    /// the instances can later be combined. Algorithms for which no failing
    /// candidate is found are reported in the second component.
    pub fn hard_instance_family<'a, A: LocalAlgorithm + ?Sized + 'a>(
        &self,
        algorithms: impl IntoIterator<Item = &'a A>,
        candidates: &[HardInstance],
    ) -> (Vec<HardInstance>, usize) {
        let mut found = Vec::new();
        let mut missing = 0usize;
        let mut next_floor = self.min_id;
        for algo in algorithms {
            let search = HardInstanceSearch {
                language: self.language,
                min_diameter: self.min_diameter,
                min_id: next_floor,
            };
            match search.find_failure(algo, candidates.iter().cloned()) {
                Some(instance) => {
                    next_floor = instance.max_id() + 1;
                    found.push(instance);
                }
                None => missing += 1,
            }
        }
        (found, missing)
    }

    /// Estimates the failure probability β of a randomized constructor on a
    /// fixed instance: `Pr[C(H, x, id) ∉ L]`.
    pub fn failure_probability<C: RandomizedLocalAlgorithm + ?Sized>(
        &self,
        constructor: &C,
        instance: &HardInstance,
        trials: u64,
        seed: u64,
    ) -> Estimate {
        let inst = instance.as_instance();
        let success =
            Simulator::sequential().construction_success(constructor, &inst, self.language, trials, seed);
        // Failure = 1 - success; rebuild the estimate from the complement counts.
        Estimate::from_counts(success.trials - success.successes, success.trials)
    }

    fn enforce_min_id(&self, instance: HardInstance) -> HardInstance {
        let current = instance.min_id();
        if current >= self.min_id {
            instance
        } else {
            instance.shifted_ids(self.min_id - current)
        }
    }
}

/// Convenience: candidate instances that are consecutive-identity cycles of
/// the given sizes with empty inputs — the family used for the coloring
/// lower bounds of §4.
pub fn consecutive_cycle_candidates(sizes: impl IntoIterator<Item = usize>) -> Vec<HardInstance> {
    sizes
        .into_iter()
        .map(|n| {
            let graph = rlnc_graph::generators::cycle(n);
            let input = Labeling::empty(n);
            let ids = IdAssignment::consecutive(&graph);
            HardInstance::new(graph, input, ids)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::FnAlgorithm;
    use crate::labels::Label;
    use crate::language::FnLcl;
    use crate::view::View;
    use rlnc_graph::NodeId;

    fn proper_coloring() -> FnLcl<impl Fn(&IoConfig<'_>, NodeId) -> bool + Sync> {
        FnLcl::new("proper-coloring", 1, |io: &IoConfig<'_>, v: NodeId| {
            io.graph
                .neighbor_ids(v)
                .any(|w| io.output.get(w) == io.output.get(v))
        })
    }

    #[test]
    fn constant_algorithm_fails_on_every_cycle() {
        let lang = proper_coloring();
        let search = HardInstanceSearch::new(&lang).with_min_diameter(4).with_min_id(100);
        let constant = FnAlgorithm::new(0, "always-1", |_: &View| Label::from_u64(1));
        let candidates = consecutive_cycle_candidates([8, 12, 16, 24]);
        let hard = search.find_failure(&constant, candidates).expect("must find a failure");
        assert!(hard.diameter_lower_bound() >= 4);
        assert!(hard.min_id() >= 100);
        assert!(search.fails_on(&constant, &hard));
    }

    #[test]
    fn id_parity_coloring_succeeds_on_even_cycles_only() {
        // Color = id parity: proper on even consecutive-ID cycles, improper
        // on odd cycles (the seam). The search must pick an odd cycle.
        let lang = proper_coloring();
        let search = HardInstanceSearch::new(&lang);
        let parity = FnAlgorithm::new(0, "id-parity", |view: &View| {
            Label::from_u64(view.center_id() % 2)
        });
        let even_only = consecutive_cycle_candidates([8, 10, 12]);
        assert!(search.find_failure(&parity, even_only).is_none());
        let with_odd = consecutive_cycle_candidates([8, 9, 12]);
        let hard = search.find_failure(&parity, with_odd).expect("odd cycle is hard");
        assert_eq!(hard.node_count(), 9);
    }

    #[test]
    fn hard_instance_family_uses_disjoint_id_ranges() {
        let lang = proper_coloring();
        let search = HardInstanceSearch::new(&lang).with_min_id(1);
        let a1 = FnAlgorithm::new(0, "always-1", |_: &View| Label::from_u64(1));
        let a2 = FnAlgorithm::new(0, "always-2", |_: &View| Label::from_u64(2));
        let a3 = FnAlgorithm::new(0, "always-3", |_: &View| Label::from_u64(3));
        let algos: Vec<&dyn LocalAlgorithm> = vec![&a1, &a2, &a3];
        let candidates = consecutive_cycle_candidates([6, 8]);
        let (family, missing) = search.hard_instance_family(algos.into_iter(), &candidates);
        assert_eq!(missing, 0);
        assert_eq!(family.len(), 3);
        for pair in family.windows(2) {
            assert!(pair[1].min_id() > pair[0].max_id(), "identity ranges must be disjoint");
        }
    }

    #[test]
    fn failure_probability_of_random_coloring_matches_theory() {
        // Uniform random 3-coloring of C_4: failure probability =
        // 1 - (#proper 3-colorings of C_4)/3^4 = 1 - 18/81 = 7/9.
        use crate::algorithm::{Coins, FnRandomizedAlgorithm};
        use rand::Rng;
        let lang = proper_coloring();
        let search = HardInstanceSearch::new(&lang);
        let constructor = FnRandomizedAlgorithm::new(0, "random-3-coloring", |v: &View, c: &Coins| {
            Label::from_u64(c.for_center(v).random_range(0..3))
        });
        let instance = consecutive_cycle_candidates([4]).remove(0);
        let beta = search.failure_probability(&constructor, &instance, 8000, 5);
        assert!(
            (beta.p_hat - 7.0 / 9.0).abs() < 0.02,
            "beta {} should be near 7/9",
            beta.p_hat
        );
    }

    #[test]
    fn shifted_ids_preserve_structure() {
        let instance = consecutive_cycle_candidates([6]).remove(0);
        let shifted = instance.shifted_ids(50);
        assert_eq!(shifted.min_id(), 51);
        assert_eq!(shifted.max_id(), 56);
        assert_eq!(shifted.node_count(), 6);
        assert_eq!(shifted.graph, instance.graph);
    }
}

//! Error boosting on disjoint unions (Claim 3).
//!
//! If a randomized constructor `C` fails on each hard instance `H_i` with
//! probability at least `β`, and the decider `D` rejects non-members with
//! probability at least `p`, then on the disjoint union `G = H_1 ∪ … ∪ H_ν`
//! the probability that `D` accepts `C(G)` is at most `(1 − βp)^ν`, because
//! the decider runs independently in each component. Choosing
//!
//! `ν = 1 + ⌈ ln(r·p) / ln(1 − β·p) ⌉`      (Eq. (3))
//!
//! drives this below `r·p`, contradicting `Pr[D accepts C(G)] ≥ p · Pr[C(G) ∈ L]
//! ≥ p·r` — which is how Claim 3 rules out the existence of `C` for
//! languages over possibly-disconnected graphs.

use super::hard_instances::HardInstance;
use crate::algorithm::RandomizedLocalAlgorithm;
use crate::config::{Instance, IoConfig};
use crate::decision::{decide_randomized, RandomizedDecider};
use crate::labels::Labeling;
use crate::simulator::Simulator;
use rlnc_graph::ops::{concatenate_ids, disjoint_union};
use rlnc_par::stats::Estimate;
use rlnc_par::trials::MonteCarlo;

/// Eq. (3): the number of disjoint copies needed to push the acceptance
/// probability below `r · p`.
///
/// # Panics
/// Panics unless `0 < r ≤ 1`, `1/2 < p ≤ 1`, and `0 < beta ≤ 1`.
pub fn boosting_repetitions(r: f64, p: f64, beta: f64) -> usize {
    assert!(r > 0.0 && r <= 1.0, "construction success probability r must be in (0, 1]");
    assert!(p > 0.5 && p <= 1.0, "decision guarantee p must be in (1/2, 1]");
    assert!(beta > 0.0 && beta <= 1.0, "failure probability beta must be in (0, 1]");
    let ratio = (r * p).ln() / (1.0 - beta * p).ln();
    1 + ratio.ceil().max(0.0) as usize
}

/// The theoretical upper bound `(1 − βp)^ν` on the acceptance probability
/// of the disjoint union of `ν` hard instances.
pub fn boosting_bound(p: f64, beta: f64, nu: usize) -> f64 {
    (1.0 - beta * p).powi(nu as i32)
}

/// The disjoint union of the first `nu` hard instances (cycling through the
/// supplied list if `nu` exceeds its length), with identity ranges made
/// disjoint, as in the proof of Claim 3.
pub fn build_disjoint_union(hard: &[HardInstance], nu: usize) -> HardInstance {
    assert!(!hard.is_empty(), "need at least one hard instance");
    assert!(nu >= 1, "need at least one copy");
    let chosen: Vec<&HardInstance> = (0..nu).map(|i| &hard[i % hard.len()]).collect();
    let graphs: Vec<&rlnc_graph::Graph> = chosen.iter().map(|h| &h.graph).collect();
    let union = disjoint_union(&graphs);
    let ids = concatenate_ids(&chosen.iter().map(|h| &h.ids).collect::<Vec<_>>());
    let mut input = Labeling::empty(0);
    for h in &chosen {
        input = input.concatenate(&h.input);
    }
    HardInstance::new(union.graph, input, ids)
}

/// Estimates `Pr[D accepts C(G)]` where `G` is the disjoint union of `nu`
/// hard instances, over the coins of both the constructor and the decider.
pub fn disjoint_union_acceptance<C, D>(
    constructor: &C,
    decider: &D,
    hard: &[HardInstance],
    nu: usize,
    trials: u64,
    seed: u64,
) -> Estimate
where
    C: RandomizedLocalAlgorithm + ?Sized,
    D: RandomizedDecider + ?Sized,
{
    let union = build_disjoint_union(hard, nu);
    acceptance_of_constructed(constructor, decider, &union, trials, seed)
}

/// Estimates `Pr[D accepts C(H)]` on a single (possibly composite) instance,
/// over the coins of both algorithms: each trial runs the constructor with
/// fresh coins, then the decider with fresh independent coins.
pub fn acceptance_of_constructed<C, D>(
    constructor: &C,
    decider: &D,
    instance: &HardInstance,
    trials: u64,
    seed: u64,
) -> Estimate
where
    C: RandomizedLocalAlgorithm + ?Sized,
    D: RandomizedDecider + ?Sized,
{
    let inst: Instance<'_> = instance.as_instance();
    let sim = Simulator::sequential();
    MonteCarlo::new(trials).with_seed(seed).estimate(|trial_seed| {
        let construction_seed = trial_seed.child(0);
        let decision_seed = trial_seed.child(1);
        let output = sim.run_randomized(constructor, &inst, construction_seed);
        let io = IoConfig::from_instance(&inst, &output);
        decide_randomized(decider, &io, &instance.ids, decision_seed)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{Coins, FnRandomizedAlgorithm};
    use crate::decision::FnRandomizedDecider;
    use crate::derand::hard_instances::consecutive_cycle_candidates;
    use crate::labels::Label;
    use crate::view::View;
    use rand::Rng;

    #[test]
    fn repetition_formula_matches_eq3() {
        // r = 2/3, p = 0.8, beta = 0.5: ln(0.5333)/ln(0.6) = 1.231 → ν = 1 + 2 = 3.
        assert_eq!(boosting_repetitions(2.0 / 3.0, 0.8, 0.5), 3);
        // Larger beta needs fewer copies.
        assert!(boosting_repetitions(0.9, 0.9, 0.9) <= boosting_repetitions(0.9, 0.9, 0.1));
        // The bound at ν from Eq. (3) is below r·p.
        for &(r, p, beta) in &[(0.9, 0.75, 0.3), (0.5, 0.6, 0.2), (0.99, 0.95, 0.05)] {
            let nu = boosting_repetitions(r, p, beta);
            assert!(
                boosting_bound(p, beta, nu) < r * p,
                "bound {} not below r*p {}",
                boosting_bound(p, beta, nu),
                r * p
            );
        }
    }

    #[test]
    #[should_panic(expected = "guarantee p")]
    fn repetition_formula_rejects_low_p() {
        let _ = boosting_repetitions(0.9, 0.4, 0.5);
    }

    #[test]
    fn disjoint_union_builder_cycles_and_shifts_ids() {
        let hard = consecutive_cycle_candidates([5, 7]);
        let union = build_disjoint_union(&hard, 3);
        assert_eq!(union.node_count(), 5 + 7 + 5);
        assert_eq!(union.ids.max_id(), 17);
        assert_eq!(rlnc_graph::connected_components(&union.graph).iter().max().unwrap() + 1, 3);
    }

    #[test]
    fn acceptance_decays_geometrically_with_copies() {
        // Constructor: each node outputs a bit that is 1 with probability
        // 0.5; "failure" of a component is all-zero... we instead use a
        // constructor that fails on a whole component with probability beta
        // by keying on the component's minimum id parity... Simpler: every
        // node outputs 1 with prob q independently; decider rejects at a
        // node that outputs 0, with probability p (1-sided). Then per
        // component of size m: Pr[D accepts component] = (q + (1-q)(1-p))^m.
        let q = 0.7f64;
        let p = 0.8f64;
        let constructor = FnRandomizedAlgorithm::new(0, "bernoulli-bit", move |v: &View, c: &Coins| {
            Label::from_bool(c.for_center(v).random_bool(q))
        });
        let decider = FnRandomizedDecider::new(0, "reject-zeros", move |v: &View, c: &Coins| {
            if v.output(v.center_local()).as_bool() {
                true
            } else {
                !c.for_center(v).random_bool(p)
            }
        });
        let hard = consecutive_cycle_candidates([4]);
        let per_node = q + (1.0 - q) * (1.0 - p);
        let mut previous = 1.0f64;
        for nu in [1usize, 2, 3] {
            let est = disjoint_union_acceptance(&constructor, &decider, &hard, nu, 4000, 42);
            let expected = per_node.powi((4 * nu) as i32);
            assert!(
                (est.p_hat - expected).abs() < 0.04,
                "nu={nu}: measured {} vs expected {}",
                est.p_hat,
                expected
            );
            assert!(est.p_hat < previous + 0.02, "acceptance must decay with nu");
            previous = est.p_hat;
        }
    }
}

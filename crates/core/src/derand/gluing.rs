//! The connected gluing construction (Claims 4–5 and the end of Theorem 1).
//!
//! For languages over *connected* graphs the disjoint union of Claim 3 is
//! not available, so the proof glues the hard instances into one connected
//! graph while keeping the decider's behaviour in each part almost
//! independent. The ingredients, all implemented here:
//!
//! * `µ = ⌈1/(2p−1)⌉` anchors per instance, pairwise at distance at least
//!   `2(t + t')`, which exist whenever the diameter is at least
//!   `D = 2µ(t + t')` ([`anchor_count`], [`separation_distance`],
//!   [`anchor_candidates`]).
//! * The event "`D` accepts far from `u`" — all nodes at distance greater
//!   than `t + t'` from `u` accept — and Claim 5's anchor selection: some
//!   `u` in the anchor set has
//!   `Pr[D accepts C(H) far from u] < 1 − β(1−p)/µ`
//!   ([`select_anchor`]).
//! * The gluing itself: subdivide an edge incident to each chosen anchor
//!   twice and ring-connect the inserted nodes
//!   ([`GluingExperiment::build`], delegating to `rlnc_graph::ops`).
//! * The repetition count `ν'` that pushes the glued acceptance
//!   probability below `r` ([`gluing_repetitions`]).

use super::hard_instances::HardInstance;
use crate::algorithm::RandomizedLocalAlgorithm;
use crate::config::{Instance, IoConfig};
use crate::decision::{decide_randomized, decide_randomized_far_from, RandomizedDecider};
use crate::labels::Labeling;
use crate::simulator::Simulator;
use rlnc_graph::ops::{glue_instances, glued_ids, Gluing};
use rlnc_graph::traversal::spread_set;
use rlnc_graph::NodeId;
use rlnc_par::stats::Estimate;
use rlnc_par::trials::MonteCarlo;

/// `µ = ⌈ 1 / (2p − 1) ⌉`: the number of candidate anchors needed so that
/// the "critical string" events of Claim 4 cannot all coexist.
///
/// # Panics
/// Panics unless `1/2 < p ≤ 1`.
pub fn anchor_count(p: f64) -> usize {
    assert!(p > 0.5 && p <= 1.0, "decision guarantee p must be in (1/2, 1]");
    // A hair of slack before the ceiling so that exact reciprocals (e.g.
    // p = 0.6 → 1/(2p−1) = 5) are not bumped up by floating-point error.
    ((1.0 / (2.0 * p - 1.0)) - 1e-9).ceil().max(1.0) as usize
}

/// `D = 2µ(t + t')`: the diameter needed to host `µ` anchors pairwise at
/// distance at least `2(t + t')`.
pub fn separation_distance(t: u32, t_prime: u32, p: f64) -> u32 {
    2 * anchor_count(p) as u32 * (t + t_prime)
}

/// The per-anchor acceptance bound of Claim 5: `1 − β(1−p)/µ`.
pub fn claim5_bound(beta: f64, p: f64, mu: usize) -> f64 {
    1.0 - beta * (1.0 - p) / mu as f64
}

/// The number of glued instances `ν'` needed to push
/// `Pr[C(G) ∈ L] ≤ (1/p)(1 − β(1−p)/µ)^{ν'}` below `r`.
///
/// This follows the derivation in the proof (we need
/// `(1 − β(1−p)/µ)^{ν'} < r·p`); the closed form printed in the paper wraps
/// the `1/p` factor inside the logarithm's argument, which only makes `ν'`
/// larger — we use the tight version and verify the bound in tests.
pub fn gluing_repetitions(r: f64, p: f64, beta: f64) -> usize {
    assert!(r > 0.0 && r <= 1.0);
    assert!(p > 0.5 && p <= 1.0);
    assert!(beta > 0.0 && beta <= 1.0);
    let mu = anchor_count(p);
    let per_part = claim5_bound(beta, p, mu);
    let ratio = (r * p).ln() / per_part.ln();
    1 + ratio.ceil().max(0.0) as usize
}

/// The candidate anchor set `S`: up to `µ` nodes pairwise at distance at
/// least `2(t + t')`, chosen greedily. Returns fewer than `µ` nodes when
/// the instance's diameter is too small (the caller should then use larger
/// hard instances, exactly as Claim 2 permits).
pub fn anchor_candidates(instance: &HardInstance, t: u32, t_prime: u32, p: f64) -> Vec<NodeId> {
    let mu = anchor_count(p);
    spread_set(&instance.graph, 2 * (t + t_prime), mu)
}

/// Estimates `Pr[D accepts C(H) far from u]` — all nodes at distance
/// greater than `t + t'` from `u` accept — over the coins of both
/// algorithms.
pub fn acceptance_far_from<C, D>(
    constructor: &C,
    decider: &D,
    instance: &HardInstance,
    anchor: NodeId,
    exclusion_radius: u32,
    trials: u64,
    seed: u64,
) -> Estimate
where
    C: RandomizedLocalAlgorithm + ?Sized,
    D: RandomizedDecider + ?Sized,
{
    let inst: Instance<'_> = instance.as_instance();
    let sim = Simulator::sequential();
    MonteCarlo::new(trials).with_seed(seed).estimate(|trial_seed| {
        let output = sim.run_randomized(constructor, &inst, trial_seed.child(0));
        let io = IoConfig::from_instance(&inst, &output);
        decide_randomized_far_from(decider, &io, &instance.ids, anchor, exclusion_radius, trial_seed.child(1))
    })
}

/// Claim 5's anchor selection: among the candidates, return the anchor with
/// the smallest estimated `Pr[D accepts C(H) far from u]`, together with
/// that estimate.
pub fn select_anchor<C, D>(
    constructor: &C,
    decider: &D,
    instance: &HardInstance,
    candidates: &[NodeId],
    exclusion_radius: u32,
    trials: u64,
    seed: u64,
) -> (NodeId, Estimate)
where
    C: RandomizedLocalAlgorithm + ?Sized,
    D: RandomizedDecider + ?Sized,
{
    assert!(!candidates.is_empty(), "anchor candidate set must be non-empty");
    candidates
        .iter()
        .enumerate()
        .map(|(i, &u)| {
            let est = acceptance_far_from(
                constructor,
                decider,
                instance,
                u,
                exclusion_radius,
                trials,
                seed.wrapping_add(i as u64),
            );
            (u, est)
        })
        .min_by(|a, b| a.1.p_hat.partial_cmp(&b.1.p_hat).unwrap())
        .unwrap()
}

/// A fully-built glued experiment: the connected instance assembled from
/// hard instances, plus the bookkeeping needed to evaluate the acceptance
/// events of the proof.
pub struct GluingExperiment {
    /// The hard instances that were glued, in order.
    pub parts: Vec<HardInstance>,
    /// The anchor chosen in each part (part-local node index).
    pub anchors: Vec<NodeId>,
    /// The gluing (graph + inserted-node bookkeeping).
    pub gluing: Gluing,
    /// Identity assignment of the glued graph.
    pub ids: rlnc_graph::IdAssignment,
    /// Input labeling of the glued graph (parts' inputs; inserted nodes get
    /// the empty input).
    pub input: Labeling,
    /// The exclusion radius `t + t'` used for the far-from events.
    pub exclusion_radius: u32,
}

impl GluingExperiment {
    /// Glues `parts` at the given anchors (one per part). `t` and `t_prime`
    /// are the constructor's and decider's radii.
    ///
    /// # Panics
    /// Panics if fewer than two parts are provided or anchors do not match.
    pub fn build(parts: Vec<HardInstance>, anchors: Vec<NodeId>, t: u32, t_prime: u32) -> Self {
        assert!(parts.len() >= 2, "gluing needs at least two hard instances");
        assert_eq!(parts.len(), anchors.len(), "one anchor per part required");
        let with_anchors: Vec<(&rlnc_graph::Graph, NodeId)> = parts
            .iter()
            .zip(&anchors)
            .map(|(h, &a)| (&h.graph, a))
            .collect();
        let gluing = glue_instances(&with_anchors);
        let ids = glued_ids(&gluing, &parts.iter().map(|h| &h.ids).collect::<Vec<_>>());
        // Inputs: copy each part's input into its slot; inserted nodes get
        // the empty label ("set arbitrarily" in the paper).
        let mut input = Labeling::empty(gluing.graph.node_count());
        for (gp, part) in gluing.parts.iter().zip(&parts) {
            for local in 0..gp.original_len {
                input.set(
                    NodeId::from_index(gp.offset + local),
                    part.input.get(NodeId::from_index(local)).clone(),
                );
            }
        }
        GluingExperiment {
            parts,
            anchors,
            gluing,
            ids,
            input,
            exclusion_radius: t + t_prime,
        }
    }

    /// The glued graph.
    pub fn graph(&self) -> &rlnc_graph::Graph {
        &self.gluing.graph
    }

    /// The glued instance as an owned [`HardInstance`] (handy for reusing
    /// the boosting estimators).
    pub fn as_hard_instance(&self) -> HardInstance {
        HardInstance::new(self.gluing.graph.clone(), self.input.clone(), self.ids.clone())
    }

    /// The glued-graph node index of the anchor of part `i`.
    pub fn glued_anchor(&self, i: usize) -> NodeId {
        self.gluing.map(i, self.anchors[i])
    }

    /// Estimates `Pr[D accepts C(G)]` on the glued instance.
    pub fn acceptance<C, D>(&self, constructor: &C, decider: &D, trials: u64, seed: u64) -> Estimate
    where
        C: RandomizedLocalAlgorithm + ?Sized,
        D: RandomizedDecider + ?Sized,
    {
        let hard = self.as_hard_instance();
        super::boosting::acceptance_of_constructed(constructor, decider, &hard, trials, seed)
    }

    /// Estimates the probability that `D` accepts `C(G)` *far from every
    /// anchor simultaneously* — the product-form event bounded by
    /// `(1 − β(1−p)/µ)^{ν'}` in the proof.
    pub fn acceptance_far_from_all_anchors<C, D>(
        &self,
        constructor: &C,
        decider: &D,
        trials: u64,
        seed: u64,
    ) -> Estimate
    where
        C: RandomizedLocalAlgorithm + ?Sized,
        D: RandomizedDecider + ?Sized,
    {
        let hard = self.as_hard_instance();
        let inst = hard.as_instance();
        let sim = Simulator::sequential();
        let anchors: Vec<NodeId> = (0..self.parts.len()).map(|i| self.glued_anchor(i)).collect();
        let exclusion = self.exclusion_radius;
        MonteCarlo::new(trials).with_seed(seed).estimate(|trial_seed| {
            let output = sim.run_randomized(constructor, &inst, trial_seed.child(0));
            let io = IoConfig::from_instance(&inst, &output);
            let decision_seed = trial_seed.child(1);
            // A single coin sample for the decider, evaluated once per
            // anchor region: every node outside every anchor's exclusion
            // ball must accept.
            anchors.iter().all(|&anchor| {
                decide_randomized_far_from(decider, &io, &hard.ids, anchor, exclusion, decision_seed)
            })
        })
    }

    /// Full (all-nodes) acceptance of one decider execution, for comparison
    /// against the far-from-anchors relaxation.
    pub fn acceptance_single_execution<C, D>(
        &self,
        constructor: &C,
        decider: &D,
        seed: rlnc_par::rng::SeedSequence,
    ) -> bool
    where
        C: RandomizedLocalAlgorithm + ?Sized,
        D: RandomizedDecider + ?Sized,
    {
        let hard = self.as_hard_instance();
        let inst = hard.as_instance();
        let output = Simulator::sequential().run_randomized(constructor, &inst, seed.child(0));
        let io = IoConfig::from_instance(&inst, &output);
        decide_randomized(decider, &io, &hard.ids, seed.child(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{Coins, FnRandomizedAlgorithm};
    use crate::decision::FnRandomizedDecider;
    use crate::derand::hard_instances::consecutive_cycle_candidates;
    use crate::labels::Label;
    use crate::view::View;
    use rand::Rng;
    use rlnc_graph::traversal::{distance, is_connected};

    #[test]
    fn anchor_count_and_separation() {
        assert_eq!(anchor_count(0.75), 2);
        assert_eq!(anchor_count(0.6), 5);
        assert_eq!(anchor_count(1.0), 1);
        assert_eq!(separation_distance(1, 1, 0.75), 8);
        assert_eq!(separation_distance(0, 1, 0.6), 10);
    }

    #[test]
    #[should_panic(expected = "guarantee p")]
    fn anchor_count_rejects_half() {
        let _ = anchor_count(0.5);
    }

    #[test]
    fn gluing_repetitions_bound_is_sufficient() {
        for &(r, p, beta) in &[(0.9, 0.75, 0.3), (0.6, 0.8, 0.5), (0.99, 0.9, 0.1)] {
            let mu = anchor_count(p);
            let nu = gluing_repetitions(r, p, beta);
            let bound = claim5_bound(beta, p, mu).powi(nu as i32) / p;
            assert!(bound < r, "bound {bound} should be below r={r}");
        }
    }

    #[test]
    fn anchor_candidates_are_far_apart() {
        let hard = consecutive_cycle_candidates([40]).remove(0);
        let candidates = anchor_candidates(&hard, 1, 1, 0.75);
        assert_eq!(candidates.len(), 2);
        let d = distance(&hard.graph, candidates[0], candidates[1]).unwrap();
        assert!(d >= 4);
    }

    fn bernoulli_constructor(q: f64) -> FnRandomizedAlgorithm<impl Fn(&View, &Coins) -> Label + Sync> {
        FnRandomizedAlgorithm::new(0, "bernoulli-bit", move |v: &View, c: &Coins| {
            Label::from_bool(c.for_center(v).random_bool(q))
        })
    }

    fn zero_rejecting_decider(p: f64) -> FnRandomizedDecider<impl Fn(&View, &Coins) -> bool + Sync> {
        FnRandomizedDecider::new(0, "reject-zeros", move |v: &View, c: &Coins| {
            if v.output(v.center_local()).as_bool() {
                true
            } else {
                !c.for_center(v).random_bool(p)
            }
        })
    }

    #[test]
    fn glued_experiment_is_connected_and_bounded_degree() {
        let parts = consecutive_cycle_candidates([20, 24, 28]);
        let anchors = vec![NodeId(0), NodeId(0), NodeId(0)];
        let exp = GluingExperiment::build(parts, anchors, 1, 1);
        assert!(is_connected(exp.graph()));
        assert!(exp.graph().max_degree() <= 3);
        assert_eq!(exp.graph().node_count(), 20 + 24 + 28 + 6);
        assert_eq!(exp.ids.len(), exp.graph().node_count());
        assert_eq!(exp.input.len(), exp.graph().node_count());
        assert_eq!(exp.exclusion_radius, 2);
        // Anchors map into their parts.
        for i in 0..3 {
            let anchor = exp.glued_anchor(i);
            assert_eq!(exp.gluing.origin(anchor), Some((i, NodeId(0))));
        }
    }

    #[test]
    fn select_anchor_prefers_regions_without_failures() {
        // Constructor that outputs 0 only at nodes 0..=1 (near anchor A) and
        // 1 elsewhere; decider rejects zeros deterministically. Anchors: a
        // node near the failure and a node far from it. The far-from event
        // excludes the failure only for the nearby anchor, so the *nearby*
        // anchor has the smaller far-acceptance... wait: far from u excludes
        // nodes close to u, so choosing u near the failure HIDES it and
        // acceptance is high; choosing u far keeps the failure visible and
        // acceptance is low. Claim 5 wants the anchor with LOW far-acceptance.
        let hard = consecutive_cycle_candidates([30]).remove(0);
        let constructor = FnRandomizedAlgorithm::new(0, "fail-near-zero", |v: &View, _c: &Coins| {
            Label::from_bool(v.center_id() > 2)
        });
        let decider = zero_rejecting_decider(1.0);
        let candidates = vec![NodeId(1), NodeId(15)];
        let (chosen, est) = select_anchor(&constructor, &decider, &hard, &candidates, 3, 200, 9);
        assert_eq!(chosen, NodeId(15));
        assert!(est.p_hat < 0.05);
    }

    #[test]
    fn glued_acceptance_decays_with_number_of_parts() {
        let q = 0.8;
        let p = 0.8;
        let constructor = bernoulli_constructor(q);
        let decider = zero_rejecting_decider(p);
        let per_node = q + (1.0 - q) * (1.0 - p);
        let mut previous = 1.0f64;
        for parts_count in [2usize, 4] {
            let parts = consecutive_cycle_candidates(vec![12; parts_count]);
            let anchors = vec![NodeId(0); parts_count];
            let exp = GluingExperiment::build(parts, anchors, 0, 0);
            let est = exp.acceptance(&constructor, &decider, 3000, 17);
            // Every original and inserted node must output 1 or survive the
            // decider, so acceptance ≈ per_node^{node count}.
            let expected = per_node.powi(exp.graph().node_count() as i32);
            assert!(
                (est.p_hat - expected).abs() < 0.05,
                "parts={parts_count}: measured {} vs expected {}",
                est.p_hat,
                expected
            );
            assert!(est.p_hat <= previous + 0.02);
            previous = est.p_hat;
        }
    }

    #[test]
    fn far_from_all_anchors_is_at_least_full_acceptance() {
        let constructor = bernoulli_constructor(0.85);
        let decider = zero_rejecting_decider(0.9);
        let parts = consecutive_cycle_candidates([16, 16]);
        let exp = GluingExperiment::build(parts, vec![NodeId(0), NodeId(0)], 0, 0);
        let full = exp.acceptance(&constructor, &decider, 2500, 3);
        let far = exp.acceptance_far_from_all_anchors(&constructor, &decider, 2500, 3);
        // The far-from event ignores some nodes, so it can only be more
        // likely than full acceptance (up to Monte-Carlo noise).
        assert!(far.p_hat + 0.03 >= full.p_hat);
    }
}

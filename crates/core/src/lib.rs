//! # rlnc-core — the LOCAL model, local decision, and derandomization
//!
//! This crate is the primary contribution of the workspace: a faithful,
//! executable rendering of the framework of *Randomized Local Network
//! Computing* (Feuilloley & Fraigniaud, SPAA 2015).
//!
//! ## Map from paper to modules
//!
//! | Paper section | Module |
//! |---|---|
//! | §2.1 LOCAL model, balls, views | [`view`], [`simulator`], [`rounds`] |
//! | §2.1.1 operational (message-passing) model | [`rounds`] (round backend), [`faults`] (fault plans) |
//! | §2.1.1 order-invariant algorithms | [`order_invariant`] |
//! | §2.1.2 randomized Monte-Carlo algorithms | [`algorithm`] (coins), [`simulator`] |
//! | §2.2 languages, construction & decision tasks | [`labels`], [`config`], [`language`], [`decision`] |
//! | §2.2.3 the promise `F_k` | [`labels::FkPromise`] |
//! | §2.3 randomized decision, BPLD | [`decision`] |
//! | §3 Theorem 1 (Claims 2–5) | [`derand`] |
//! | §4 resilient relaxations, Corollary 1 | [`relaxation`], [`resilient`] |
//! | Appendix A (Claim 1, Ramsey) | [`derand::ramsey`], [`order_invariant`] |
//!
//! Concrete languages (coloring, AMOS, MIS, ...) and concrete construction
//! algorithms (Cole–Vishkin, Luby, random coloring, ...) live in the
//! companion crate `rlnc-langs`; experiment drivers live in
//! `rlnc-experiments`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod config;
pub mod decision;
pub mod derand;
pub mod faults;
pub mod labels;
pub mod language;
pub mod one_sided;
pub mod order_invariant;
pub mod relaxation;
pub mod resilient;
pub mod rounds;
pub mod simulator;
pub mod view;

pub use algorithm::{Coins, FnAlgorithm, FnRandomizedAlgorithm, LocalAlgorithm, RandomizedLocalAlgorithm};
pub use config::{Instance, IoConfig};
pub use decision::{
    decide, decide_randomized, FnDecider, FnRandomizedDecider, LocalDecider, RandomizedDecider,
};
pub use faults::{Adversary, FaultPlan, FaultSchedule, FAULT_PLAN_KINDS};
pub use labels::{FkPromise, Label, Labeling};
pub use language::{DistributedLanguage, FnLanguage, FnLcl, LclLanguage};
pub use one_sided::OneSidedLclDecider;
pub use order_invariant::OrderInvariantTable;
pub use relaxation::{EpsilonSlack, FResilient};
pub use resilient::ResilientDecider;
pub use rounds::{
    decide_randomized_via_rounds, run_randomized_via_rounds, run_via_message_passing,
    GatherAndRun, GatherDecide, GatherRun, MessagePassingAlgorithm, NodeInit, RelabelAdversary,
    RoundEngine, RoundSystem, RoundTopology,
};
pub use simulator::Simulator;
pub use view::View;

/// Commonly used items, for `use rlnc_core::prelude::*`.
pub mod prelude {
    pub use crate::algorithm::{Coins, FnAlgorithm, FnRandomizedAlgorithm, LocalAlgorithm, RandomizedLocalAlgorithm};
    pub use crate::config::{Instance, IoConfig};
    pub use crate::decision::{decide, decide_randomized, FnDecider, FnRandomizedDecider, LocalDecider, RandomizedDecider};
    pub use crate::faults::{Adversary, FaultPlan, FaultSchedule};
    pub use crate::labels::{FkPromise, Label, Labeling};
    pub use crate::language::{bad_ball_count, bad_nodes, DistributedLanguage, FnLanguage, FnLcl, LclLanguage};
    pub use crate::one_sided::OneSidedLclDecider;
    pub use crate::relaxation::{EpsilonSlack, FResilient};
    pub use crate::resilient::ResilientDecider;
    pub use crate::simulator::Simulator;
    pub use crate::view::View;
}

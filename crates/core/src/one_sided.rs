//! The generic one-sided BPLD decider for LCL languages.
//!
//! Promoted from `rlnc-derand` (which re-exports it) so that every layer —
//! the language registry in `rlnc-langs`, the sweep workloads, the
//! derandomization pipeline — can build the standard decider for an
//! arbitrary LCL language without depending on the pipeline crate.

use crate::algorithm::Coins;
use crate::decision::RandomizedDecider;
use crate::language::LclLanguage;
use crate::view::View;
use rand::Rng;

/// The standard one-sided randomized decider for an arbitrary LCL language:
/// a node whose radius-`t` ball is good always accepts; a node whose ball
/// is bad rejects with probability `p` (and accepts with probability
/// `1 − p`).
///
/// On a yes-instance every node accepts deterministically; on a no-instance
/// with `b ≥ 1` bad balls the acceptance probability is `(1 − p)^b`. This
/// is the decider shape Claim 3 and the gluing argument feed on, and it
/// generalizes the coloring-specific `RejectBadBallsDecider` of the sweep
/// workloads: for `ProperColoring` the two are coin-for-coin identical
/// (one `random_bool(p)` draw at bad centers, none at good centers).
///
/// The verdict routes through [`LclLanguage::is_bad_view`], so for the
/// languages shipped in `rlnc-langs` (which override the hook) it performs
/// **zero heap allocations** per node — and even for languages relying on
/// the default hook, the fallback's thread-local scratch stops allocating
/// once warm.
#[derive(Debug, Clone, Copy)]
pub struct OneSidedLclDecider<L> {
    language: L,
    p: f64,
}

impl<L: LclLanguage> OneSidedLclDecider<L> {
    /// Builds the decider with rejection probability `p` at bad-ball
    /// centers.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn new(language: L, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "rejection probability must lie in [0, 1]");
        OneSidedLclDecider { language, p }
    }

    /// The rejection probability at bad-ball centers.
    pub fn rejection_probability(&self) -> f64 {
        self.p
    }

    /// The underlying LCL language.
    pub fn language(&self) -> &L {
        &self.language
    }
}

impl<L: LclLanguage> RandomizedDecider for OneSidedLclDecider<L> {
    fn radius(&self) -> u32 {
        self.language.radius()
    }

    fn accepts(&self, view: &View, coins: &Coins) -> bool {
        if !self.language.is_bad_view(view) {
            return true;
        }
        !coins.for_center(view).random_bool(self.p)
    }

    fn name(&self) -> String {
        format!("one-sided(p={}, {})", self.p, self.language.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IoConfig;
    use crate::decision::decide_randomized;
    use crate::labels::{Label, Labeling};
    use crate::language::FnLcl;
    use rlnc_graph::generators::cycle;
    use rlnc_graph::{IdAssignment, NodeId};
    use rlnc_par::rng::SeedSequence;

    fn coloring_lcl() -> FnLcl<impl Fn(&IoConfig<'_>, NodeId) -> bool + Sync> {
        FnLcl::new("proper-coloring", 1, |io: &IoConfig<'_>, v: NodeId| {
            io.graph
                .neighbor_ids(v)
                .any(|w| io.output.get(w) == io.output.get(v))
        })
    }

    #[test]
    fn accepts_proper_configurations_deterministically() {
        let g = cycle(12);
        let x = Labeling::empty(12);
        let y = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0 % 2) + 1));
        let ids = IdAssignment::consecutive(&g);
        let io = IoConfig::new(&g, &x, &y);
        let d = OneSidedLclDecider::new(coloring_lcl(), 0.8);
        assert_eq!(RandomizedDecider::radius(&d), 1);
        assert!(d.name().contains("0.8"));
        assert_eq!(d.rejection_probability(), 0.8);
        for t in 0..10 {
            assert!(decide_randomized(&d, &io, &ids, SeedSequence::new(t)));
        }
    }

    #[test]
    fn rejects_bad_configurations_per_bad_ball() {
        use crate::decision::acceptance_probability;
        // All nodes share one label: every ball is bad, acceptance = (1-p)^n.
        let g = cycle(6);
        let x = Labeling::empty(6);
        let y = Labeling::from_fn(&g, |_| Label::from_u64(1));
        let ids = IdAssignment::consecutive(&g);
        let io = IoConfig::new(&g, &x, &y);
        let p = 0.5;
        let d = OneSidedLclDecider::new(coloring_lcl(), p);
        let est = acceptance_probability(&d, &io, &ids, 6000, 9);
        let expected = (1.0 - p).powi(6);
        assert!(
            (est.p_hat - expected).abs() < 0.02,
            "measured {} vs theory {expected}",
            est.p_hat
        );
    }

    #[test]
    #[should_panic(expected = "rejection probability")]
    fn rejects_bad_p() {
        let _ = OneSidedLclDecider::new(coloring_lcl(), -0.1);
    }
}

//! Input/output configurations and instances (§2.2.1 of the paper).
//!
//! * An **input configuration** is a pair `(G, x)`.
//! * An **output configuration** is a pair `(G, y)`.
//! * An **input-output configuration** `(G, (x, y))` is what a distributed
//!   language contains (membership never depends on identities).
//! * An **instance** `(G, x, id)` is what a construction algorithm runs on;
//!   a decision algorithm runs on `(G, (x, y), id)`.
//!
//! The structs below are thin borrowing views so experiments can re-use one
//! graph across thousands of Monte-Carlo trials without cloning it.

use crate::labels::Labeling;
use rlnc_graph::{Graph, IdAssignment};

/// An input configuration `(G, x)` together with an identity assignment —
/// i.e. an *instance* of a construction task.
#[derive(Debug, Clone, Copy)]
pub struct Instance<'a> {
    /// The network.
    pub graph: &'a Graph,
    /// The input labeling `x`.
    pub input: &'a Labeling,
    /// The identity assignment `id`.
    pub ids: &'a IdAssignment,
}

impl<'a> Instance<'a> {
    /// Bundles a graph, input, and identity assignment into an instance.
    ///
    /// # Panics
    /// Panics if the labeling or identity assignment does not cover exactly
    /// the nodes of the graph.
    pub fn new(graph: &'a Graph, input: &'a Labeling, ids: &'a IdAssignment) -> Self {
        assert_eq!(graph.node_count(), input.len(), "input labeling size mismatch");
        assert_eq!(graph.node_count(), ids.len(), "identity assignment size mismatch");
        Instance { graph, input, ids }
    }

    /// Number of nodes in the instance.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }
}

/// An input-output configuration `(G, (x, y))` — the object a distributed
/// language contains or not. Identity-free by design, mirroring the paper.
#[derive(Debug, Clone, Copy)]
pub struct IoConfig<'a> {
    /// The network.
    pub graph: &'a Graph,
    /// The input labeling `x`.
    pub input: &'a Labeling,
    /// The output labeling `y`.
    pub output: &'a Labeling,
}

impl<'a> IoConfig<'a> {
    /// Bundles a graph with its input and output labelings.
    ///
    /// # Panics
    /// Panics if either labeling does not cover exactly the nodes of the graph.
    pub fn new(graph: &'a Graph, input: &'a Labeling, output: &'a Labeling) -> Self {
        assert_eq!(graph.node_count(), input.len(), "input labeling size mismatch");
        assert_eq!(graph.node_count(), output.len(), "output labeling size mismatch");
        IoConfig { graph, input, output }
    }

    /// The configuration obtained from an instance plus a constructed output.
    pub fn from_instance(instance: &Instance<'a>, output: &'a Labeling) -> Self {
        IoConfig::new(instance.graph, instance.input, output)
    }

    /// Number of nodes in the configuration.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::{Label, Labeling};
    use rlnc_graph::generators::cycle;
    use rlnc_graph::IdAssignment;

    #[test]
    fn instance_and_io_config_construction() {
        let g = cycle(6);
        let x = Labeling::empty(6);
        let y = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0 % 3)));
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        assert_eq!(inst.node_count(), 6);
        let io = IoConfig::from_instance(&inst, &y);
        assert_eq!(io.node_count(), 6);
        assert_eq!(io.output.get(rlnc_graph::NodeId(4)).as_u64(), 1);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn instance_rejects_wrong_labeling_size() {
        let g = cycle(6);
        let x = Labeling::empty(5);
        let ids = IdAssignment::consecutive(&g);
        let _ = Instance::new(&g, &x, &ids);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn io_config_rejects_wrong_output_size() {
        let g = cycle(4);
        let x = Labeling::empty(4);
        let y = Labeling::empty(3);
        let _ = IoConfig::new(&g, &x, &y);
    }
}

//! Order-invariant algorithms (§2.1.1, Claim 1, Appendix A).
//!
//! An algorithm is **order-invariant** if its output at a node depends on
//! the identities in the node's view only through their *relative order*.
//! The paper uses three facts about such algorithms, all of which are
//! operationalized here:
//!
//! 1. For bounded degree and bounded labels there are only finitely many
//!    order-invariant `t`-round algorithms — because there are finitely
//!    many ordered labeled balls. [`collect_signatures`] enumerates the
//!    ball types realized by a family of instances, and
//!    [`enumerate_algorithms`] walks every function from those types to a
//!    finite output alphabet (the set `H` of Claim 2 is built from this).
//! 2. Any candidate algorithm can be *tested* for order-invariance by
//!    re-running it under order-preserving relabelings
//!    ([`check_order_invariance`]).
//! 3. Any algorithm can be *lifted* to an order-invariant one by
//!    canonically re-assigning identities from a fixed ID set before
//!    running it — the Appendix-A construction, implemented in
//!    [`crate::derand::ramsey`].

use crate::algorithm::LocalAlgorithm;
use crate::config::Instance;
use crate::labels::Label;
use crate::simulator::Simulator;
use crate::view::View;
use rlnc_graph::ball::BallSignature;
use rlnc_graph::{Graph, IdAssignment};
use std::collections::HashMap;

/// An explicit order-invariant `t`-round algorithm: a lookup table from
/// view signatures (which deliberately erase identity values) to outputs.
///
/// Views whose signature is not in the table produce the `default` output;
/// enumeration over a fixed family of instances always populates every
/// signature that can occur in that family.
#[derive(Debug, Clone)]
pub struct OrderInvariantTable {
    radius: u32,
    name: String,
    table: HashMap<BallSignature, Label>,
    default: Label,
}

impl OrderInvariantTable {
    /// Creates a table-driven order-invariant algorithm.
    pub fn new(
        radius: u32,
        name: impl Into<String>,
        table: HashMap<BallSignature, Label>,
        default: Label,
    ) -> Self {
        OrderInvariantTable {
            radius,
            name: name.into(),
            table,
            default,
        }
    }

    /// Number of ball types the table distinguishes.
    pub fn table_size(&self) -> usize {
        self.table.len()
    }

    /// The output assigned to a specific ball type, if present.
    pub fn lookup(&self, signature: &BallSignature) -> Option<&Label> {
        self.table.get(signature)
    }
}

impl LocalAlgorithm for OrderInvariantTable {
    fn radius(&self) -> u32 {
        self.radius
    }

    fn output(&self, view: &View) -> Label {
        self.table
            .get(&view.signature())
            .cloned()
            .unwrap_or_else(|| self.default.clone())
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

/// Collects the distinct view signatures of radius `t` realized by a family
/// of instances, in a deterministic order (first occurrence wins).
pub fn collect_signatures(instances: &[Instance<'_>], radius: u32) -> Vec<BallSignature> {
    let mut seen = HashMap::new();
    let mut out = Vec::new();
    for instance in instances {
        for v in instance.graph.nodes() {
            let sig = View::collect(instance, v, radius).signature();
            if !seen.contains_key(&sig) {
                seen.insert(sig.clone(), out.len());
                out.push(sig);
            }
        }
    }
    out
}

/// The number of distinct order-invariant `t`-round algorithms over the
/// given ball types and output alphabet: `|outputs|^{#types}` — the finite
/// `N` from the proof of Claim 2 (restricted to the realized ball types).
pub fn algorithm_count(signature_count: usize, alphabet_size: usize) -> u128 {
    (alphabet_size as u128).checked_pow(signature_count as u32).unwrap_or(u128::MAX)
}

/// Enumerates every order-invariant `t`-round algorithm over the given ball
/// types and output alphabet, lazily (there are
/// `|outputs|^{#signatures}` of them — keep both small).
pub fn enumerate_algorithms<'a>(
    signatures: &'a [BallSignature],
    outputs: &'a [Label],
    radius: u32,
) -> impl Iterator<Item = OrderInvariantTable> + 'a {
    let total = algorithm_count(signatures.len(), outputs.len());
    assert!(
        total <= 1 << 24,
        "enumeration of {total} order-invariant algorithms is too large; restrict the family"
    );
    let count = total as u64;
    (0..count).map(move |index| {
        let mut table = HashMap::with_capacity(signatures.len());
        let mut rest = index;
        for sig in signatures {
            let choice = (rest % outputs.len() as u64) as usize;
            rest /= outputs.len() as u64;
            table.insert(sig.clone(), outputs[choice].clone());
        }
        OrderInvariantTable::new(
            radius,
            format!("order-invariant#{index}"),
            table,
            outputs[0].clone(),
        )
    })
}

/// Checks empirically that an algorithm is order-invariant on a given
/// instance: its outputs must be identical under every supplied
/// order-preserving re-assignment of the identities.
///
/// Returns `true` if all runs agree. (A `true` answer is evidence, not
/// proof; a `false` answer is a counterexample.)
pub fn check_order_invariance<A: LocalAlgorithm + ?Sized>(
    algo: &A,
    graph: &Graph,
    input: &crate::labels::Labeling,
    base_ids: &IdAssignment,
    monotone_maps: &[&dyn Fn(u64) -> u64],
) -> bool {
    // The auto-detecting simulator: parallel when safe, sequential inside
    // an already-parallel region (PR 3's nested-parallelism convention).
    let sim = Simulator::new();
    let base_instance = Instance::new(graph, input, base_ids);
    let reference = sim.run(algo, &base_instance);
    monotone_maps.iter().all(|map| {
        let remapped = base_ids.map_monotone(|x| map(x));
        let instance = Instance::new(graph, input, &remapped);
        sim.run(algo, &instance) == reference
    })
}

/// Convenience monotone maps used by the order-invariance checks: affine
/// stretches and a quadratic stretch, all strictly increasing on `u64`
/// identities below 2^20.
pub fn standard_monotone_maps() -> Vec<Box<dyn Fn(u64) -> u64 + Sync>> {
    vec![
        Box::new(|x| x + 1000),
        Box::new(|x| 17 * x),
        Box::new(|x| 1000 * x + 3),
        Box::new(|x| x * x + x),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::FnAlgorithm;
    use crate::labels::Labeling;
    use rlnc_graph::generators::{cycle, path};

    #[test]
    fn collect_signatures_groups_equivalent_balls() {
        let g = cycle(12);
        let x = Labeling::empty(12);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let sigs = collect_signatures(&[inst], 1);
        // On the consecutive-ID cycle there are exactly three radius-1 ball
        // types: interior (id order low-mid-high), the ball containing the
        // minimum id, and the ball containing the maximum id.
        assert_eq!(sigs.len(), 3);
    }

    #[test]
    fn algorithm_count_and_enumeration_agree() {
        let g = cycle(8);
        let x = Labeling::empty(8);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let sigs = collect_signatures(&[inst], 0);
        // Radius 0 on a cycle with no inputs: a single ball type.
        assert_eq!(sigs.len(), 1);
        let outputs: Vec<Label> = (0..3).map(Label::from_u64).collect();
        assert_eq!(algorithm_count(sigs.len(), outputs.len()), 3);
        let algos: Vec<_> = enumerate_algorithms(&sigs, &outputs, 0).collect();
        assert_eq!(algos.len(), 3);
        // They are pairwise distinct as functions.
        let view = View::collect(&Instance::new(&g, &x, &ids), rlnc_graph::NodeId(0), 0);
        let outs: std::collections::HashSet<u64> =
            algos.iter().map(|a| a.output(&view).as_u64()).collect();
        assert_eq!(outs.len(), 3);
    }

    #[test]
    fn table_lookup_and_default() {
        let g = path(5);
        let x = Labeling::empty(5);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let sigs = collect_signatures(&[inst], 1);
        let mut table = HashMap::new();
        table.insert(sigs[0].clone(), Label::from_u64(7));
        let algo = OrderInvariantTable::new(1, "partial", table, Label::from_u64(9));
        assert_eq!(algo.table_size(), 1);
        assert!(algo.lookup(&sigs[0]).is_some());
        assert!(algo.lookup(&sigs[1]).is_none());
        // Signature 0 is the view of node 0 (degree-1 endpoint, min id).
        let inst2 = Instance::new(&g, &x, &ids);
        let v0 = View::collect(&inst2, rlnc_graph::NodeId(0), 1);
        assert_eq!(algo.output(&v0).as_u64(), 7);
    }

    #[test]
    fn rank_based_algorithm_is_order_invariant() {
        let g = cycle(10);
        let x = Labeling::empty(10);
        let ids = IdAssignment::consecutive(&g);
        let algo = FnAlgorithm::new(1, "rank-in-ball", |v: &View| {
            Label::from_u64(v.center_rank() as u64)
        });
        let maps = standard_monotone_maps();
        let map_refs: Vec<&dyn Fn(u64) -> u64> =
            maps.iter().map(|m| m.as_ref() as &dyn Fn(u64) -> u64).collect();
        assert!(check_order_invariance(&algo, &g, &x, &ids, &map_refs));
    }

    #[test]
    fn id_value_algorithm_is_not_order_invariant() {
        let g = cycle(10);
        let x = Labeling::empty(10);
        let ids = IdAssignment::consecutive(&g);
        let algo = FnAlgorithm::new(0, "id-mod-3", |v: &View| Label::from_u64(v.center_id() % 3));
        let maps = standard_monotone_maps();
        let map_refs: Vec<&dyn Fn(u64) -> u64> =
            maps.iter().map(|m| m.as_ref() as &dyn Fn(u64) -> u64).collect();
        assert!(!check_order_invariance(&algo, &g, &x, &ids, &map_refs));
    }

    #[test]
    fn enumerated_tables_are_order_invariant() {
        let g = cycle(9);
        let x = Labeling::empty(9);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let sigs = collect_signatures(&[inst], 1);
        let outputs = vec![Label::from_u64(0), Label::from_u64(1)];
        let maps = standard_monotone_maps();
        let map_refs: Vec<&dyn Fn(u64) -> u64> =
            maps.iter().map(|m| m.as_ref() as &dyn Fn(u64) -> u64).collect();
        for algo in enumerate_algorithms(&sigs, &outputs, 1).take(8) {
            assert!(check_order_invariance(&algo, &g, &x, &ids, &map_refs));
        }
    }
}

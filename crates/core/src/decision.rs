//! Distributed decision: deterministic and randomized local deciders, the
//! acceptance semantics, and empirical LD / BPLD guarantee estimation
//! (§2.2.2, §2.3 of the paper).
//!
//! A decider runs at every node on the radius-`t'` view of an input-output
//! configuration (with identities) and outputs `true` (accept) or `false`
//! (reject). The configuration is **accepted** iff *every* node accepts.
//! A randomized decider decides a language `L` with guarantee `p > 1/2` if
//! for every configuration in `L` all nodes accept with probability ≥ p,
//! and for every configuration not in `L` at least one node rejects with
//! probability ≥ p (Eq. (1) of the paper).

use crate::algorithm::Coins;
use crate::config::IoConfig;
use crate::language::DistributedLanguage;
use crate::view::View;
use rayon::prelude::*;
use rlnc_par::rng::SeedSequence;
use rlnc_par::stats::Estimate;
use rlnc_par::trials::MonteCarlo;
use rlnc_graph::{IdAssignment, NodeId};

/// A deterministic local decider (the algorithms whose existence defines
/// the class LD).
pub trait LocalDecider: Sync {
    /// Number of communication rounds `t'`.
    fn radius(&self) -> u32;

    /// Verdict of the node at the center of `view` (which carries outputs).
    fn accepts(&self, view: &View) -> bool;

    /// Human-readable name used in experiment tables.
    fn name(&self) -> String {
        std::any::type_name::<Self>().rsplit("::").next().unwrap_or("decider").to_string()
    }
}

/// A randomized Monte-Carlo local decider (the algorithms whose existence
/// defines the class BPLD).
pub trait RandomizedDecider: Sync {
    /// Number of communication rounds `t'`.
    fn radius(&self) -> u32;

    /// Verdict of the node at the center of `view`, with access to the
    /// private coins of every node in the view.
    fn accepts(&self, view: &View, coins: &Coins) -> bool;

    /// Human-readable name used in experiment tables.
    fn name(&self) -> String {
        std::any::type_name::<Self>().rsplit("::").next().unwrap_or("decider").to_string()
    }
}

/// Every deterministic decider is a randomized decider that ignores its
/// coins (`LD ⊆ BPLD`).
impl<D: LocalDecider> RandomizedDecider for D {
    fn radius(&self) -> u32 {
        LocalDecider::radius(self)
    }

    fn accepts(&self, view: &View, _coins: &Coins) -> bool {
        LocalDecider::accepts(self, view)
    }

    fn name(&self) -> String {
        LocalDecider::name(self)
    }
}

/// A deterministic decider defined by a closure.
pub struct FnDecider<F> {
    radius: u32,
    name: String,
    f: F,
}

impl<F: Fn(&View) -> bool + Sync> FnDecider<F> {
    /// Wraps a closure as a `radius`-round deterministic decider.
    pub fn new(radius: u32, name: impl Into<String>, f: F) -> Self {
        FnDecider {
            radius,
            name: name.into(),
            f,
        }
    }
}

impl<F: Fn(&View) -> bool + Sync> LocalDecider for FnDecider<F> {
    fn radius(&self) -> u32 {
        self.radius
    }

    fn accepts(&self, view: &View) -> bool {
        (self.f)(view)
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

/// A randomized decider defined by a closure.
pub struct FnRandomizedDecider<F> {
    radius: u32,
    name: String,
    f: F,
}

impl<F: Fn(&View, &Coins) -> bool + Sync> FnRandomizedDecider<F> {
    /// Wraps a closure as a `radius`-round randomized decider.
    pub fn new(radius: u32, name: impl Into<String>, f: F) -> Self {
        FnRandomizedDecider {
            radius,
            name: name.into(),
            f,
        }
    }
}

impl<F: Fn(&View, &Coins) -> bool + Sync> RandomizedDecider for FnRandomizedDecider<F> {
    fn radius(&self) -> u32 {
        self.radius
    }

    fn accepts(&self, view: &View, coins: &Coins) -> bool {
        (self.f)(view, coins)
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

/// Runs a deterministic decider at every node; returns the rejecting nodes.
pub fn rejecting_nodes<D: LocalDecider + ?Sized>(
    decider: &D,
    io: &IoConfig<'_>,
    ids: &IdAssignment,
) -> Vec<NodeId> {
    let t = decider.radius();
    io.graph
        .nodes()
        .filter(|&v| {
            let view = View::collect_io(io, ids, v, t);
            !decider.accepts(&view)
        })
        .collect()
}

/// Global verdict of a deterministic decider: accepted iff every node accepts.
pub fn decide<D: LocalDecider + ?Sized>(decider: &D, io: &IoConfig<'_>, ids: &IdAssignment) -> bool {
    let t = decider.radius();
    io.graph.nodes().all(|v| {
        let view = View::collect_io(io, ids, v, t);
        decider.accepts(&view)
    })
}

/// Runs one execution of a randomized decider (one coin sample); returns
/// the rejecting nodes.
pub fn rejecting_nodes_randomized<D: RandomizedDecider + ?Sized>(
    decider: &D,
    io: &IoConfig<'_>,
    ids: &IdAssignment,
    execution_seed: SeedSequence,
) -> Vec<NodeId> {
    let t = decider.radius();
    let coins = Coins::new(execution_seed);
    io.graph
        .nodes()
        .filter(|&v| {
            let view = View::collect_io(io, ids, v, t);
            !decider.accepts(&view, &coins)
        })
        .collect()
}

/// Global verdict of one execution of a randomized decider.
pub fn decide_randomized<D: RandomizedDecider + ?Sized>(
    decider: &D,
    io: &IoConfig<'_>,
    ids: &IdAssignment,
    execution_seed: SeedSequence,
) -> bool {
    let t = decider.radius();
    let coins = Coins::new(execution_seed);
    io.graph.nodes().all(|v| {
        let view = View::collect_io(io, ids, v, t);
        decider.accepts(&view, &coins)
    })
}

/// Same as [`decide_randomized`], but only quantifies over the nodes at
/// distance **greater than** `exclusion_radius` from `anchor` — the
/// "accepts far from `u`" event used in Claims 4 and 5 of the paper.
pub fn decide_randomized_far_from<D: RandomizedDecider + ?Sized>(
    decider: &D,
    io: &IoConfig<'_>,
    ids: &IdAssignment,
    anchor: NodeId,
    exclusion_radius: u32,
    execution_seed: SeedSequence,
) -> bool {
    let t = decider.radius();
    let coins = Coins::new(execution_seed);
    let distances = rlnc_graph::bfs_distances(io.graph, anchor);
    io.graph.nodes().all(|v| {
        if distances[v.index()] <= exclusion_radius {
            return true; // nodes near the anchor do not participate
        }
        let view = View::collect_io(io, ids, v, t);
        decider.accepts(&view, &coins)
    })
}

/// Estimates the acceptance probability `Pr[all nodes accept]` of a
/// randomized decider on a fixed configuration.
pub fn acceptance_probability<D: RandomizedDecider + ?Sized>(
    decider: &D,
    io: &IoConfig<'_>,
    ids: &IdAssignment,
    trials: u64,
    seed: u64,
) -> Estimate {
    MonteCarlo::new(trials)
        .with_seed(seed)
        .estimate(|s| decide_randomized(decider, io, ids, s))
}

/// Empirical check that a decider decides `language` with guarantee at
/// least `p` on the provided yes/no configurations (Eq. (1)): returns the
/// smallest estimated guarantee across all supplied configurations.
pub struct GuaranteeReport {
    /// Per-configuration estimates of `Pr[all accept]` on yes-instances.
    pub yes_acceptance: Vec<Estimate>,
    /// Per-configuration estimates of `Pr[some node rejects]` on no-instances.
    pub no_rejection: Vec<Estimate>,
}

impl GuaranteeReport {
    /// The empirical guarantee: the minimum over all configurations of the
    /// relevant success probability point estimate.
    pub fn guarantee(&self) -> f64 {
        self.yes_acceptance
            .iter()
            .map(|e| e.p_hat)
            .chain(self.no_rejection.iter().map(|e| e.p_hat))
            .fold(1.0, f64::min)
    }

    /// Conservative (lower-confidence-bound) guarantee.
    pub fn guarantee_lower_bound(&self) -> f64 {
        self.yes_acceptance
            .iter()
            .map(|e| e.lower)
            .chain(self.no_rejection.iter().map(|e| e.lower))
            .fold(1.0, f64::min)
    }

    /// Returns `true` if the empirical guarantee exceeds 1/2 — the BPLD
    /// membership criterion.
    pub fn satisfies_bpld(&self) -> bool {
        self.guarantee() > 0.5
    }
}

/// Estimates the guarantee of `decider` for `language` on a finite set of
/// labeled configurations. Configurations are classified as yes/no by the
/// language itself, so callers can simply pass interesting configurations.
pub fn estimate_guarantee<D, L>(
    decider: &D,
    language: &L,
    configs: &[(&IoConfig<'_>, &IdAssignment)],
    trials: u64,
    seed: u64,
) -> GuaranteeReport
where
    D: RandomizedDecider + ?Sized,
    L: DistributedLanguage + ?Sized,
{
    let results: Vec<(bool, Estimate)> = configs
        .par_iter()
        .enumerate()
        .map(|(i, (io, ids))| {
            let is_member = language.contains(io);
            let mc = MonteCarlo::new(trials).with_seed(seed.wrapping_add(i as u64)).sequential();
            let est = if is_member {
                mc.estimate(|s| decide_randomized(decider, io, ids, s))
            } else {
                mc.estimate(|s| !decide_randomized(decider, io, ids, s))
            };
            (is_member, est)
        })
        .collect();
    let mut yes = Vec::new();
    let mut no = Vec::new();
    for (is_member, est) in results {
        if is_member {
            yes.push(est);
        } else {
            no.push(est);
        }
    }
    GuaranteeReport {
        yes_acceptance: yes,
        no_rejection: no,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::{Label, Labeling};
    use crate::language::FnLcl;
    use rand::Rng;
    use rlnc_graph::generators::cycle;

    fn proper_coloring_decider() -> FnDecider<impl Fn(&View) -> bool + Sync> {
        FnDecider::new(1, "proper-coloring", |view: &View| {
            let mine = view.output(view.center_local());
            view.center_neighbors()
                .iter()
                .all(|&i| view.output(i) != mine)
        })
    }

    #[test]
    fn deterministic_decider_accepts_proper_colorings() {
        let g = cycle(8);
        let x = Labeling::empty(8);
        let ids = IdAssignment::consecutive(&g);
        let y = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0 % 2)));
        let io = IoConfig::new(&g, &x, &y);
        let d = proper_coloring_decider();
        assert!(decide(&d, &io, &ids));
        assert!(rejecting_nodes(&d, &io, &ids).is_empty());
    }

    #[test]
    fn deterministic_decider_rejects_conflicts_locally() {
        let g = cycle(8);
        let x = Labeling::empty(8);
        let ids = IdAssignment::consecutive(&g);
        let mut y = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0 % 2)));
        y.set(NodeId(3), Label::from_u64(0)); // conflicts with node 2 and 4.
        let io = IoConfig::new(&g, &x, &y);
        let d = proper_coloring_decider();
        assert!(!decide(&d, &io, &ids));
        let rejecting = rejecting_nodes(&d, &io, &ids);
        assert!(rejecting.contains(&NodeId(3)));
        assert!(rejecting.len() >= 2);
    }

    #[test]
    fn randomized_decider_guarantee_estimation() {
        // "Accept always on good configs, reject each bad node with
        // probability 0.8" — a 1-sided-error decider for proper coloring.
        let g = cycle(6);
        let x = Labeling::empty(6);
        let ids = IdAssignment::consecutive(&g);
        let good = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0 % 2)));
        let bad = Labeling::from_fn(&g, |_| Label::from_u64(1));
        let io_good = IoConfig::new(&g, &x, &good);
        let io_bad = IoConfig::new(&g, &x, &bad);

        let decider = FnRandomizedDecider::new(1, "noisy", |view: &View, coins: &Coins| {
            let mine = view.output(view.center_local());
            let conflict = view
                .center_neighbors()
                .iter()
                .any(|&i| view.output(i) == mine);
            if !conflict {
                true
            } else {
                !coins.for_center(view).random_bool(0.8)
            }
        });

        let lang = FnLcl::new("proper", 1, |io: &IoConfig<'_>, v: NodeId| {
            io.graph.neighbor_ids(v).any(|w| io.output.get(w) == io.output.get(v))
        });

        let report = estimate_guarantee(
            &decider,
            &lang,
            &[(&io_good, &ids), (&io_bad, &ids)],
            2000,
            7,
        );
        assert_eq!(report.yes_acceptance.len(), 1);
        assert_eq!(report.no_rejection.len(), 1);
        // Yes-instances are always accepted; no-instances have 6 bad nodes,
        // each rejecting w.p. 0.8, so rejection probability is huge.
        assert!(report.yes_acceptance[0].p_hat > 0.99);
        assert!(report.no_rejection[0].p_hat > 0.9);
        assert!(report.satisfies_bpld());
        assert!(report.guarantee() > 0.5);
        assert!(report.guarantee_lower_bound() > 0.5);
    }

    #[test]
    fn far_from_decision_ignores_nodes_near_anchor() {
        let g = cycle(20);
        let x = Labeling::empty(20);
        let ids = IdAssignment::consecutive(&g);
        // Improper only near node 0.
        let mut y = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0 % 2)));
        y.set(NodeId(1), Label::from_u64(0));
        let io = IoConfig::new(&g, &x, &y);
        let d = proper_coloring_decider();
        assert!(!decide(&d, &io, &ids));
        // Excluding a radius-3 neighborhood of node 0 hides the conflict.
        assert!(decide_randomized_far_from(
            &d,
            &io,
            &ids,
            NodeId(0),
            3,
            SeedSequence::new(0)
        ));
        // Excluding only radius 0 does not.
        assert!(!decide_randomized_far_from(
            &d,
            &io,
            &ids,
            NodeId(10),
            0,
            SeedSequence::new(0)
        ));
    }

    #[test]
    fn acceptance_probability_matches_expectation() {
        // Decider where every node independently accepts with prob 0.9 on a
        // 4-cycle: global acceptance 0.9^4 ≈ 0.656.
        let g = cycle(4);
        let x = Labeling::empty(4);
        let y = Labeling::empty(4);
        let ids = IdAssignment::consecutive(&g);
        let io = IoConfig::new(&g, &x, &y);
        let d = FnRandomizedDecider::new(0, "bernoulli", |view: &View, coins: &Coins| {
            coins.for_center(view).random_bool(0.9)
        });
        let est = acceptance_probability(&d, &io, &ids, 4000, 3);
        assert!((est.p_hat - 0.9f64.powi(4)).abs() < 0.03);
    }
}

//! The Corollary-1 randomized decider for `f`-resilient relaxations.
//!
//! Corollary 1 proves `L_f ∈ BPLD` by exhibiting a zero-error-radius
//! randomized decider: every node inspects its radius-`t` ball; nodes whose
//! ball is good accept; nodes whose ball is bad accept with probability `p`
//! and reject with probability `1 − p`, where
//!
//! `p ∈ ( 2^{-1/f}, 2^{-1/(f+1)} )`.
//!
//! * If `(G,(x,y)) ∈ L_f`, there are at most `f` bad balls, so all nodes
//!   accept with probability `p^{|F(G)|} ≥ p^f > 1/2`.
//! * If `(G,(x,y)) ∉ L_f`, there are at least `f + 1` bad balls, so some
//!   node rejects with probability `1 − p^{|F(G)|} ≥ 1 − p^{f+1} > 1/2`.
//!
//! This is the decider fed into Theorem 1 to conclude that randomization
//! does not help for `f`-resilient construction tasks.

use crate::algorithm::Coins;
use crate::config::IoConfig;
use crate::decision::RandomizedDecider;
use crate::language::LclLanguage;
use crate::view::View;
use rand::Rng;
use rlnc_graph::NodeId;

/// The acceptance probability used at bad-ball centers: the geometric-style
/// midpoint of the open interval `(2^{-1/f}, 2^{-1/(f+1)})` prescribed by
/// the proof of Corollary 1.
pub fn resilient_acceptance_probability(f: usize) -> f64 {
    assert!(f > 0, "the f-resilient decider requires f > 0");
    let exponent = 0.5 * (1.0 / f as f64 + 1.0 / (f as f64 + 1.0));
    2f64.powf(-exponent)
}

/// Theoretical acceptance probability of the decider on a configuration
/// with `bad` bad balls: `p^{bad}`.
pub fn theoretical_acceptance(f: usize, bad: usize) -> f64 {
    resilient_acceptance_probability(f).powi(bad as i32)
}

/// The Corollary-1 decider for `L_f`, parameterized by the underlying LCL
/// language (which supplies `Bad(L)` and the checking radius `t`).
#[derive(Debug, Clone)]
pub struct ResilientDecider<L> {
    language: L,
    f: usize,
    p: f64,
}

impl<L: LclLanguage> ResilientDecider<L> {
    /// Builds the decider for the `f`-resilient relaxation of `language`.
    pub fn new(language: L, f: usize) -> Self {
        let p = resilient_acceptance_probability(f);
        ResilientDecider { language, f, p }
    }

    /// Builds the decider with an explicit acceptance probability (for
    /// sensitivity experiments outside the prescribed interval).
    pub fn with_probability(language: L, f: usize, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        ResilientDecider { language, f, p }
    }

    /// The resilience parameter `f`.
    pub fn resilience(&self) -> usize {
        self.f
    }

    /// The acceptance probability used at bad-ball centers.
    pub fn acceptance_probability(&self) -> f64 {
        self.p
    }

    /// The underlying LCL language.
    pub fn language(&self) -> &L {
        &self.language
    }

    /// Checks the two strict inequalities from the proof of Corollary 1:
    /// `p^f > 1/2` and `1 − p^{f+1} > 1/2`.
    pub fn interval_is_valid(&self) -> bool {
        self.p.powi(self.f as i32) > 0.5 && self.p.powi(self.f as i32 + 1) < 0.5
    }

    /// Evaluates whether a *ball* (the decider's view of one node, taken
    /// from a full configuration) is bad, by re-checking the LCL predicate
    /// on the host configuration. Exposed for tests.
    pub fn is_bad_center(&self, io: &IoConfig<'_>, v: NodeId) -> bool {
        self.language.is_bad_ball(io, v)
    }
}

impl<L: LclLanguage> RandomizedDecider for ResilientDecider<L> {
    fn radius(&self) -> u32 {
        self.language.radius()
    }

    fn accepts(&self, view: &View, coins: &Coins) -> bool {
        // An LCL predicate of radius t evaluated at the center of a
        // radius-t view only reads data inside the view, so the view-native
        // hook is exact — and allocation-free for the languages that
        // override it (all of `rlnc-langs`).
        if !self.language.is_bad_view(view) {
            return true;
        }
        coins.for_center(view).random_bool(self.p)
    }

    fn name(&self) -> String {
        format!("resilient-decider(f={}, {})", self.f, self.language.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::{acceptance_probability, decide_randomized};
    use crate::labels::{Label, Labeling};
    use crate::language::FnLcl;
    use rlnc_graph::generators::cycle;
    use rlnc_graph::IdAssignment;
    use rlnc_par::rng::SeedSequence;

    fn coloring_lcl() -> FnLcl<impl Fn(&IoConfig<'_>, NodeId) -> bool + Sync> {
        FnLcl::new("proper-coloring", 1, |io: &IoConfig<'_>, v: NodeId| {
            io.graph
                .neighbor_ids(v)
                .any(|w| io.output.get(w) == io.output.get(v))
        })
    }

    #[test]
    fn acceptance_probability_lies_in_prescribed_interval() {
        for f in 1..=16 {
            let p = resilient_acceptance_probability(f);
            let lower = 2f64.powf(-1.0 / f as f64);
            let upper = 2f64.powf(-1.0 / (f as f64 + 1.0));
            assert!(lower < p && p < upper, "f={f}: p={p} outside ({lower}, {upper})");
            // The two strict inequalities the proof needs.
            assert!(p.powi(f as i32) > 0.5);
            assert!(p.powi(f as i32 + 1) < 0.5);
        }
    }

    #[test]
    #[should_panic(expected = "f > 0")]
    fn zero_resilience_rejected() {
        let _ = resilient_acceptance_probability(0);
    }

    #[test]
    fn decider_always_accepts_proper_configurations() {
        let g = cycle(10);
        let x = Labeling::empty(10);
        let y = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0 % 2)));
        let ids = IdAssignment::consecutive(&g);
        let io = IoConfig::new(&g, &x, &y);
        let decider = ResilientDecider::new(coloring_lcl(), 2);
        assert!(decider.interval_is_valid());
        for trial in 0..50 {
            assert!(decide_randomized(
                &decider,
                &io,
                &ids,
                SeedSequence::new(1).child(trial)
            ));
        }
    }

    #[test]
    fn acceptance_decays_as_p_to_the_number_of_bad_balls() {
        // All nodes colored 1 on C_8: every ball is bad, |F| = 8 > f + 1.
        let g = cycle(8);
        let x = Labeling::empty(8);
        let y = Labeling::from_fn(&g, |_| Label::from_u64(1));
        let ids = IdAssignment::consecutive(&g);
        let io = IoConfig::new(&g, &x, &y);
        let f = 3;
        let decider = ResilientDecider::new(coloring_lcl(), f);
        let est = acceptance_probability(&decider, &io, &ids, 6000, 11);
        let expected = theoretical_acceptance(f, 8);
        assert!(
            (est.p_hat - expected).abs() < 0.03,
            "measured {} vs theory {}",
            est.p_hat,
            expected
        );
        // Rejection probability exceeds 1/2 as the corollary requires.
        assert!(1.0 - est.p_hat > 0.5);
    }

    #[test]
    fn yes_instances_accepted_with_probability_above_half() {
        // Plant exactly f bad balls... on a cycle a single recoloring makes
        // 3 bad balls; use f = 3 so the instance is a yes-instance of L_f.
        let g = cycle(12);
        let x = Labeling::empty(12);
        let mut y = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0 % 2)));
        y.set(NodeId(4), Label::from_u64(1)); // conflicts with 3 and 5
        let ids = IdAssignment::consecutive(&g);
        let io = IoConfig::new(&g, &x, &y);
        let lang = coloring_lcl();
        let bad = crate::language::bad_ball_count(&lang, &io);
        assert_eq!(bad, 3);
        let decider = ResilientDecider::new(coloring_lcl(), bad);
        let est = acceptance_probability(&decider, &io, &ids, 6000, 13);
        assert!(est.p_hat > 0.5, "yes-instance acceptance {} must exceed 1/2", est.p_hat);
        assert!((est.p_hat - theoretical_acceptance(bad, bad)).abs() < 0.03);
    }

    #[test]
    fn with_probability_overrides_p() {
        let d = ResilientDecider::with_probability(coloring_lcl(), 2, 0.99);
        assert_eq!(d.acceptance_probability(), 0.99);
        assert!(!d.interval_is_valid(), "0.99^3 > 1/2 so the no-side fails");
        assert_eq!(d.resilience(), 2);
        assert!(RandomizedDecider::name(&d).contains("resilient"));
        assert_eq!(RandomizedDecider::radius(&d), 1);
    }
}

//! Seeded, declarative fault plans for the round backend.
//!
//! The ball-extraction engine cannot express crash faults mid-round or
//! Byzantine neighbors: it evaluates every node's output from a fully
//! gathered view. The operational backend ([`crate::rounds::RoundSystem`])
//! can — a crashed node simply stops sending, and a Byzantine node's
//! outgoing messages pass through an [`Adversary`] before delivery. This
//! module provides the *declarative* half of that axis: a [`FaultPlan`]
//! names a fault model and an intensity, and [`FaultPlan::schedule`]
//! materializes it into a concrete, bit-reproducible [`FaultSchedule`] for
//! one graph and one seed.
//!
//! ## Determinism
//!
//! Every random draw in a schedule comes from a dedicated child of the
//! given [`SeedSequence`]:
//!
//! ```text
//! seed.child(v)                                  // crash coin of node v
//! seed.child(CASCADE).child(u).child(v)          // cascade coin of edge u→v
//! seed.child(ADVERSARY).child(v).child(round)    // adversary stream of (v, round)
//! ```
//!
//! Node indices fit in `u32`, so the `CASCADE`/`ADVERSARY` branches (above
//! `2^40`) never collide with per-node branches. No draw depends on
//! iteration order, thread schedule, or batch size: the same `(plan,
//! graph, seed)` triple always yields a byte-identical schedule, which is
//! what lets sweep trials pin their fault schedules to the existing
//! `(scenario, point, trial)` seed tree.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use rlnc_graph::{Graph, NodeId};
use rlnc_obs::{LazyCounter, Section};
use rlnc_par::rng::SeedSequence;

// Fault materializations are drawn from the `(scenario, point, trial)`
// seed tree, so their totals over a fixed trial set are schedule-invariant
// — deterministic section.
static OBS_SCHEDULES: LazyCounter =
    LazyCounter::new("core.faults.schedules", Section::Deterministic);
static OBS_CRASHED: LazyCounter =
    LazyCounter::new("core.faults.crashed_nodes", Section::Deterministic);
static OBS_BYZANTINE: LazyCounter =
    LazyCounter::new("core.faults.byzantine_nodes", Section::Deterministic);

/// Seed-tree branch for cascade edge coins (disjoint from the per-node
/// branches, which are below `2^32`).
const CASCADE_STREAM: u64 = 1 << 40;

/// Seed-tree branch for per-`(node, round)` adversary randomness.
const ADVERSARY_STREAM: u64 = (1 << 40) + 1;

/// A declarative, seedable fault model for one round-backend execution.
///
/// A plan is pure data: the same plan can be scheduled against many
/// `(graph, seed)` pairs, and the resulting [`FaultSchedule`]s are
/// bit-reproducible. Intensities are probabilities in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultPlan {
    /// No faults: the schedule is empty and execution is bit-identical to
    /// a fault-free run.
    None,
    /// Every node independently crashes before round 1 with the given
    /// probability (it computes its initial state but never sends).
    CrashOnStart {
        /// Per-node crash probability.
        probability: f64,
    },
    /// Every node independently crashes at the start of the given round
    /// (1-based) with the given probability.
    CrashAtRound {
        /// First round in which selected nodes are silent.
        round: u32,
        /// Per-node crash probability.
        probability: f64,
    },
    /// Correlated failures: seed nodes crash before round 1 with
    /// probability `probability`, and every crash spreads to each healthy
    /// neighbor independently with probability `spread` one round later
    /// (a failure-propagation cascade, computed to fixpoint).
    CrashCascade {
        /// Per-node seed-crash probability.
        probability: f64,
        /// Per-edge propagation probability per round.
        spread: f64,
    },
    /// Every node is independently Byzantine with the given probability:
    /// it follows the algorithm but its outgoing messages are rewritten
    /// by an [`Adversary`] (e.g. [`RelabelAdversary`](crate::rounds::RelabelAdversary))
    /// each round before delivery.
    ByzantineRelabel {
        /// Per-node corruption probability.
        probability: f64,
    },
}

/// Number of non-trivial fault plan kinds (everything except
/// [`FaultPlan::None`]), the size of the sweepable plan axis.
pub const FAULT_PLAN_KINDS: usize = 4;

impl FaultPlan {
    /// The sweepable plan axis: maps `(index mod 4, intensity)` to a plan,
    /// so a grid parameter can enumerate every fault model at a chosen
    /// intensity. `CrashAtRound` strikes at round 2 and `CrashCascade`
    /// halves the seed probability (the cascade amplifies it back).
    pub fn from_index(index: usize, intensity: f64) -> FaultPlan {
        match index % FAULT_PLAN_KINDS {
            0 => FaultPlan::CrashOnStart {
                probability: intensity,
            },
            1 => FaultPlan::CrashAtRound {
                round: 2,
                probability: intensity,
            },
            2 => FaultPlan::CrashCascade {
                probability: intensity / 2.0,
                spread: 0.5,
            },
            _ => FaultPlan::ByzantineRelabel {
                probability: intensity,
            },
        }
    }

    /// Stable, slug-style name of the plan kind.
    pub fn name(&self) -> &'static str {
        match self {
            FaultPlan::None => "none",
            FaultPlan::CrashOnStart { .. } => "crash-on-start",
            FaultPlan::CrashAtRound { .. } => "crash-at-round",
            FaultPlan::CrashCascade { .. } => "crash-cascade",
            FaultPlan::ByzantineRelabel { .. } => "byzantine-relabel",
        }
    }

    /// The plan's primary intensity (its per-node probability; `0` for
    /// [`FaultPlan::None`]).
    pub fn intensity(&self) -> f64 {
        match *self {
            FaultPlan::None => 0.0,
            FaultPlan::CrashOnStart { probability }
            | FaultPlan::CrashAtRound { probability, .. }
            | FaultPlan::CrashCascade { probability, .. }
            | FaultPlan::ByzantineRelabel { probability } => probability,
        }
    }

    /// Materializes the plan into a concrete per-node schedule for one
    /// graph, drawing every coin from a dedicated child of `seed` (see the
    /// module docs for the exact tree).
    pub fn schedule(&self, graph: &Graph, seed: SeedSequence) -> FaultSchedule {
        let n = graph.node_count();
        let mut crash_round: Vec<Option<u32>> = vec![None; n];
        let mut byzantine = vec![false; n];
        let node_coin = |v: usize, p: f64| seed.child(v as u64).rng().random_bool(p);
        match *self {
            FaultPlan::None => {}
            FaultPlan::CrashOnStart { probability } => {
                for (v, slot) in crash_round.iter_mut().enumerate() {
                    if node_coin(v, probability) {
                        *slot = Some(1);
                    }
                }
            }
            FaultPlan::CrashAtRound { round, probability } => {
                let round = round.max(1);
                for (v, slot) in crash_round.iter_mut().enumerate() {
                    if node_coin(v, probability) {
                        *slot = Some(round);
                    }
                }
            }
            FaultPlan::CrashCascade { probability, spread } => {
                let mut frontier: Vec<usize> = Vec::new();
                for (v, slot) in crash_round.iter_mut().enumerate() {
                    if node_coin(v, probability) {
                        *slot = Some(1);
                        frontier.push(v);
                    }
                }
                // Breadth-first propagation: a node crashing at round k
                // infects each healthy neighbor with an independent
                // per-directed-edge coin, one round later. Coins are keyed
                // by the edge, not the visit, so the fixpoint is
                // independent of the order nodes are processed in.
                let mut round = 1u32;
                while !frontier.is_empty() {
                    round += 1;
                    let mut next = Vec::new();
                    for &u in &frontier {
                        let u_seq = seed.child(CASCADE_STREAM).child(u as u64);
                        for w in graph.neighbor_ids(NodeId::from_index(u)) {
                            let wi = w.index();
                            if crash_round[wi].is_none()
                                && u_seq.child(u64::from(w.0)).rng().random_bool(spread)
                            {
                                crash_round[wi] = Some(round);
                                next.push(wi);
                            }
                        }
                    }
                    next.sort_unstable();
                    frontier = next;
                }
            }
            FaultPlan::ByzantineRelabel { probability } => {
                for (v, flag) in byzantine.iter_mut().enumerate() {
                    *flag = node_coin(v, probability);
                }
            }
        }
        // Realized-fault accounting: how many crashes/Byzantine nodes this
        // materialization actually planted (a function of plan + graph +
        // seed, so deterministic-section eligible).
        if rlnc_obs::enabled() {
            OBS_SCHEDULES.inc();
            OBS_CRASHED.add(crash_round.iter().filter(|r| r.is_some()).count() as u64);
            OBS_BYZANTINE.add(byzantine.iter().filter(|&&b| b).count() as u64);
        }
        FaultSchedule {
            crash_round,
            byzantine,
            seed,
        }
    }
}

/// A concrete fault assignment for one execution: which nodes crash (and
/// when), which nodes are Byzantine, and the seed branch the adversary
/// draws its randomness from.
///
/// Produced by [`FaultPlan::schedule`]; consumed by
/// [`RoundSystem`](crate::rounds::RoundSystem).
#[derive(Debug, Clone)]
pub struct FaultSchedule {
    /// `Some(r)` if the node is silent from round `r` (1-based) on.
    crash_round: Vec<Option<u32>>,
    /// Whether each node's outgoing messages pass through the adversary.
    byzantine: Vec<bool>,
    /// Root of the adversary's per-`(node, round)` randomness.
    seed: SeedSequence,
}

impl FaultSchedule {
    /// A schedule with no faults at all on `n` nodes.
    pub fn fault_free(n: usize, seed: SeedSequence) -> FaultSchedule {
        FaultSchedule {
            crash_round: vec![None; n],
            byzantine: vec![false; n],
            seed,
        }
    }

    /// Number of nodes the schedule covers.
    pub fn node_count(&self) -> usize {
        self.crash_round.len()
    }

    /// The round (1-based) in which the node crashes, if it ever does.
    pub fn crash_round(&self, v: NodeId) -> Option<u32> {
        self.crash_round[v.index()]
    }

    /// Returns `true` if the node neither sends nor updates in `round`
    /// (it crashed in this round or earlier).
    pub fn is_silent(&self, v: NodeId, round: u32) -> bool {
        matches!(self.crash_round[v.index()], Some(r) if r <= round)
    }

    /// Returns `true` if the node's outgoing messages are adversarial.
    pub fn is_byzantine(&self, v: NodeId) -> bool {
        self.byzantine[v.index()]
    }

    /// Returns `true` if any node crashes or is Byzantine.
    pub fn has_faults(&self) -> bool {
        self.faulty_count() > 0
    }

    /// Returns `true` if at least one node is Byzantine (i.e. an adversary
    /// will actually be consulted).
    pub fn has_byzantine(&self) -> bool {
        self.byzantine.iter().any(|&b| b)
    }

    /// Number of faulty (crashing or Byzantine) nodes.
    pub fn faulty_count(&self) -> usize {
        self.crash_round
            .iter()
            .zip(&self.byzantine)
            .filter(|(c, &b)| c.is_some() || b)
            .count()
    }

    /// Fraction of faulty nodes (`0` on the empty graph).
    pub fn faulty_fraction(&self) -> f64 {
        if self.crash_round.is_empty() {
            return 0.0;
        }
        self.faulty_count() as f64 / self.crash_round.len() as f64
    }

    /// Returns `true` if *every* node is silent in `round` — no step can
    /// change any state, so the system is quiet regardless of how many
    /// rounds remain.
    pub fn all_silent_at(&self, round: u32) -> bool {
        self.crash_round
            .iter()
            .all(|c| matches!(c, Some(r) if *r <= round))
    }

    /// The adversary's private coin stream for one `(node, round)` pair,
    /// derived from the schedule seed alone — independent of thread
    /// schedule and of how many messages the adversary rewrites.
    pub fn adversary_rng(&self, v: NodeId, round: u32) -> ChaCha8Rng {
        self.seed
            .child(ADVERSARY_STREAM)
            .child(u64::from(v.0))
            .child(u64::from(round))
            .rng()
    }

    /// FNV-1a digest of the schedule (crash rounds and Byzantine flags) —
    /// the quantity pinned by determinism regression tests.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |byte: u64| {
            h ^= byte;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for c in &self.crash_round {
            mix(c.map_or(0, |r| u64::from(r) + 1));
        }
        for &b in &self.byzantine {
            mix(u64::from(b) + 7);
        }
        h
    }
}

/// A message-level adversary: rewrites the outgoing messages of a
/// Byzantine node before delivery.
///
/// Implementations must keep whatever structural invariants the message
/// type relies on (e.g. the full-information gather requires every edge's
/// endpoints to be listed among the message's known nodes) and must draw
/// randomness only from the provided RNG, which is derived from the
/// `(node, round)` pair so rewrites stay bit-reproducible.
pub trait Adversary<Msg>: Sync {
    /// Rewrites the messages a Byzantine `sender` emits in `round`
    /// (`outgoing[port]` goes to the sender's `port`-th neighbor).
    fn rewrite(&self, sender: NodeId, round: u32, outgoing: &mut [Msg], rng: &mut ChaCha8Rng);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlnc_graph::generators::cycle;

    #[test]
    fn schedules_are_bit_reproducible() {
        let g = cycle(24);
        for index in 0..FAULT_PLAN_KINDS {
            let plan = FaultPlan::from_index(index, 0.3);
            let a = plan.schedule(&g, SeedSequence::new(9).child(4));
            let b = plan.schedule(&g, SeedSequence::new(9).child(4));
            assert_eq!(a.fingerprint(), b.fingerprint());
            let c = plan.schedule(&g, SeedSequence::new(9).child(5));
            // Not a hard guarantee for every seed pair, but these pins
            // would only move if the seed discipline changed.
            assert_ne!(a.fingerprint(), c.fingerprint());
        }
    }

    #[test]
    fn plan_axis_covers_every_kind_and_zero_intensity_is_fault_free() {
        let g = cycle(16);
        let names: Vec<&str> = (0..FAULT_PLAN_KINDS)
            .map(|i| FaultPlan::from_index(i, 0.5).name())
            .collect();
        assert_eq!(
            names,
            [
                "crash-on-start",
                "crash-at-round",
                "crash-cascade",
                "byzantine-relabel"
            ]
        );
        for i in 0..FAULT_PLAN_KINDS {
            let schedule = FaultPlan::from_index(i, 0.0).schedule(&g, SeedSequence::new(1));
            assert!(!schedule.has_faults());
            assert_eq!(schedule.faulty_fraction(), 0.0);
        }
        assert_eq!(FaultPlan::None.schedule(&g, SeedSequence::new(1)).faulty_count(), 0);
    }

    #[test]
    fn crash_on_start_crashes_everyone_at_round_one_at_full_intensity() {
        let g = cycle(12);
        let plan = FaultPlan::CrashOnStart { probability: 1.0 };
        let schedule = plan.schedule(&g, SeedSequence::new(3));
        assert_eq!(schedule.faulty_count(), 12);
        assert!(schedule.all_silent_at(1));
        assert!(schedule.is_silent(NodeId(0), 1));
        assert!(schedule.is_silent(NodeId(0), 5));
        assert_eq!(schedule.crash_round(NodeId(7)), Some(1));
    }

    #[test]
    fn crash_at_round_keeps_nodes_alive_before_the_strike() {
        let g = cycle(10);
        let plan = FaultPlan::CrashAtRound {
            round: 3,
            probability: 1.0,
        };
        let schedule = plan.schedule(&g, SeedSequence::new(3));
        assert!(!schedule.is_silent(NodeId(4), 2));
        assert!(schedule.is_silent(NodeId(4), 3));
        assert!(!schedule.all_silent_at(2));
        assert!(schedule.all_silent_at(3));
    }

    #[test]
    fn cascade_spreads_to_fixpoint_with_increasing_rounds() {
        let g = cycle(32);
        let plan = FaultPlan::CrashCascade {
            probability: 0.1,
            spread: 1.0,
        };
        let schedule = plan.schedule(&g, SeedSequence::new(7));
        // With full spread, every node within distance d of a seed crashes
        // at round d + 1, so the whole cycle eventually crashes (some seed
        // fires at probability 0.1 over 32 nodes for this pinned seed).
        assert!(schedule.faulty_count() > 0);
        assert_eq!(schedule.faulty_count(), 32);
        for v in 0..32u32 {
            let r = schedule.crash_round(NodeId(v)).expect("cascade reaches everyone");
            if r > 1 {
                // A node crashing at round r > 1 has a neighbor that
                // crashed at round r - 1.
                let has_cause = g.neighbor_ids(NodeId(v)).any(|w| {
                    schedule.crash_round(w) == Some(r - 1)
                });
                assert!(has_cause, "node {v} crashed at {r} without a cause");
            }
        }
    }

    #[test]
    fn byzantine_plan_marks_nodes_without_crashing_them() {
        let g = cycle(20);
        let plan = FaultPlan::ByzantineRelabel { probability: 1.0 };
        let schedule = plan.schedule(&g, SeedSequence::new(5));
        assert!(schedule.has_byzantine());
        assert_eq!(schedule.faulty_count(), 20);
        assert!(!schedule.is_silent(NodeId(3), 10));
        assert!(!schedule.all_silent_at(1_000));
    }

    #[test]
    fn adversary_stream_is_keyed_by_node_and_round() {
        let g = cycle(8);
        let schedule = FaultPlan::ByzantineRelabel { probability: 1.0 }
            .schedule(&g, SeedSequence::new(11));
        let a: u64 = schedule.adversary_rng(NodeId(1), 1).random();
        let b: u64 = schedule.adversary_rng(NodeId(1), 2).random();
        let c: u64 = schedule.adversary_rng(NodeId(2), 1).random();
        let a2: u64 = schedule.adversary_rng(NodeId(1), 1).random();
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}

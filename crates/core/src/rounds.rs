//! Explicit synchronous message-passing execution of LOCAL algorithms.
//!
//! §2.1.1 of the paper describes the LOCAL model operationally: in each
//! round every node (1) sends messages to its neighbors, (2) receives its
//! neighbors' messages, and (3) computes. It then observes that a `t`-round
//! algorithm is equivalent to the "collect the radius-`t` ball and decide"
//! formulation used everywhere else in the paper (and in
//! [`crate::simulator`]). This module implements the operational model and
//! the generic full-information gather, so the equivalence is *tested*
//! rather than assumed (experiment E10).

use crate::algorithm::LocalAlgorithm;
use crate::config::Instance;
use crate::labels::{Label, Labeling};
use crate::view::View;
use rayon::prelude::*;
use rlnc_graph::{Graph, GraphBuilder, IdAssignment, NodeId};

/// Per-node initialization data: what a node knows before round 1.
#[derive(Debug, Clone)]
pub struct NodeInit {
    /// The node's identity.
    pub id: u64,
    /// The node's degree (number of ports).
    pub degree: usize,
    /// The node's input label.
    pub input: Label,
}

/// A synchronous message-passing algorithm in the LOCAL model.
///
/// Messages are unbounded (`Message` can be arbitrarily large), matching
/// the model's lack of bandwidth constraints.
pub trait MessagePassingAlgorithm: Sync {
    /// Local state carried by each node between rounds.
    type State: Clone + Send + Sync;
    /// Message type exchanged on edges.
    type Message: Clone + Send + Sync;

    /// Number of rounds the algorithm runs.
    fn rounds(&self) -> u32;

    /// Initial state of a node.
    fn init(&self, node: &NodeInit) -> Self::State;

    /// Messages to send in round `round` (1-based), one per port, in the
    /// order of the node's neighbor list.
    fn send(&self, state: &Self::State, round: u32) -> Vec<Self::Message>;

    /// State update after receiving the round's messages (`incoming[i]` is
    /// the message that arrived on port `i`).
    fn receive(&self, state: Self::State, round: u32, incoming: &[Self::Message]) -> Self::State;

    /// Output label after the final round.
    fn output(&self, state: &Self::State) -> Label;
}

/// The synchronous round engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundEngine;

impl RoundEngine {
    /// Creates a round engine.
    pub fn new() -> Self {
        RoundEngine
    }

    /// Runs a message-passing algorithm on an instance and returns the
    /// output labeling.
    pub fn run<M: MessagePassingAlgorithm>(&self, algo: &M, instance: &Instance<'_>) -> Labeling {
        let graph = instance.graph;
        let n = graph.node_count();
        // Port map: for edge (v, w), the index of v in w's neighbor list, so
        // delivery is O(1) per message.
        let reverse_port: Vec<Vec<usize>> = (0..n)
            .map(|vi| {
                let v = NodeId::from_index(vi);
                graph
                    .neighbor_ids(v)
                    .map(|w| {
                        graph
                            .neighbors(w)
                            .iter()
                            .position(|&x| x == v.0)
                            .expect("adjacency must be symmetric")
                    })
                    .collect()
            })
            .collect();

        let mut states: Vec<M::State> = (0..n)
            .map(|vi| {
                let v = NodeId::from_index(vi);
                algo.init(&NodeInit {
                    id: instance.ids.id(v),
                    degree: graph.degree(v),
                    input: instance.input.get(v).clone(),
                })
            })
            .collect();

        for round in 1..=algo.rounds() {
            // Phase 1: every node prepares its outgoing messages.
            let outgoing: Vec<Vec<M::Message>> = states
                .par_iter()
                .map(|state| algo.send(state, round))
                .collect();
            // Phase 2 + 3: deliver and update.
            states = (0..n)
                .into_par_iter()
                .map(|vi| {
                    let v = NodeId::from_index(vi);
                    let incoming: Vec<M::Message> = graph
                        .neighbor_ids(v)
                        .enumerate()
                        .map(|(port, w)| outgoing[w.index()][reverse_port[vi][port]].clone())
                        .collect();
                    algo.receive(states[vi].clone(), round, &incoming)
                })
                .collect();
        }

        Labeling::new(states.iter().map(|s| algo.output(s)).collect())
    }
}

/// What the full-information gather knows about one remote node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KnownNode {
    /// Identity of the node.
    pub id: u64,
    /// Input label of the node.
    pub input: Label,
    /// Degree of the node.
    pub degree: usize,
}

/// State of the full-information gather: everything learned so far.
#[derive(Debug, Clone)]
pub struct GatherState {
    own_id: u64,
    nodes: Vec<KnownNode>,
    /// Edges between known nodes, as (smaller id, larger id) pairs.
    edges: Vec<(u64, u64)>,
}

impl GatherState {
    fn merge(&mut self, other: &GatherState) {
        for node in &other.nodes {
            if !self.nodes.iter().any(|n| n.id == node.id) {
                self.nodes.push(node.clone());
            }
        }
        for edge in &other.edges {
            if !self.edges.contains(edge) {
                self.edges.push(*edge);
            }
        }
    }
}

/// The generic `t`-round full-information gather that simulates any
/// deterministic `t`-round LOCAL algorithm: it floods identities, inputs,
/// and incident edges for `t` rounds, reconstructs the radius-`t` ball, and
/// applies the wrapped algorithm's output function — the simulation
/// argument of §2.1.1.
pub struct GatherAndRun<'a, A: ?Sized> {
    inner: &'a A,
}

impl<'a, A: LocalAlgorithm + ?Sized> GatherAndRun<'a, A> {
    /// Wraps a ball-view algorithm into its message-passing simulation.
    pub fn new(inner: &'a A) -> Self {
        GatherAndRun { inner }
    }
}

impl<'a, A: LocalAlgorithm + ?Sized> MessagePassingAlgorithm for GatherAndRun<'a, A> {
    type State = GatherState;
    type Message = GatherState;

    fn rounds(&self) -> u32 {
        self.inner.radius()
    }

    fn init(&self, node: &NodeInit) -> GatherState {
        GatherState {
            own_id: node.id,
            nodes: vec![KnownNode {
                id: node.id,
                input: node.input.clone(),
                degree: node.degree,
            }],
            edges: Vec::new(),
        }
    }

    fn send(&self, state: &GatherState, _round: u32) -> Vec<GatherState> {
        // Unbounded messages: send the whole state on every port.
        let degree = state
            .nodes
            .iter()
            .find(|n| n.id == state.own_id)
            .map(|n| n.degree)
            .unwrap_or(0);
        vec![state.clone(); degree]
    }

    fn receive(&self, mut state: GatherState, _round: u32, incoming: &[GatherState]) -> GatherState {
        for msg in incoming {
            // Learn the edge to the sender, and everything the sender knows.
            let a = state.own_id.min(msg.own_id);
            let b = state.own_id.max(msg.own_id);
            if !state.edges.contains(&(a, b)) {
                state.edges.push((a, b));
            }
            state.merge(msg);
        }
        state
    }

    fn output(&self, state: &GatherState) -> Label {
        // Rebuild the learned subgraph and extract the radius-t view of the
        // center inside it; this reproduces B_G(v, t) exactly because after
        // t rounds the learned subgraph contains every node at distance ≤ t
        // and every edge with an endpoint at distance ≤ t − 1.
        let mut nodes = state.nodes.clone();
        nodes.sort_by_key(|n| n.id);
        let index_of = |id: u64| nodes.iter().position(|n| n.id == id).unwrap();
        let mut builder = GraphBuilder::new(nodes.len());
        for &(a, b) in &state.edges {
            builder.add_edge(index_of(a), index_of(b));
        }
        let graph: Graph = builder.build();
        let ids = IdAssignment::new(nodes.iter().map(|n| n.id).collect());
        let inputs = Labeling::new(nodes.iter().map(|n| n.input.clone()).collect());
        let instance = Instance::new(&graph, &inputs, &ids);
        let center = NodeId::from_index(index_of(state.own_id));
        let view = View::collect(&instance, center, self.inner.radius());
        self.inner.output(&view)
    }
}

/// Runs a deterministic ball-view algorithm through the message-passing
/// engine (the operational semantics) instead of the direct simulator.
pub fn run_via_message_passing<A: LocalAlgorithm + ?Sized>(
    algo: &A,
    instance: &Instance<'_>,
) -> Labeling {
    RoundEngine::new().run(&GatherAndRun::new(algo), instance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::FnAlgorithm;
    use crate::simulator::Simulator;
    use rlnc_graph::generators::{binary_tree, cycle, grid};

    /// A hand-written message-passing algorithm: compute the minimum
    /// identity within distance `t` by flooding.
    struct MinIdFlood {
        rounds: u32,
    }

    impl MessagePassingAlgorithm for MinIdFlood {
        type State = u64;
        type Message = u64;

        fn rounds(&self) -> u32 {
            self.rounds
        }

        fn init(&self, node: &NodeInit) -> u64 {
            node.id
        }

        fn send(&self, state: &u64, _round: u32) -> Vec<u64> {
            // The engine only reads as many messages as the node has ports;
            // over-provisioning is harmless but we cannot know the degree
            // from the state alone here, so send a generous number.
            vec![*state; 16]
        }

        fn receive(&self, state: u64, _round: u32, incoming: &[u64]) -> u64 {
            incoming.iter().copied().fold(state, u64::min)
        }

        fn output(&self, state: &u64) -> Label {
            Label::from_u64(*state)
        }
    }

    #[test]
    fn min_id_flood_matches_ball_minimum() {
        let g = cycle(16);
        let x = Labeling::empty(16);
        let ids = IdAssignment::spread(&g, 13);
        let inst = Instance::new(&g, &x, &ids);
        let t = 3;
        let out = RoundEngine::new().run(&MinIdFlood { rounds: t }, &inst);
        // Reference: minimum id within distance t via the ball view.
        let reference = Simulator::new().run(
            &FnAlgorithm::new(t, "min-id", |view: &View| {
                Label::from_u64((0..view.len()).map(|i| view.id(i)).min().unwrap())
            }),
            &inst,
        );
        assert_eq!(out, reference);
    }

    #[test]
    fn gather_and_run_equals_direct_simulation_on_cycles() {
        let g = cycle(20);
        let x = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0 % 4)));
        let ids = IdAssignment::spread(&g, 3);
        let inst = Instance::new(&g, &x, &ids);
        let algo = FnAlgorithm::new(2, "ball-fingerprint", |view: &View| {
            let ids_sum: u64 = (0..view.len()).map(|i| view.id(i)).sum();
            let inputs_sum: u64 = (0..view.len()).map(|i| view.input(i).as_u64()).sum();
            let edges = view.local_graph().edge_count() as u64;
            Label::from_u64(ids_sum * 1000 + inputs_sum * 10 + edges)
        });
        let direct = Simulator::new().run(&algo, &inst);
        let via_messages = run_via_message_passing(&algo, &inst);
        assert_eq!(direct, via_messages);
    }

    #[test]
    fn gather_and_run_equals_direct_simulation_on_other_families() {
        for graph in [grid(4, 5), binary_tree(15)] {
            let x = Labeling::empty(graph.node_count());
            let ids = IdAssignment::consecutive(&graph);
            let inst = Instance::new(&graph, &x, &ids);
            let algo = FnAlgorithm::new(1, "degree-and-rank", |view: &View| {
                Label::from_u64((view.center_degree() as u64) * 10 + view.center_rank() as u64)
            });
            let direct = Simulator::new().run(&algo, &inst);
            let via_messages = run_via_message_passing(&algo, &inst);
            assert_eq!(direct, via_messages);
        }
    }

    #[test]
    fn zero_round_algorithms_need_no_messages() {
        let g = cycle(8);
        let x = Labeling::empty(8);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let algo = FnAlgorithm::new(0, "own-id", |view: &View| Label::from_u64(view.center_id()));
        let direct = Simulator::new().run(&algo, &inst);
        let via_messages = run_via_message_passing(&algo, &inst);
        assert_eq!(direct, via_messages);
    }
}

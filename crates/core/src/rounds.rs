//! Explicit synchronous message-passing execution of LOCAL algorithms —
//! the repo's second execution backend.
//!
//! §2.1.1 of the paper describes the LOCAL model operationally: in each
//! round every node (1) sends messages to its neighbors, (2) receives its
//! neighbors' messages, and (3) computes. It then observes that a `t`-round
//! algorithm is equivalent to the "collect the radius-`t` ball and decide"
//! formulation used everywhere else in the paper (and in
//! [`crate::simulator`]). This module implements the operational model as a
//! *steppable* system ([`RoundSystem`]) so the equivalence is **tested**
//! rather than assumed (experiment E10 and the engine's round-equivalence
//! proptest suite), and so fault models the ball formulation cannot even
//! express — crash-stop nodes, failure cascades, Byzantine message
//! rewriting — become first-class, seeded, assertable events
//! (see [`crate::faults`]).
//!
//! Three layers live here:
//!
//! * [`MessagePassingAlgorithm`] — the node state machine contract, with
//!   [`MessagePassingAlgorithm::receive_partial`] as the crash-aware
//!   delivery hook (its default compacts the surviving messages, so
//!   fault-oblivious algorithms run unchanged under crashes).
//! * [`RoundSystem`] — explicit per-round message queues over a reusable
//!   [`RoundTopology`], driven by [`RoundSystem::step`] /
//!   [`RoundSystem::step_until_quiet`], with optional
//!   [`FaultSchedule`]-driven crashes and an [`Adversary`] tap on
//!   Byzantine senders. [`RoundEngine`] is the one-shot fault-free facade.
//! * The full-information gathers — [`GatherAndRun`] (identity-keyed, the
//!   classic simulation argument) and the coin-aware [`GatherRun`] /
//!   [`GatherDecide`] (host-keyed), which reconstruct each node's view
//!   **bit-identically** to [`View::collect`], so randomized algorithms
//!   and deciders produce the same verdicts through messages as through
//!   ball extraction with the same seed.

use crate::algorithm::{Coins, LocalAlgorithm, RandomizedLocalAlgorithm};
use crate::config::{Instance, IoConfig};
use crate::decision::RandomizedDecider;
use crate::faults::{Adversary, FaultSchedule};
use crate::labels::{Label, Labeling};
use crate::view::View;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use rlnc_graph::{Ball, Graph, GraphBuilder, IdAssignment, NodeId};
use rlnc_obs::{LazyCounter, LazyHistogram, Section, POW2_BUCKETS};
use std::borrow::Cow;

// Round-backend observability. Message counts are functions of the
// algorithm, graph, and fault schedule alone (each trial's rounds run
// deterministically), so totals over a fixed trial set are invariant
// across thread schedules and batch sizes — deterministic section.
static OBS_STEPS: LazyCounter = LazyCounter::new("core.rounds.steps", Section::Deterministic);
static OBS_DELIVERED: LazyCounter =
    LazyCounter::new("core.rounds.messages_delivered", Section::Deterministic);
static OBS_DROPPED: LazyCounter =
    LazyCounter::new("core.rounds.messages_dropped", Section::Deterministic);
static OBS_PER_ROUND: LazyHistogram = LazyHistogram::new(
    "core.rounds.delivered_per_round",
    Section::Deterministic,
    &POW2_BUCKETS,
);

/// Per-node initialization data: what a node knows before round 1.
#[derive(Debug, Clone)]
pub struct NodeInit {
    /// The node's host-graph index — the key of its private coin stream
    /// (see [`Coins::for_node`](crate::algorithm::Coins)), which the model
    /// treats as part of the node's local state alongside its identity.
    pub node: NodeId,
    /// The node's identity.
    pub id: u64,
    /// The node's degree (number of ports).
    pub degree: usize,
    /// The node's input label.
    pub input: Label,
}

/// A synchronous message-passing algorithm in the LOCAL model.
///
/// Messages are unbounded (`Message` can be arbitrarily large), matching
/// the model's lack of bandwidth constraints.
pub trait MessagePassingAlgorithm: Sync {
    /// Local state carried by each node between rounds.
    type State: Clone + Send + Sync;
    /// Message type exchanged on edges.
    type Message: Clone + Send + Sync;

    /// Number of rounds the algorithm runs.
    fn rounds(&self) -> u32;

    /// Initial state of a node.
    fn init(&self, node: &NodeInit) -> Self::State;

    /// Messages to send in round `round` (1-based), one per port, in the
    /// order of the node's neighbor list.
    fn send(&self, state: &Self::State, round: u32) -> Vec<Self::Message>;

    /// State update after receiving the round's messages (`incoming[i]` is
    /// the message that arrived on port `i`).
    fn receive(&self, state: Self::State, round: u32, incoming: &[Self::Message]) -> Self::State;

    /// Crash-aware state update: `incoming[i]` is `None` when the port's
    /// neighbor was silent this round (crashed). The default compacts the
    /// surviving messages and delegates to
    /// [`receive`](MessagePassingAlgorithm::receive), so fault-oblivious
    /// algorithms behave identically whether ports fail or not; override
    /// it to make port-silence observable. Only invoked by fault-injected
    /// executions — fault-free runs call `receive` directly.
    fn receive_partial(
        &self,
        state: Self::State,
        round: u32,
        incoming: &[Option<Self::Message>],
    ) -> Self::State {
        let surviving: Vec<Self::Message> = incoming.iter().filter_map(Clone::clone).collect();
        self.receive(state, round, &surviving)
    }

    /// Output label after the final round.
    fn output(&self, state: &Self::State) -> Label;
}

/// Precomputed delivery map of a graph, reusable across executions.
///
/// For the edge `(v, w)` seen from `v`'s port `p`, `reverse_port[v][p]` is
/// the index of `v` in `w`'s neighbor list — so delivering `w`'s message
/// to `v` is O(1) per message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundTopology {
    reverse_port: Vec<Vec<usize>>,
}

impl RoundTopology {
    /// Builds the delivery map of `graph` (one pass over the adjacency).
    pub fn new(graph: &Graph) -> RoundTopology {
        let reverse_port = (0..graph.node_count())
            .map(|vi| {
                let v = NodeId::from_index(vi);
                graph
                    .neighbor_ids(v)
                    .map(|w| {
                        graph
                            .neighbors(w)
                            .iter()
                            .position(|&x| x == v.0)
                            .expect("adjacency must be symmetric")
                    })
                    .collect()
            })
            .collect();
        RoundTopology { reverse_port }
    }

    /// Number of nodes the topology covers.
    pub fn node_count(&self) -> usize {
        self.reverse_port.len()
    }
}

/// A steppable synchronous message-passing system: explicit per-round
/// message queues over one instance, one node state machine per node.
///
/// Created by [`RoundSystem::new`] (or
/// [`RoundSystem::with_topology`] to reuse a prebuilt [`RoundTopology`]
/// across executions), then driven round by round with
/// [`RoundSystem::step`] or to completion with
/// [`RoundSystem::step_until_quiet`] / [`RoundSystem::run`].
///
/// Fault injection is opt-in: [`RoundSystem::with_faults`] silences
/// crashed senders per the schedule (silent ports arrive as `None` in
/// [`MessagePassingAlgorithm::receive_partial`]), and
/// [`RoundSystem::with_adversary`] rewrites Byzantine nodes' outgoing
/// messages. Fault-free execution is bit-identical to the original
/// [`RoundEngine::run`] loop, which now delegates here.
pub struct RoundSystem<'a, M: MessagePassingAlgorithm> {
    algo: &'a M,
    graph: &'a Graph,
    topology: Cow<'a, RoundTopology>,
    states: Vec<M::State>,
    faults: Option<&'a FaultSchedule>,
    adversary: Option<&'a (dyn Adversary<M::Message> + 'a)>,
    round: u32,
    parallel: bool,
}

impl<'a, M: MessagePassingAlgorithm> RoundSystem<'a, M> {
    /// Initializes every node's state machine over `instance`, building
    /// the delivery topology on the fly.
    pub fn new(algo: &'a M, instance: &Instance<'a>) -> Self {
        let topology = RoundTopology::new(instance.graph);
        Self::build(algo, instance, Cow::Owned(topology))
    }

    /// Like [`RoundSystem::new`], but borrows a prebuilt topology — the
    /// batched-execution path, where one topology serves many seeds.
    ///
    /// # Panics
    /// Panics if the topology's node count differs from the instance's.
    pub fn with_topology(
        algo: &'a M,
        instance: &Instance<'a>,
        topology: &'a RoundTopology,
    ) -> Self {
        assert_eq!(
            topology.node_count(),
            instance.graph.node_count(),
            "topology was built for a different graph"
        );
        Self::build(algo, instance, Cow::Borrowed(topology))
    }

    fn build(algo: &'a M, instance: &Instance<'a>, topology: Cow<'a, RoundTopology>) -> Self {
        let graph = instance.graph;
        let states = (0..graph.node_count())
            .map(|vi| {
                let v = NodeId::from_index(vi);
                algo.init(&NodeInit {
                    node: v,
                    id: instance.ids.id(v),
                    degree: graph.degree(v),
                    input: instance.input.get(v).clone(),
                })
            })
            .collect();
        RoundSystem {
            algo,
            graph,
            topology,
            states,
            faults: None,
            adversary: None,
            round: 0,
            parallel: true,
        }
    }

    /// Attaches a fault schedule: crashed nodes stop sending and updating
    /// from their crash round on (their output is computed from the frozen
    /// state), and Byzantine nodes' messages pass through the adversary.
    ///
    /// # Panics
    /// Panics if the schedule covers a different node count.
    pub fn with_faults(mut self, schedule: &'a FaultSchedule) -> Self {
        assert_eq!(
            schedule.node_count(),
            self.graph.node_count(),
            "fault schedule was built for a different graph"
        );
        self.faults = Some(schedule);
        self
    }

    /// Attaches the message-level adversary consulted for Byzantine
    /// senders (no-op unless a schedule with Byzantine nodes is attached).
    pub fn with_adversary(mut self, adversary: &'a (dyn Adversary<M::Message> + 'a)) -> Self {
        self.adversary = Some(adversary);
        self
    }

    /// Disables the per-round fan-out over nodes (for execution inside an
    /// already-parallel region; results are identical either way).
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Total rounds the algorithm runs.
    pub fn total_rounds(&self) -> u32 {
        self.algo.rounds()
    }

    /// Returns `true` when stepping can no longer change any state: the
    /// algorithm's rounds are exhausted, or every node has crashed.
    pub fn is_quiet(&self) -> bool {
        if self.round >= self.algo.rounds() {
            return true;
        }
        match self.faults {
            Some(f) => f.all_silent_at(self.round + 1),
            None => false,
        }
    }

    /// Executes one synchronous round — send, deliver, compute — and
    /// returns `true`, or returns `false` without side effects if the
    /// system [`is_quiet`](RoundSystem::is_quiet).
    pub fn step(&mut self) -> bool {
        if self.is_quiet() {
            return false;
        }
        let round = self.round + 1;
        let graph = self.graph;
        let n = graph.node_count();
        let states = &self.states;
        let algo = self.algo;
        let faults = self.faults;
        let adversary = self.adversary;
        let reverse_port = &self.topology.reverse_port;

        // Phase 1: every live node prepares its outgoing messages; the
        // adversary rewrites Byzantine senders' with (node, round)-keyed
        // coins, so the result is independent of scheduling.
        let send_one = |vi: usize| -> Option<Vec<M::Message>> {
            let v = NodeId::from_index(vi);
            if let Some(f) = faults {
                if f.is_silent(v, round) {
                    return None;
                }
            }
            let mut messages = algo.send(&states[vi], round);
            if let (Some(f), Some(adv)) = (faults, adversary) {
                if f.is_byzantine(v) {
                    adv.rewrite(v, round, &mut messages, &mut f.adversary_rng(v, round));
                }
            }
            Some(messages)
        };
        let outgoing: Vec<Option<Vec<M::Message>>> = if self.parallel {
            (0..n).into_par_iter().map(send_one).collect()
        } else {
            (0..n).map(send_one).collect()
        };

        // Per-round message-delivery accounting: messages put on wires by
        // live senders vs ports silenced by the fault schedule.
        if rlnc_obs::enabled() {
            let delivered: u64 = outgoing
                .iter()
                .filter_map(|o| o.as_ref().map(|m| m.len() as u64))
                .sum();
            let total_ports = graph.degree_sum() as u64;
            OBS_STEPS.inc();
            OBS_DELIVERED.add(delivered);
            OBS_DROPPED.add(total_ports.saturating_sub(delivered));
            OBS_PER_ROUND.observe(delivered);
        }

        // Phase 2 + 3: deliver and update. Fault-free executions call
        // `receive` with a plain slice (bit-identical to the historical
        // engine loop); fault-injected ones go through `receive_partial`
        // so port silence is observable.
        let compute_one = |vi: usize| -> M::State {
            let v = NodeId::from_index(vi);
            match faults {
                None => {
                    let incoming: Vec<M::Message> = graph
                        .neighbor_ids(v)
                        .enumerate()
                        .map(|(port, w)| {
                            let sent = outgoing[w.index()]
                                .as_ref()
                                .expect("fault-free nodes always send");
                            sent[reverse_port[vi][port]].clone()
                        })
                        .collect();
                    algo.receive(states[vi].clone(), round, &incoming)
                }
                Some(f) if f.is_silent(v, round) => states[vi].clone(),
                Some(_) => {
                    let incoming: Vec<Option<M::Message>> = graph
                        .neighbor_ids(v)
                        .enumerate()
                        .map(|(port, w)| {
                            outgoing[w.index()]
                                .as_ref()
                                .map(|sent| sent[reverse_port[vi][port]].clone())
                        })
                        .collect();
                    algo.receive_partial(states[vi].clone(), round, &incoming)
                }
            }
        };
        let next: Vec<M::State> = if self.parallel {
            (0..n).into_par_iter().map(compute_one).collect()
        } else {
            (0..n).map(compute_one).collect()
        };
        self.states = next;
        self.round = round;
        true
    }

    /// Steps until the system is quiet and returns the number of rounds
    /// executed. Terminates even when every node has crashed (a fully
    /// silent system is quiet immediately).
    pub fn step_until_quiet(&mut self) -> u32 {
        let mut steps = 0;
        while self.step() {
            steps += 1;
        }
        steps
    }

    /// Applies the algorithm's output function to every node's current
    /// (possibly crash-frozen) state.
    pub fn outputs(&self) -> Labeling {
        Labeling::new(self.states.iter().map(|s| self.algo.output(s)).collect())
    }

    /// Writes the outputs into an existing labeling, reusing its
    /// allocations (the per-block buffer path of batched runners).
    ///
    /// # Panics
    /// Panics if `out` was sized for a different node count.
    pub fn write_outputs(&self, out: &mut Labeling) {
        assert_eq!(out.len(), self.states.len(), "output buffer size mismatch");
        for (vi, state) in self.states.iter().enumerate() {
            out.set(NodeId::from_index(vi), self.algo.output(state));
        }
    }

    /// Runs to quiescence and returns the outputs.
    pub fn run(mut self) -> Labeling {
        self.step_until_quiet();
        self.outputs()
    }
}

/// The synchronous round engine: the one-shot, fault-free facade over
/// [`RoundSystem`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundEngine;

impl RoundEngine {
    /// Creates a round engine.
    pub fn new() -> Self {
        RoundEngine
    }

    /// Runs a message-passing algorithm on an instance and returns the
    /// output labeling.
    pub fn run<M: MessagePassingAlgorithm>(&self, algo: &M, instance: &Instance<'_>) -> Labeling {
        RoundSystem::new(algo, instance).run()
    }
}

/// What the full-information gather knows about one remote node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KnownNode {
    /// Identity of the node.
    pub id: u64,
    /// Input label of the node.
    pub input: Label,
    /// Degree of the node.
    pub degree: usize,
}

/// State of the full-information gather: everything learned so far.
#[derive(Debug, Clone)]
pub struct GatherState {
    own_id: u64,
    nodes: Vec<KnownNode>,
    /// Edges between known nodes, as (smaller id, larger id) pairs.
    edges: Vec<(u64, u64)>,
}

impl GatherState {
    fn merge(&mut self, other: &GatherState) {
        for node in &other.nodes {
            if !self.nodes.iter().any(|n| n.id == node.id) {
                self.nodes.push(node.clone());
            }
        }
        for edge in &other.edges {
            if !self.edges.contains(edge) {
                self.edges.push(*edge);
            }
        }
    }
}

/// The generic `t`-round full-information gather that simulates any
/// deterministic `t`-round LOCAL algorithm: it floods identities, inputs,
/// and incident edges for `t` rounds, reconstructs the radius-`t` ball, and
/// applies the wrapped algorithm's output function — the simulation
/// argument of §2.1.1.
///
/// This is the identity-keyed classic; randomized algorithms need the
/// host-keyed [`GatherRun`] instead, because coin streams are keyed by
/// host index and a subgraph reconstructed from identities alone cannot
/// recover them.
pub struct GatherAndRun<'a, A: ?Sized> {
    inner: &'a A,
}

impl<'a, A: LocalAlgorithm + ?Sized> GatherAndRun<'a, A> {
    /// Wraps a ball-view algorithm into its message-passing simulation.
    pub fn new(inner: &'a A) -> Self {
        GatherAndRun { inner }
    }
}

impl<'a, A: LocalAlgorithm + ?Sized> MessagePassingAlgorithm for GatherAndRun<'a, A> {
    type State = GatherState;
    type Message = GatherState;

    fn rounds(&self) -> u32 {
        self.inner.radius()
    }

    fn init(&self, node: &NodeInit) -> GatherState {
        GatherState {
            own_id: node.id,
            nodes: vec![KnownNode {
                id: node.id,
                input: node.input.clone(),
                degree: node.degree,
            }],
            edges: Vec::new(),
        }
    }

    fn send(&self, state: &GatherState, _round: u32) -> Vec<GatherState> {
        // Unbounded messages: send the whole state on every port.
        let degree = state
            .nodes
            .iter()
            .find(|n| n.id == state.own_id)
            .map(|n| n.degree)
            .unwrap_or(0);
        vec![state.clone(); degree]
    }

    fn receive(&self, mut state: GatherState, _round: u32, incoming: &[GatherState]) -> GatherState {
        for msg in incoming {
            // Learn the edge to the sender, and everything the sender knows.
            let a = state.own_id.min(msg.own_id);
            let b = state.own_id.max(msg.own_id);
            if !state.edges.contains(&(a, b)) {
                state.edges.push((a, b));
            }
            state.merge(msg);
        }
        state
    }

    fn output(&self, state: &GatherState) -> Label {
        // Rebuild the learned subgraph and extract the radius-t view of the
        // center inside it; this reproduces B_G(v, t) exactly because after
        // t rounds the learned subgraph contains every node at distance ≤ t
        // and every edge with an endpoint at distance ≤ t − 1.
        let mut nodes = state.nodes.clone();
        nodes.sort_by_key(|n| n.id);
        let index_of = |id: u64| nodes.iter().position(|n| n.id == id).unwrap();
        let mut builder = GraphBuilder::new(nodes.len());
        for &(a, b) in &state.edges {
            builder.add_edge(index_of(a), index_of(b));
        }
        let graph: Graph = builder.build();
        let ids = IdAssignment::new(nodes.iter().map(|n| n.id).collect());
        let inputs = Labeling::new(nodes.iter().map(|n| n.input.clone()).collect());
        let instance = Instance::new(&graph, &inputs, &ids);
        let center = NodeId::from_index(index_of(state.own_id));
        let view = View::collect(&instance, center, self.inner.radius());
        self.inner.output(&view)
    }
}

/// Runs a deterministic ball-view algorithm through the message-passing
/// engine (the operational semantics) instead of the direct simulator.
pub fn run_via_message_passing<A: LocalAlgorithm + ?Sized>(
    algo: &A,
    instance: &Instance<'_>,
) -> Labeling {
    RoundEngine::new().run(&GatherAndRun::new(algo), instance)
}

/// Honest identities must fit below this bound for [`RelabelAdversary`]'s
/// forged identities (which live at or above it) to stay disjoint from
/// them — every identity universe in the repo is far below `2^40`.
const FORGED_ID_BASE: u64 = 1 << 40;

/// What the host-keyed full-information gather knows about one remote
/// node: its host index (the coin-stream key), identity, labels, and
/// degree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostInfo {
    host: NodeId,
    id: u64,
    input: Label,
    output: Label,
    degree: usize,
}

/// State (and message) of the host-keyed full-information gather used by
/// [`GatherRun`] and [`GatherDecide`]: everything learned so far, keyed
/// by host index so the center can reconstruct its view — including every
/// node's private coin stream — bit-identically to [`View::collect`].
#[derive(Debug, Clone)]
pub struct FullGatherState {
    own: NodeId,
    nodes: Vec<HostInfo>,
    /// Edges between known nodes as (smaller, larger) host-index pairs.
    /// Invariant: both endpoints appear in `nodes` (merging copies a
    /// message's nodes wholesale, and adversaries rewrite identities, not
    /// structure).
    edges: Vec<(NodeId, NodeId)>,
}

impl FullGatherState {
    fn of(node: &NodeInit, output: Label) -> FullGatherState {
        debug_assert!(
            node.id < FORGED_ID_BASE,
            "identities must stay below 2^40 for Byzantine relabeling to stay injective"
        );
        FullGatherState {
            own: node.node,
            nodes: vec![HostInfo {
                host: node.node,
                id: node.id,
                input: node.input.clone(),
                output,
                degree: node.degree,
            }],
            edges: Vec::new(),
        }
    }

    fn own_degree(&self) -> usize {
        self.nodes
            .iter()
            .find(|n| n.host == self.own)
            .map(|n| n.degree)
            .unwrap_or(0)
    }

    fn absorb(&mut self, msg: &FullGatherState) {
        let edge = (self.own.min(msg.own), self.own.max(msg.own));
        if !self.edges.contains(&edge) {
            self.edges.push(edge);
        }
        for node in &msg.nodes {
            if !self.nodes.iter().any(|n| n.host == node.host) {
                self.nodes.push(node.clone());
            }
        }
        for e in &msg.edges {
            if !self.edges.contains(e) {
                self.edges.push(*e);
            }
        }
    }

    /// XORs `mask` into every known identity — the relabeling attack.
    /// With `mask`'s low 40 bits zero, forged identities stay positive,
    /// injective, and disjoint from honest ones even across chains of
    /// Byzantine relays (XOR composes to another such mask).
    pub fn forge_ids(&mut self, mask: u64) {
        for node in &mut self.nodes {
            node.id ^= mask;
        }
    }

    /// Reconstructs the center's radius-`radius` view from the learned
    /// subgraph, bit-identically to [`View::collect`] /
    /// [`View::collect_io`] on the host instance: the learned nodes are
    /// indexed in host order (so BFS tie-breaking matches), ball members
    /// are mapped back to their true host indices (so coin streams
    /// match), and the center's true degree is restored (so radius-0
    /// views report it correctly).
    fn reconstruct_view(&self, radius: u32, with_outputs: bool) -> View {
        let mut nodes = self.nodes.clone();
        nodes.sort_by_key(|n| n.host);
        let hosts: Vec<NodeId> = nodes.iter().map(|n| n.host).collect();
        let index_of = |h: NodeId| {
            hosts
                .binary_search(&h)
                .expect("gather invariant: every edge endpoint is a known node")
        };
        let mut builder = GraphBuilder::new(nodes.len());
        for &(a, b) in &self.edges {
            builder.add_edge(index_of(a), index_of(b));
        }
        let graph: Graph = builder.build();
        let center = NodeId::from_index(index_of(self.own));
        let mut ball = Ball::extract(&graph, center, radius);
        let ids: Vec<u64> = ball.members.iter().map(|&m| nodes[m.index()].id).collect();
        let inputs: Vec<Label> = ball
            .members
            .iter()
            .map(|&m| nodes[m.index()].input.clone())
            .collect();
        let outputs: Option<Vec<Label>> = with_outputs.then(|| {
            ball.members
                .iter()
                .map(|&m| nodes[m.index()].output.clone())
                .collect()
        });
        let host_degree = nodes[center.index()].degree;
        for m in &mut ball.members {
            *m = nodes[m.index()].host;
        }
        View::from_parts(ball, self.own, radius, ids, inputs, outputs, host_degree)
    }
}

fn full_gather_send(state: &FullGatherState) -> Vec<FullGatherState> {
    // Unbounded messages: the whole state on every port.
    vec![state.clone(); state.own_degree()]
}

fn full_gather_receive(
    mut state: FullGatherState,
    incoming: &[FullGatherState],
) -> FullGatherState {
    for msg in incoming {
        state.absorb(msg);
    }
    state
}

/// The host-keyed full-information gather for **randomized** (and, via the
/// blanket impl, deterministic) LOCAL algorithms: floods host indices,
/// identities, inputs, and incident edges, then evaluates the wrapped
/// algorithm on a view reconstructed bit-identically to
/// [`View::collect`] — same ball, same member order, same coin streams.
pub struct GatherRun<'a, A: ?Sized> {
    inner: &'a A,
    coins: Coins,
}

impl<'a, A: RandomizedLocalAlgorithm + ?Sized> GatherRun<'a, A> {
    /// Wraps an algorithm together with the execution's coin source.
    pub fn new(inner: &'a A, coins: Coins) -> Self {
        GatherRun { inner, coins }
    }
}

impl<'a, A: RandomizedLocalAlgorithm + ?Sized> MessagePassingAlgorithm for GatherRun<'a, A> {
    type State = FullGatherState;
    type Message = FullGatherState;

    fn rounds(&self) -> u32 {
        self.inner.radius()
    }

    fn init(&self, node: &NodeInit) -> FullGatherState {
        FullGatherState::of(node, Label::empty())
    }

    fn send(&self, state: &FullGatherState, _round: u32) -> Vec<FullGatherState> {
        full_gather_send(state)
    }

    fn receive(
        &self,
        state: FullGatherState,
        _round: u32,
        incoming: &[FullGatherState],
    ) -> FullGatherState {
        full_gather_receive(state, incoming)
    }

    fn output(&self, state: &FullGatherState) -> Label {
        let view = state.reconstruct_view(self.inner.radius(), false);
        self.inner.output(&view, &self.coins)
    }
}

/// The host-keyed full-information gather for **deciders**: each node also
/// knows its own output label, floods it alongside the rest, and emits its
/// verdict as a boolean label — the round backend's implementation of the
/// same [`RandomizedDecider`] contract the engine evaluates by ball
/// extraction.
pub struct GatherDecide<'a, D: ?Sized> {
    inner: &'a D,
    outputs: &'a Labeling,
    coins: Coins,
}

impl<'a, D: RandomizedDecider + ?Sized> GatherDecide<'a, D> {
    /// Wraps a decider with the configuration's output labeling and the
    /// execution's coin source.
    pub fn new(inner: &'a D, outputs: &'a Labeling, coins: Coins) -> Self {
        GatherDecide {
            inner,
            outputs,
            coins,
        }
    }
}

impl<'a, D: RandomizedDecider + ?Sized> MessagePassingAlgorithm for GatherDecide<'a, D> {
    type State = FullGatherState;
    type Message = FullGatherState;

    fn rounds(&self) -> u32 {
        self.inner.radius()
    }

    fn init(&self, node: &NodeInit) -> FullGatherState {
        FullGatherState::of(node, self.outputs.get(node.node).clone())
    }

    fn send(&self, state: &FullGatherState, _round: u32) -> Vec<FullGatherState> {
        full_gather_send(state)
    }

    fn receive(
        &self,
        state: FullGatherState,
        _round: u32,
        incoming: &[FullGatherState],
    ) -> FullGatherState {
        full_gather_receive(state, incoming)
    }

    fn output(&self, state: &FullGatherState) -> Label {
        let view = state.reconstruct_view(self.inner.radius(), true);
        Label::from_bool(self.inner.accepts(&view, &self.coins))
    }
}

/// The Byzantine relabeling adversary: each round, a corrupted node's
/// outgoing gather messages have **every known identity** XOR-masked with
/// a fresh `(node, round)`-keyed mask whose low 40 bits are zero. Hosts,
/// inputs, and structure are untouched — this is pure identity forgery,
/// the generalization of the one-off `FaultyConstructor`
/// (`rlnc-langs`) label corruption to the message level. The mask shape
/// keeps forged identities positive, injective, and disjoint from honest
/// ones (which live below `2^40`), so victims can still rebuild a valid
/// [`IdAssignment`] — they just decide over forged identities.
#[derive(Debug, Clone, Copy, Default)]
pub struct RelabelAdversary;

impl RelabelAdversary {
    /// Creates the adversary (it is stateless; all randomness comes from
    /// the per-`(node, round)` stream the system hands to `rewrite`).
    pub fn new() -> Self {
        RelabelAdversary
    }
}

impl Adversary<FullGatherState> for RelabelAdversary {
    fn rewrite(
        &self,
        _sender: NodeId,
        _round: u32,
        outgoing: &mut [FullGatherState],
        rng: &mut ChaCha8Rng,
    ) {
        let mask = (rng.random::<u64>() | 1) << 40;
        for msg in outgoing.iter_mut() {
            msg.forge_ids(mask);
        }
    }
}

/// Runs a randomized ball-view algorithm through the round backend: the
/// message-passing counterpart of
/// [`Simulator::run_randomized`](crate::simulator::Simulator) with the
/// same seed, bit-identical on fault-free executions.
pub fn run_randomized_via_rounds<A: RandomizedLocalAlgorithm + ?Sized>(
    algo: &A,
    instance: &Instance<'_>,
    execution_seed: rlnc_par::rng::SeedSequence,
) -> Labeling {
    let wrapper = GatherRun::new(algo, Coins::new(execution_seed));
    RoundSystem::new(&wrapper, instance).run()
}

/// Decides `(G, (x, y))` through the round backend: every node gathers
/// its decision view by messages and votes; accepted iff every node
/// accepts. Bit-identical to
/// [`decide_randomized`](crate::decision::decide_randomized) with the
/// same seed.
pub fn decide_randomized_via_rounds<D: RandomizedDecider + ?Sized>(
    decider: &D,
    io: &IoConfig<'_>,
    ids: &IdAssignment,
    execution_seed: rlnc_par::rng::SeedSequence,
) -> bool {
    let instance = Instance::new(io.graph, io.input, ids);
    let wrapper = GatherDecide::new(decider, io.output, Coins::new(execution_seed));
    let verdicts = RoundSystem::new(&wrapper, &instance).run();
    let yes = Label::from_bool(true);
    verdicts.as_slice().iter().all(|v| *v == yes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{FnAlgorithm, FnRandomizedAlgorithm};
    use crate::decision::{decide_randomized, FnRandomizedDecider};
    use crate::faults::FaultPlan;
    use crate::simulator::Simulator;
    use rlnc_graph::generators::{binary_tree, cycle, grid};
    use rlnc_par::rng::SeedSequence;

    /// A hand-written message-passing algorithm: compute the minimum
    /// identity within distance `t` by flooding.
    struct MinIdFlood {
        rounds: u32,
    }

    impl MessagePassingAlgorithm for MinIdFlood {
        type State = u64;
        type Message = u64;

        fn rounds(&self) -> u32 {
            self.rounds
        }

        fn init(&self, node: &NodeInit) -> u64 {
            node.id
        }

        fn send(&self, state: &u64, _round: u32) -> Vec<u64> {
            // The engine only reads as many messages as the node has ports;
            // over-provisioning is harmless but we cannot know the degree
            // from the state alone here, so send a generous number.
            vec![*state; 16]
        }

        fn receive(&self, state: u64, _round: u32, incoming: &[u64]) -> u64 {
            incoming.iter().copied().fold(state, u64::min)
        }

        fn output(&self, state: &u64) -> Label {
            Label::from_u64(*state)
        }
    }

    #[test]
    fn min_id_flood_matches_ball_minimum() {
        let g = cycle(16);
        let x = Labeling::empty(16);
        let ids = IdAssignment::spread(&g, 13);
        let inst = Instance::new(&g, &x, &ids);
        let t = 3;
        let out = RoundEngine::new().run(&MinIdFlood { rounds: t }, &inst);
        // Reference: minimum id within distance t via the ball view.
        let reference = Simulator::new().run(
            &FnAlgorithm::new(t, "min-id", |view: &View| {
                Label::from_u64((0..view.len()).map(|i| view.id(i)).min().unwrap())
            }),
            &inst,
        );
        assert_eq!(out, reference);
    }

    #[test]
    fn gather_and_run_equals_direct_simulation_on_cycles() {
        let g = cycle(20);
        let x = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0 % 4)));
        let ids = IdAssignment::spread(&g, 3);
        let inst = Instance::new(&g, &x, &ids);
        let algo = FnAlgorithm::new(2, "ball-fingerprint", |view: &View| {
            let ids_sum: u64 = (0..view.len()).map(|i| view.id(i)).sum();
            let inputs_sum: u64 = (0..view.len()).map(|i| view.input(i).as_u64()).sum();
            let edges = view.local_graph().edge_count() as u64;
            Label::from_u64(ids_sum * 1000 + inputs_sum * 10 + edges)
        });
        let direct = Simulator::new().run(&algo, &inst);
        let via_messages = run_via_message_passing(&algo, &inst);
        assert_eq!(direct, via_messages);
    }

    #[test]
    fn gather_and_run_equals_direct_simulation_on_other_families() {
        for graph in [grid(4, 5), binary_tree(15)] {
            let x = Labeling::empty(graph.node_count());
            let ids = IdAssignment::consecutive(&graph);
            let inst = Instance::new(&graph, &x, &ids);
            let algo = FnAlgorithm::new(1, "degree-and-rank", |view: &View| {
                Label::from_u64((view.center_degree() as u64) * 10 + view.center_rank() as u64)
            });
            let direct = Simulator::new().run(&algo, &inst);
            let via_messages = run_via_message_passing(&algo, &inst);
            assert_eq!(direct, via_messages);
        }
    }

    #[test]
    fn zero_round_algorithms_need_no_messages() {
        let g = cycle(8);
        let x = Labeling::empty(8);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let algo = FnAlgorithm::new(0, "own-id", |view: &View| Label::from_u64(view.center_id()));
        let direct = Simulator::new().run(&algo, &inst);
        let via_messages = run_via_message_passing(&algo, &inst);
        assert_eq!(direct, via_messages);
    }

    // --- RoundSystem / steppable API -----------------------------------

    #[test]
    fn stepping_matches_one_shot_execution() {
        let g = grid(3, 4);
        let x = Labeling::empty(12);
        let ids = IdAssignment::spread(&g, 5);
        let inst = Instance::new(&g, &x, &ids);
        let algo = MinIdFlood { rounds: 3 };
        let one_shot = RoundEngine::new().run(&algo, &inst);
        let mut system = RoundSystem::new(&algo, &inst).sequential();
        assert_eq!(system.round(), 0);
        assert_eq!(system.total_rounds(), 3);
        assert!(system.step());
        assert!(system.step());
        assert!(!system.is_quiet());
        assert_eq!(system.step_until_quiet(), 1);
        assert!(system.is_quiet());
        assert!(!system.step());
        assert_eq!(system.round(), 3);
        assert_eq!(system.outputs(), one_shot);
        let mut reused = Labeling::empty(12);
        system.write_outputs(&mut reused);
        assert_eq!(reused, one_shot);
    }

    #[test]
    fn radius_zero_system_is_quiet_immediately() {
        let g = cycle(6);
        let x = Labeling::empty(6);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let algo = MinIdFlood { rounds: 0 };
        let mut system = RoundSystem::new(&algo, &inst);
        assert!(system.is_quiet());
        assert_eq!(system.step_until_quiet(), 0);
        assert_eq!(system.outputs(), Simulator::new().run(
            &FnAlgorithm::new(0, "own-id", |v: &View| Label::from_u64(v.center_id())),
            &inst,
        ));
    }

    #[test]
    fn single_node_and_isolated_node_graphs_run_cleanly() {
        // A single-node graph: no ports, no messages, any number of rounds.
        let single = GraphBuilder::new(1).build();
        let x = Labeling::empty(1);
        let ids = IdAssignment::consecutive(&single);
        let inst = Instance::new(&single, &x, &ids);
        let out = RoundEngine::new().run(&MinIdFlood { rounds: 4 }, &inst);
        assert_eq!(out.get(NodeId(0)).as_u64(), ids.id(NodeId(0)));
        // Degree-0 nodes inside a larger graph gather nothing but still
        // answer, and the host-keyed gather restores their (zero) degree
        // and their neighbors' views are unaffected.
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build(); // nodes 3, 4 are isolated
        let x = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0)));
        let ids = IdAssignment::spread(&g, 3);
        let inst = Instance::new(&g, &x, &ids);
        let algo = FnAlgorithm::new(2, "ball-size-and-degree", |view: &View| {
            Label::from_u64((view.len() as u64) * 100 + view.center_degree() as u64)
        });
        assert_eq!(
            run_via_message_passing(&algo, &inst),
            Simulator::new().run(&algo, &inst)
        );
        assert_eq!(
            run_randomized_via_rounds(&algo, &inst, SeedSequence::new(2)),
            Simulator::new().run(&algo, &inst)
        );
    }

    // --- host-keyed gather: coins and deciders -------------------------

    #[test]
    fn randomized_gather_reproduces_simulator_coin_streams() {
        // Reads every view node's private coins — only reproducible if the
        // gather restores true host indices (the coin-stream keys).
        let algo = FnRandomizedAlgorithm::new(2, "coin-mix", |view: &View, coins: &Coins| {
            let mut acc = view.center_id();
            for i in 0..view.len() {
                let mut rng = coins.for_view_node(view, i);
                acc = acc.wrapping_mul(31).wrapping_add(rng.random::<u64>() & 0xFFFF);
            }
            Label::from_u64(acc)
        });
        for (graph, spread) in [(cycle(18), 7), (grid(4, 4), 1), (binary_tree(15), 3)] {
            let x = Labeling::from_fn(&graph, |v| Label::from_u64(u64::from(v.0 % 3)));
            let ids = IdAssignment::spread(&graph, spread);
            let inst = Instance::new(&graph, &x, &ids);
            for trial in 0..4 {
                let seed = SeedSequence::new(41).child(trial);
                let direct = Simulator::sequential().run_randomized(&algo, &inst, seed);
                let via_rounds = run_randomized_via_rounds(&algo, &inst, seed);
                assert_eq!(direct, via_rounds);
            }
        }
    }

    #[test]
    fn decider_via_rounds_matches_ball_extraction_verdicts() {
        let g = cycle(14);
        let x = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0 % 2)));
        let y = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0 % 3)));
        let ids = IdAssignment::spread(&g, 5);
        let io = IoConfig::new(&g, &x, &y);
        let decider = FnRandomizedDecider::new(1, "noisy-parity", |view: &View, coins: &Coins| {
            let parity = (0..view.len()).map(|i| view.output(i).as_u64()).sum::<u64>() % 2;
            parity == 0 || coins.for_center(view).random_bool(0.5)
        });
        for trial in 0..12 {
            let seed = SeedSequence::new(6).child(trial);
            assert_eq!(
                decide_randomized_via_rounds(&decider, &io, &ids, seed),
                decide_randomized(&decider, &io, &ids, seed)
            );
        }
    }

    // --- fault injection ------------------------------------------------

    #[test]
    fn crashed_nodes_freeze_and_all_crashed_systems_stay_quiet() {
        let g = cycle(10);
        let x = Labeling::empty(10);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let algo = MinIdFlood { rounds: 5 };
        let schedule = FaultPlan::CrashOnStart { probability: 1.0 }
            .schedule(&g, SeedSequence::new(1));
        let mut system = RoundSystem::new(&algo, &inst).with_faults(&schedule);
        // Every node crashed before round 1: quiet immediately, and
        // step_until_quiet terminates without executing a round.
        assert!(system.is_quiet());
        assert_eq!(system.step_until_quiet(), 0);
        // Frozen outputs: each node still reports its init-state output.
        let out = system.outputs();
        for v in g.nodes() {
            assert_eq!(out.get(v).as_u64(), ids.id(v));
        }
    }

    #[test]
    fn partial_crashes_silence_exactly_the_scheduled_ports() {
        // Deterministic single-crash schedule on a path: node 2 crashes at
        // round 1, so the min-id flood never crosses it.
        let mut b = GraphBuilder::new(5);
        for i in 0..4 {
            b.add_edge(i, i + 1);
        }
        let g = b.build();
        let x = Labeling::empty(5);
        let ids = IdAssignment::consecutive(&g); // ids 1..=5 in node order
        let inst = Instance::new(&g, &x, &ids);
        let mut schedule = None;
        // Find a seed whose CrashOnStart(p=0.5) schedule crashes exactly
        // node 2 — determinism makes this a stable, reproducible pick.
        for s in 0.. {
            let candidate = FaultPlan::CrashOnStart { probability: 0.5 }
                .schedule(&g, SeedSequence::new(s));
            let crashed: Vec<bool> = (0..5)
                .map(|v| candidate.is_silent(NodeId(v), 1))
                .collect();
            if crashed == [false, false, true, false, false] {
                schedule = Some(candidate);
                break;
            }
        }
        let schedule = schedule.unwrap();
        let algo = MinIdFlood { rounds: 4 };
        let out = RoundSystem::new(&algo, &inst)
            .with_faults(&schedule)
            .sequential()
            .run();
        // Nodes 3 and 4 never hear of id 1 across the crashed node 2.
        assert_eq!(out.get(NodeId(0)).as_u64(), 1);
        assert_eq!(out.get(NodeId(1)).as_u64(), 1);
        assert_eq!(out.get(NodeId(3)).as_u64(), 4);
        assert_eq!(out.get(NodeId(4)).as_u64(), 4);
        // The crashed node froze at its init state.
        assert_eq!(out.get(NodeId(2)).as_u64(), 3);
    }

    #[test]
    fn fault_free_schedule_changes_nothing() {
        let g = grid(3, 3);
        let x = Labeling::empty(9);
        let ids = IdAssignment::spread(&g, 2);
        let inst = Instance::new(&g, &x, &ids);
        let algo = FnAlgorithm::new(2, "sum", |view: &View| {
            Label::from_u64((0..view.len()).map(|i| view.id(i)).sum())
        });
        let schedule = FaultSchedule::fault_free(9, SeedSequence::new(3));
        let wrapper = GatherRun::new(&algo, Coins::new(SeedSequence::new(8)));
        let faulty = RoundSystem::new(&wrapper, &inst).with_faults(&schedule).run();
        let clean = RoundSystem::new(&wrapper, &inst).run();
        assert_eq!(faulty, clean);
        assert_eq!(clean, Simulator::new().run(&algo, &inst));
    }

    #[test]
    fn byzantine_relabeling_forges_ids_without_breaking_victims() {
        let g = cycle(12);
        let x = Labeling::empty(12);
        let ids = IdAssignment::spread(&g, 5);
        let inst = Instance::new(&g, &x, &ids);
        // Output = max identity seen: forged ids (≥ 2^40) dwarf honest
        // ones, which is how we observe the attack.
        let algo = FnAlgorithm::new(2, "id-max", |view: &View| {
            Label::from_u64((0..view.len()).map(|i| view.id(i)).max().unwrap())
        });
        let schedule = FaultPlan::ByzantineRelabel { probability: 0.4 }
            .schedule(&g, SeedSequence::new(2));
        assert!(schedule.has_byzantine());
        let adversary = RelabelAdversary::new();
        let wrapper = GatherRun::new(&algo, Coins::new(SeedSequence::new(0)));
        let attacked = RoundSystem::new(&wrapper, &inst)
            .with_faults(&schedule)
            .with_adversary(&adversary)
            .run();
        let honest = Simulator::new().run(&algo, &inst);
        assert_ne!(attacked, honest);
        let forged_seen = g
            .nodes()
            .any(|v| attacked.get(v).as_u64() >= (1 << 40));
        assert!(forged_seen, "some victim should have absorbed a forged id");
        // Determinism: the attack replays bit-identically.
        let replay = RoundSystem::new(&wrapper, &inst)
            .with_faults(&schedule)
            .with_adversary(&adversary)
            .run();
        assert_eq!(attacked, replay);
    }
}

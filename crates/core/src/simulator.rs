//! The LOCAL-model simulator: runs construction algorithms on instances.
//!
//! The simulator uses the ball-view formulation of §2.1: for every node it
//! collects the radius-`t` view and evaluates the algorithm's output
//! function. Per-node work is independent, so it is parallelized with
//! Rayon; determinism is preserved because each node's coins are derived
//! from the (execution seed, node) pair, not from scheduling order.
//!
//! Parallelism is decided automatically: a simulator that finds itself
//! inside an already-parallel region (a Monte-Carlo trial batch, a sweep
//! work item) evaluates sequentially, so callers never need to thread a
//! manual "sequential" flag through nested loops. Monte-Carlo estimation
//! over a fixed instance ([`Simulator::construction_success`]) collects
//! every node's view **once** via [`View::collect_all`] and reuses the
//! cached views across all trials — the same plan-then-execute split the
//! `rlnc-engine` crate exposes as a full subsystem (`ExecutionPlan` +
//! `BatchRunner`).

use crate::algorithm::{Coins, LocalAlgorithm, RandomizedLocalAlgorithm};
use crate::config::{Instance, IoConfig};
use crate::labels::Labeling;
use crate::language::DistributedLanguage;
use crate::view::View;
use rayon::prelude::*;
use rlnc_par::rng::SeedSequence;
use rlnc_par::stats::Estimate;
use rlnc_par::trials::MonteCarlo;
use rlnc_graph::NodeId;

/// Runs LOCAL algorithms over whole instances.
#[derive(Debug, Clone, Copy)]
pub struct Simulator {
    parallel: bool,
}

impl Default for Simulator {
    fn default() -> Self {
        Simulator::new()
    }
}

impl Simulator {
    /// A simulator that parallelizes per-node evaluation automatically:
    /// large instances run on the thread pool **unless** the simulator is
    /// already executing inside a parallel region (detected via
    /// `rayon::current_thread_index`), in which case it evaluates
    /// sequentially to avoid nested-parallelism overhead. Results never
    /// depend on the choice.
    pub fn new() -> Self {
        Simulator { parallel: true }
    }

    /// Forces sequential per-node evaluation. Rarely needed now that
    /// [`Simulator::new`] detects nested parallel contexts automatically;
    /// kept for debugging and for pinning down scheduling in tests.
    pub fn sequential() -> Self {
        Simulator { parallel: false }
    }

    /// Runs a deterministic algorithm, returning the output labeling.
    pub fn run<A: LocalAlgorithm + ?Sized>(&self, algo: &A, instance: &Instance<'_>) -> Labeling {
        let t = algo.radius();
        let outputs = self.map_nodes(instance, |v| {
            let view = View::collect(instance, v, t);
            algo.output(&view)
        });
        Labeling::new(outputs)
    }

    /// Runs a randomized algorithm with the coins of one execution,
    /// returning the output labeling.
    pub fn run_randomized<A: RandomizedLocalAlgorithm + ?Sized>(
        &self,
        algo: &A,
        instance: &Instance<'_>,
        execution_seed: SeedSequence,
    ) -> Labeling {
        let t = algo.radius();
        let coins = Coins::new(execution_seed);
        let outputs = self.map_nodes(instance, |v| {
            let view = View::collect(instance, v, t);
            algo.output(&view, &coins)
        });
        Labeling::new(outputs)
    }

    /// Estimates the success probability of a randomized Monte-Carlo
    /// construction algorithm on a fixed instance for a language `L`:
    /// `Pr[(G, (x, C(G,x,id))) ∈ L]` over the algorithm's coins.
    ///
    /// The instance is fixed across trials, so every node's view is
    /// collected **once** ([`View::collect_all`]) and all trials evaluate
    /// against the cached views; only the coins (and hence the outputs)
    /// change per trial. The per-trial success stream is bit-identical to
    /// re-simulating from scratch each trial.
    pub fn construction_success<A, L>(
        &self,
        algo: &A,
        instance: &Instance<'_>,
        language: &L,
        trials: u64,
        seed: u64,
    ) -> Estimate
    where
        A: RandomizedLocalAlgorithm + ?Sized,
        L: DistributedLanguage + ?Sized,
    {
        let views = View::collect_all(instance, algo.radius());
        MonteCarlo::new(trials).with_seed(seed).estimate(|trial_seed| {
            let coins = Coins::new(trial_seed);
            let output = Labeling::new(views.iter().map(|v| algo.output(v, &coins)).collect());
            let io = IoConfig::from_instance(instance, &output);
            language.contains(&io)
        })
    }

    fn map_nodes<T, F>(&self, instance: &Instance<'_>, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(NodeId) -> T + Sync,
    {
        let n = instance.graph.node_count();
        if self.parallel && n >= 64 && rayon::current_thread_index().is_none() {
            (0..n)
                .into_par_iter()
                .map(|i| f(NodeId::from_index(i)))
                .collect()
        } else {
            (0..n).map(|i| f(NodeId::from_index(i))).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{FnAlgorithm, FnRandomizedAlgorithm};
    use crate::labels::Label;
    use crate::language::FnLanguage;
    use rand::Rng;
    use rlnc_graph::generators::cycle;
    use rlnc_graph::IdAssignment;

    #[test]
    fn deterministic_run_applies_output_function_everywhere() {
        let g = cycle(128);
        let x = Labeling::empty(128);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let algo = FnAlgorithm::new(0, "own-id", |v: &View| Label::from_u64(v.center_id()));
        let out = Simulator::new().run(&algo, &inst);
        for v in g.nodes() {
            assert_eq!(out.get(v).as_u64(), ids.id(v));
        }
    }

    #[test]
    fn parallel_and_sequential_simulation_agree() {
        let g = cycle(200);
        let x = Labeling::empty(200);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let algo = FnAlgorithm::new(1, "sum-of-ids", |v: &View| {
            let total: u64 = (0..v.len()).map(|i| v.id(i)).sum();
            Label::from_u64(total)
        });
        let a = Simulator::new().run(&algo, &inst);
        let b = Simulator::sequential().run(&algo, &inst);
        assert_eq!(a, b);
    }

    #[test]
    fn randomized_run_is_reproducible_per_seed() {
        let g = cycle(64);
        let x = Labeling::empty(64);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let algo = FnRandomizedAlgorithm::new(0, "random-bit", |v: &View, c: &Coins| {
            Label::from_bool(c.for_center(v).random_bool(0.5))
        });
        let s = SeedSequence::new(4).child(9);
        let out1 = Simulator::new().run_randomized(&algo, &inst, s);
        let out2 = Simulator::sequential().run_randomized(&algo, &inst, s);
        assert_eq!(out1, out2);
        let out3 = Simulator::new().run_randomized(&algo, &inst, SeedSequence::new(4).child(10));
        assert_ne!(out1, out3);
    }

    #[test]
    fn auto_parallelism_never_changes_results_inside_parallel_regions() {
        // Run the simulator from inside a parallel Monte-Carlo batch (where
        // the nested-parallelism heuristic forces sequential evaluation) and
        // outside it; the outputs must agree exactly.
        let g = cycle(128);
        let x = Labeling::empty(128);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let algo = FnRandomizedAlgorithm::new(1, "neighbor-coin", |v: &View, c: &Coins| {
            let total: u64 = (0..v.len())
                .map(|i| {
                    let mut rng = c.for_view_node(v, i);
                    rng.random::<u64>() & 0xFF
                })
                .sum();
            Label::from_u64(total)
        });
        let outer: Vec<Labeling> = (0..4)
            .map(|t| Simulator::new().run_randomized(&algo, &inst, SeedSequence::new(3).child(t)))
            .collect();
        let nested = MonteCarlo::new(4).with_seed(99).summarize(|_| {
            let inner: Vec<Labeling> = (0..4)
                .map(|t| {
                    Simulator::new().run_randomized(&algo, &inst, SeedSequence::new(3).child(t))
                })
                .collect();
            f64::from(inner == outer)
        });
        assert_eq!(nested.mean, 1.0);
    }

    #[test]
    fn construction_success_estimates_probability() {
        // Language: every node outputs 1. Constructor: each node outputs 1
        // with probability 0.9 independently; success probability 0.9^n.
        let g = cycle(4);
        let x = Labeling::empty(4);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let algo = FnRandomizedAlgorithm::new(0, "mostly-one", |v: &View, c: &Coins| {
            Label::from_bool(c.for_center(v).random_bool(0.9))
        });
        let lang = FnLanguage::new("all-ones", |io: &IoConfig<'_>| {
            io.graph.nodes().all(|v| io.output.get(v).as_bool())
        });
        let est = Simulator::new().construction_success(&algo, &inst, &lang, 4000, 99);
        let expected = 0.9f64.powi(4);
        assert!(
            (est.p_hat - expected).abs() < 0.03,
            "estimate {} too far from {}",
            est.p_hat,
            expected
        );
    }
}

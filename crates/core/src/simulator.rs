//! The LOCAL-model simulator: runs construction algorithms on instances.
//!
//! The simulator uses the ball-view formulation of §2.1: for every node it
//! collects the radius-`t` view and evaluates the algorithm's output
//! function. Per-node work is independent, so it is parallelized with
//! Rayon; determinism is preserved because each node's coins are derived
//! from the (execution seed, node) pair, not from scheduling order.

use crate::algorithm::{Coins, LocalAlgorithm, RandomizedLocalAlgorithm};
use crate::config::{Instance, IoConfig};
use crate::labels::Labeling;
use crate::language::DistributedLanguage;
use crate::view::View;
use rayon::prelude::*;
use rlnc_par::rng::SeedSequence;
use rlnc_par::stats::Estimate;
use rlnc_par::trials::MonteCarlo;
use rlnc_graph::NodeId;

/// Runs LOCAL algorithms over whole instances.
#[derive(Debug, Clone, Copy)]
pub struct Simulator {
    parallel: bool,
}

impl Default for Simulator {
    fn default() -> Self {
        Simulator::new()
    }
}

impl Simulator {
    /// A parallel simulator (the default).
    pub fn new() -> Self {
        Simulator { parallel: true }
    }

    /// Forces sequential per-node evaluation. Useful when the simulator is
    /// already called from inside a parallel Monte-Carlo loop, to avoid
    /// nested-parallelism overhead on small graphs.
    pub fn sequential() -> Self {
        Simulator { parallel: false }
    }

    /// Runs a deterministic algorithm, returning the output labeling.
    pub fn run<A: LocalAlgorithm + ?Sized>(&self, algo: &A, instance: &Instance<'_>) -> Labeling {
        let t = algo.radius();
        let outputs = self.map_nodes(instance, |v| {
            let view = View::collect(instance, v, t);
            algo.output(&view)
        });
        Labeling::new(outputs)
    }

    /// Runs a randomized algorithm with the coins of one execution,
    /// returning the output labeling.
    pub fn run_randomized<A: RandomizedLocalAlgorithm + ?Sized>(
        &self,
        algo: &A,
        instance: &Instance<'_>,
        execution_seed: SeedSequence,
    ) -> Labeling {
        let t = algo.radius();
        let coins = Coins::new(execution_seed);
        let outputs = self.map_nodes(instance, |v| {
            let view = View::collect(instance, v, t);
            algo.output(&view, &coins)
        });
        Labeling::new(outputs)
    }

    /// Estimates the success probability of a randomized Monte-Carlo
    /// construction algorithm on a fixed instance for a language `L`:
    /// `Pr[(G, (x, C(G,x,id))) ∈ L]` over the algorithm's coins.
    pub fn construction_success<A, L>(
        &self,
        algo: &A,
        instance: &Instance<'_>,
        language: &L,
        trials: u64,
        seed: u64,
    ) -> Estimate
    where
        A: RandomizedLocalAlgorithm + ?Sized,
        L: DistributedLanguage + ?Sized,
    {
        let inner = Simulator::sequential();
        MonteCarlo::new(trials).with_seed(seed).estimate(|trial_seed| {
            let output = inner.run_randomized(algo, instance, trial_seed);
            let io = IoConfig::from_instance(instance, &output);
            language.contains(&io)
        })
    }

    fn map_nodes<T, F>(&self, instance: &Instance<'_>, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(NodeId) -> T + Sync,
    {
        let n = instance.graph.node_count();
        if self.parallel && n >= 64 {
            (0..n)
                .into_par_iter()
                .map(|i| f(NodeId::from_index(i)))
                .collect()
        } else {
            (0..n).map(|i| f(NodeId::from_index(i))).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{FnAlgorithm, FnRandomizedAlgorithm};
    use crate::labels::Label;
    use crate::language::FnLanguage;
    use rand::Rng;
    use rlnc_graph::generators::cycle;
    use rlnc_graph::IdAssignment;

    #[test]
    fn deterministic_run_applies_output_function_everywhere() {
        let g = cycle(128);
        let x = Labeling::empty(128);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let algo = FnAlgorithm::new(0, "own-id", |v: &View| Label::from_u64(v.center_id()));
        let out = Simulator::new().run(&algo, &inst);
        for v in g.nodes() {
            assert_eq!(out.get(v).as_u64(), ids.id(v));
        }
    }

    #[test]
    fn parallel_and_sequential_simulation_agree() {
        let g = cycle(200);
        let x = Labeling::empty(200);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let algo = FnAlgorithm::new(1, "sum-of-ids", |v: &View| {
            let total: u64 = (0..v.len()).map(|i| v.id(i)).sum();
            Label::from_u64(total)
        });
        let a = Simulator::new().run(&algo, &inst);
        let b = Simulator::sequential().run(&algo, &inst);
        assert_eq!(a, b);
    }

    #[test]
    fn randomized_run_is_reproducible_per_seed() {
        let g = cycle(64);
        let x = Labeling::empty(64);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let algo = FnRandomizedAlgorithm::new(0, "random-bit", |v: &View, c: &Coins| {
            Label::from_bool(c.for_center(v).random_bool(0.5))
        });
        let s = SeedSequence::new(4).child(9);
        let out1 = Simulator::new().run_randomized(&algo, &inst, s);
        let out2 = Simulator::sequential().run_randomized(&algo, &inst, s);
        assert_eq!(out1, out2);
        let out3 = Simulator::new().run_randomized(&algo, &inst, SeedSequence::new(4).child(10));
        assert_ne!(out1, out3);
    }

    #[test]
    fn construction_success_estimates_probability() {
        // Language: every node outputs 1. Constructor: each node outputs 1
        // with probability 0.9 independently; success probability 0.9^n.
        let g = cycle(4);
        let x = Labeling::empty(4);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let algo = FnRandomizedAlgorithm::new(0, "mostly-one", |v: &View, c: &Coins| {
            Label::from_bool(c.for_center(v).random_bool(0.9))
        });
        let lang = FnLanguage::new("all-ones", |io: &IoConfig<'_>| {
            io.graph.nodes().all(|v| io.output.get(v).as_bool())
        });
        let est = Simulator::new().construction_success(&algo, &inst, &lang, 4000, 99);
        let expected = 0.9f64.powi(4);
        assert!(
            (est.p_hat - expected).abs() < 0.03,
            "estimate {} too far from {}",
            est.p_hat,
            expected
        );
    }
}

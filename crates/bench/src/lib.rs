//! # rlnc-bench — Criterion benchmark harness
//!
//! Two benchmark binaries:
//!
//! * `experiments` — one Criterion group per paper experiment (E1–E10),
//!   each running the corresponding `rlnc-experiments` module at smoke
//!   scale so a full `cargo bench` regenerates every quantitative claim of
//!   the paper end to end and tracks its cost over time.
//! * `simulator_perf` — engineering benchmarks of the LOCAL simulator
//!   itself: ball collection, deterministic and randomized whole-instance
//!   runs, the message-passing engine, and Monte-Carlo throughput.
//!
//! The library portion only hosts small helpers shared by the two
//! binaries.

#![forbid(unsafe_code)]

use rlnc_core::prelude::*;
use rlnc_graph::{Graph, IdAssignment};

/// A ready-to-simulate consecutive-identity cycle instance of size `n`.
pub fn cycle_instance(n: usize) -> (Graph, Labeling, IdAssignment) {
    let graph = rlnc_graph::generators::cycle(n);
    let input = Labeling::empty(n);
    let ids = IdAssignment::consecutive(&graph);
    (graph, input, ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_instance_helper_builds_consistent_pieces() {
        let (graph, input, ids) = cycle_instance(12);
        assert_eq!(graph.node_count(), 12);
        assert_eq!(input.len(), 12);
        assert_eq!(ids.len(), 12);
    }
}

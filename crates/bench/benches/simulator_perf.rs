//! Engineering benchmarks of the LOCAL-model simulator: ball collection,
//! whole-instance runs (parallel vs sequential), the message-passing
//! engine, Monte-Carlo trial throughput, and the engine-vs-legacy
//! comparison groups (plan-once execution vs collect-per-trial).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rlnc_bench::cycle_instance;
use rlnc_core::prelude::*;
use rlnc_core::rounds::run_via_message_passing;
use rlnc_engine::{BatchRunner, ExecutionPlan};
use rlnc_graph::arena::BallArena;
use rlnc_graph::ball::Ball;
use rlnc_langs::coloring::RankColoring;
use rlnc_langs::random_coloring::RandomColoring;
use rlnc_par::rng::SeedSequence;
use rlnc_par::trials::MonteCarlo;
use std::hint::black_box;
use std::time::Duration;

fn bench_ball_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("ball-extraction");
    group.measurement_time(Duration::from_secs(5));
    for &n in &[1_000usize, 10_000] {
        let (graph, _, _) = cycle_instance(n);
        for &radius in &[1u32, 4, 16] {
            group.throughput(Throughput::Elements(n as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("cycle-{n}"), radius),
                &radius,
                |b, &radius| {
                    b.iter(|| {
                        let mut total = 0usize;
                        for v in graph.nodes() {
                            total += Ball::extract(&graph, v, radius).len();
                        }
                        black_box(total)
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_simulator_parallel_vs_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator-rank-coloring");
    group.sample_size(20).measurement_time(Duration::from_secs(6));
    for &n in &[1_000usize, 10_000] {
        let (graph, input, ids) = cycle_instance(n);
        let instance = Instance::new(&graph, &input, &ids);
        let algo = RankColoring::new(2, 3);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(BenchmarkId::new("parallel", n), |b| {
            b.iter(|| black_box(Simulator::new().run(&algo, &instance)))
        });
        group.bench_function(BenchmarkId::new("sequential", n), |b| {
            b.iter(|| black_box(Simulator::sequential().run(&algo, &instance)))
        });
    }
    group.finish();
}

fn bench_message_passing_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("message-passing-vs-ball-view");
    group.sample_size(10).measurement_time(Duration::from_secs(6));
    let (graph, input, ids) = cycle_instance(2_000);
    let instance = Instance::new(&graph, &input, &ids);
    let algo = RankColoring::new(2, 3);
    group.bench_function("ball-view", |b| {
        b.iter(|| black_box(Simulator::new().run(&algo, &instance)))
    });
    group.bench_function("message-passing-gather", |b| {
        b.iter(|| black_box(run_via_message_passing(&algo, &instance)))
    });
    group.finish();
}

fn bench_monte_carlo_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("monte-carlo-trials");
    group.sample_size(10).measurement_time(Duration::from_secs(6));
    let (graph, input, ids) = cycle_instance(256);
    let instance = Instance::new(&graph, &input, &ids);
    let algo = RandomColoring::new(3);
    for &trials in &[200u64, 1_000] {
        group.throughput(Throughput::Elements(trials));
        group.bench_function(BenchmarkId::new("random-coloring-runs", trials), |b| {
            b.iter(|| {
                let est = MonteCarlo::new(trials).estimate(|seed: SeedSequence| {
                    let out = Simulator::sequential().run_randomized(&algo, &instance, seed);
                    out.get(rlnc_graph::NodeId(0)).as_u64() == 1
                });
                black_box(est)
            })
        });
    }
    group.finish();
}

/// The headline engine-vs-legacy group: Monte-Carlo throughput on the ring
/// workload at smoke scale. `legacy` re-collects every node's view on every
/// trial; `engine` builds one `ExecutionPlan` per instance and runs all
/// trials against the cached views. Both evaluate the trial loop
/// sequentially, so the ratio isolates the plan amortization.
fn bench_engine_vs_legacy_monte_carlo(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine-vs-legacy-monte-carlo");
    group.sample_size(10).measurement_time(Duration::from_secs(6));
    let (graph, input, ids) = cycle_instance(256);
    let instance = Instance::new(&graph, &input, &ids);
    let algo = RandomColoring::new(3);
    let success = |out: &Labeling| out.get(rlnc_graph::NodeId(0)).as_u64() == 1;
    for &trials in &[200u64, 1_000] {
        group.throughput(Throughput::Elements(trials));
        group.bench_function(BenchmarkId::new("legacy", trials), |b| {
            b.iter(|| {
                let est = MonteCarlo::new(trials).sequential().estimate(|seed: SeedSequence| {
                    let out = Simulator::sequential().run_randomized(&algo, &instance, seed);
                    success(&out)
                });
                black_box(est)
            })
        });
        group.bench_function(BenchmarkId::new("engine", trials), |b| {
            b.iter(|| {
                let plan = ExecutionPlan::for_instance(&instance, 0);
                let est = BatchRunner::sequential().estimate(
                    &algo,
                    &plan,
                    trials,
                    0x5AA5_1DE0_2015_0627,
                    success,
                );
                black_box(est)
            })
        });
    }
    group.finish();
}

/// Engine-vs-legacy on the decision side: acceptance estimation of the
/// Corollary-1 resilient decider over a fixed planted configuration.
fn bench_engine_vs_legacy_decider(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine-vs-legacy-decider");
    group.sample_size(10).measurement_time(Duration::from_secs(6));
    let (graph, input, output) = rlnc_sweep::workload::planted_cycle_configuration(96, 2);
    let ids = rlnc_graph::IdAssignment::consecutive(&graph);
    let io = IoConfig::new(&graph, &input, &output);
    let decider = ResilientDecider::new(rlnc_langs::coloring::ProperColoring::new(2), 4);
    let trials = 1_000u64;
    group.throughput(Throughput::Elements(trials));
    group.bench_function("legacy", |b| {
        b.iter(|| {
            black_box(rlnc_core::decision::acceptance_probability(
                &decider, &io, &ids, trials, 11,
            ))
        })
    });
    group.bench_function("engine", |b| {
        b.iter(|| {
            let plan = ExecutionPlan::for_io(&io, &ids, 1);
            black_box(BatchRunner::sequential().acceptance(&decider, &plan, trials, 11))
        })
    });
    group.finish();
}

/// The arena substrate vs per-node ball extraction.
fn bench_arena_vs_per_ball_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine-vs-legacy-ball-arena");
    group.measurement_time(Duration::from_secs(5));
    for &n in &[1_000usize, 10_000] {
        let (graph, _, _) = cycle_instance(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(BenchmarkId::new("legacy-per-ball", n), |b| {
            b.iter(|| {
                let mut total = 0usize;
                for v in graph.nodes() {
                    total += Ball::extract(&graph, v, 8).len();
                }
                black_box(total)
            })
        });
        group.bench_function(BenchmarkId::new("engine-arena", n), |b| {
            b.iter(|| black_box(BallArena::extract_all(&graph, 8).total_members()))
        });
    }
    group.finish();
}

criterion_group!(
    simulator_perf,
    bench_ball_extraction,
    bench_simulator_parallel_vs_sequential,
    bench_message_passing_engine,
    bench_monte_carlo_throughput,
    bench_engine_vs_legacy_monte_carlo,
    bench_engine_vs_legacy_decider,
    bench_arena_vs_per_ball_extraction
);
criterion_main!(simulator_perf);

//! One Criterion group per paper experiment: `cargo bench -p rlnc-bench`
//! regenerates every quantitative claim (at smoke scale) and reports how
//! long each reproduction takes. A final group runs the sweep engine's
//! smoke scenario end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use rlnc_experiments::run_by_id;
use rlnc_par::Scale;
use rlnc_sweep::{Registry, SweepExecutor};
use std::hint::black_box;
use std::time::Duration;

fn bench_experiment(c: &mut Criterion, id: &str, title: &str) {
    let mut group = c.benchmark_group("paper-experiments");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    group.bench_function(format!("{id}-{title}"), |b| {
        b.iter(|| {
            let report = run_by_id(black_box(id), Scale::Smoke).expect("experiment id");
            assert!(!report.table.rows.is_empty());
            black_box(report)
        })
    });
    group.finish();
}

fn bench_e1_amos(c: &mut Criterion) {
    bench_experiment(c, "e1", "amos-golden-decider");
}

fn bench_e2_slack(c: &mut Criterion) {
    bench_experiment(c, "e2", "epsilon-slack-random-coloring");
}

fn bench_e3_cole_vishkin(c: &mut Criterion) {
    bench_experiment(c, "e3", "cole-vishkin-log-star");
}

fn bench_e4_resilient(c: &mut Criterion) {
    bench_experiment(c, "e4", "order-invariant-failure");
}

fn bench_e5_resilient_decider(c: &mut Criterion) {
    bench_experiment(c, "e5", "f-resilient-decider");
}

fn bench_e6_boosting(c: &mut Criterion) {
    bench_experiment(c, "e6", "disjoint-union-boosting");
}

fn bench_e7_gluing(c: &mut Criterion) {
    bench_experiment(c, "e7", "theorem1-gluing");
}

fn bench_e8_ramsey(c: &mut Criterion) {
    bench_experiment(c, "e8", "ramsey-order-invariant-lift");
}

fn bench_e9_slack_vs_det(c: &mut Criterion) {
    bench_experiment(c, "e9", "slack-vs-deterministic");
}

fn bench_e10_equivalence(c: &mut Criterion) {
    bench_experiment(c, "e10", "message-passing-equivalence");
}

fn bench_sweep_smoke_scenario(c: &mut Criterion) {
    let registry = Registry::builtin();
    let spec = registry.get("smoke").expect("built-in smoke scenario").clone();
    let mut group = c.benchmark_group("sweep-engine");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    group.bench_function("smoke-scenario", |b| {
        b.iter(|| {
            let run = SweepExecutor::new(Scale::Smoke).run(black_box(&spec));
            assert!(!run.records.is_empty());
            black_box(run)
        })
    });
    group.finish();
}

criterion_group!(
    experiments,
    bench_e1_amos,
    bench_e2_slack,
    bench_e3_cole_vishkin,
    bench_e4_resilient,
    bench_e5_resilient_decider,
    bench_e6_boosting,
    bench_e7_gluing,
    bench_e8_ramsey,
    bench_e9_slack_vs_det,
    bench_e10_equivalence,
    bench_sweep_smoke_scenario
);
criterion_main!(experiments);

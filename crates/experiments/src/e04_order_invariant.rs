//! E4 — order-invariant algorithms are monochromatic on consecutive-ID
//! cycles (§4, the concrete application of Corollary 1).
//!
//! The paper argues: on the cycle `C_n` with consecutive identities, every
//! order-invariant `t`-round algorithm acts identically at the `n − (2t−1)`
//! nodes whose balls avoid the identity seam, so at least that many nodes
//! output the same color; hence no such algorithm solves the `f`-resilient
//! relaxation of 3-coloring for any constant `f`. We verify the bound for
//! the rank-based coloring and for *every* enumerated order-invariant
//! radius-0/1 algorithm, and we record how many bad balls result.

use crate::report::{ExperimentReport, Finding, Scale, Table};
use rlnc_core::order_invariant::{collect_signatures, enumerate_algorithms};
use rlnc_core::prelude::*;
use rlnc_core::relaxation::FResilient;
use rlnc_graph::generators::cycle;
use rlnc_graph::IdAssignment;
use rlnc_langs::coloring::{improperly_colored_nodes, ProperColoring, RankColoring};

/// Runs the experiment at the default master seed.
pub fn run(scale: Scale) -> ExperimentReport {
    run_seeded(scale, 0)
}

/// Runs the experiment; the experiment is deterministic, so `seed` is
/// unused (kept for the uniform runner-table signature).
pub fn run_seeded(scale: Scale, _seed: u64) -> ExperimentReport {
    let sizes = [scale.size(64), scale.size(256)];
    let radii = [0u32, 1, 2];
    let f = 4usize;

    let mut table = Table::new(&[
        "n",
        "t",
        "algorithm",
        "max same-color nodes",
        "bound n-(2t+1)",
        "bad balls",
        "in 4-resilient 3-coloring?",
    ]);

    let lang = ProperColoring::new(3);
    let mut bound_always_met = true;
    let mut any_resilient_success = false;

    for &n in &sizes {
        let graph = cycle(n);
        let input = Labeling::empty(n);
        let ids = IdAssignment::consecutive(&graph);
        let inst = Instance::new(&graph, &input, &ids);

        for &t in &radii {
            // The explicit rank-based order-invariant coloring.
            let rank = RankColoring::new(t, 3);
            let out = Simulator::new().run(&rank, &inst);
            let io = IoConfig::new(&graph, &input, &out);
            let same = max_color_multiplicity(&io);
            let bad = improperly_colored_nodes(&lang, &io);
            let resilient = FResilient::new(ProperColoring::new(3), f).contains(&io);
            any_resilient_success |= resilient;
            let bound = n.saturating_sub(2 * t as usize + 1);
            bound_always_met &= same >= bound;
            table.push_row(vec![
                n.to_string(),
                t.to_string(),
                "rank-coloring".into(),
                same.to_string(),
                bound.to_string(),
                bad.to_string(),
                resilient.to_string(),
            ]);
        }

        // Exhaustive enumeration of every order-invariant radius-0 algorithm
        // with 3 output colors (there are 3^{#ball types} of them; radius 0
        // on the input-less cycle has a single ball type, so exactly 3).
        let signatures = collect_signatures(&[Instance::new(&graph, &input, &ids)], 0);
        let outputs: Vec<Label> = (1..=3).map(Label::from_u64).collect();
        for algo in enumerate_algorithms(&signatures, &outputs, 0) {
            let out = Simulator::new().run(&algo, &inst);
            let io = IoConfig::new(&graph, &input, &out);
            let same = max_color_multiplicity(&io);
            let bad = improperly_colored_nodes(&lang, &io);
            let resilient = FResilient::new(ProperColoring::new(3), f).contains(&io);
            any_resilient_success |= resilient;
            bound_always_met &= same >= n - 1;
            table.push_row(vec![
                n.to_string(),
                "0".into(),
                LocalAlgorithm::name(&algo),
                same.to_string(),
                (n - 1).to_string(),
                bad.to_string(),
                resilient.to_string(),
            ]);
        }
    }

    let findings = vec![
        Finding::new(
            "§4: on the consecutive-ID cycle, every order-invariant t-round algorithm outputs the same color at ≥ n−(2t−1) nodes",
            if bound_always_met { "bound met by the rank coloring and every enumerated radius-0 algorithm".into() } else { "bound violated".to_string() },
            bound_always_met,
        ),
        Finding::new(
            "hence no order-invariant constant-round algorithm solves the f-resilient relaxation of 3-coloring (Corollary 1 application)",
            format!(
                "no tested algorithm landed in the 4-resilient relaxation: {}",
                !any_resilient_success
            ),
            !any_resilient_success,
        ),
    ];

    ExperimentReport {
        id: "E4".into(),
        title: "order-invariant algorithms fail f-resilient coloring on consecutive-ID cycles".into(),
        paper_reference: "§4 (application of Corollary 1), Claim 1".into(),
        table,
        findings,
    }
}

fn max_color_multiplicity(io: &IoConfig<'_>) -> usize {
    let mut counts = std::collections::HashMap::new();
    for v in io.graph.nodes() {
        *counts.entry(io.output.get(v).clone()).or_insert(0usize) += 1;
    }
    counts.into_values().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_order_invariant_failure_bound() {
        let report = run(Scale::Smoke);
        assert!(report.all_consistent(), "findings: {:?}", report.findings);
        assert!(report.table.rows.len() >= 6);
    }
}

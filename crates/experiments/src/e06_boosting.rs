//! E6 — Claim 3: disjoint-union error boosting.
//!
//! Running a constructor that fails with probability ≥ β on each hard
//! instance over the disjoint union of ν copies, and then a decider with
//! guarantee p, the acceptance probability is at most `(1 − βp)^ν`; with
//! `ν` from Eq. (3) it drops below `r·p`. We instantiate the constructor as
//! a fault-injected correct colorer with measured β, use a one-sided
//! per-bad-ball rejecting decider with parameter p, and measure the decay.

use crate::report::{fmt_prob, ExperimentReport, Finding, Scale, Table};
use rlnc_core::algorithm::Coins;
use rlnc_core::decision::FnRandomizedDecider;
use rlnc_core::derand::boosting::{boosting_bound, boosting_repetitions, disjoint_union_acceptance};
use rlnc_core::derand::hard_instances::{consecutive_cycle_candidates, HardInstanceSearch};
use rlnc_core::prelude::*;
use rlnc_langs::coloring::{GlobalGreedyColoring, ProperColoring};
use rlnc_langs::faulty::FaultyConstructor;
use rand::Rng;

/// Runs the experiment.
pub fn run(scale: Scale) -> ExperimentReport {
    let trials = scale.trials(3_000);
    let cycle_size = 12usize;
    let per_node_fault = 0.05f64;
    let p = 0.8f64;
    let r = 0.9f64; // the success probability the hypothetical constructor claims

    // Constructor: correct greedy coloring with per-node corruption.
    let constructor = FaultyConstructor::new(
        GlobalGreedyColoring::new(cycle_size as u32, 3),
        per_node_fault,
        Label::from_u64(0),
    );
    // Decider: accept at properly-colored centers, reject at bad centers
    // with probability p (one-sided error with guarantee p on no-instances).
    let decider = FnRandomizedDecider::new(1, "reject-bad-balls", move |view: &View, coins: &Coins| {
        let mine = view.output(view.center_local());
        let in_range = mine.as_u64() >= 1 && mine.as_u64() <= 3;
        let conflict = view.center_neighbors().iter().any(|&i| view.output(i) == mine);
        if in_range && !conflict {
            true
        } else {
            !coins.for_center(view).random_bool(p)
        }
    });

    let language = ProperColoring::new(3);
    let hard = consecutive_cycle_candidates([cycle_size]);
    let search = HardInstanceSearch::new(&language);
    let beta = search
        .failure_probability(&constructor, &hard[0], trials, 0xE6)
        .p_hat;
    let nu_star = boosting_repetitions(r, p, beta);

    let mut table = Table::new(&[
        "ν (copies)",
        "Pr[D accepts C(G)] measured",
        "bound (1-βp)^ν",
        "below r·p?",
    ]);

    let mut monotone = true;
    let mut previous = 1.0f64;
    let mut bound_respected = true;
    let max_nu = nu_star.min(12).max(4);
    for nu in 1..=max_nu {
        let est = disjoint_union_acceptance(&constructor, &decider, &hard, nu, trials, 0xE6 + nu as u64);
        let bound = boosting_bound(p, beta, nu);
        monotone &= est.p_hat <= previous + 0.05;
        bound_respected &= est.p_hat <= bound + 0.05;
        previous = est.p_hat;
        table.push_row(vec![
            nu.to_string(),
            fmt_prob(est.p_hat),
            fmt_prob(bound),
            (est.p_hat < r * p).to_string(),
        ]);
    }
    let final_acceptance = previous;

    let findings = vec![
        Finding::new(
            "Claim 3: Pr[D accepts C(G)] ≤ (1 − βp)^ν on the disjoint union of ν hard instances",
            format!(
                "measured β = {:.3}; acceptance decays monotonically and stays within +0.05 of the bound: {}",
                beta,
                monotone && bound_respected
            ),
            monotone && bound_respected,
        ),
        Finding::new(
            "Eq. (3): ν = 1 + ⌈ln(rp)/ln(1−βp)⌉ copies push the acceptance below r·p, contradicting a success probability of r",
            format!(
                "ν* = {}, acceptance at the largest tested ν ({}) is {:.3} vs r·p = {:.3}",
                nu_star,
                max_nu,
                final_acceptance,
                r * p
            ),
            final_acceptance < r * p || max_nu < nu_star,
        ),
    ];

    ExperimentReport {
        id: "E6".into(),
        title: "disjoint-union error boosting (Claim 3)".into(),
        paper_reference: "§3, Claim 3 and Eq. (3)".into(),
        table,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_boosting_decay() {
        let report = run(Scale::Smoke);
        assert!(report.all_consistent(), "findings: {:?}", report.findings);
        assert!(report.table.rows.len() >= 4);
    }
}

//! E6 — Claim 3: disjoint-union error boosting.
//!
//! Running a constructor that fails with probability ≥ β on each hard
//! instance over the disjoint union of ν copies, and then a decider with
//! guarantee p, the acceptance probability is at most `(1 − βp)^ν`; with
//! `ν` from Eq. (3) it drops below `r·p`. We instantiate the constructor as
//! a fault-injected correct colorer with measured β, use a one-sided
//! per-bad-ball rejecting decider with parameter p, and measure the decay.
//!
//! After β is measured — through the `rlnc-derand` pipeline's engine-backed
//! Claim-2 estimator — the ν-grid runs on the `rlnc-sweep` engine (the
//! `boosting-decay` registry scenario, truncated to the Eq.-(3) ν*), whose
//! union kernel is the pipeline's `UnionPlan`.

use crate::report::{fmt_prob, ExperimentReport, Finding, Scale, Table};
use rlnc_core::derand::boosting::{boosting_bound, boosting_repetitions};
use rlnc_core::derand::hard_instances::consecutive_cycle_candidates;
use rlnc_core::prelude::*;
use rlnc_derand::failure_probability_with;
use rlnc_engine::BatchRunner;
use rlnc_langs::coloring::{GlobalGreedyColoring, ProperColoring};
use rlnc_langs::faulty::FaultyConstructor;
use rlnc_sweep::registry::boosting_spec;
use rlnc_sweep::{SweepExecutor, Workload};

/// Runs the experiment at the default master seed.
pub fn run(scale: Scale) -> ExperimentReport {
    run_seeded(scale, 0)
}

/// Runs the experiment; `seed` perturbs every random stream.
pub fn run_seeded(scale: Scale, seed: u64) -> ExperimentReport {
    let r = 0.9f64; // the success probability the hypothetical constructor claims

    // The grid (and the constructor/decider parameters) come from the
    // shared scenario; β is measured on the same constructor up front,
    // with the scenario's own trial budget so its confidence width matches
    // the sweep's statistical resolution.
    let mut spec = boosting_spec(1);
    let trials = scale.trials(spec.base_trials);
    let Workload::BoostingUnion {
        cycle_size,
        per_node_fault,
        colors,
        decider_p: p,
    } = spec.workload
    else {
        unreachable!("boosting_spec always carries a BoostingUnion workload");
    };

    // Constructor: correct greedy coloring with per-node corruption.
    let constructor = FaultyConstructor::new(
        GlobalGreedyColoring::new(cycle_size as u32, colors),
        per_node_fault,
        Label::from_u64(0),
    );
    let language = ProperColoring::new(colors);
    let hard = consecutive_cycle_candidates([cycle_size]);
    // β comes out of the pipeline's engine-backed Claim-2 estimator
    // (cached views, bit-identical to the legacy HardInstanceSearch path);
    // the Claim-2 stage involves no decider, so the standalone form fits.
    let beta = failure_probability_with(
        &BatchRunner::new(),
        &constructor,
        &language,
        &hard[0],
        trials,
        seed ^ 0xE6,
    )
    .p_hat;
    let nu_star = boosting_repetitions(r, p, beta);
    let max_nu = nu_star.min(12).max(4);
    spec = boosting_spec(max_nu as u64);

    let sweep = SweepExecutor::new(scale).with_seed(seed ^ 0xE6).run(&spec);

    let mut table = Table::new(&[
        "ν (copies)",
        "Pr[D accepts C(G)] measured",
        "bound (1-βp)^ν",
        "below r·p?",
    ]);

    let mut monotone = true;
    let mut previous = 1.0f64;
    let mut bound_respected = true;
    for record in &sweep.records {
        let nu = record.param_a as usize;
        let bound = boosting_bound(p, beta, nu);
        monotone &= record.p_hat <= previous + 0.05;
        bound_respected &= record.p_hat <= bound + 0.05;
        previous = record.p_hat;
        table.push_row(vec![
            nu.to_string(),
            fmt_prob(record.p_hat),
            fmt_prob(bound),
            (record.p_hat < r * p).to_string(),
        ]);
    }
    let final_acceptance = previous;

    let findings = vec![
        Finding::new(
            "Claim 3: Pr[D accepts C(G)] ≤ (1 − βp)^ν on the disjoint union of ν hard instances",
            format!(
                "measured β = {:.3}; acceptance decays monotonically and stays within +0.05 of the bound: {}",
                beta,
                monotone && bound_respected
            ),
            monotone && bound_respected,
        ),
        Finding::new(
            "Eq. (3): ν = 1 + ⌈ln(rp)/ln(1−βp)⌉ copies push the acceptance below r·p, contradicting a success probability of r",
            format!(
                "ν* = {}, acceptance at the largest tested ν ({}) is {:.3} vs r·p = {:.3}",
                nu_star,
                max_nu,
                final_acceptance,
                r * p
            ),
            final_acceptance < r * p || max_nu < nu_star,
        ),
    ];

    ExperimentReport {
        id: "E6".into(),
        title: "disjoint-union error boosting (Claim 3)".into(),
        paper_reference: "§3, Claim 3 and Eq. (3)".into(),
        table,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_boosting_decay() {
        let report = run(Scale::Smoke);
        assert!(report.all_consistent(), "findings: {:?}", report.findings);
        assert!(report.table.rows.len() >= 4);
    }
}

//! One funnel for the CLI's stderr status chatter.
//!
//! Every `wrote <path>` confirmation and every warning the
//! `rlnc-experiments` binary prints goes through this module, so the
//! `--quiet` flag has exactly one switch to flip. The contract, pinned by
//! `tests/cli_smoke.rs`:
//!
//! * [`note`] — progress/confirmation lines. Printed to stderr; silenced
//!   by `--quiet`. Never part of the machine-readable contract.
//! * [`warn`] — problems the user must see (inconsistent findings,
//!   unparsable resume files). Printed to stderr **even under `--quiet`**.
//! * stdout and exit codes are never touched here: piped output
//!   (`bench-export > BENCH.json`) and scripted exit-code checks behave
//!   identically with and without `--quiet`.

use std::sync::atomic::{AtomicBool, Ordering};

static QUIET: AtomicBool = AtomicBool::new(false);

/// Silences [`note`] lines for the rest of the process (the `--quiet`
/// flag). Warnings keep printing.
pub fn set_quiet(quiet: bool) {
    QUIET.store(quiet, Ordering::Relaxed);
}

/// Whether `--quiet` is in effect.
pub fn quiet() -> bool {
    QUIET.load(Ordering::Relaxed)
}

/// Prints a status line (e.g. `wrote sweep.json`) to stderr unless
/// `--quiet` is set.
pub fn note(message: &str) {
    if !quiet() {
        eprintln!("{message}");
    }
}

/// Prints a warning to stderr. Not silenced by `--quiet`: a warning the
/// user can accidentally suppress is a warning that never happened.
pub fn warn(message: &str) {
    eprintln!("{message}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_flag_round_trips() {
        // Process-global, so restore the default for sibling tests.
        set_quiet(true);
        assert!(quiet());
        set_quiet(false);
        assert!(!quiet());
    }
}

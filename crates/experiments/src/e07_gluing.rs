//! E7 — Theorem 1's connected gluing construction.
//!
//! Verifies the structural properties the proof needs — the glued graph is
//! connected, keeps maximum degree ≤ k (= 3 here), hosts µ = ⌈1/(2p−1)⌉
//! anchors pairwise ≥ 2(t+t′) apart whenever the hard instances have
//! diameter ≥ 2µ(t+t′) — and measures how the probability that the decider
//! accepts the constructed output *far from every anchor* decays with the
//! number ν′ of glued instances, against the `(1 − β(1−p)/µ)^{ν′}` shape.

use crate::report::{fmt_prob, ExperimentReport, Finding, Scale, Table};
use rlnc_core::derand::gluing::{
    anchor_candidates, anchor_count, claim5_bound, gluing_repetitions, separation_distance,
    GluingExperiment,
};
use rlnc_core::derand::hard_instances::consecutive_cycle_candidates;
use rlnc_core::prelude::*;
use rlnc_derand::{DerandPipeline, PipelineParams};
use rlnc_graph::traversal::{distance, is_connected};
use rlnc_langs::coloring::{GlobalGreedyColoring, ProperColoring};
use rlnc_langs::faulty::FaultyConstructor;
use rlnc_sweep::workload::RejectBadBallsDecider;

/// Runs the experiment at the default master seed.
pub fn run(scale: Scale) -> ExperimentReport {
    run_seeded(scale, 0)
}

/// Runs the experiment; `seed` perturbs every random stream (`0`
/// reproduces the historical default streams).
pub fn run_seeded(scale: Scale, seed: u64) -> ExperimentReport {
    let trials = scale.trials(1_500);
    let p = 0.75f64;
    let r = 0.9f64;
    let per_node_fault = 0.05f64;
    let t = 0u32; // constructor radius (the faulty greedy uses a large view, but the relevant anchor radius is the decider's)
    let t_prime = 1u32;

    let mu = anchor_count(p);
    let needed_diameter = separation_distance(t, t_prime, p);
    let cycle_size = (2 * needed_diameter as usize + 8).max(16);

    let constructor = FaultyConstructor::new(
        GlobalGreedyColoring::new(cycle_size as u32, 3),
        per_node_fault,
        Label::from_u64(0),
    );
    let decider = RejectBadBallsDecider::new(3, p);

    let language = ProperColoring::new(3);
    // All estimation now routes through the rlnc-derand pipeline: cached
    // composite plans and a precomputed far-from-anchors participation set
    // instead of per-trial view collection and per-anchor BFS. The streams
    // are bit-identical to the legacy GluingExperiment estimators.
    let pipeline = DerandPipeline::new(
        &constructor,
        &decider,
        &language,
        PipelineParams { r, p, t, t_prime },
    );
    let prototype = consecutive_cycle_candidates([cycle_size]).remove(0);
    let beta = pipeline.failure_probability(&prototype, trials, seed ^ 0xE7).p_hat;
    let nu_prime_star = gluing_repetitions(r, p, beta);

    // Structural checks on one gluing of 3 parts.
    let parts = consecutive_cycle_candidates(vec![cycle_size; 3]);
    let anchors: Vec<_> = parts
        .iter()
        .map(|h| anchor_candidates(h, t, t_prime, p))
        .collect();
    let anchors_found = anchors.iter().all(|a| a.len() >= mu);
    let min_anchor_distance = anchors[0]
        .iter()
        .enumerate()
        .flat_map(|(i, &u)| anchors[0].iter().skip(i + 1).map(move |&v| (u, v)))
        .filter_map(|(u, v)| distance(&parts[0].graph, u, v))
        .min()
        .unwrap_or(0);
    let chosen: Vec<_> = anchors.iter().map(|a| a[0]).collect();
    let structural = GluingExperiment::build(parts, chosen, t, t_prime);
    let connected = is_connected(structural.graph());
    let degree_ok = structural.graph().max_degree() <= 3;

    let mut table = Table::new(&[
        "ν' (glued instances)",
        "Pr[accept far from all anchors]",
        "bound (1-β(1-p)/µ)^ν'",
        "Pr[D accepts C(G)] (all nodes)",
    ]);

    let nu_values: Vec<usize> = match scale {
        Scale::Smoke => vec![2, 4],
        Scale::Standard => vec![2, 4, 8, 12],
        Scale::Full => vec![2, 4, 8, 16, 24],
    };

    let mut previous_far = 1.0f64;
    let mut monotone = true;
    for &nu in &nu_values {
        let parts = consecutive_cycle_candidates(vec![cycle_size; nu]);
        let anchors: Vec<_> = parts
            .iter()
            .map(|h| anchor_candidates(h, t, t_prime, p)[0])
            .collect();
        let stage = pipeline.glued_stage(parts, anchors);
        let far = pipeline.glued_far_acceptance(&stage, trials, seed ^ (0xE7 + nu as u64));
        let full = pipeline.glued_acceptance(&stage, trials, seed ^ (0x1E7 + nu as u64));
        let bound = claim5_bound(beta, p, mu).powi(nu as i32);
        monotone &= far.p_hat <= previous_far + 0.05;
        previous_far = far.p_hat;
        table.push_row(vec![
            nu.to_string(),
            fmt_prob(far.p_hat),
            fmt_prob(bound),
            fmt_prob(full.p_hat),
        ]);
    }

    let findings = vec![
        Finding::new(
            "the gluing preserves connectivity and the degree bound k = 3 (k > 2)",
            format!("connected: {connected}, max degree ≤ 3: {degree_ok}"),
            connected && degree_ok,
        ),
        Finding::new(
            "µ = ⌈1/(2p−1)⌉ anchors pairwise ≥ 2(t+t') apart exist when the diameter is ≥ 2µ(t+t')",
            format!(
                "µ = {mu}, found {} anchor(s) per instance with pairwise distance ≥ {} (needed {})",
                anchors_found,
                min_anchor_distance,
                2 * (t + t_prime)
            ),
            anchors_found && min_anchor_distance >= 2 * (t + t_prime),
        ),
        Finding::new(
            "the probability that the decider accepts far from every anchor decays geometrically with ν' (Claims 4–5)",
            format!("measured β = {beta:.3}, ν'* = {nu_prime_star}, acceptance decreases monotonically: {monotone}"),
            monotone,
        ),
    ];

    ExperimentReport {
        id: "E7".into(),
        title: "the Theorem-1 gluing: structure and acceptance decay".into(),
        paper_reference: "§3, Claims 4–5 and the gluing construction".into(),
        table,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_gluing_structure_and_decay() {
        let report = run(Scale::Smoke);
        assert!(report.all_consistent(), "findings: {:?}", report.findings);
    }
}

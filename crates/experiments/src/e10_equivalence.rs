//! E10 — the message-passing and ball-view formulations of the LOCAL model
//! coincide (§2.1).
//!
//! Runs a collection of deterministic algorithms on several graph families
//! both through the steppable round system (full-information gather by
//! explicit per-round message exchange, then apply the output function)
//! and through the direct ball-view simulator, and checks the outputs
//! agree node for node — and that the system goes quiet after exactly the
//! declared number of rounds.

use crate::report::{ExperimentReport, Finding, Scale, Table};
use rlnc_core::prelude::*;
use rlnc_core::rounds::{GatherAndRun, RoundSystem};
use rlnc_graph::generators::Family;
use rlnc_graph::IdAssignment;
use rlnc_langs::coloring::{GlobalGreedyColoring, RankColoring};
use rlnc_par::rng::SeedSequence;

/// Runs the experiment at the default master seed.
pub fn run(scale: Scale) -> ExperimentReport {
    run_seeded(scale, 0)
}

/// Runs the experiment; `seed` perturbs every random stream (`0`
/// reproduces the historical default streams).
pub fn run_seeded(scale: Scale, seed: u64) -> ExperimentReport {
    let n = scale.size(48);
    let mut rng = SeedSequence::new(seed ^ 0xE10).rng();

    let algorithms: Vec<(String, Box<dyn LocalAlgorithm>)> = vec![
        ("rank-coloring(t=1)".into(), Box::new(RankColoring::new(1, 3))),
        ("rank-coloring(t=2)".into(), Box::new(RankColoring::new(2, 3))),
        ("global-greedy(t=3)".into(), Box::new(GlobalGreedyColoring::new(3, 4))),
        (
            "ball-fingerprint(t=2)".into(),
            Box::new(FnAlgorithm::new(2, "fingerprint", |view: &View| {
                let ids: u64 = (0..view.len()).map(|i| view.id(i)).sum();
                let edges = view.local_graph().edge_count() as u64;
                Label::from_u64(ids * 64 + edges)
            })),
        ),
    ];

    let mut table = Table::new(&["family", "n", "algorithm", "outputs identical?"]);
    let mut all_equal = true;

    for family in [Family::Cycle, Family::Grid, Family::BinaryTree, Family::Cubic] {
        let graph = family.generate(n, &mut rng);
        let nodes = graph.node_count();
        let input = Labeling::from_fn(&graph, |v| Label::from_u64(u64::from(v.0 % 5)));
        let ids = IdAssignment::spread(&graph, 7);
        let inst = Instance::new(&graph, &input, &ids);
        for (name, algo) in &algorithms {
            let direct = Simulator::new().run(algo.as_ref(), &inst);
            // The operational semantics, stepped round by round: after
            // exactly t rounds of flooding the system must be quiet, and
            // the gathered views must reproduce the ball-view outputs.
            let gather = GatherAndRun::new(algo.as_ref());
            let mut system = RoundSystem::new(&gather, &inst);
            let rounds_stepped = system.step_until_quiet();
            let via_messages = system.outputs();
            let equal = direct == via_messages && rounds_stepped == algo.radius();
            all_equal &= equal;
            table.push_row(vec![
                family.name().to_string(),
                nodes.to_string(),
                name.clone(),
                equal.to_string(),
            ]);
        }
    }

    let findings = vec![Finding::new(
        "§2.1: a t-round message-passing algorithm is equivalent to collecting B_G(v,t) and mapping it to an output",
        format!("outputs identical across all families and algorithms: {all_equal}"),
        all_equal,
    )];

    ExperimentReport {
        id: "E10".into(),
        title: "message-passing execution ≡ ball-view execution".into(),
        paper_reference: "§2.1.1 (the simulation argument)".into(),
        table,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_equivalence_holds() {
        let report = run(Scale::Smoke);
        assert!(report.all_consistent(), "findings: {:?}", report.findings);
        assert_eq!(report.table.rows.len(), 16);
    }

    /// Routing E10 through the steppable [`RoundSystem`] must not move a
    /// byte of its historical seed-0 output: this digest was recorded from
    /// the one-shot `run_via_message_passing` path before the refactor.
    #[test]
    fn e10_seed_zero_table_is_byte_identical_to_the_historical_output() {
        let report = run(Scale::Smoke);
        let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
        for row in &report.table.rows {
            for cell in row {
                for byte in cell.as_bytes() {
                    digest ^= u64::from(*byte);
                    digest = digest.wrapping_mul(0x0100_0000_01b3);
                }
                digest ^= 0xFF;
                digest = digest.wrapping_mul(0x0100_0000_01b3);
            }
        }
        assert_eq!(digest, 0x942e_95b2_c63b_3781);
        assert!(report.table.rows.iter().all(|row| row[3] == "true"));
    }
}

//! E9 — randomization helps for ε-slack, deterministic constant-round
//! algorithms do not (§1.1 and §5).
//!
//! The zero-round random `(Δ+1)`-coloring lands in the ε-slack relaxation
//! with probability close to 1, while *every* order-invariant constant-round
//! deterministic algorithm (enumerated exhaustively for radius 0, and the
//! rank-based ones for radius 1, 2) leaves a constant *fraction* of the
//! consecutive-ID cycle improperly colored — far outside any ε-slack
//! relaxation with small ε and outside every f-resilient relaxation.

use crate::report::{fmt_prob, ExperimentReport, Finding, Scale, Table};
use rlnc_core::order_invariant::{collect_signatures, enumerate_algorithms};
use rlnc_core::prelude::*;
use rlnc_core::relaxation::EpsilonSlack;
use rlnc_graph::generators::cycle;
use rlnc_graph::IdAssignment;
use rlnc_langs::coloring::{improperly_colored_nodes, ProperColoring, RankColoring};
use rlnc_langs::random_coloring::RandomColoring;

/// Runs the experiment at the default master seed.
pub fn run(scale: Scale) -> ExperimentReport {
    run_seeded(scale, 0)
}

/// Runs the experiment; `seed` perturbs every random stream (`0`
/// reproduces the historical default streams).
pub fn run_seeded(scale: Scale, seed: u64) -> ExperimentReport {
    let n = scale.size(256);
    let trials = scale.trials(400);
    let epsilon = 0.62; // above the 5/9 expected improper fraction of the random coloring

    let graph = cycle(n);
    let input = Labeling::empty(n);
    let ids = IdAssignment::consecutive(&graph);
    let inst = Instance::new(&graph, &input, &ids);
    let lang = ProperColoring::new(3);
    let relaxed = EpsilonSlack::new(ProperColoring::new(3), epsilon);

    let mut table = Table::new(&[
        "algorithm",
        "randomized?",
        "rounds",
        "improper fraction (mean)",
        "Pr[in 0.62-slack]",
    ]);

    // Randomized zero-round coloring.
    let random = RandomColoring::new(3);
    let random_success =
        Simulator::new().construction_success(&random, &inst, &relaxed, trials, seed ^ 0xE9);
    let random_improper = rlnc_par::trials::MonteCarlo::new(trials).with_seed(seed ^ 0x1E9).summarize(|seed| {
        let out = Simulator::new().run_randomized(&random, &inst, seed);
        improperly_colored_nodes(&lang, &IoConfig::new(&graph, &input, &out)) as f64 / n as f64
    });
    table.push_row(vec![
        "random-3-coloring".into(),
        "yes".into(),
        "0".into(),
        fmt_prob(random_improper.mean),
        fmt_prob(random_success.p_hat),
    ]);

    // Every deterministic order-invariant radius-0 algorithm (3 of them on
    // the input-less cycle), plus rank colorings of radius 1 and 2.
    let mut worst_det_fraction = 0.0f64;
    let mut any_det_in_slack = false;
    let signatures = collect_signatures(&[Instance::new(&graph, &input, &ids)], 0);
    let outputs: Vec<Label> = (1..=3).map(Label::from_u64).collect();
    let enumerated: Vec<_> = enumerate_algorithms(&signatures, &outputs, 0).collect();
    let mut deterministic: Vec<(String, Box<dyn LocalAlgorithm>)> = Vec::new();
    for algo in enumerated {
        deterministic.push((LocalAlgorithm::name(&algo), Box::new(algo)));
    }
    deterministic.push(("rank-3-coloring(t=1)".into(), Box::new(RankColoring::new(1, 3))));
    deterministic.push(("rank-3-coloring(t=2)".into(), Box::new(RankColoring::new(2, 3))));

    for (name, algo) in &deterministic {
        let out = Simulator::new().run(algo.as_ref(), &inst);
        let io = IoConfig::new(&graph, &input, &out);
        let fraction = improperly_colored_nodes(&lang, &io) as f64 / n as f64;
        let in_slack = relaxed.contains(&io);
        worst_det_fraction = worst_det_fraction.max(0.0f64.max(fraction));
        any_det_in_slack |= in_slack;
        table.push_row(vec![
            name.clone(),
            "no".into(),
            algo.radius().to_string(),
            fmt_prob(fraction),
            if in_slack { "1.000".into() } else { "0.000".into() },
        ]);
    }

    let findings = vec![
        Finding::new(
            "§1.1/§5: the zero-round randomized coloring solves the ε-slack relaxation with constant (here ≈ 1) probability",
            format!("Pr[in 0.62-slack] = {:.3}", random_success.p_hat),
            random_success.p_hat > 0.5,
        ),
        Finding::new(
            "no constant-round deterministic (order-invariant) algorithm solves the ε-slack relaxation on the consecutive-ID cycle",
            format!(
                "every tested deterministic algorithm leaves ≥ {:.0}% of the nodes improper and none lands in the 0.62-slack relaxation",
                100.0 * (1.0 - epsilon).min(worst_det_fraction)
            ),
            !any_det_in_slack,
        ),
        Finding::new(
            "so randomization helps for ε-slack (while E4/E5 show it does not for f-resilient) — the separation the paper draws",
            format!(
                "randomized success {:.3} vs deterministic success 0.000",
                random_success.p_hat
            ),
            random_success.p_hat > 0.5 && !any_det_in_slack,
        ),
    ];

    ExperimentReport {
        id: "E9".into(),
        title: "ε-slack: randomized vs deterministic constant-round algorithms".into(),
        paper_reference: "§1.1, §5 (BPLD#node)".into(),
        table,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_randomization_helps_for_slack() {
        let report = run(Scale::Smoke);
        assert!(report.all_consistent(), "findings: {:?}", report.findings);
        assert!(report.table.rows.len() >= 6);
    }
}

//! E3 — 3-coloring the ring takes `Θ(log* n)` rounds (§1.1).
//!
//! Upper bound: Cole–Vishkin 3-colors oriented rings, and its round count
//! grows like `log* n` (plus a constant). Lower-bound side: the zero-round
//! and one-round order-invariant attempts fail on consecutive-identity
//! rings (covered in more depth by E4); here we tabulate the round counts
//! and verify correctness at every size.

use crate::report::{ExperimentReport, Finding, Scale, Table};
use rlnc_core::prelude::*;
use rlnc_langs::cole_vishkin::{cv_iterations, log_star, oriented_ring_instance, ColeVishkinRingColoring};
use rlnc_langs::coloring::ProperColoring;

/// Runs the experiment at the default master seed.
pub fn run(scale: Scale) -> ExperimentReport {
    run_seeded(scale, 0)
}

/// Runs the experiment; the experiment is deterministic, so `seed` is
/// unused (kept for the uniform runner-table signature).
pub fn run_seeded(scale: Scale, _seed: u64) -> ExperimentReport {
    let sizes: Vec<usize> = match scale {
        Scale::Smoke => vec![8, 16, 64],
        Scale::Standard => vec![16, 64, 256, 1024, 4096],
        Scale::Full => vec![16, 64, 256, 1024, 4096, 16_384, 65_536],
    };

    let mut table = Table::new(&["n", "log*(n)", "CV iterations", "total rounds", "proper 3-coloring?"]);
    let mut all_proper = true;
    let mut rounds_small = 0u32;
    let mut rounds_large = 0u32;
    let lang = ProperColoring::new(3);

    for (i, &n) in sizes.iter().enumerate() {
        let algo = ColeVishkinRingColoring::for_ring_size(n);
        let (graph, input, ids) = oriented_ring_instance(n);
        let inst = Instance::new(&graph, &input, &ids);
        let out = Simulator::new().run(&algo, &inst);
        let proper = lang.contains(&IoConfig::new(&graph, &input, &out));
        all_proper &= proper;
        if i == 0 {
            rounds_small = algo.rounds();
        }
        rounds_large = algo.rounds();
        table.push_row(vec![
            n.to_string(),
            log_star(n as u64).to_string(),
            algo.iterations().to_string(),
            algo.rounds().to_string(),
            proper.to_string(),
        ]);
    }

    let max_rounds = sizes
        .iter()
        .map(|&n| ColeVishkinRingColoring::for_ring_size(n).rounds())
        .max()
        .unwrap_or(0);

    let findings = vec![
        Finding::new(
            "§1.1: 3-coloring the n-ring is possible in O(log* n) rounds (Cole–Vishkin upper bound)",
            format!(
                "proper 3-colorings at every size; rounds grow from {} to {} while n grows {}×",
                rounds_small,
                rounds_large,
                sizes.last().unwrap() / sizes.first().unwrap()
            ),
            all_proper,
        ),
        Finding::new(
            "the round count stays far below n (it tracks the iterated logarithm, not n)",
            format!("max rounds {} on rings of up to {} nodes", max_rounds, sizes.last().unwrap()),
            (max_rounds as usize) < sizes[sizes.len() - 1] / 2,
        ),
        Finding::new(
            "cv_iterations is monotone in the identity range (log*-like growth)",
            format!(
                "iterations({}) = {} ≤ iterations(2^40) = {}",
                sizes[0],
                cv_iterations(sizes[0] as u64),
                cv_iterations(1 << 40)
            ),
            cv_iterations(sizes[0] as u64) <= cv_iterations(1 << 40),
        ),
    ];

    ExperimentReport {
        id: "E3".into(),
        title: "Cole–Vishkin 3-coloring of oriented rings: rounds vs log* n".into(),
        paper_reference: "§1.1 (Linial bound [25], randomized bound [27])".into(),
        table,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_cole_vishkin_round_growth() {
        let report = run(Scale::Smoke);
        assert!(report.all_consistent(), "findings: {:?}", report.findings);
    }
}

//! E2 — the ε-slack relaxation is solvable by the zero-round random
//! coloring (§1.1).
//!
//! Measures, on rings of increasing size, the fraction of properly colored
//! nodes produced by the uniform random 3-coloring and the probability that
//! the outcome lies in the ε-slack relaxation for several ε.

use crate::report::{fmt_prob, ExperimentReport, Finding, Scale, Table};
use rlnc_core::prelude::*;
use rlnc_core::relaxation::EpsilonSlack;
use rlnc_graph::generators::cycle;
use rlnc_graph::IdAssignment;
use rlnc_langs::coloring::{improperly_colored_nodes, ProperColoring};
use rlnc_langs::random_coloring::RandomColoring;
use rlnc_par::trials::MonteCarlo;

/// Runs the experiment at the default master seed.
pub fn run(scale: Scale) -> ExperimentReport {
    run_seeded(scale, 0)
}

/// Runs the experiment; `seed` perturbs every random stream (`0`
/// reproduces the historical default streams).
pub fn run_seeded(scale: Scale, seed: u64) -> ExperimentReport {
    let trials = scale.trials(400);
    let sizes = [scale.size(64), scale.size(256), scale.size(1024)];
    let epsilons = [0.60, 0.58, 0.52];
    let expected_improper = 1.0 - 4.0 / 9.0; // 5/9 on the ring with 3 colors

    let mut table = Table::new(&[
        "n",
        "E[improper fraction] (measured)",
        "theory 5/9",
        "Pr[in 0.60-slack]",
        "Pr[in 0.58-slack]",
        "Pr[in 0.52-slack]",
    ]);

    let algo = RandomColoring::new(3);
    let lang = ProperColoring::new(3);
    // Concentration kicks in as n grows, so the headline check uses the
    // largest ring; smaller rings are reported for the trend.
    let mut largest_ring_eps_prob = 0.0f64;
    let mut mean_improper_overall = 0.0f64;

    for &n in &sizes {
        let graph = cycle(n);
        let input = Labeling::empty(n);
        let ids = IdAssignment::consecutive(&graph);
        let inst = Instance::new(&graph, &input, &ids);
        let mc = MonteCarlo::new(trials).with_seed(seed ^ (0xE2 + n as u64));
        let improper = mc.summarize(|seed| {
            let out = Simulator::new().run_randomized(&algo, &inst, seed);
            improperly_colored_nodes(&lang, &IoConfig::new(&graph, &input, &out)) as f64 / n as f64
        });
        mean_improper_overall += improper.mean / sizes.len() as f64;
        let mut eps_cells = Vec::new();
        for (i, &eps) in epsilons.iter().enumerate() {
            let relaxed = EpsilonSlack::new(ProperColoring::new(3), eps);
            let est = Simulator::new().construction_success(&algo, &inst, &relaxed, trials, seed ^ (0xE2 + i as u64));
            if i == 0 && n == *sizes.last().unwrap() {
                largest_ring_eps_prob = est.p_hat;
            }
            eps_cells.push(fmt_prob(est.p_hat));
        }
        table.push_row(vec![
            n.to_string(),
            fmt_prob(improper.mean),
            fmt_prob(expected_improper),
            eps_cells[0].clone(),
            eps_cells[1].clone(),
            eps_cells[2].clone(),
        ]);
    }

    let findings = vec![
        Finding::new(
            "§1.1: the uniform random 3-coloring leaves a 1−ε fraction properly colored with constant probability",
            format!("Pr[within 0.60-slack] = {:.3} on the largest tested ring", largest_ring_eps_prob),
            largest_ring_eps_prob > 0.5,
        ),
        Finding::new(
            "the expected improper fraction on the ring is 1 − (2/3)² = 5/9",
            format!("measured {:.3} vs 0.556", mean_improper_overall),
            (mean_improper_overall - expected_improper).abs() < 0.03,
        ),
    ];

    ExperimentReport {
        id: "E2".into(),
        title: "ε-slack relaxation via the zero-round random coloring".into(),
        paper_reference: "§1.1 (ε-slack), §5 (BPLD#node discussion)".into(),
        table,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_random_coloring_lands_in_slack_relaxation() {
        let report = run(Scale::Smoke);
        assert!(report.all_consistent(), "findings: {:?}", report.findings);
        assert_eq!(report.table.rows.len(), 3);
    }
}

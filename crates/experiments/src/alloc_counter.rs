//! A counting global allocator (behind the `count-alloc` feature): the
//! peak-allocation proxy of the perf trajectory.
//!
//! `BENCH_*.json` used to record wall time only, so memory-behavior
//! regressions were invisible until they dominated runtime. With this
//! feature enabled, every allocation through the global allocator bumps a
//! relaxed atomic counter and a live-bytes gauge (with a peak watermark),
//! letting `bench-export`:
//!
//! * record allocation counts per measured pass alongside nanoseconds, and
//! * **assert** the acceptance criterion of the language-layer refactor —
//!   view-native `is_bad_view` verdicts perform *zero* heap allocations.
//!
//! The counters use `Ordering::Relaxed`: they are statistics, not
//! synchronization, and the measured loops are single-threaded.

#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static CURRENT_BYTES: AtomicUsize = AtomicUsize::new(0);
static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);

/// The counting allocator: delegates to [`System`], counting on the way.
pub struct CountingAllocator;

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn record_alloc(size: usize) {
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    let live = CURRENT_BYTES.fetch_add(size, Ordering::Relaxed) + size;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            record_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        CURRENT_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            // Count a grow/shrink as one allocation event and move the
            // live-bytes gauge by the delta.
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            if new_size >= layout.size() {
                let live =
                    CURRENT_BYTES.fetch_add(new_size - layout.size(), Ordering::Relaxed)
                        + (new_size - layout.size());
                PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
            } else {
                CURRENT_BYTES.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        new_ptr
    }
}

/// Total number of allocation events since process start.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Live heap bytes currently tracked.
pub fn current_bytes() -> usize {
    CURRENT_BYTES.load(Ordering::Relaxed)
}

/// The high-water mark of live heap bytes — the peak-allocation proxy
/// recorded in `BENCH_*.json`.
pub fn peak_bytes() -> usize {
    PEAK_BYTES.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_counted() {
        let before = allocations();
        let v: Vec<u64> = (0..1024).collect();
        assert!(v.len() == 1024);
        assert!(allocations() > before, "a fresh Vec must be counted");
        assert!(peak_bytes() >= 1024 * 8);
        assert!(current_bytes() > 0);
    }

    #[test]
    fn view_native_verdicts_do_not_allocate() {
        use rlnc_core::config::{Instance, IoConfig};
        use rlnc_core::view::View;
        use rlnc_graph::IdAssignment;
        use rlnc_langs::registry::CaseRegistry;
        use rlnc_par::SeedSequence;

        // The acceptance criterion of the language-layer refactor: for
        // every registered LCL case, the view-native verdict path performs
        // zero heap allocations once the decision views exist.
        let registry = CaseRegistry::builtin();
        for id in registry.ids() {
            let case = id.case();
            let Some(lcl) = &case.lcl else { continue };
            let family = case.candidate_family(rlnc_graph::generators::Family::Cycle);
            let mut rng = SeedSequence::new(5).rng();
            let graph = family.generate(32, &mut rng);
            let ids = IdAssignment::consecutive(&graph);
            let input = case.build_input(&graph, &ids);
            let inst = Instance::new(&graph, &input, &ids);
            let out = rlnc_core::Simulator::sequential().run_randomized(
                &*case.constructor,
                &inst,
                SeedSequence::new(1).child(0),
            );
            let io = IoConfig::new(&graph, &input, &out);
            let views: Vec<View> = graph
                .nodes()
                .map(|v| View::collect_io(&io, &ids, v, lcl.radius()))
                .collect();
            // Warm-up pass (nothing to warm for overridden languages, but
            // keep the protocol uniform), then the counted pass.
            let warm: usize = views.iter().filter(|view| lcl.is_bad_view(view)).count();
            let before = allocations();
            let counted: usize = views.iter().filter(|view| lcl.is_bad_view(view)).count();
            let after = allocations();
            assert_eq!(warm, counted);
            assert_eq!(
                after - before,
                0,
                "case '{}': view-native verdicts allocated {} times",
                case.name,
                after - before
            );
        }
    }
}

//! Compatibility shim: the counting global allocator now lives in
//! [`rlnc_obs::alloc_counter`].
//!
//! PR 7 promoted the allocator from this crate into `rlnc-obs` so that
//! *every* layer (not just the bench harness) can assert allocation-free
//! hot loops. Existing callers — `bench-export`, the CI count-alloc suite,
//! external scripts importing `rlnc_experiments::alloc_counter` — keep
//! working unchanged through this re-export. Exactly one
//! `#[global_allocator]` exists workspace-wide, inside `rlnc-obs`;
//! enabling this crate's `count-alloc` feature forwards to
//! `rlnc-obs/count-alloc`.

pub use rlnc_obs::alloc_counter::*;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_native_verdicts_do_not_allocate() {
        use rlnc_core::config::{Instance, IoConfig};
        use rlnc_core::view::View;
        use rlnc_graph::IdAssignment;
        use rlnc_langs::registry::CaseRegistry;
        use rlnc_par::SeedSequence;

        // The acceptance criterion of the language-layer refactor: for
        // every registered LCL case, the view-native verdict path performs
        // zero heap allocations once the decision views exist. This test
        // lives here (not in rlnc-obs, which owns the allocator) because
        // it needs the language and view layers.
        let registry = CaseRegistry::builtin();
        for id in registry.ids() {
            let case = id.case();
            let Some(lcl) = &case.lcl else { continue };
            let family = case.candidate_family(rlnc_graph::generators::Family::Cycle);
            let mut rng = SeedSequence::new(5).rng();
            let graph = family.generate(32, &mut rng);
            let ids = IdAssignment::consecutive(&graph);
            let input = case.build_input(&graph, &ids);
            let inst = Instance::new(&graph, &input, &ids);
            let out = rlnc_core::Simulator::sequential().run_randomized(
                &*case.constructor,
                &inst,
                SeedSequence::new(1).child(0),
            );
            let io = IoConfig::new(&graph, &input, &out);
            let views: Vec<View> = graph
                .nodes()
                .map(|v| View::collect_io(&io, &ids, v, lcl.radius()))
                .collect();
            // Warm-up pass (nothing to warm for overridden languages, but
            // keep the protocol uniform), then the counted pass.
            let warm: usize = views.iter().filter(|view| lcl.is_bad_view(view)).count();
            let before = allocations();
            let counted: usize = views.iter().filter(|view| lcl.is_bad_view(view)).count();
            let after = allocations();
            assert_eq!(warm, counted);
            assert_eq!(
                after - before,
                0,
                "case '{}': view-native verdicts allocated {} times",
                case.name,
                after - before
            );
        }
    }
}

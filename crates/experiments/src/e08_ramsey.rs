//! E8 — Claim 1 / Appendix A: the order-invariant lift.
//!
//! Verifies the two computational halves of the Ramsey argument: (i) the
//! lifted algorithm `A'` (relabel the ball with the smallest identities of
//! a fixed set, respecting order, then run `A`) is order-invariant even
//! when `A` is not; (ii) refining the identity universe until `A` is
//! consistent on every ball type makes `A'` agree with `A` on instances
//! whose identities come from the refined set.

use crate::report::{ExperimentReport, Finding, Scale, Table};
use rlnc_core::derand::ramsey::OrderInvariantLift;
use rlnc_core::order_invariant::{check_order_invariance, standard_monotone_maps};
use rlnc_core::prelude::*;
use rlnc_derand::{deterministic_agreement, ramsey_stage};
use rlnc_engine::BatchRunner;
use rlnc_graph::generators::cycle;
use rlnc_graph::IdAssignment;

/// Runs the experiment at the default master seed.
pub fn run(scale: Scale) -> ExperimentReport {
    run_seeded(scale, 0)
}

/// Runs the experiment; `seed` perturbs every random stream (`0`
/// reproduces the historical default streams).
pub fn run_seeded(scale: Scale, seed: u64) -> ExperimentReport {
    let n = scale.size(32);
    let universe_size = scale.size(256) as u64;
    // The refinement's per-round sample count controls how reliably
    // inconsistencies are detected; it must not be scaled down, or the
    // refined set may retain stray identities.
    let samples = 500usize;

    let graph = cycle(n);
    let input = Labeling::empty(n);
    let ids = IdAssignment::consecutive(&graph);

    // The Claim-1 stage of the rlnc-derand pipeline: it concerns only the
    // wrapped deterministic algorithm, so E8 uses the standalone stage
    // functions (no constructor/decider bundle needed).
    let runner = BatchRunner::new();

    // Three wrapped algorithms: one already order-invariant, two identity-
    // dependent in different ways.
    let algorithms: Vec<(&str, FnAlgorithm<Box<dyn Fn(&View) -> Label + Sync>>)> = vec![
        (
            "rank-coloring (already order-invariant)",
            FnAlgorithm::new(1, "rank", Box::new(|v: &View| Label::from_u64(v.center_rank() as u64))),
        ),
        (
            "id-parity (identity-dependent)",
            FnAlgorithm::new(0, "id-parity", Box::new(|v: &View| Label::from_u64(v.center_id() % 2))),
        ),
        (
            "id-mod-3 (identity-dependent)",
            FnAlgorithm::new(0, "id-mod-3", Box::new(|v: &View| Label::from_u64(v.center_id() % 3))),
        ),
    ];

    let maps = standard_monotone_maps();
    let map_refs: Vec<&dyn Fn(u64) -> u64> = maps.iter().map(|m| m.as_ref() as &dyn Fn(u64) -> u64).collect();

    let mut table = Table::new(&[
        "wrapped algorithm",
        "A order-invariant?",
        "A' (lift) order-invariant?",
        "refined ID set size",
        "A ≡ A' on in-set instances?",
    ]);

    let mut all_lifts_invariant = true;
    let mut all_agreements = true;

    for (label, algo) in &algorithms {
        let inner_invariant = check_order_invariance(algo, &graph, &input, &ids, &map_refs);
        let universe: Vec<u64> = (1..=universe_size).collect();
        let stage = ramsey_stage(
            algo,
            &[Instance::new(&graph, &input, &ids)],
            &universe,
            samples,
            seed ^ 0xE8,
        );
        let lift = OrderInvariantLift::new(algo, stage.id_set.clone());
        let lift_invariant = check_order_invariance(&lift, &graph, &input, &ids, &map_refs);
        all_lifts_invariant &= lift_invariant;

        // Agreement on an instance whose identities are drawn from the
        // refined set (preserving order): the Appendix-A correctness,
        // checked through the engine (one plan serves both evaluations,
        // reusing the lift built above).
        let in_set_ids = IdAssignment::new(stage.id_set.iter().take(n).copied().collect());
        let agreement = if in_set_ids.len() == n {
            let inst = Instance::new(&graph, &input, &in_set_ids);
            deterministic_agreement(&runner, algo, &lift, &inst)
        } else {
            false
        };
        all_agreements &= agreement;

        table.push_row(vec![
            label.to_string(),
            inner_invariant.to_string(),
            lift_invariant.to_string(),
            stage.id_set.len().to_string(),
            agreement.to_string(),
        ]);
    }

    let findings = vec![
        Finding::new(
            "Appendix A: the relabel-and-run algorithm A' is order-invariant",
            format!("every lift passed the order-invariance check: {all_lifts_invariant}"),
            all_lifts_invariant,
        ),
        Finding::new(
            "Appendix A: restricted to identities from the (Ramsey-refined) set U, A and A' compute the same outputs",
            format!("agreement on in-set instances for every wrapped algorithm: {all_agreements}"),
            all_agreements,
        ),
    ];

    ExperimentReport {
        id: "E8".into(),
        title: "the order-invariant lift (Claim 1 / Appendix A)".into(),
        paper_reference: "Claim 1, Appendix A".into(),
        table,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_order_invariant_lift() {
        let report = run(Scale::Smoke);
        assert!(report.all_consistent(), "findings: {:?}", report.findings);
        assert_eq!(report.table.rows.len(), 3);
    }
}

//! Command-line driver for the experiment harness and the sweep engine.
//!
//! ```text
//! rlnc-experiments                     # run every experiment at standard scale
//! rlnc-experiments --list              # list experiment ids + descriptions
//! rlnc-experiments --scale full        # tighter confidence intervals
//! rlnc-experiments --seed 7 --only e5  # reseeded subset
//! rlnc-experiments --markdown out.md   # also write a markdown report
//! rlnc-experiments --trace-out t.json  # export the observability trace
//!
//! rlnc-experiments sweep --list-scenarios
//! rlnc-experiments sweep --scenario smoke --scale smoke --out sweep.json
//! rlnc-experiments sweep --scenario slack-topologies --csv sweep.csv
//! rlnc-experiments sweep --scenario fault-matrix --trace-out trace.json
//! rlnc-experiments sweep --scenario smoke --progress   # per-point stderr lines
//! rlnc-experiments sweep --check sweep.json   # validate an exported file
//!
//! rlnc-experiments sweep --scenario smoke --shard 1/3 --out s1.json  # one shard
//! rlnc-experiments sweep-merge s1.json s2.json s3.json --out full.json
//! rlnc-experiments sweep-serve --listen unix:/tmp/rlnc.sock   # resident service
//! rlnc-experiments serve-client --connect unix:/tmp/rlnc.sock run --scenario smoke
//!
//! rlnc-experiments bench-export --out BENCH_3.json           # perf trajectory
//! rlnc-experiments bench-export --quick --out BENCH_ci.json  # CI smoke
//! rlnc-experiments bench-gate --quick                        # regression gate
//! ```
//!
//! Every subcommand accepts `--quiet`: status lines (`wrote <path>`) go
//! away, warnings and all stdout output stay.

use rlnc_experiments::{
    bench_export, bench_gate, parse_experiment_id, run_all_seeded, run_by_id_seeded, status,
    trace, ExperimentReport, Scale, EXPERIMENTS,
};
use rlnc_serve::{connect_with_retry, Endpoint, ShardSpec, SweepServer};
use rlnc_sweep::{emit, Registry, SweepExecutor, SweepRun, DEFAULT_SWEEP_SEED};
use std::io::Write;
use std::time::Duration;

fn usage_error(message: &str) -> ! {
    eprintln!("{message}");
    std::process::exit(2);
}

fn parse_seed(raw: Option<&String>, flag: &str) -> u64 {
    let Some(raw) = raw else {
        usage_error(&format!("{flag} requires an unsigned 64-bit integer"));
    };
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse::<u64>()
    };
    match parsed {
        Ok(seed) => seed,
        Err(_) => usage_error(&format!("{flag}: '{raw}' is not an unsigned 64-bit integer")),
    }
}

fn parse_scale(raw: Option<&String>) -> Scale {
    match raw.map(String::as_str).map(str::parse::<Scale>) {
        Some(Ok(scale)) => scale,
        Some(Err(e)) => usage_error(&format!("--scale: {e}")),
        None => usage_error("--scale requires one of smoke|standard|full"),
    }
}

/// Enables metric collection for the rest of the process (the
/// `--trace-out` flag): counters were registered disabled, so everything
/// before this call cost one atomic load per sink.
fn enable_tracing() {
    rlnc_obs::reset();
    rlnc_obs::set_enabled(true);
}

/// Writes the collected trace (registry snapshot + rayon spawn count) to
/// `path`.
fn write_trace(path: &str) {
    write_file(path, &trace::collect().to_json());
    status::note(&format!("wrote {path}"));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("sweep") {
        sweep_main(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("sweep-merge") {
        sweep_merge_main(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("sweep-serve") {
        sweep_serve_main(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("serve-client") {
        serve_client_main(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("bench-export") {
        bench_export_main(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("bench-gate") {
        bench_gate_main(&args[1..]);
        return;
    }
    experiments_main(&args);
}

/// The `bench-export` subcommand: measure the engine-vs-legacy hot paths
/// and write the perf-trajectory JSON.
fn bench_export_main(args: &[String]) {
    let mut quick = false;
    let mut check = false;
    let mut out_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--check" => check = true,
            "--quiet" => status::set_quiet(true),
            "--out" => {
                i += 1;
                out_path = match args.get(i) {
                    Some(path) => Some(path.clone()),
                    None => usage_error("--out requires a file path"),
                };
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: rlnc-experiments bench-export [--quick] [--check] [--quiet] \
                     [--out FILE.json]"
                );
                return;
            }
            other => usage_error(&format!("unknown bench-export argument: {other}")),
        }
        i += 1;
    }
    let export = bench_export::run(quick);
    let json = bench_export::to_json(&export);
    if check {
        // Parse-back self check: the emitted document must round-trip
        // through the same parser `bench-gate` loads baselines with.
        match bench_export::from_json(&json) {
            Ok(back) if back == export => status::note("export parses back identically"),
            Ok(_) => {
                status::warn("export parse-back differs from the measured export");
                std::process::exit(1);
            }
            Err(e) => {
                status::warn(&format!("export does not parse back: {e}"));
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = out_path {
        print!("{}", bench_export::to_summary(&export));
        write_file(&path, &json);
        status::note(&format!("wrote {path}"));
    } else {
        // JSON goes to stdout (pipe-friendly), the summary to stderr, so
        // `bench-export > BENCH_N.json` stays parseable.
        eprint!("{}", bench_export::to_summary(&export));
        print!("{json}");
    }
}

/// The `bench-gate` subcommand: compare a fresh export against the latest
/// committed trajectory file and exit 1 on regression.
fn bench_gate_main(args: &[String]) {
    let mut quick = false;
    let mut against: Option<String> = None;
    let mut fresh_path: Option<String> = None;
    let mut config = bench_gate::GateConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--quiet" => status::set_quiet(true),
            "--against" => {
                i += 1;
                against = match args.get(i) {
                    Some(path) => Some(path.clone()),
                    None => usage_error("--against requires a BENCH_*.json path"),
                };
            }
            "--fresh" => {
                i += 1;
                fresh_path = match args.get(i) {
                    Some(path) => Some(path.clone()),
                    None => usage_error("--fresh requires a bench-export JSON path"),
                };
            }
            "--tolerance" => {
                i += 1;
                config.tolerance = match args.get(i).and_then(|raw| raw.parse::<f64>().ok()) {
                    Some(t) if t >= 1.0 => t,
                    _ => usage_error("--tolerance requires a number >= 1.0"),
                };
            }
            "--tolerance-group" => {
                i += 1;
                let Some((name, raw)) = args.get(i).and_then(|s| s.split_once('=')) else {
                    usage_error("--tolerance-group requires NAME=FACTOR");
                };
                match raw.parse::<f64>() {
                    Ok(t) if t >= 1.0 => config.group_tolerance.push((name.to_string(), t)),
                    _ => usage_error("--tolerance-group requires a factor >= 1.0"),
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: rlnc-experiments bench-gate [--quick] [--quiet] \
                     [--against BENCH_N.json] [--fresh EXPORT.json] \
                     [--tolerance F] [--tolerance-group NAME=F]\n\
                     \x20  baseline defaults to the highest-numbered BENCH_*.json in .\n\
                     \x20  exit codes: 0 pass, 1 regression, 2 usage"
                );
                return;
            }
            other => usage_error(&format!("unknown bench-gate argument: {other}")),
        }
        i += 1;
    }

    let against = against.or_else(|| {
        bench_gate::latest_bench_file(std::path::Path::new("."))
            .map(|p| p.to_string_lossy().into_owned())
    });
    let Some(against) = against else {
        usage_error("no BENCH_*.json baseline found; pass --against FILE");
    };
    let baseline = match std::fs::read_to_string(&against) {
        Ok(text) => match bench_export::from_json(&text) {
            Ok(export) => export,
            Err(e) => {
                status::warn(&format!("{against}: invalid bench export: {e}"));
                std::process::exit(2);
            }
        },
        Err(e) => {
            status::warn(&format!("cannot read baseline {against}: {e}"));
            std::process::exit(2);
        }
    };

    let fresh = match fresh_path {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(text) => match bench_export::from_json(&text) {
                Ok(export) => export,
                Err(e) => {
                    status::warn(&format!("{path}: invalid bench export: {e}"));
                    std::process::exit(2);
                }
            },
            Err(e) => {
                status::warn(&format!("cannot read fresh export {path}: {e}"));
                std::process::exit(2);
            }
        },
        None => {
            status::note("measuring fresh export...");
            bench_export::run(quick)
        }
    };

    let report = bench_gate::evaluate(&fresh, &baseline, &config);
    println!("bench-gate against {against}");
    print!("{}", report.render());
    if report.failed() {
        status::warn("bench-gate: performance regression detected");
        std::process::exit(1);
    }
    println!("bench-gate: ok");
}

/// The classic E1–E10 driver.
fn experiments_main(args: &[String]) {
    let mut scale = Scale::Standard;
    let mut seed = 0u64;
    let mut only: Vec<String> = Vec::new();
    let mut markdown_path: Option<String> = None;
    let mut trace_path: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = parse_scale(args.get(i));
            }
            "--seed" => {
                i += 1;
                seed = parse_seed(args.get(i), "--seed");
            }
            "--quiet" => status::set_quiet(true),
            "--only" => {
                i += 1;
                let before = only.len();
                while i < args.len() && !args[i].starts_with("--") {
                    only.push(args[i].clone());
                    i += 1;
                }
                if only.len() == before {
                    usage_error("--only requires at least one experiment id (e.g. --only e1 e10)");
                }
                continue;
            }
            "--markdown" => {
                i += 1;
                markdown_path = match args.get(i) {
                    Some(path) => Some(path.clone()),
                    None => usage_error("--markdown requires a file path"),
                };
            }
            "--trace-out" => {
                i += 1;
                trace_path = match args.get(i) {
                    Some(path) => Some(path.clone()),
                    None => usage_error("--trace-out requires a file path"),
                };
            }
            "--list" => {
                for e in &EXPERIMENTS {
                    println!("{:>4}  {}", e.id, e.description);
                }
                return;
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: rlnc-experiments [--scale smoke|standard|full] [--seed N] \
                     [--only e1 e2 ...] [--markdown FILE] [--trace-out FILE.json] \
                     [--quiet] [--list]\n\
                     \x20      rlnc-experiments sweep --help\n\
                     \x20      rlnc-experiments sweep-merge --help\n\
                     \x20      rlnc-experiments sweep-serve --help\n\
                     \x20      rlnc-experiments serve-client --help\n\
                     \x20      rlnc-experiments bench-export [--quick] [--check] [--out FILE.json]\n\
                     \x20      rlnc-experiments bench-gate --help"
                );
                return;
            }
            other => usage_error(&format!("unknown argument: {other}")),
        }
        i += 1;
    }

    // Validate ids up front so a typo (e.g. in a CI invocation) fails loudly
    // instead of silently running an empty report list and exiting 0.
    let unknown: Vec<&String> = only.iter().filter(|id| parse_experiment_id(id).is_none()).collect();
    if !unknown.is_empty() {
        for id in unknown {
            status::warn(&format!("unknown experiment id: {id}"));
        }
        std::process::exit(2);
    }

    if trace_path.is_some() {
        enable_tracing();
    }

    let reports: Vec<ExperimentReport> = if only.is_empty() {
        run_all_seeded(scale, seed)
    } else {
        only.iter().filter_map(|id| run_by_id_seeded(id, scale, seed)).collect()
    };

    let mut all_consistent = true;
    let mut combined = String::new();
    for report in &reports {
        let markdown = report.to_markdown();
        println!("{markdown}");
        combined.push_str(&markdown);
        all_consistent &= report.all_consistent();
    }

    if let Some(path) = markdown_path {
        write_file(&path, &combined);
        status::note(&format!("wrote {path}"));
    }
    if let Some(path) = trace_path {
        write_trace(&path);
    }

    if !all_consistent {
        status::warn("WARNING: at least one finding did not match the paper's claim");
        std::process::exit(1);
    }
}

/// The `sweep` subcommand: run, list, or validate scenario sweeps.
fn sweep_main(args: &[String]) {
    let mut scale = Scale::Standard;
    let mut seed = DEFAULT_SWEEP_SEED;
    let mut scenario: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut csv_path: Option<String> = None;
    let mut markdown_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut resume = false;
    let mut progress = false;
    let mut shard: Option<ShardSpec> = None;

    let registry = Registry::builtin();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = parse_scale(args.get(i));
            }
            "--seed" => {
                i += 1;
                seed = parse_seed(args.get(i), "--seed");
            }
            "--scenario" => {
                i += 1;
                scenario = match args.get(i) {
                    Some(name) => Some(name.clone()),
                    None => usage_error("--scenario requires a scenario name (see --list-scenarios)"),
                };
            }
            "--out" => {
                i += 1;
                out_path = match args.get(i) {
                    Some(path) => Some(path.clone()),
                    None => usage_error("--out requires a file path"),
                };
            }
            "--csv" => {
                i += 1;
                csv_path = match args.get(i) {
                    Some(path) => Some(path.clone()),
                    None => usage_error("--csv requires a file path"),
                };
            }
            "--markdown" => {
                i += 1;
                markdown_path = match args.get(i) {
                    Some(path) => Some(path.clone()),
                    None => usage_error("--markdown requires a file path"),
                };
            }
            "--trace-out" => {
                i += 1;
                trace_path = match args.get(i) {
                    Some(path) => Some(path.clone()),
                    None => usage_error("--trace-out requires a file path"),
                };
            }
            "--shard" => {
                i += 1;
                let Some(raw) = args.get(i) else {
                    usage_error("--shard requires INDEX/COUNT (1-based, e.g. --shard 2/4)");
                };
                shard = match ShardSpec::parse(raw) {
                    Ok(spec) => Some(spec),
                    Err(e) => usage_error(&format!("--shard: {e}")),
                };
            }
            "--resume" => resume = true,
            "--progress" => progress = true,
            "--quiet" => status::set_quiet(true),
            "--list-scenarios" => {
                // Name + description, then the workload/axis metadata line,
                // so new scenarios are discoverable without reading
                // registry.rs.
                for spec in registry.iter() {
                    println!("{:<20}  {}", spec.name, spec.description);
                    println!("{:<20}  {}", "", spec.summary());
                }
                return;
            }
            "--check" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    usage_error("--check requires a file path");
                };
                let text = match std::fs::read_to_string(path) {
                    Ok(text) => text,
                    Err(e) => {
                        status::warn(&format!("cannot read {path}: {e}"));
                        std::process::exit(1);
                    }
                };
                match emit::from_json(&text) {
                    Ok(run) => {
                        println!(
                            "{path}: OK — scenario '{}', {} records at scale {}",
                            run.scenario,
                            run.records.len(),
                            run.scale
                        );
                        return;
                    }
                    Err(e) => {
                        status::warn(&format!("{path}: invalid sweep export: {e}"));
                        std::process::exit(1);
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: rlnc-experiments sweep --scenario NAME [--scale smoke|standard|full] \
                     [--seed N] [--shard I/N] [--out FILE.json] [--csv FILE.csv] \
                     [--markdown FILE.md] [--trace-out FILE.json] [--resume] [--progress] \
                     [--quiet]\n\
                     \x20      rlnc-experiments sweep --list-scenarios\n\
                     \x20      rlnc-experiments sweep --check FILE.json"
                );
                return;
            }
            other => usage_error(&format!("unknown sweep argument: {other}")),
        }
        i += 1;
    }

    let Some(name) = scenario else {
        usage_error("sweep requires --scenario NAME (or --list-scenarios / --check FILE)");
    };
    let Some(spec) = registry.get(&name) else {
        status::warn(&format!("unknown scenario: {name}"));
        status::warn(&format!("available scenarios: {}", registry.names().join(", ")));
        std::process::exit(2);
    };

    let executor = SweepExecutor::new(scale).with_seed(seed).with_progress(progress);
    if resume && out_path.is_none() {
        usage_error("--resume requires --out FILE (the export to resume from)");
    }
    let existing = match (&out_path, resume) {
        (Some(path), true) => match std::fs::read_to_string(path) {
            Ok(text) => match emit::from_json(&text) {
                Ok(previous) => previous.records,
                Err(e) => {
                    status::warn(&format!("ignoring unparsable previous export {path}: {e}"));
                    Vec::new()
                }
            },
            Err(_) => Vec::new(), // nothing to resume from
        },
        _ => Vec::new(),
    };
    if trace_path.is_some() {
        enable_tracing();
    }
    let run = match shard {
        Some(s) => executor.resume_shard(spec, &existing, s.index, s.count),
        None => executor.resume(spec, &existing),
    };

    print!("{}", run.to_markdown());
    if let Some(path) = out_path {
        write_file(&path, &emit::to_json(&run));
        status::note(&format!("wrote {path}"));
    }
    if let Some(path) = csv_path {
        write_file(&path, &emit::to_csv(&run));
        status::note(&format!("wrote {path}"));
    }
    if let Some(path) = markdown_path {
        write_file(&path, &run.to_markdown());
        status::note(&format!("wrote {path}"));
    }
    if let Some(path) = trace_path {
        write_trace(&path);
    }
}

/// The `sweep-merge` subcommand: reassemble shard exports (from
/// `sweep --shard I/N --out ...`) into the single-process export,
/// byte-identical to running the sweep unsharded.
fn sweep_merge_main(args: &[String]) {
    let mut inputs: Vec<String> = Vec::new();
    let mut out_path: Option<String> = None;
    let mut trace_paths: Vec<String> = Vec::new();
    let mut trace_out: Option<String> = None;
    let mut allow_partial = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = match args.get(i) {
                    Some(path) => Some(path.clone()),
                    None => usage_error("--out requires a file path"),
                };
            }
            "--trace" => {
                i += 1;
                match args.get(i) {
                    Some(path) => trace_paths.push(path.clone()),
                    None => usage_error("--trace requires a shard trace file (repeatable)"),
                }
            }
            "--trace-out" => {
                i += 1;
                trace_out = match args.get(i) {
                    Some(path) => Some(path.clone()),
                    None => usage_error("--trace-out requires a file path"),
                };
            }
            "--allow-partial" => allow_partial = true,
            "--quiet" => status::set_quiet(true),
            "--help" | "-h" => {
                eprintln!(
                    "usage: rlnc-experiments sweep-merge SHARD1.json SHARD2.json ... \
                     [--out FILE.json] [--trace SHARD1-trace.json ...] [--trace-out FILE.json] \
                     [--allow-partial] [--quiet]\n\
                     \x20  merges shard exports byte-identically to the unsharded export;\n\
                     \x20  exit codes: 0 ok, 1 conflict/incomplete, 2 usage"
                );
                return;
            }
            flag if flag.starts_with("--") => {
                usage_error(&format!("unknown sweep-merge argument: {flag}"))
            }
            path => inputs.push(path.to_string()),
        }
        i += 1;
    }
    if inputs.is_empty() {
        usage_error("sweep-merge requires at least one shard export file");
    }
    if !trace_paths.is_empty() && trace_out.is_none() {
        usage_error("--trace requires --trace-out FILE (where to write the merged trace)");
    }

    let mut runs: Vec<SweepRun> = Vec::with_capacity(inputs.len());
    for path in &inputs {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                status::warn(&format!("cannot read {path}: {e}"));
                std::process::exit(1);
            }
        };
        match emit::from_json(&text) {
            Ok(run) => runs.push(run),
            Err(e) => {
                status::warn(&format!("{path}: invalid sweep export: {e}"));
                std::process::exit(1);
            }
        }
    }
    let merged = match emit::merge_runs(&runs) {
        Ok(merged) => merged,
        Err(e) => {
            status::warn(&format!("sweep-merge: {e}"));
            std::process::exit(1);
        }
    };

    // Completeness: unless --allow-partial, the merged record set must
    // cover the scenario's grid exactly — a forgotten shard file should
    // fail here, not produce a silently truncated "full" export.
    if !allow_partial {
        let registry = Registry::builtin();
        let spec = registry.get(&merged.scenario);
        let scale = merged.scale.parse::<Scale>();
        match (spec, scale) {
            (Some(spec), Ok(scale)) => {
                let expected: Vec<u64> = spec.grid(scale).iter().map(|p| p.index).collect();
                let got: Vec<u64> = merged.records.iter().map(|r| r.point).collect();
                if got != expected {
                    let missing: Vec<String> = expected
                        .iter()
                        .filter(|idx| !got.contains(idx))
                        .map(u64::to_string)
                        .collect();
                    status::warn(&format!(
                        "sweep-merge: merged run covers {} of {} grid points \
                         (missing: {}); pass --allow-partial to keep a partial merge",
                        got.len(),
                        expected.len(),
                        if missing.is_empty() { "none — extra points".to_string() } else { missing.join(", ") },
                    ));
                    std::process::exit(1);
                }
            }
            _ => {
                status::warn(&format!(
                    "sweep-merge: cannot check completeness — scenario '{}' at scale '{}' \
                     is not in the built-in registry; pass --allow-partial to merge anyway",
                    merged.scenario, merged.scale
                ));
                std::process::exit(1);
            }
        }
    }

    print!("{}", merged.to_markdown());
    if let Some(path) = out_path {
        write_file(&path, &emit::to_json(&merged));
        status::note(&format!("wrote {path}"));
    }
    if let Some(out) = trace_out {
        let mut docs = Vec::with_capacity(trace_paths.len());
        for path in &trace_paths {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    status::warn(&format!("cannot read trace {path}: {e}"));
                    std::process::exit(1);
                }
            };
            match trace::from_json(&text) {
                Ok(doc) => docs.push(doc),
                Err(e) => {
                    status::warn(&format!("{path}: invalid trace: {e}"));
                    std::process::exit(1);
                }
            }
        }
        let mut iter = docs.iter();
        let Some(mut combined) = iter.next().cloned() else {
            usage_error("--trace-out requires at least one --trace input");
        };
        for doc in iter {
            if let Err(e) = combined.merge(doc) {
                status::warn(&format!("cannot merge traces: {e}"));
                std::process::exit(1);
            }
        }
        write_file(&out, &combined.to_json());
        status::note(&format!("wrote {out}"));
    }
}

/// The `sweep-serve` subcommand: a resident sweep service that keeps the
/// process-global plan cache warm across requests.
fn sweep_serve_main(args: &[String]) {
    let mut listen: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--listen" => {
                i += 1;
                listen = match args.get(i) {
                    Some(raw) => Some(raw.clone()),
                    None => usage_error("--listen requires unix:PATH or tcp:HOST:PORT"),
                };
            }
            "--quiet" => status::set_quiet(true),
            "--help" | "-h" => {
                eprintln!(
                    "usage: rlnc-experiments sweep-serve --listen unix:PATH|tcp:HOST:PORT \
                     [--quiet]\n\
                     \x20  serves line-delimited JSON requests (see serve-client) until a\n\
                     \x20  client sends shutdown; tcp:HOST:0 picks a free port (printed)"
                );
                return;
            }
            other => usage_error(&format!("unknown sweep-serve argument: {other}")),
        }
        i += 1;
    }
    let Some(raw) = listen else {
        usage_error("sweep-serve requires --listen unix:PATH or tcp:HOST:PORT");
    };
    let endpoint = match Endpoint::parse(&raw) {
        Ok(endpoint) => endpoint,
        Err(e) => usage_error(&format!("--listen: {e}")),
    };

    // The service reports obs counters over `status`, so tracing is on for
    // the whole process lifetime.
    enable_tracing();
    let bound = match SweepServer::new().bind(&endpoint) {
        Ok(bound) => bound,
        Err(e) => {
            status::warn(&format!("sweep-serve: {e}"));
            std::process::exit(1);
        }
    };
    // Print the resolved endpoint (not the requested one): tcp port 0 is
    // resolved at bind time and drivers need the actual port.
    println!("sweep-serve listening on {}", bound.endpoint());
    match bound.serve() {
        Ok(()) => status::note("sweep-serve: shut down"),
        Err(e) => {
            status::warn(&format!("sweep-serve: {e}"));
            std::process::exit(1);
        }
    }
}

/// The `serve-client` subcommand: drive a resident `sweep-serve` process.
fn serve_client_main(args: &[String]) {
    const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

    let mut connect_to: Option<String> = None;
    let mut action: Option<String> = None;
    let mut scenario: Option<String> = None;
    let mut scale = Scale::Standard;
    let mut seed = DEFAULT_SWEEP_SEED;
    let mut shard: Option<ShardSpec> = None;
    let mut out_path: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--connect" => {
                i += 1;
                connect_to = match args.get(i) {
                    Some(raw) => Some(raw.clone()),
                    None => usage_error("--connect requires unix:PATH or tcp:HOST:PORT"),
                };
            }
            "--scenario" => {
                i += 1;
                scenario = match args.get(i) {
                    Some(name) => Some(name.clone()),
                    None => usage_error("--scenario requires a scenario name"),
                };
            }
            "--scale" => {
                i += 1;
                scale = parse_scale(args.get(i));
            }
            "--seed" => {
                i += 1;
                seed = parse_seed(args.get(i), "--seed");
            }
            "--shard" => {
                i += 1;
                let Some(raw) = args.get(i) else {
                    usage_error("--shard requires INDEX/COUNT (1-based, e.g. --shard 2/4)");
                };
                shard = match ShardSpec::parse(raw) {
                    Ok(spec) => Some(spec),
                    Err(e) => usage_error(&format!("--shard: {e}")),
                };
            }
            "--out" => {
                i += 1;
                out_path = match args.get(i) {
                    Some(path) => Some(path.clone()),
                    None => usage_error("--out requires a file path"),
                };
            }
            "--quiet" => status::set_quiet(true),
            "--help" | "-h" => {
                eprintln!(
                    "usage: rlnc-experiments serve-client --connect unix:PATH|tcp:HOST:PORT \
                     <list-scenarios|run|status|shutdown>\n\
                     \x20  run options: --scenario NAME [--scale smoke|standard|full] [--seed N] \
                     [--shard I/N] [--out FILE.json]\n\
                     \x20  run prints 'streamed N records (plan_cache_hits_delta=H, ...)' —\n\
                     \x20  nonzero H on a repeat request proves the server's warm plan cache"
                );
                return;
            }
            "list-scenarios" | "run" | "status" | "shutdown" => {
                if let Some(previous) = &action {
                    usage_error(&format!(
                        "serve-client takes one action, got '{previous}' and '{}'",
                        args[i]
                    ));
                }
                action = Some(args[i].clone());
            }
            other => usage_error(&format!("unknown serve-client argument: {other}")),
        }
        i += 1;
    }
    let Some(raw) = connect_to else {
        usage_error("serve-client requires --connect unix:PATH or tcp:HOST:PORT");
    };
    let endpoint = match Endpoint::parse(&raw) {
        Ok(endpoint) => endpoint,
        Err(e) => usage_error(&format!("--connect: {e}")),
    };
    let Some(action) = action else {
        usage_error("serve-client requires an action: list-scenarios, run, status, or shutdown");
    };

    let mut client = match connect_with_retry(&endpoint, CONNECT_TIMEOUT) {
        Ok(client) => client,
        Err(e) => {
            status::warn(&format!("serve-client: {e}"));
            std::process::exit(1);
        }
    };

    let failed = |e: String| -> ! {
        status::warn(&format!("serve-client: {e}"));
        std::process::exit(1);
    };
    match action.as_str() {
        "list-scenarios" => match client.list_scenarios() {
            Ok(scenarios) => {
                for (name, description, summary) in scenarios {
                    println!("{name:<20}  {description}");
                    println!("{:<20}  {summary}", "");
                }
            }
            Err(e) => failed(e),
        },
        "run" => {
            let Some(name) = scenario else {
                usage_error("serve-client run requires --scenario NAME");
            };
            let outcome = match client.run(&name, scale, seed, shard, |_| {}) {
                Ok(outcome) => outcome,
                Err(e) => failed(e),
            };
            print!("{}", outcome.run.to_markdown());
            println!(
                "streamed {} records (plan_cache_hits_delta={}, plan_cache_misses_delta={}, \
                 pool.tasks={}, pool.steals={}, pool.parks={})",
                outcome.run.records.len(),
                outcome.plan_cache_hits_delta,
                outcome.plan_cache_misses_delta,
                outcome.pool_tasks_delta,
                outcome.pool_steals_delta,
                outcome.pool_parks_delta
            );
            if let Some(path) = out_path {
                write_file(&path, &emit::to_json(&outcome.run));
                status::note(&format!("wrote {path}"));
            }
        }
        "status" => match client.status() {
            Ok(report) => {
                println!("requests={}", report.requests);
                println!("records_streamed={}", report.records_streamed);
                println!("errors={}", report.errors);
                println!("active_connections={}", report.active_connections);
                println!("scenarios={}", report.scenarios);
                println!("plan_cache_hits={}", report.plan_cache_hits);
                println!("plan_cache_misses={}", report.plan_cache_misses);
                println!("plan_cache_plans={}", report.plan_cache_plans);
            }
            Err(e) => failed(e),
        },
        "shutdown" => match client.shutdown() {
            Ok(()) => status::note("server acknowledged shutdown"),
            Err(e) => failed(e),
        },
        _ => unreachable!("actions are validated during parsing"),
    }
}

fn write_file(path: &str, contents: &str) {
    let mut file = std::fs::File::create(path)
        .unwrap_or_else(|e| panic!("cannot create output file {path}: {e}"));
    file.write_all(contents.as_bytes())
        .unwrap_or_else(|e| panic!("cannot write output file {path}: {e}"));
}

//! Command-line driver for the experiment harness and the sweep engine.
//!
//! ```text
//! rlnc-experiments                     # run every experiment at standard scale
//! rlnc-experiments --list              # list experiment ids + descriptions
//! rlnc-experiments --scale full        # tighter confidence intervals
//! rlnc-experiments --seed 7 --only e5  # reseeded subset
//! rlnc-experiments --markdown out.md   # also write a markdown report
//! rlnc-experiments --trace-out t.json  # export the observability trace
//!
//! rlnc-experiments sweep --list-scenarios
//! rlnc-experiments sweep --scenario smoke --scale smoke --out sweep.json
//! rlnc-experiments sweep --scenario slack-topologies --csv sweep.csv
//! rlnc-experiments sweep --scenario fault-matrix --trace-out trace.json
//! rlnc-experiments sweep --scenario smoke --progress   # per-point stderr lines
//! rlnc-experiments sweep --check sweep.json   # validate an exported file
//!
//! rlnc-experiments bench-export --out BENCH_3.json           # perf trajectory
//! rlnc-experiments bench-export --quick --out BENCH_ci.json  # CI smoke
//! rlnc-experiments bench-gate --quick                        # regression gate
//! ```
//!
//! Every subcommand accepts `--quiet`: status lines (`wrote <path>`) go
//! away, warnings and all stdout output stay.

use rlnc_experiments::{
    bench_export, bench_gate, parse_experiment_id, run_all_seeded, run_by_id_seeded, status,
    trace, ExperimentReport, Scale, EXPERIMENTS,
};
use rlnc_sweep::{emit, Registry, SweepExecutor, DEFAULT_SWEEP_SEED};
use std::io::Write;

fn usage_error(message: &str) -> ! {
    eprintln!("{message}");
    std::process::exit(2);
}

fn parse_seed(raw: Option<&String>, flag: &str) -> u64 {
    let Some(raw) = raw else {
        usage_error(&format!("{flag} requires an unsigned 64-bit integer"));
    };
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse::<u64>()
    };
    match parsed {
        Ok(seed) => seed,
        Err(_) => usage_error(&format!("{flag}: '{raw}' is not an unsigned 64-bit integer")),
    }
}

fn parse_scale(raw: Option<&String>) -> Scale {
    match raw.map(String::as_str).map(str::parse::<Scale>) {
        Some(Ok(scale)) => scale,
        Some(Err(e)) => usage_error(&format!("--scale: {e}")),
        None => usage_error("--scale requires one of smoke|standard|full"),
    }
}

/// Enables metric collection for the rest of the process (the
/// `--trace-out` flag): counters were registered disabled, so everything
/// before this call cost one atomic load per sink.
fn enable_tracing() {
    rlnc_obs::reset();
    rlnc_obs::set_enabled(true);
}

/// Writes the collected trace (registry snapshot + rayon spawn count) to
/// `path`.
fn write_trace(path: &str) {
    write_file(path, &trace::collect().to_json());
    status::note(&format!("wrote {path}"));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("sweep") {
        sweep_main(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("bench-export") {
        bench_export_main(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("bench-gate") {
        bench_gate_main(&args[1..]);
        return;
    }
    experiments_main(&args);
}

/// The `bench-export` subcommand: measure the engine-vs-legacy hot paths
/// and write the perf-trajectory JSON.
fn bench_export_main(args: &[String]) {
    let mut quick = false;
    let mut check = false;
    let mut out_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--check" => check = true,
            "--quiet" => status::set_quiet(true),
            "--out" => {
                i += 1;
                out_path = match args.get(i) {
                    Some(path) => Some(path.clone()),
                    None => usage_error("--out requires a file path"),
                };
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: rlnc-experiments bench-export [--quick] [--check] [--quiet] \
                     [--out FILE.json]"
                );
                return;
            }
            other => usage_error(&format!("unknown bench-export argument: {other}")),
        }
        i += 1;
    }
    let export = bench_export::run(quick);
    let json = bench_export::to_json(&export);
    if check {
        // Parse-back self check: the emitted document must round-trip
        // through the same parser `bench-gate` loads baselines with.
        match bench_export::from_json(&json) {
            Ok(back) if back == export => status::note("export parses back identically"),
            Ok(_) => {
                status::warn("export parse-back differs from the measured export");
                std::process::exit(1);
            }
            Err(e) => {
                status::warn(&format!("export does not parse back: {e}"));
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = out_path {
        print!("{}", bench_export::to_summary(&export));
        write_file(&path, &json);
        status::note(&format!("wrote {path}"));
    } else {
        // JSON goes to stdout (pipe-friendly), the summary to stderr, so
        // `bench-export > BENCH_N.json` stays parseable.
        eprint!("{}", bench_export::to_summary(&export));
        print!("{json}");
    }
}

/// The `bench-gate` subcommand: compare a fresh export against the latest
/// committed trajectory file and exit 1 on regression.
fn bench_gate_main(args: &[String]) {
    let mut quick = false;
    let mut against: Option<String> = None;
    let mut fresh_path: Option<String> = None;
    let mut config = bench_gate::GateConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--quiet" => status::set_quiet(true),
            "--against" => {
                i += 1;
                against = match args.get(i) {
                    Some(path) => Some(path.clone()),
                    None => usage_error("--against requires a BENCH_*.json path"),
                };
            }
            "--fresh" => {
                i += 1;
                fresh_path = match args.get(i) {
                    Some(path) => Some(path.clone()),
                    None => usage_error("--fresh requires a bench-export JSON path"),
                };
            }
            "--tolerance" => {
                i += 1;
                config.tolerance = match args.get(i).and_then(|raw| raw.parse::<f64>().ok()) {
                    Some(t) if t >= 1.0 => t,
                    _ => usage_error("--tolerance requires a number >= 1.0"),
                };
            }
            "--tolerance-group" => {
                i += 1;
                let Some((name, raw)) = args.get(i).and_then(|s| s.split_once('=')) else {
                    usage_error("--tolerance-group requires NAME=FACTOR");
                };
                match raw.parse::<f64>() {
                    Ok(t) if t >= 1.0 => config.group_tolerance.push((name.to_string(), t)),
                    _ => usage_error("--tolerance-group requires a factor >= 1.0"),
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: rlnc-experiments bench-gate [--quick] [--quiet] \
                     [--against BENCH_N.json] [--fresh EXPORT.json] \
                     [--tolerance F] [--tolerance-group NAME=F]\n\
                     \x20  baseline defaults to the highest-numbered BENCH_*.json in .\n\
                     \x20  exit codes: 0 pass, 1 regression, 2 usage"
                );
                return;
            }
            other => usage_error(&format!("unknown bench-gate argument: {other}")),
        }
        i += 1;
    }

    let against = against.or_else(|| {
        bench_gate::latest_bench_file(std::path::Path::new("."))
            .map(|p| p.to_string_lossy().into_owned())
    });
    let Some(against) = against else {
        usage_error("no BENCH_*.json baseline found; pass --against FILE");
    };
    let baseline = match std::fs::read_to_string(&against) {
        Ok(text) => match bench_export::from_json(&text) {
            Ok(export) => export,
            Err(e) => {
                status::warn(&format!("{against}: invalid bench export: {e}"));
                std::process::exit(2);
            }
        },
        Err(e) => {
            status::warn(&format!("cannot read baseline {against}: {e}"));
            std::process::exit(2);
        }
    };

    let fresh = match fresh_path {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(text) => match bench_export::from_json(&text) {
                Ok(export) => export,
                Err(e) => {
                    status::warn(&format!("{path}: invalid bench export: {e}"));
                    std::process::exit(2);
                }
            },
            Err(e) => {
                status::warn(&format!("cannot read fresh export {path}: {e}"));
                std::process::exit(2);
            }
        },
        None => {
            status::note("measuring fresh export...");
            bench_export::run(quick)
        }
    };

    let report = bench_gate::evaluate(&fresh, &baseline, &config);
    println!("bench-gate against {against}");
    print!("{}", report.render());
    if report.failed() {
        status::warn("bench-gate: performance regression detected");
        std::process::exit(1);
    }
    println!("bench-gate: ok");
}

/// The classic E1–E10 driver.
fn experiments_main(args: &[String]) {
    let mut scale = Scale::Standard;
    let mut seed = 0u64;
    let mut only: Vec<String> = Vec::new();
    let mut markdown_path: Option<String> = None;
    let mut trace_path: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = parse_scale(args.get(i));
            }
            "--seed" => {
                i += 1;
                seed = parse_seed(args.get(i), "--seed");
            }
            "--quiet" => status::set_quiet(true),
            "--only" => {
                i += 1;
                let before = only.len();
                while i < args.len() && !args[i].starts_with("--") {
                    only.push(args[i].clone());
                    i += 1;
                }
                if only.len() == before {
                    usage_error("--only requires at least one experiment id (e.g. --only e1 e10)");
                }
                continue;
            }
            "--markdown" => {
                i += 1;
                markdown_path = match args.get(i) {
                    Some(path) => Some(path.clone()),
                    None => usage_error("--markdown requires a file path"),
                };
            }
            "--trace-out" => {
                i += 1;
                trace_path = match args.get(i) {
                    Some(path) => Some(path.clone()),
                    None => usage_error("--trace-out requires a file path"),
                };
            }
            "--list" => {
                for e in &EXPERIMENTS {
                    println!("{:>4}  {}", e.id, e.description);
                }
                return;
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: rlnc-experiments [--scale smoke|standard|full] [--seed N] \
                     [--only e1 e2 ...] [--markdown FILE] [--trace-out FILE.json] \
                     [--quiet] [--list]\n\
                     \x20      rlnc-experiments sweep --help\n\
                     \x20      rlnc-experiments bench-export [--quick] [--check] [--out FILE.json]\n\
                     \x20      rlnc-experiments bench-gate --help"
                );
                return;
            }
            other => usage_error(&format!("unknown argument: {other}")),
        }
        i += 1;
    }

    // Validate ids up front so a typo (e.g. in a CI invocation) fails loudly
    // instead of silently running an empty report list and exiting 0.
    let unknown: Vec<&String> = only.iter().filter(|id| parse_experiment_id(id).is_none()).collect();
    if !unknown.is_empty() {
        for id in unknown {
            status::warn(&format!("unknown experiment id: {id}"));
        }
        std::process::exit(2);
    }

    if trace_path.is_some() {
        enable_tracing();
    }

    let reports: Vec<ExperimentReport> = if only.is_empty() {
        run_all_seeded(scale, seed)
    } else {
        only.iter().filter_map(|id| run_by_id_seeded(id, scale, seed)).collect()
    };

    let mut all_consistent = true;
    let mut combined = String::new();
    for report in &reports {
        let markdown = report.to_markdown();
        println!("{markdown}");
        combined.push_str(&markdown);
        all_consistent &= report.all_consistent();
    }

    if let Some(path) = markdown_path {
        write_file(&path, &combined);
        status::note(&format!("wrote {path}"));
    }
    if let Some(path) = trace_path {
        write_trace(&path);
    }

    if !all_consistent {
        status::warn("WARNING: at least one finding did not match the paper's claim");
        std::process::exit(1);
    }
}

/// The `sweep` subcommand: run, list, or validate scenario sweeps.
fn sweep_main(args: &[String]) {
    let mut scale = Scale::Standard;
    let mut seed = DEFAULT_SWEEP_SEED;
    let mut scenario: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut csv_path: Option<String> = None;
    let mut markdown_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut resume = false;
    let mut progress = false;

    let registry = Registry::builtin();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = parse_scale(args.get(i));
            }
            "--seed" => {
                i += 1;
                seed = parse_seed(args.get(i), "--seed");
            }
            "--scenario" => {
                i += 1;
                scenario = match args.get(i) {
                    Some(name) => Some(name.clone()),
                    None => usage_error("--scenario requires a scenario name (see --list-scenarios)"),
                };
            }
            "--out" => {
                i += 1;
                out_path = match args.get(i) {
                    Some(path) => Some(path.clone()),
                    None => usage_error("--out requires a file path"),
                };
            }
            "--csv" => {
                i += 1;
                csv_path = match args.get(i) {
                    Some(path) => Some(path.clone()),
                    None => usage_error("--csv requires a file path"),
                };
            }
            "--markdown" => {
                i += 1;
                markdown_path = match args.get(i) {
                    Some(path) => Some(path.clone()),
                    None => usage_error("--markdown requires a file path"),
                };
            }
            "--trace-out" => {
                i += 1;
                trace_path = match args.get(i) {
                    Some(path) => Some(path.clone()),
                    None => usage_error("--trace-out requires a file path"),
                };
            }
            "--resume" => resume = true,
            "--progress" => progress = true,
            "--quiet" => status::set_quiet(true),
            "--list-scenarios" => {
                // Name + description, then the workload/axis metadata line,
                // so new scenarios are discoverable without reading
                // registry.rs.
                for spec in registry.iter() {
                    println!("{:<20}  {}", spec.name, spec.description);
                    println!("{:<20}  {}", "", spec.summary());
                }
                return;
            }
            "--check" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    usage_error("--check requires a file path");
                };
                let text = match std::fs::read_to_string(path) {
                    Ok(text) => text,
                    Err(e) => {
                        status::warn(&format!("cannot read {path}: {e}"));
                        std::process::exit(1);
                    }
                };
                match emit::from_json(&text) {
                    Ok(run) => {
                        println!(
                            "{path}: OK — scenario '{}', {} records at scale {}",
                            run.scenario,
                            run.records.len(),
                            run.scale
                        );
                        return;
                    }
                    Err(e) => {
                        status::warn(&format!("{path}: invalid sweep export: {e}"));
                        std::process::exit(1);
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: rlnc-experiments sweep --scenario NAME [--scale smoke|standard|full] \
                     [--seed N] [--out FILE.json] [--csv FILE.csv] [--markdown FILE.md] \
                     [--trace-out FILE.json] [--resume] [--progress] [--quiet]\n\
                     \x20      rlnc-experiments sweep --list-scenarios\n\
                     \x20      rlnc-experiments sweep --check FILE.json"
                );
                return;
            }
            other => usage_error(&format!("unknown sweep argument: {other}")),
        }
        i += 1;
    }

    let Some(name) = scenario else {
        usage_error("sweep requires --scenario NAME (or --list-scenarios / --check FILE)");
    };
    let Some(spec) = registry.get(&name) else {
        status::warn(&format!("unknown scenario: {name}"));
        status::warn(&format!("available scenarios: {}", registry.names().join(", ")));
        std::process::exit(2);
    };

    let executor = SweepExecutor::new(scale).with_seed(seed).with_progress(progress);
    if resume && out_path.is_none() {
        usage_error("--resume requires --out FILE (the export to resume from)");
    }
    let existing = match (&out_path, resume) {
        (Some(path), true) => match std::fs::read_to_string(path) {
            Ok(text) => match emit::from_json(&text) {
                Ok(previous) => previous.records,
                Err(e) => {
                    status::warn(&format!("ignoring unparsable previous export {path}: {e}"));
                    Vec::new()
                }
            },
            Err(_) => Vec::new(), // nothing to resume from
        },
        _ => Vec::new(),
    };
    if trace_path.is_some() {
        enable_tracing();
    }
    let run = executor.resume(spec, &existing);

    print!("{}", run.to_markdown());
    if let Some(path) = out_path {
        write_file(&path, &emit::to_json(&run));
        status::note(&format!("wrote {path}"));
    }
    if let Some(path) = csv_path {
        write_file(&path, &emit::to_csv(&run));
        status::note(&format!("wrote {path}"));
    }
    if let Some(path) = markdown_path {
        write_file(&path, &run.to_markdown());
        status::note(&format!("wrote {path}"));
    }
    if let Some(path) = trace_path {
        write_trace(&path);
    }
}

fn write_file(path: &str, contents: &str) {
    let mut file = std::fs::File::create(path)
        .unwrap_or_else(|e| panic!("cannot create output file {path}: {e}"));
    file.write_all(contents.as_bytes())
        .unwrap_or_else(|e| panic!("cannot write output file {path}: {e}"));
}

//! Command-line driver for the experiment harness.
//!
//! ```text
//! rlnc-experiments                  # run every experiment at standard scale
//! rlnc-experiments --scale full     # tighter confidence intervals
//! rlnc-experiments --only e5 e7     # a subset
//! rlnc-experiments --markdown out.md# also write a markdown report
//! ```

use rlnc_experiments::{parse_experiment_id, run_all, run_by_id, ExperimentReport, Scale};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Standard;
    let mut only: Vec<String> = Vec::new();
    let mut markdown_path: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("smoke") => Scale::Smoke,
                    Some("standard") => Scale::Standard,
                    Some("full") => Scale::Full,
                    other => {
                        eprintln!(
                            "--scale requires one of smoke|standard|full, got: {}",
                            other.unwrap_or("nothing")
                        );
                        std::process::exit(2);
                    }
                };
            }
            "--only" => {
                i += 1;
                let before = only.len();
                while i < args.len() && !args[i].starts_with("--") {
                    only.push(args[i].clone());
                    i += 1;
                }
                if only.len() == before {
                    eprintln!("--only requires at least one experiment id (e.g. --only e1 e10)");
                    std::process::exit(2);
                }
                continue;
            }
            "--markdown" => {
                i += 1;
                markdown_path = match args.get(i) {
                    Some(path) => Some(path.clone()),
                    None => {
                        eprintln!("--markdown requires a file path");
                        std::process::exit(2);
                    }
                };
            }
            "--help" | "-h" => {
                eprintln!("usage: rlnc-experiments [--scale smoke|standard|full] [--only e1 e2 ...] [--markdown FILE]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // Validate ids up front so a typo (e.g. in a CI invocation) fails loudly
    // instead of silently running an empty report list and exiting 0.
    let unknown: Vec<&String> = only.iter().filter(|id| parse_experiment_id(id).is_none()).collect();
    if !unknown.is_empty() {
        for id in unknown {
            eprintln!("unknown experiment id: {id}");
        }
        std::process::exit(2);
    }

    let reports: Vec<ExperimentReport> = if only.is_empty() {
        run_all(scale)
    } else {
        only.iter().filter_map(|id| run_by_id(id, scale)).collect()
    };

    let mut all_consistent = true;
    let mut combined = String::new();
    for report in &reports {
        let markdown = report.to_markdown();
        println!("{markdown}");
        combined.push_str(&markdown);
        all_consistent &= report.all_consistent();
    }

    if let Some(path) = markdown_path {
        let mut file = std::fs::File::create(&path).expect("cannot create markdown output file");
        file.write_all(combined.as_bytes()).expect("cannot write markdown output");
        eprintln!("wrote {path}");
    }

    if !all_consistent {
        eprintln!("WARNING: at least one finding did not match the paper's claim");
        std::process::exit(1);
    }
}

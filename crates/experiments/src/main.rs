//! Command-line driver for the experiment harness and the sweep engine.
//!
//! ```text
//! rlnc-experiments                     # run every experiment at standard scale
//! rlnc-experiments --list              # list experiment ids + descriptions
//! rlnc-experiments --scale full        # tighter confidence intervals
//! rlnc-experiments --seed 7 --only e5  # reseeded subset
//! rlnc-experiments --markdown out.md   # also write a markdown report
//!
//! rlnc-experiments sweep --list-scenarios
//! rlnc-experiments sweep --scenario smoke --scale smoke --out sweep.json
//! rlnc-experiments sweep --scenario slack-topologies --csv sweep.csv
//! rlnc-experiments sweep --check sweep.json   # validate an exported file
//!
//! rlnc-experiments bench-export --out BENCH_3.json           # perf trajectory
//! rlnc-experiments bench-export --quick --out BENCH_ci.json  # CI smoke
//! ```

use rlnc_experiments::{bench_export, parse_experiment_id, run_all_seeded, run_by_id_seeded, ExperimentReport, Scale, EXPERIMENTS};
use rlnc_sweep::{emit, Registry, SweepExecutor, DEFAULT_SWEEP_SEED};
use std::io::Write;

fn usage_error(message: &str) -> ! {
    eprintln!("{message}");
    std::process::exit(2);
}

fn parse_seed(raw: Option<&String>, flag: &str) -> u64 {
    let Some(raw) = raw else {
        usage_error(&format!("{flag} requires an unsigned 64-bit integer"));
    };
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse::<u64>()
    };
    match parsed {
        Ok(seed) => seed,
        Err(_) => usage_error(&format!("{flag}: '{raw}' is not an unsigned 64-bit integer")),
    }
}

fn parse_scale(raw: Option<&String>) -> Scale {
    match raw.map(String::as_str).map(str::parse::<Scale>) {
        Some(Ok(scale)) => scale,
        Some(Err(e)) => usage_error(&format!("--scale: {e}")),
        None => usage_error("--scale requires one of smoke|standard|full"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("sweep") {
        sweep_main(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("bench-export") {
        bench_export_main(&args[1..]);
        return;
    }
    experiments_main(&args);
}

/// The `bench-export` subcommand: measure the engine-vs-legacy hot paths
/// and write the perf-trajectory JSON.
fn bench_export_main(args: &[String]) {
    let mut quick = false;
    let mut out_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                out_path = match args.get(i) {
                    Some(path) => Some(path.clone()),
                    None => usage_error("--out requires a file path"),
                };
            }
            "--help" | "-h" => {
                eprintln!("usage: rlnc-experiments bench-export [--quick] [--out FILE.json]");
                return;
            }
            other => usage_error(&format!("unknown bench-export argument: {other}")),
        }
        i += 1;
    }
    let export = bench_export::run(quick);
    if let Some(path) = out_path {
        print!("{}", bench_export::to_summary(&export));
        write_file(&path, &bench_export::to_json(&export));
        eprintln!("wrote {path}");
    } else {
        // JSON goes to stdout (pipe-friendly), the summary to stderr, so
        // `bench-export > BENCH_N.json` stays parseable.
        eprint!("{}", bench_export::to_summary(&export));
        print!("{}", bench_export::to_json(&export));
    }
}

/// The classic E1–E10 driver.
fn experiments_main(args: &[String]) {
    let mut scale = Scale::Standard;
    let mut seed = 0u64;
    let mut only: Vec<String> = Vec::new();
    let mut markdown_path: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = parse_scale(args.get(i));
            }
            "--seed" => {
                i += 1;
                seed = parse_seed(args.get(i), "--seed");
            }
            "--only" => {
                i += 1;
                let before = only.len();
                while i < args.len() && !args[i].starts_with("--") {
                    only.push(args[i].clone());
                    i += 1;
                }
                if only.len() == before {
                    usage_error("--only requires at least one experiment id (e.g. --only e1 e10)");
                }
                continue;
            }
            "--markdown" => {
                i += 1;
                markdown_path = match args.get(i) {
                    Some(path) => Some(path.clone()),
                    None => usage_error("--markdown requires a file path"),
                };
            }
            "--list" => {
                for e in &EXPERIMENTS {
                    println!("{:>4}  {}", e.id, e.description);
                }
                return;
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: rlnc-experiments [--scale smoke|standard|full] [--seed N] \
                     [--only e1 e2 ...] [--markdown FILE] [--list]\n\
                     \x20      rlnc-experiments sweep --help\n\
                     \x20      rlnc-experiments bench-export [--quick] [--out FILE.json]"
                );
                return;
            }
            other => usage_error(&format!("unknown argument: {other}")),
        }
        i += 1;
    }

    // Validate ids up front so a typo (e.g. in a CI invocation) fails loudly
    // instead of silently running an empty report list and exiting 0.
    let unknown: Vec<&String> = only.iter().filter(|id| parse_experiment_id(id).is_none()).collect();
    if !unknown.is_empty() {
        for id in unknown {
            eprintln!("unknown experiment id: {id}");
        }
        std::process::exit(2);
    }

    let reports: Vec<ExperimentReport> = if only.is_empty() {
        run_all_seeded(scale, seed)
    } else {
        only.iter().filter_map(|id| run_by_id_seeded(id, scale, seed)).collect()
    };

    let mut all_consistent = true;
    let mut combined = String::new();
    for report in &reports {
        let markdown = report.to_markdown();
        println!("{markdown}");
        combined.push_str(&markdown);
        all_consistent &= report.all_consistent();
    }

    if let Some(path) = markdown_path {
        write_file(&path, &combined);
        eprintln!("wrote {path}");
    }

    if !all_consistent {
        eprintln!("WARNING: at least one finding did not match the paper's claim");
        std::process::exit(1);
    }
}

/// The `sweep` subcommand: run, list, or validate scenario sweeps.
fn sweep_main(args: &[String]) {
    let mut scale = Scale::Standard;
    let mut seed = DEFAULT_SWEEP_SEED;
    let mut scenario: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut csv_path: Option<String> = None;
    let mut markdown_path: Option<String> = None;
    let mut resume = false;

    let registry = Registry::builtin();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = parse_scale(args.get(i));
            }
            "--seed" => {
                i += 1;
                seed = parse_seed(args.get(i), "--seed");
            }
            "--scenario" => {
                i += 1;
                scenario = match args.get(i) {
                    Some(name) => Some(name.clone()),
                    None => usage_error("--scenario requires a scenario name (see --list-scenarios)"),
                };
            }
            "--out" => {
                i += 1;
                out_path = match args.get(i) {
                    Some(path) => Some(path.clone()),
                    None => usage_error("--out requires a file path"),
                };
            }
            "--csv" => {
                i += 1;
                csv_path = match args.get(i) {
                    Some(path) => Some(path.clone()),
                    None => usage_error("--csv requires a file path"),
                };
            }
            "--markdown" => {
                i += 1;
                markdown_path = match args.get(i) {
                    Some(path) => Some(path.clone()),
                    None => usage_error("--markdown requires a file path"),
                };
            }
            "--resume" => resume = true,
            "--list-scenarios" => {
                // Name + description, then the workload/axis metadata line,
                // so new scenarios are discoverable without reading
                // registry.rs.
                for spec in registry.iter() {
                    println!("{:<20}  {}", spec.name, spec.description);
                    println!("{:<20}  {}", "", spec.summary());
                }
                return;
            }
            "--check" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    usage_error("--check requires a file path");
                };
                let text = match std::fs::read_to_string(path) {
                    Ok(text) => text,
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        std::process::exit(1);
                    }
                };
                match emit::from_json(&text) {
                    Ok(run) => {
                        println!(
                            "{path}: OK — scenario '{}', {} records at scale {}",
                            run.scenario,
                            run.records.len(),
                            run.scale
                        );
                        return;
                    }
                    Err(e) => {
                        eprintln!("{path}: invalid sweep export: {e}");
                        std::process::exit(1);
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: rlnc-experiments sweep --scenario NAME [--scale smoke|standard|full] \
                     [--seed N] [--out FILE.json] [--csv FILE.csv] [--markdown FILE.md] [--resume]\n\
                     \x20      rlnc-experiments sweep --list-scenarios\n\
                     \x20      rlnc-experiments sweep --check FILE.json"
                );
                return;
            }
            other => usage_error(&format!("unknown sweep argument: {other}")),
        }
        i += 1;
    }

    let Some(name) = scenario else {
        usage_error("sweep requires --scenario NAME (or --list-scenarios / --check FILE)");
    };
    let Some(spec) = registry.get(&name) else {
        eprintln!("unknown scenario: {name}");
        eprintln!("available scenarios: {}", registry.names().join(", "));
        std::process::exit(2);
    };

    let executor = SweepExecutor::new(scale).with_seed(seed);
    if resume && out_path.is_none() {
        usage_error("--resume requires --out FILE (the export to resume from)");
    }
    let existing = match (&out_path, resume) {
        (Some(path), true) => match std::fs::read_to_string(path) {
            Ok(text) => match emit::from_json(&text) {
                Ok(previous) => previous.records,
                Err(e) => {
                    eprintln!("ignoring unparsable previous export {path}: {e}");
                    Vec::new()
                }
            },
            Err(_) => Vec::new(), // nothing to resume from
        },
        _ => Vec::new(),
    };
    let run = executor.resume(spec, &existing);

    print!("{}", run.to_markdown());
    if let Some(path) = out_path {
        write_file(&path, &emit::to_json(&run));
        eprintln!("wrote {path}");
    }
    if let Some(path) = csv_path {
        write_file(&path, &emit::to_csv(&run));
        eprintln!("wrote {path}");
    }
    if let Some(path) = markdown_path {
        write_file(&path, &run.to_markdown());
        eprintln!("wrote {path}");
    }
}

fn write_file(path: &str, contents: &str) {
    let mut file = std::fs::File::create(path)
        .unwrap_or_else(|e| panic!("cannot create output file {path}: {e}"));
    file.write_all(contents.as_bytes())
        .unwrap_or_else(|e| panic!("cannot write output file {path}: {e}"));
}

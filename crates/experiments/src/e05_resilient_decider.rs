//! E5 — the Corollary-1 decider for `L_f` has guarantee above 1/2.
//!
//! For `f ∈ {1, 2, 4, 8}` and planted bad-ball counts `|F| ∈ {0, 3, 6, 9}`
//! the experiment measures `Pr[all accept]` of the decider with
//! `p ∈ (2^{-1/f}, 2^{-1/(f+1)})` and compares it with the theoretical
//! `p^{|F|}`, checking the two inequalities `p^f > 1/2` (yes-side) and
//! `1 − p^{f+1} > 1/2` (no-side) that the proof of Corollary 1 relies on.

use crate::report::{fmt_prob, ExperimentReport, Finding, Scale, Table};
use rlnc_core::decision::acceptance_probability;
use rlnc_core::prelude::*;
use rlnc_core::resilient::{resilient_acceptance_probability, theoretical_acceptance, ResilientDecider};
use rlnc_graph::generators::cycle;
use rlnc_graph::{IdAssignment, NodeId};
use rlnc_langs::coloring::ProperColoring;

/// Plants `conflicts` recolorings on a properly 2-colored even cycle,
/// creating exactly `3 × conflicts` bad balls when the planted regions are
/// far apart: each recolored node matches both of its neighbors, so the
/// victim's ball and both neighbors' balls become bad.
fn planted_configuration(n: usize, conflicts: usize) -> (rlnc_graph::Graph, Labeling, Labeling, usize) {
    assert!(n % 2 == 0 && 6 * conflicts <= n);
    let graph = cycle(n);
    let input = Labeling::empty(n);
    let mut output = Labeling::from_fn(&graph, |v| Label::from_u64(u64::from(v.0 % 2) + 1));
    for c in 0..conflicts {
        // Recolor node 6c+1 to match node 6c+2 (both get color 1): the
        // planted regions are at distance ≥ 4 apart so bad balls don't merge.
        let victim = NodeId((6 * c + 1) as u32);
        output.set(victim, Label::from_u64(1));
    }
    let lang = ProperColoring::new(2);
    let x = input.clone();
    let bad = rlnc_core::language::bad_ball_count(&lang, &IoConfig::new(&graph, &x, &output));
    (graph, input, output, bad)
}

/// Runs the experiment.
pub fn run(scale: Scale) -> ExperimentReport {
    let trials = scale.trials(10_000);
    let n = scale.size(96).max(48) / 6 * 6; // multiple of 6, even
    let resilience_values = [1usize, 2, 4, 8];

    let mut table = Table::new(&[
        "f",
        "p (decider)",
        "planted bad balls |F|",
        "instance side",
        "Pr[all accept] measured",
        "theory p^|F|",
        "required inequality",
    ]);

    let mut all_sides_ok = true;
    let mut all_match_theory = true;

    for &f in &resilience_values {
        let p = resilient_acceptance_probability(f);
        let decider = ResilientDecider::new(ProperColoring::new(2), f);
        for planted in [0usize, 1, 2, 3] {
            let conflicts = planted.min(n / 6);
            let (graph, input, output, bad) = planted_configuration(n, conflicts);
            let ids = IdAssignment::consecutive(&graph);
            let io = IoConfig::new(&graph, &input, &output);
            let theory = theoretical_acceptance(f, bad);
            // Near the resilience boundary the tested inequality can be
            // razor-thin (f = 8, |F| = 9 leaves 1/2 − p^9 ≈ 0.016), so give
            // each row enough trials to resolve its own margin at ≈4σ; the
            // scale-derived count is kept as the floor.
            // The 0.015 floor also caps `needed` at ~17.8k trials per row.
            let margin = (theory - 0.5).abs().max(0.015);
            let needed = (0.25 * (4.0 / margin).powi(2)).ceil() as u64;
            let row_trials = trials.max(needed);
            let est = acceptance_probability(&decider, &io, &ids, row_trials, 0xE5 + (f * 10 + planted) as u64);
            let yes_side = bad <= f;
            let side_ok = if yes_side { est.p_hat > 0.5 } else { 1.0 - est.p_hat > 0.5 };
            // The inequality is only *required* at |F| ≤ f (yes) or ≥ f+1 (no);
            // measured probabilities must track p^{|F|} everywhere (up to the
            // Monte-Carlo confidence width).
            all_match_theory &= (est.p_hat - theory).abs() < est.half_width() + 0.03;
            if yes_side || bad >= f + 1 {
                all_sides_ok &= side_ok;
            }
            table.push_row(vec![
                f.to_string(),
                fmt_prob(p),
                bad.to_string(),
                if yes_side { "yes (|F| ≤ f)".into() } else { "no (|F| > f)".into() },
                fmt_prob(est.p_hat),
                fmt_prob(theory),
                if yes_side {
                    format!("accept > 1/2: {}", est.p_hat > 0.5)
                } else {
                    format!("reject > 1/2: {}", 1.0 - est.p_hat > 0.5)
                },
            ]);
        }
    }

    let findings = vec![
        Finding::new(
            "Corollary 1 proof: with p ∈ (2^{-1/f}, 2^{-1/(f+1)}), yes-instances are accepted w.p. ≥ p^f > 1/2 and no-instances rejected w.p. ≥ 1 − p^{f+1} > 1/2 (so L_f ∈ BPLD)",
            format!("both sides above 1/2 in every tested configuration: {all_sides_ok}"),
            all_sides_ok,
        ),
        Finding::new(
            "the acceptance probability is exactly p^{|F(G)|}",
            format!("measured values within ±0.05 of p^|F|: {all_match_theory}"),
            all_match_theory,
        ),
    ];

    ExperimentReport {
        id: "E5".into(),
        title: "the f-resilient decider of Corollary 1".into(),
        paper_reference: "§4, Corollary 1 and its proof".into(),
        table,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_resilient_decider_guarantee() {
        let report = run(Scale::Smoke);
        assert!(report.all_consistent(), "findings: {:?}", report.findings);
    }

    #[test]
    fn planted_configuration_counts_bad_balls() {
        let (_, _, _, bad) = planted_configuration(48, 0);
        assert_eq!(bad, 0);
        let (_, _, _, bad) = planted_configuration(48, 2);
        assert_eq!(bad, 6, "3 bad balls per planted conflict");
    }
}

//! E5 — the Corollary-1 decider for `L_f` has guarantee above 1/2.
//!
//! For `f ∈ {1, 2, 4, 8}` and planted bad-ball counts `|F| ∈ {0, 3, 6, 9}`
//! the experiment measures `Pr[all accept]` of the decider with
//! `p ∈ (2^{-1/f}, 2^{-1/(f+1)})` and compares it with the theoretical
//! `p^{|F|}`, checking the two inequalities `p^f > 1/2` (yes-side) and
//! `1 − p^{f+1} > 1/2` (no-side) that the proof of Corollary 1 relies on.
//!
//! The `(f, planted)` grid runs on the `rlnc-sweep` engine (the
//! `resilient-boundary` registry scenario), which also enforces the
//! margin-aware per-row trial floor: near the resilience boundary the
//! tested inequality can be razor-thin (`f = 8`, `|F| = 9` leaves
//! `1/2 − p⁹ ≈ 0.016`), so each grid point gets enough trials to resolve
//! its own margin at ≈4σ.

use crate::report::{fmt_prob, ExperimentReport, Finding, Scale, Table};
use rlnc_core::resilient::{resilient_acceptance_probability, theoretical_acceptance};
use rlnc_sweep::registry::resilient_boundary_spec;
use rlnc_sweep::workload::planted_bad_balls;
use rlnc_sweep::SweepExecutor;

/// Runs the experiment at the default master seed.
pub fn run(scale: Scale) -> ExperimentReport {
    run_seeded(scale, 0)
}

/// Runs the experiment; `seed` perturbs every random stream.
pub fn run_seeded(scale: Scale, seed: u64) -> ExperimentReport {
    let spec = resilient_boundary_spec();
    let sweep = SweepExecutor::new(scale).with_seed(seed ^ 0xE5).run(&spec);

    let mut table = Table::new(&[
        "f",
        "p (decider)",
        "planted bad balls |F|",
        "instance side",
        "Pr[all accept] measured",
        "theory p^|F|",
        "required inequality",
    ]);

    let mut all_sides_ok = true;
    let mut all_match_theory = true;

    for r in &sweep.records {
        let f = r.param_a as usize;
        let p = resilient_acceptance_probability(f);
        let bad = planted_bad_balls(r.n as usize, r.param_b);
        let theory = theoretical_acceptance(f, bad);
        let yes_side = bad <= f;
        let side_ok = if yes_side { r.p_hat > 0.5 } else { 1.0 - r.p_hat > 0.5 };
        // The inequality is only *required* at |F| ≤ f (yes) or ≥ f+1 (no);
        // measured probabilities must track p^{|F|} everywhere (up to the
        // Monte-Carlo confidence width).
        let half_width = (r.upper - r.lower) / 2.0;
        all_match_theory &= (r.p_hat - theory).abs() < half_width + 0.03;
        if yes_side || bad >= f + 1 {
            all_sides_ok &= side_ok;
        }
        table.push_row(vec![
            f.to_string(),
            fmt_prob(p),
            bad.to_string(),
            if yes_side { "yes (|F| ≤ f)".into() } else { "no (|F| > f)".into() },
            fmt_prob(r.p_hat),
            fmt_prob(theory),
            if yes_side {
                format!("accept > 1/2: {}", r.p_hat > 0.5)
            } else {
                format!("reject > 1/2: {}", 1.0 - r.p_hat > 0.5)
            },
        ]);
    }

    let findings = vec![
        Finding::new(
            "Corollary 1 proof: with p ∈ (2^{-1/f}, 2^{-1/(f+1)}), yes-instances are accepted w.p. ≥ p^f > 1/2 and no-instances rejected w.p. ≥ 1 − p^{f+1} > 1/2 (so L_f ∈ BPLD)",
            format!("both sides above 1/2 in every tested configuration: {all_sides_ok}"),
            all_sides_ok,
        ),
        Finding::new(
            "the acceptance probability is exactly p^{|F(G)|}",
            format!("measured values within ±0.05 of p^|F|: {all_match_theory}"),
            all_match_theory,
        ),
    ];

    ExperimentReport {
        id: "E5".into(),
        title: "the f-resilient decider of Corollary 1".into(),
        paper_reference: "§4, Corollary 1 and its proof".into(),
        table,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_resilient_decider_guarantee() {
        let report = run(Scale::Smoke);
        assert!(report.all_consistent(), "findings: {:?}", report.findings);
        // The sweep grid covers f ∈ {1,2,4,8} × planted ∈ {0..3}.
        assert_eq!(report.table.rows.len(), 16);
    }

    #[test]
    fn e5_is_reproducible_and_seed_sensitive() {
        let a = run_seeded(Scale::Smoke, 7);
        let b = run_seeded(Scale::Smoke, 7);
        assert_eq!(a.table.rows, b.table.rows);
        assert!(a.all_consistent(), "findings: {:?}", a.findings);
    }
}

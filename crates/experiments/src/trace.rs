//! Trace assembly for the CLI's `--trace-out` flag, plus the exact parser
//! that closes the round-trip.
//!
//! [`collect`] snapshots the process-global `rlnc-obs` registry and
//! injects the metrics the registry cannot see from inside: the
//! persistent work-stealing pool's counters
//! ([`rlnc_par::pool::stats`] — tasks dispatched, steals, parks,
//! resident workers) plus the historical
//! [`rlnc_par::sweep::scoped_spawn_count`] alias for the worker count.
//! All of them depend on core count / `RLNC_THREADS` and scheduling
//! luck, so they land in the **timing** section and never disturb the
//! deterministic-section byte pins.
//!
//! [`from_json`] parses an `rlnc-trace-v1` document back into a
//! [`TraceDocument`] via the shared `rlnc-sweep` JSON parser;
//! `from_json(doc.to_json()) == doc` is property-tested in
//! `tests/trace_json_props.rs`.

use rlnc_obs::{MetricValue, MetricsSnapshot, TraceDocument};
use rlnc_sweep::emit::json;

/// The timing-section name under which the pool's resident worker
/// count is exported. Kept under its historical name (the pre-pool
/// stub spawned scoped threads per region) so traces stay comparable
/// across the transition; it now equals `pool.workers`.
pub const RAYON_SPAWNS_METRIC: &str = "rayon.scoped_spawns";

/// Timing-section names for the work-stealing pool counters, in the
/// order they are inserted.
pub const POOL_METRICS: [&str; 4] = ["pool.tasks", "pool.steals", "pool.parks", "pool.workers"];

/// Snapshots the registry into a [`TraceDocument`] and appends the
/// work-stealing pool's cumulative counters (plus the historical rayon
/// spawn-count alias) to the timing section.
pub fn collect() -> TraceDocument {
    let mut doc = rlnc_obs::snapshot();
    let pool = rlnc_par::pool::stats();
    let [tasks, steals, parks, workers] = POOL_METRICS;
    doc.timing.insert(tasks, MetricValue::Counter(pool.tasks));
    doc.timing.insert(steals, MetricValue::Counter(pool.steals));
    doc.timing.insert(parks, MetricValue::Counter(pool.parks));
    doc.timing.insert(workers, MetricValue::Counter(pool.workers));
    doc.timing.insert(
        RAYON_SPAWNS_METRIC,
        MetricValue::Counter(rlnc_par::sweep::scoped_spawn_count()),
    );
    doc
}

/// Parses one `{"type": ...}` metric value object.
fn parse_value(fields: &[(String, json::Value)], name: &str) -> Result<MetricValue, String> {
    let kind = json::get(fields, "type")?.as_string(&format!("{name}.type"))?;
    match kind.as_str() {
        "counter" => Ok(MetricValue::Counter(
            json::get(fields, "value")?.as_u64(&format!("{name}.value"))?,
        )),
        "gauge" => Ok(MetricValue::Gauge(
            json::get(fields, "value")?.as_u64(&format!("{name}.value"))?,
        )),
        "histogram" => {
            let bounds = u64_array(json::get(fields, "bounds")?, &format!("{name}.bounds"))?;
            let counts = u64_array(json::get(fields, "counts")?, &format!("{name}.counts"))?;
            if counts.len() != bounds.len() + 1 {
                return Err(format!(
                    "{name}: histogram needs {} counts for {} bounds, got {}",
                    bounds.len() + 1,
                    bounds.len(),
                    counts.len()
                ));
            }
            Ok(MetricValue::Histogram {
                bounds,
                counts,
                sum: json::get(fields, "sum")?.as_u64(&format!("{name}.sum"))?,
            })
        }
        "span" => Ok(MetricValue::Span {
            calls: json::get(fields, "calls")?.as_u64(&format!("{name}.calls"))?,
            total_ns: json::get(fields, "total_ns")?.as_u64(&format!("{name}.total_ns"))?,
            min_ns: json::get(fields, "min_ns")?.as_u64(&format!("{name}.min_ns"))?,
            max_ns: json::get(fields, "max_ns")?.as_u64(&format!("{name}.max_ns"))?,
        }),
        other => Err(format!("{name}: unknown metric type '{other}'")),
    }
}

fn u64_array(value: &json::Value, what: &str) -> Result<Vec<u64>, String> {
    value
        .as_array(what)?
        .iter()
        .enumerate()
        .map(|(i, v)| v.as_u64(&format!("{what}[{i}]")))
        .collect()
}

fn parse_section(value: &json::Value, what: &str) -> Result<MetricsSnapshot, String> {
    let mut section = MetricsSnapshot::new();
    for (name, v) in value.as_object(what)? {
        let fields = v.as_object(&format!("{what}.{name}"))?;
        section.insert(name.clone(), parse_value(fields, name)?);
    }
    Ok(section)
}

/// Parses an `rlnc-trace-v1` JSON document (as written by `--trace-out`)
/// back into a [`TraceDocument`]. Exact inverse of
/// [`TraceDocument::to_json`].
pub fn from_json(text: &str) -> Result<TraceDocument, String> {
    let value = json::parse(text)?;
    let obj = value.as_object("top level")?;
    let schema = json::get(obj, "schema")?.as_string("schema")?;
    if schema != TraceDocument::SCHEMA {
        return Err(format!(
            "unsupported trace schema '{schema}' (expected '{}')",
            TraceDocument::SCHEMA
        ));
    }
    Ok(TraceDocument {
        deterministic: parse_section(json::get(obj, "deterministic")?, "deterministic")?,
        timing: parse_section(json::get(obj, "timing")?, "timing")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_always_reports_rayon_spawns() {
        let doc = collect();
        assert!(
            matches!(
                doc.timing.get(RAYON_SPAWNS_METRIC),
                Some(MetricValue::Counter(_))
            ),
            "the spawn counter must be present even when obs is disabled"
        );
    }

    #[test]
    fn collect_always_reports_pool_counters() {
        let doc = collect();
        for name in POOL_METRICS {
            assert!(
                matches!(doc.timing.get(name), Some(MetricValue::Counter(_))),
                "{name} must be present even when obs is disabled"
            );
            assert!(
                doc.deterministic.get(name).is_none(),
                "{name} is schedule-dependent and must stay out of the deterministic section"
            );
        }
        // The historical alias and the pool's own worker counter agree.
        let workers = doc.timing.get("pool.workers");
        let spawns = doc.timing.get(RAYON_SPAWNS_METRIC);
        assert_eq!(workers, spawns);
    }

    #[test]
    fn hand_built_document_round_trips() {
        let mut doc = TraceDocument::default();
        doc.deterministic
            .insert("a.counter", MetricValue::Counter(u64::MAX));
        doc.deterministic.insert(
            "b.hist",
            MetricValue::Histogram {
                bounds: vec![1, 2, 4],
                counts: vec![0, 3, 0, 9],
                sum: 42,
            },
        );
        doc.timing.insert(
            "c.span",
            MetricValue::Span {
                calls: 2,
                total_ns: 100,
                min_ns: 40,
                max_ns: 60,
            },
        );
        doc.timing.insert("d.gauge", MetricValue::Gauge(7));
        assert_eq!(from_json(&doc.to_json()).unwrap(), doc);
    }

    #[test]
    fn malformed_traces_are_rejected() {
        assert!(from_json("{}").is_err());
        assert!(from_json("{\"schema\":\"bogus\",\"deterministic\":{},\"timing\":{}}")
            .unwrap_err()
            .contains("schema"));
        // A histogram with the wrong number of buckets must not parse.
        let bad = concat!(
            "{\"schema\":\"rlnc-trace-v1\",\"deterministic\":{\"h\":",
            "{\"type\":\"histogram\",\"bounds\":[1,2],\"counts\":[0,0],\"sum\":0}},",
            "\"timing\":{}}"
        );
        assert!(from_json(bad).unwrap_err().contains("counts"));
    }
}

//! Report primitives: tables, findings, and experiment scales.

use serde::{Deserialize, Serialize};

// The smoke/standard/full knob lives in `rlnc-par` so the sweep engine and
// the benches share one definition; re-exported here for compatibility.
pub use rlnc_par::scale::Scale;

/// A rendered table: column headers plus string rows.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Table {
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows (each must have exactly `columns.len()` cells).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(columns: &[&str]) -> Self {
        Table {
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width does not match the header width.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(&self.columns.join(" | "));
        out.push_str(" |\n|");
        for _ in &self.columns {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(&row.join(" | "));
            out.push_str(" |\n");
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = self.columns.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// A paper-claim-versus-measurement record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Finding {
    /// What the paper states (with its location).
    pub paper_claim: String,
    /// What this run measured.
    pub measured: String,
    /// Whether the measurement is consistent with the claim.
    pub matches: bool,
}

impl Finding {
    /// Creates a finding.
    pub fn new(paper_claim: impl Into<String>, measured: impl Into<String>, matches: bool) -> Self {
        Finding {
            paper_claim: paper_claim.into(),
            measured: measured.into(),
            matches,
        }
    }
}

/// The full result of one experiment run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Short identifier (`"E1"`, ...).
    pub id: String,
    /// One-line title.
    pub title: String,
    /// Paper location of the claim being reproduced.
    pub paper_reference: String,
    /// The measured table.
    pub table: Table,
    /// Claim-versus-measurement records.
    pub findings: Vec<Finding>,
}

impl ExperimentReport {
    /// Renders the report (title, table, findings) as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## {} — {}\n\n*Paper reference:* {}\n\n", self.id, self.title, self.paper_reference);
        out.push_str(&self.table.to_markdown());
        out.push_str("\n**Paper vs. measured**\n\n");
        for finding in &self.findings {
            out.push_str(&format!(
                "- {} — measured: {} — {}\n",
                finding.paper_claim,
                finding.measured,
                if finding.matches { "consistent" } else { "MISMATCH" }
            ));
        }
        out.push('\n');
        out
    }

    /// Returns `true` if every finding is consistent with the paper.
    pub fn all_consistent(&self) -> bool {
        self.findings.iter().all(|f| f.matches)
    }
}

/// Formats a probability with three decimal places.
pub fn fmt_prob(p: f64) -> String {
    format!("{p:.3}")
}

/// Formats a confidence interval.
pub fn fmt_interval(lower: f64, upper: f64) -> String {
    format!("[{lower:.3}, {upper:.3}]")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_markdown_and_csv_round_trip() {
        let mut table = Table::new(&["n", "p"]);
        table.push_row(vec!["8".into(), "0.5".into()]);
        table.push_row(vec!["16".into(), "0.25".into()]);
        let md = table.to_markdown();
        assert!(md.starts_with("| n | p |"));
        assert!(md.contains("| 16 | 0.25 |"));
        let csv = table.to_csv();
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_are_rejected() {
        let mut table = Table::new(&["a", "b"]);
        table.push_row(vec!["1".into()]);
    }

    #[test]
    fn report_markdown_flags_mismatches() {
        let mut table = Table::new(&["x"]);
        table.push_row(vec!["1".into()]);
        let report = ExperimentReport {
            id: "E0".into(),
            title: "demo".into(),
            paper_reference: "§0".into(),
            table,
            findings: vec![
                Finding::new("claim A", "ok", true),
                Finding::new("claim B", "off", false),
            ],
        };
        assert!(!report.all_consistent());
        let md = report.to_markdown();
        assert!(md.contains("MISMATCH"));
        assert!(md.contains("consistent"));
    }

    #[test]
    fn shared_scale_is_reexported_and_formatting_helpers_work() {
        // The Scale definition itself is tested in rlnc-par; this guards the
        // re-export plus the local formatting helpers.
        assert_eq!(Scale::Smoke.size(64), 16);
        assert_eq!(fmt_prob(0.61803), "0.618");
        assert_eq!(fmt_interval(0.1, 0.2), "[0.100, 0.200]");
    }
}

//! `bench-export` — the recorded perf trajectory of the execution engine.
//!
//! Measures the engine-vs-legacy hot paths with plain wall-clock timing
//! (warm-up pass + best-of-N repetitions) and emits a deterministic-schema
//! JSON document (`BENCH_<pr>.json`). The *values* are machine-dependent —
//! that is the point: committing one export per PR starts a perf
//! trajectory the project can read trends from, and CI uploads a fresh
//! export per run as an artifact.
//!
//! The three groups mirror the `simulator_perf` criterion benchmarks:
//!
//! * `ring-monte-carlo` — the headline: K Monte-Carlo trials of the
//!   zero-round random 3-coloring on a consecutive-identity ring,
//!   legacy (re-collect every view each trial) vs engine
//!   ([`ExecutionPlan`] once + [`BatchRunner`]). Both sides run the trial
//!   loop sequentially so the ratio isolates the plan amortization, not
//!   thread counts.
//! * `resilient-decider` — the Corollary-1 decider on a planted-conflict
//!   cycle: legacy `acceptance_probability` (radius-1 views re-collected
//!   per node per trial) vs the engine's cached decision plan.
//! * `ball-extraction` — the substrate: per-node `Ball::extract` vs the
//!   shared-scratch [`BallArena`] pass.
//! * `shard-overhead` — the sweep partitioning cost (new with the serve
//!   subsystem): one unsharded fault-matrix smoke sweep vs 4 shard runs
//!   plus `emit::merge_runs`, with byte-identical output asserted.
//! * `pool-warmup` — parallel-region dispatch (new with the persistent
//!   pool): repeated regions through the old per-region scoped-thread
//!   stub (fresh spawns + materialized index vectors) vs the resident
//!   work-stealing pool.
//! * `verdict-soa` — the packed-`u64` SoA label lane (new with the SoA
//!   view layout): the proper-coloring verdict over cached views, byte
//!   path vs branchless lane, bad-ball counts asserted identical.
//! * `multi-algo-scan` — the batched K-algorithm kernel (new with the
//!   arena-level lanes): K = 16 lane-space verdict deciders on a
//!   larger-than-LLC radius-1 ring decision plan, K sequential
//!   `acceptance` walks vs one `acceptance_many` pass with the decider
//!   loop innermost, verdicts asserted bit-identical per decider.
//!
//! The derand groups (new with the pipeline refactor) measure the two
//! Theorem-1 kernels against their legacy `rlnc_core::derand` reference
//! implementations, asserting bit-identical success counts on the way:
//!
//! * `boosted-union-acceptance` — Claim 3's decide-over-union: legacy
//!   `disjoint_union_acceptance` (per-trial view collection on the union)
//!   vs the pipeline's [`UnionPlan`] kernel.
//! * `glued-acceptance` — Claims 4–5's far-from-every-anchor event: legacy
//!   `GluingExperiment::acceptance_far_from_all_anchors` (per-trial,
//!   per-anchor BFS + per-node view collection) vs the
//!   [`GluedPlan`](rlnc_engine::GluedPlan) kernel with its precomputed
//!   participation set.
//!
//! The `langs` groups (new with the language-registry refactor) measure
//! per-case verdict throughput for every LCL case in
//! [`CaseRegistry`](rlnc_langs::registry::CaseRegistry):
//!
//! * `lcl-verdicts-<case>` — the decider hot kernel on a fixed constructed
//!   configuration: legacy = rebuild the ball as a standalone `IoConfig`
//!   (two fresh label vectors) per verdict, exactly what the pre-refactor
//!   generic deciders did; engine = the view-native
//!   [`LclLanguage::is_bad_view`] hook. Verdict parity is asserted on the
//!   way. With the `count-alloc` feature, each side's allocation count per
//!   pass is recorded and the engine side is **asserted to be zero** — the
//!   acceptance criterion of the refactor — and the export carries a
//!   peak-live-bytes proxy so memory regressions show up in the
//!   trajectory. (Counting adds a few atomics per allocation, so wall
//!   times from a `count-alloc` build slightly overstate the cost of
//!   allocation-heavy paths; exports record whether the columns are
//!   present, and CI times its quick export without the feature.)

use rlnc_core::decision::acceptance_probability;
use rlnc_core::derand::boosting::disjoint_union_acceptance;
use rlnc_core::derand::gluing::{anchor_candidates, GluingExperiment};
use rlnc_core::derand::hard_instances::consecutive_cycle_candidates;
use rlnc_core::prelude::*;
use rlnc_derand::{DerandPipeline, OneSidedLclDecider, PipelineParams};
use rlnc_engine::{BatchRunner, ExecutionPlan, UnionPlan};
use rlnc_graph::arena::BallArena;
use rlnc_graph::ball::Ball;
use rlnc_graph::generators::cycle;
use rlnc_graph::{IdAssignment, NodeId};
use rlnc_langs::coloring::ProperColoring;
use rlnc_langs::random_coloring::RandomColoring;
use rlnc_par::trials::MonteCarlo;
use rlnc_sweep::workload::planted_cycle_configuration;
use std::time::Instant;

/// One engine-vs-legacy measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchGroup {
    /// Group name (stable across PRs, so trajectories can be joined).
    pub name: String,
    /// Instance size.
    pub n: usize,
    /// Trials (or repetitions) measured per pass.
    pub trials: u64,
    /// Best-of-N wall-clock nanoseconds for the legacy path.
    pub legacy_ns: u128,
    /// Best-of-N wall-clock nanoseconds for the engine path.
    pub engine_ns: u128,
    /// Allocation events of one legacy pass (present with `count-alloc`).
    pub legacy_allocs: Option<u64>,
    /// Allocation events of one engine pass (present with `count-alloc`).
    pub engine_allocs: Option<u64>,
    /// Approximate heap bytes of the engine path's cached state (plan /
    /// arena) — the deterministic cache-behavior proxy of the trajectory.
    pub working_set_bytes: u64,
    /// Deterministic-section `rlnc-obs` counter deltas of one engine pass
    /// (sorted by name, zero counters dropped): what work the pass did —
    /// trials run, balls extracted, decisions taken — independent of
    /// schedule and wall clock.
    pub counters: Vec<(String, u64)>,
}

impl BenchGroup {
    /// Legacy-over-engine speedup factor.
    pub fn speedup(&self) -> f64 {
        self.legacy_ns as f64 / self.engine_ns.max(1) as f64
    }
}

/// A full export: the groups plus the mode they ran at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchExport {
    /// `true` for the CI-friendly quick mode (smaller sizes, fewer reps).
    pub quick: bool,
    /// The measurements.
    pub groups: Vec<BenchGroup>,
    /// Peak live heap bytes observed across the run (present with
    /// `count-alloc`) — the memory-regression proxy of the trajectory.
    pub peak_alloc_bytes: Option<u64>,
}

/// Allocation events of one `f()` call when the counting allocator is
/// compiled in; `None` otherwise.
fn count_allocs<F: FnMut()>(mut f: F) -> Option<u64> {
    #[cfg(feature = "count-alloc")]
    {
        let before = crate::alloc_counter::allocations();
        f();
        return Some(crate::alloc_counter::allocations() - before);
    }
    #[allow(unreachable_code)]
    {
        let _ = &mut f;
        None
    }
}

/// Deterministic-section counter deltas of one `f()` call, captured via
/// the process-global `rlnc-obs` registry. The registry is reset first, so
/// the result is exactly what `f` did; gauges, histograms, and spans are
/// dropped (the per-group export keeps the schema flat).
fn obs_counters<F: FnMut()>(mut f: F) -> Vec<(String, u64)> {
    rlnc_obs::reset();
    rlnc_obs::set_enabled(true);
    f();
    rlnc_obs::set_enabled(false);
    let doc = rlnc_obs::snapshot();
    doc.deterministic
        .iter()
        .filter_map(|(name, value)| match value {
            rlnc_obs::MetricValue::Counter(c) if *c > 0 => Some((name.to_string(), *c)),
            _ => None,
        })
        .collect()
}

/// Best-of-`reps` wall time of `f`, with one untimed warm-up pass.
fn best_of<F: FnMut()>(reps: u32, mut f: F) -> u128 {
    f();
    let mut best = u128::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos());
    }
    best.max(1)
}

fn ring_monte_carlo(quick: bool) -> BenchGroup {
    let (n, trials, reps) = if quick { (256, 200u64, 3) } else { (256, 1_000u64, 5) };
    let graph = cycle(n);
    let input = Labeling::empty(n);
    let ids = IdAssignment::consecutive(&graph);
    let instance = Instance::new(&graph, &input, &ids);
    let algo = RandomColoring::new(3);
    let success = |out: &Labeling| out.get(NodeId(0)).as_u64() == 1;

    let legacy_ns = best_of(reps, || {
        let est = MonteCarlo::new(trials).sequential().with_seed(7).estimate(|seed| {
            let out = Simulator::sequential().run_randomized(&algo, &instance, seed);
            success(&out)
        });
        assert!(est.p_hat >= 0.0);
    });
    let engine_ns = best_of(reps, || {
        let plan = ExecutionPlan::for_instance(&instance, 0);
        let est = BatchRunner::sequential().estimate(&algo, &plan, trials, 7, success);
        assert!(est.p_hat >= 0.0);
    });
    let plan = ExecutionPlan::for_instance(&instance, 0);
    let working_set_bytes = plan.working_set_bytes();
    let counters = obs_counters(|| {
        let est = BatchRunner::sequential().estimate(&algo, &plan, trials, 7, success);
        assert!(est.p_hat >= 0.0);
    });
    BenchGroup {
        name: "ring-monte-carlo".into(),
        n,
        trials,
        legacy_ns,
        engine_ns,
        legacy_allocs: None,
        engine_allocs: None,
        working_set_bytes,
        counters,
    }
}

fn resilient_decider(quick: bool) -> BenchGroup {
    let (n, trials, reps) = if quick { (96, 500u64, 3) } else { (96, 2_000u64, 5) };
    let (graph, input, output) = planted_cycle_configuration(n, 2);
    let ids = IdAssignment::consecutive(&graph);
    let io = IoConfig::new(&graph, &input, &output);
    let decider = ResilientDecider::new(
        rlnc_langs::coloring::ProperColoring::new(2),
        4,
    );

    let legacy_ns = best_of(reps, || {
        let est = acceptance_probability(&decider, &io, &ids, trials, 11);
        assert!(est.p_hat >= 0.0);
    });
    let engine_ns = best_of(reps, || {
        let plan = ExecutionPlan::for_io(&io, &ids, 1);
        let est = BatchRunner::sequential().acceptance(&decider, &plan, trials, 11);
        assert!(est.p_hat >= 0.0);
    });
    let plan = ExecutionPlan::for_io(&io, &ids, 1);
    let working_set_bytes = plan.working_set_bytes();
    let counters = obs_counters(|| {
        let est = BatchRunner::sequential().acceptance(&decider, &plan, trials, 11);
        assert!(est.p_hat >= 0.0);
    });
    BenchGroup {
        name: "resilient-decider".into(),
        n,
        trials,
        legacy_ns,
        engine_ns,
        legacy_allocs: None,
        engine_allocs: None,
        working_set_bytes,
        counters,
    }
}

fn ball_extraction(quick: bool) -> BenchGroup {
    let (n, radius, reps) = if quick { (1_024, 8u32, 3) } else { (4_096, 8u32, 5) };
    let graph = cycle(n);
    let legacy_ns = best_of(reps, || {
        let mut total = 0usize;
        for v in graph.nodes() {
            total += Ball::extract(&graph, v, radius).len();
        }
        assert_eq!(total, n * (2 * radius as usize + 1));
    });
    let engine_ns = best_of(reps, || {
        let arena = BallArena::extract_all(&graph, radius);
        assert_eq!(arena.total_members(), n * (2 * radius as usize + 1));
    });
    let working_set_bytes = BallArena::extract_all(&graph, radius).working_set_bytes();
    let counters = obs_counters(|| {
        let arena = BallArena::extract_all(&graph, radius);
        assert_eq!(arena.total_members(), n * (2 * radius as usize + 1));
    });
    BenchGroup {
        name: "ball-extraction-r8".into(),
        n,
        trials: 1,
        legacy_ns,
        engine_ns,
        legacy_allocs: None,
        engine_allocs: None,
        working_set_bytes,
        counters,
    }
}

fn boosted_union_acceptance(quick: bool) -> BenchGroup {
    let (cycle_size, nu, trials, reps) = if quick {
        (12usize, 6usize, 300u64, 3)
    } else {
        (12, 6, 1_500, 5)
    };
    let hard = consecutive_cycle_candidates([cycle_size]);
    let constructor = RandomColoring::new(3);
    let language = ProperColoring::new(3);
    let decider = OneSidedLclDecider::new(language, 0.75);

    let mut legacy_successes = 0u64;
    let legacy_ns = best_of(reps, || {
        let est = disjoint_union_acceptance(&constructor, &decider, &hard, nu, trials, 7);
        legacy_successes = est.successes;
    });
    let mut engine_successes = 0u64;
    let engine_ns = best_of(reps, || {
        let parts: Vec<_> = hard.iter().map(|h| (&h.graph, &h.input, &h.ids)).collect();
        let union = UnionPlan::for_parts(&parts, nu, 0, 1);
        let est = BatchRunner::new().union_acceptance(&union, &constructor, &decider, trials, 7);
        engine_successes = est.successes;
    });
    assert_eq!(
        legacy_successes, engine_successes,
        "union kernel must be bit-identical to the legacy estimator"
    );
    let parts: Vec<_> = hard.iter().map(|h| (&h.graph, &h.input, &h.ids)).collect();
    let union = UnionPlan::for_parts(&parts, nu, 0, 1);
    let working_set_bytes = union.plan().working_set_bytes();
    let counters = obs_counters(|| {
        let est = BatchRunner::new().union_acceptance(&union, &constructor, &decider, trials, 7);
        assert_eq!(est.successes, engine_successes);
    });
    BenchGroup {
        name: "boosted-union-acceptance".into(),
        n: cycle_size * nu,
        trials,
        legacy_ns,
        engine_ns,
        legacy_allocs: None,
        engine_allocs: None,
        working_set_bytes,
        counters,
    }
}

fn glued_acceptance(quick: bool) -> BenchGroup {
    let (cycle_size, nu, trials, reps) = if quick {
        (16usize, 4usize, 200u64, 3)
    } else {
        (16, 4, 1_000, 5)
    };
    let constructor = RandomColoring::new(3);
    let language = ProperColoring::new(3);
    let decider = OneSidedLclDecider::new(language, 0.75);
    let params = PipelineParams { r: 0.9, p: 0.75, t: 0, t_prime: 1 };
    let build_parts = || consecutive_cycle_candidates(vec![cycle_size; nu]);
    let anchors_of = |parts: &[rlnc_core::derand::HardInstance]| -> Vec<NodeId> {
        parts.iter().map(|h| anchor_candidates(h, 0, 1, 0.75)[0]).collect()
    };

    let mut legacy_successes = 0u64;
    let legacy_ns = best_of(reps, || {
        let parts = build_parts();
        let anchors = anchors_of(&parts);
        let experiment = GluingExperiment::build(parts, anchors, 0, 1);
        let est = experiment.acceptance_far_from_all_anchors(&constructor, &decider, trials, 11);
        legacy_successes = est.successes;
    });
    let pipeline = DerandPipeline::new(&constructor, &decider, &language, params);
    let mut engine_successes = 0u64;
    let engine_ns = best_of(reps, || {
        let parts = build_parts();
        let anchors = anchors_of(&parts);
        let stage = pipeline.glued_stage(parts, anchors);
        let est = pipeline.glued_far_acceptance(&stage, trials, 11);
        engine_successes = est.successes;
    });
    assert_eq!(
        legacy_successes, engine_successes,
        "glued kernel must be bit-identical to the legacy estimator"
    );
    let stage = pipeline.glued_stage(build_parts(), anchors_of(&build_parts()));
    let working_set_bytes = stage.plan.plan().working_set_bytes();
    let counters = obs_counters(|| {
        let est = pipeline.glued_far_acceptance(&stage, trials, 11);
        assert_eq!(est.successes, engine_successes);
    });
    BenchGroup {
        name: "glued-acceptance".into(),
        n: cycle_size * nu + 2 * nu,
        trials,
        legacy_ns,
        engine_ns,
        legacy_allocs: None,
        engine_allocs: None,
        working_set_bytes,
        counters,
    }
}

/// One `lcl-verdicts-<case>` group: view-native vs `IoConfig`-rebuild
/// verdict throughput for an LCL case's language on a fixed constructed
/// configuration, with bit-identical verdict counts asserted.
fn lcl_verdict_group(
    case: &rlnc_langs::registry::LanguageCase,
    quick: bool,
) -> Option<BenchGroup> {
    let lcl = case.lcl.as_ref()?;
    let (n, passes, reps) = if quick { (96usize, 50u64, 3) } else { (192, 300u64, 5) };
    let family = case.candidate_family(rlnc_graph::generators::Family::Cycle);
    let mut rng = rlnc_par::SeedSequence::new(13).rng();
    let graph = family.generate(n, &mut rng);
    let ids = IdAssignment::consecutive(&graph);
    let input = case.build_input(&graph, &ids);
    let instance = Instance::new(&graph, &input, &ids);
    // One constructed output at a fixed seed, then the decision views the
    // generic deciders would verdict on.
    let out = Simulator::sequential().run_randomized(
        &*case.constructor,
        &instance,
        rlnc_par::SeedSequence::new(0).child(0),
    );
    let io = IoConfig::new(&graph, &input, &out);
    let views = View::collect_all_io(&io, &ids, lcl.radius());

    // Legacy: the pre-refactor decider body — rebuild the ball as a
    // standalone configuration (two fresh label vectors) per verdict.
    let legacy_pass = || {
        let mut bad = 0usize;
        for view in &views {
            let local_input =
                Labeling::new((0..view.len()).map(|i| view.input(i).clone()).collect());
            let local_output =
                Labeling::new((0..view.len()).map(|i| view.output(i).clone()).collect());
            let local_io = IoConfig::new(view.local_graph(), &local_input, &local_output);
            bad += usize::from(
                lcl.is_bad_ball(&local_io, NodeId::from_index(view.center_local())),
            );
        }
        bad
    };
    let engine_pass = || {
        let mut bad = 0usize;
        for view in &views {
            bad += usize::from(lcl.is_bad_view(view));
        }
        bad
    };
    assert_eq!(
        legacy_pass(),
        engine_pass(),
        "case '{}': view-native verdicts must match the IoConfig path",
        case.name
    );
    let legacy_ns = best_of(reps, || {
        let mut total = 0usize;
        for _ in 0..passes {
            total += legacy_pass();
        }
        assert!(total < usize::MAX);
    });
    let engine_ns = best_of(reps, || {
        let mut total = 0usize;
        for _ in 0..passes {
            total += engine_pass();
        }
        assert!(total < usize::MAX);
    });
    let legacy_allocs = count_allocs(|| {
        let _ = legacy_pass();
    });
    let engine_allocs = count_allocs(|| {
        let _ = engine_pass();
    });
    if let Some(allocs) = engine_allocs {
        assert_eq!(
            allocs, 0,
            "case '{}': view-native verdicts must perform zero heap allocations",
            case.name
        );
    }
    let working_set_bytes: u64 = views.iter().map(|v| v.memory_bytes()).sum();
    let counters = obs_counters(|| {
        let _ = engine_pass();
    });
    Some(BenchGroup {
        name: format!("lcl-verdicts-{}", case.name),
        n,
        trials: passes,
        legacy_ns,
        engine_ns,
        legacy_allocs,
        engine_allocs,
        working_set_bytes,
        counters,
    })
}

/// The `shard-overhead` group (new with the serve subsystem): one
/// unsharded fault-matrix smoke sweep (legacy) vs the same sweep split
/// across 4 shards and reassembled with `emit::merge_runs` (engine). The
/// merged export is asserted byte-identical to the unsharded one on the
/// way, so the trajectory row doubles as a parity pin and the measured
/// ratio is pure partitioning + merge overhead. `n` is the grid size,
/// `trials` the shard count, and the working set is the export itself.
fn shard_overhead(quick: bool) -> BenchGroup {
    const SHARDS: u64 = 4;
    let reps = if quick { 2 } else { 3 };
    let registry = rlnc_sweep::Registry::builtin();
    let spec = registry.get("fault-matrix").expect("fault-matrix scenario").clone();
    let exec = rlnc_sweep::SweepExecutor::new(rlnc_par::Scale::Smoke).with_seed(0x5EED);
    let full = exec.run(&spec);
    let full_json = rlnc_sweep::emit::to_json(&full);

    let legacy_ns = best_of(reps, || {
        let run = exec.run(&spec);
        assert_eq!(run.records.len(), full.records.len());
    });
    let mut merged_json = String::new();
    let engine_ns = best_of(reps, || {
        let shards: Vec<_> = (1..=SHARDS).map(|i| exec.run_shard(&spec, i, SHARDS)).collect();
        let merged = rlnc_sweep::emit::merge_runs(&shards).expect("shards merge");
        merged_json = rlnc_sweep::emit::to_json(&merged);
    });
    assert_eq!(
        merged_json, full_json,
        "4-shard merge must be byte-identical to the unsharded sweep"
    );
    let counters = obs_counters(|| {
        let shards: Vec<_> = (1..=SHARDS).map(|i| exec.run_shard(&spec, i, SHARDS)).collect();
        let _ = rlnc_sweep::emit::merge_runs(&shards).expect("shards merge");
    });
    BenchGroup {
        name: "shard-overhead".into(),
        n: full.records.len(),
        trials: SHARDS,
        legacy_ns,
        engine_ns,
        legacy_allocs: None,
        engine_allocs: None,
        working_set_bytes: full_json.len() as u64,
        counters,
    }
}

/// The `pool-warmup` group (new with the persistent pool): R identical
/// parallel regions over the same configuration slice. Legacy replicates
/// the pre-pool stub's dispatch — materialize a reference vector, spawn
/// one scoped OS thread per chunk (fresh threads every region, none when
/// the process runs single-threaded), collect per-chunk result vectors —
/// while the engine side routes the same regions through
/// [`rlnc_par::sweep::sweep`] and the resident work-stealing pool. Both
/// sides fold the same checksum, asserted equal, so the ratio is pure
/// dispatch overhead: thread spawns and index materialization, amortized
/// across regions. `n` is the region width, `trials` the region count,
/// and the working set is the configuration slice.
fn pool_warmup(quick: bool) -> BenchGroup {
    let (n, regions, reps) = if quick { (256usize, 100u64, 3) } else { (1_024, 400u64, 5) };
    let items: Vec<u64> = (0..n as u64).collect();
    let f = |x: u64| x.wrapping_mul(2).wrapping_add(1);
    let threads = rlnc_par::pool::thread_count();

    let legacy_pass = || {
        let mut acc = 0u64;
        for _ in 0..regions {
            let configs = items.clone();
            let refs: Vec<&u64> = configs.iter().collect();
            let out: Vec<u64> = if threads > 1 {
                let chunk_size = refs.len().div_ceil(threads);
                let mut results: Vec<Vec<u64>> = Vec::new();
                std::thread::scope(|s| {
                    let handles: Vec<_> = refs
                        .chunks(chunk_size)
                        .map(|chunk| s.spawn(move || chunk.iter().map(|&&x| f(x)).collect::<Vec<u64>>()))
                        .collect();
                    results = handles.into_iter().map(|h| h.join().unwrap()).collect();
                });
                results.into_iter().flatten().collect()
            } else {
                refs.iter().map(|&&x| f(x)).collect()
            };
            acc = acc.wrapping_add(out.iter().sum::<u64>());
        }
        acc
    };
    let engine_pass = || {
        let mut acc = 0u64;
        for _ in 0..regions {
            let out = rlnc_par::sweep::sweep(items.clone(), |&x| f(x));
            acc = acc.wrapping_add(out.iter().sum::<u64>());
        }
        acc
    };
    assert_eq!(
        legacy_pass(),
        engine_pass(),
        "pool dispatch must fold the same checksum as scoped-thread dispatch"
    );
    let legacy_ns = best_of(reps, || {
        assert!(legacy_pass() > 0);
    });
    let engine_ns = best_of(reps, || {
        assert!(engine_pass() > 0);
    });
    let counters = obs_counters(|| {
        assert!(engine_pass() > 0);
    });
    BenchGroup {
        name: "pool-warmup".into(),
        n,
        trials: regions,
        legacy_ns,
        engine_ns,
        legacy_allocs: None,
        engine_allocs: None,
        working_set_bytes: (items.len() * std::mem::size_of::<u64>()) as u64,
        counters,
    }
}

/// The `verdict-soa` group (new with the SoA label lanes): the proper
/// 3-coloring verdict kernel over every cached decision view of a
/// constructed ring configuration. Legacy hand-inlines the pre-SoA body —
/// byte-level [`Label`] comparisons through `view.output()` with early
/// exit — and the engine side is the current
/// [`LclLanguage::is_bad_view`], which takes the branchless packed-`u64`
/// lane when the view's SoA cache is valid (always, on this workload).
/// Bad-ball counts are asserted identical. Unlike `lcl-verdicts-*`, both
/// sides here are allocation-free view-native passes, so the ratio
/// isolates the SoA layout itself rather than the `IoConfig` rebuild.
fn verdict_soa(quick: bool) -> BenchGroup {
    let (n, passes, reps) = if quick { (96usize, 50u64, 3) } else { (192, 300u64, 5) };
    let colors = 3u64;
    let lang = ProperColoring::new(colors);
    let graph = cycle(n);
    let input = Labeling::empty(n);
    let ids = IdAssignment::consecutive(&graph);
    let instance = Instance::new(&graph, &input, &ids);
    let out = Simulator::sequential().run_randomized(
        &RandomColoring::new(colors),
        &instance,
        rlnc_par::SeedSequence::new(0).child(0),
    );
    let io = IoConfig::new(&graph, &input, &out);
    let views = View::collect_all_io(&io, &ids, 1);
    assert!(
        views.iter().all(|v| v.soa_outputs().is_some()),
        "small color labels must always populate the SoA lane"
    );

    let legacy_pass = || {
        let mut bad = 0usize;
        for view in &views {
            let mine = view.output(view.center_local());
            let c = mine.as_u64();
            let is_bad =
                c < 1 || c > colors || view.center_neighbor_indices().any(|i| view.output(i) == mine);
            bad += usize::from(is_bad);
        }
        bad
    };
    let engine_pass = || {
        let mut bad = 0usize;
        for view in &views {
            bad += usize::from(lang.is_bad_view(view));
        }
        bad
    };
    assert_eq!(
        legacy_pass(),
        engine_pass(),
        "SoA verdicts must be bit-identical to the byte-path verdicts"
    );
    let legacy_ns = best_of(reps, || {
        let mut total = 0usize;
        for _ in 0..passes {
            total += legacy_pass();
        }
        assert!(total < usize::MAX);
    });
    let engine_ns = best_of(reps, || {
        let mut total = 0usize;
        for _ in 0..passes {
            total += engine_pass();
        }
        assert!(total < usize::MAX);
    });
    let working_set_bytes: u64 = views.iter().map(|v| v.memory_bytes()).sum();
    let counters = obs_counters(|| {
        let _ = engine_pass();
    });
    BenchGroup {
        name: "verdict-soa".into(),
        n,
        trials: passes,
        legacy_ns,
        engine_ns,
        legacy_allocs: None,
        engine_allocs: None,
        working_set_bytes,
        counters,
    }
}

/// One always-accepting lane-space verdict decider: compare the center's
/// packed output key against each neighbor's, plus a `j`-shifted probe
/// that can never match a valid color key. Data-dependent (the compiler
/// cannot fold the walk away) yet guaranteed to accept on a proper
/// coloring, so every trial walks the full view sweep on both sides.
fn scan_decider(j: u64) -> FnRandomizedDecider<impl Fn(&View, &Coins) -> bool + Sync> {
    FnRandomizedDecider::new(1, "scan-verdict", move |view: &View, _coins: &Coins| {
        let keys = view
            .soa_outputs()
            .expect("radius-1 decision plans carry the packed output lane");
        let mine = keys[view.center_local()];
        let mut clash = 0u64;
        for i in view.center_neighbor_indices() {
            clash |= u64::from(keys[i] == mine);
            clash |= u64::from(keys[i] == mine.wrapping_add(7 + j));
        }
        clash == 0
    })
}

/// The batched K-decider scan (new with the arena lanes and the
/// `acceptance_many` kernel): K = 16 lane-space verdict deciders over a
/// properly 3-colored ring whose decision plan exceeds the last-level
/// cache. Legacy = K sequential [`BatchRunner::acceptance`] calls — the
/// per-algorithm loop the Claim-2 scan used to run — each trial
/// re-streaming every cached view and its lane window from memory;
/// engine = one [`BatchRunner::acceptance_many`] pass with the decider
/// loop innermost, so each view is loaded once per trial and serves all
/// K verdicts while hot. Verdict parity (successes and p-hat per
/// decider) is asserted on the way; both sides run sequentially so the
/// ratio isolates the view-walk amortization, not thread counts.
fn multi_algo_scan(quick: bool) -> BenchGroup {
    let (n, reps) = if quick { (3usize << 14, 3) } else { (3 << 19, 3) };
    let k = 16u64;
    let trials = 2u64;
    let graph = cycle(n);
    let input = Labeling::from_fn(&graph, |v| Label::from_u64(u64::from(v.0) % 5));
    // `n` is a multiple of 3, so color-by-index is a proper 3-coloring
    // (colors 1..=3) and every decider accepts every view.
    let output = Labeling::from_fn(&graph, |v| Label::from_u64(u64::from(v.0) % 3 + 1));
    let ids = IdAssignment::consecutive(&graph);
    let io = IoConfig::new(&graph, &input, &output);
    let plan = ExecutionPlan::for_io(&io, &ids, 1);
    let deciders: Vec<_> = (0..k).map(scan_decider).collect();
    let refs: Vec<&dyn RandomizedDecider> =
        deciders.iter().map(|d| d as &dyn RandomizedDecider).collect();
    let runner = BatchRunner::sequential();
    let batched = runner.acceptance_many(&refs, &plan, trials, 0xC2);
    for (decider, estimate) in refs.iter().zip(&batched) {
        let solo = runner.acceptance(*decider, &plan, trials, 0xC2);
        assert_eq!(
            (estimate.successes, estimate.p_hat),
            (solo.successes, solo.p_hat),
            "the batched scan must be bit-identical to the per-decider loop"
        );
        assert_eq!(estimate.successes, trials, "scan deciders accept by construction");
    }
    let legacy_ns = best_of(reps, || {
        let mut successes = 0u64;
        for decider in &refs {
            successes += runner.acceptance(*decider, &plan, trials, 0xC2).successes;
        }
        assert_eq!(successes, k * trials);
    });
    let engine_ns = best_of(reps, || {
        let estimates = runner.acceptance_many(&refs, &plan, trials, 0xC2);
        assert_eq!(estimates.len(), k as usize);
    });
    let counters = obs_counters(|| {
        let _ = runner.acceptance_many(&refs, &plan, trials, 0xC2);
    });
    BenchGroup {
        name: "multi-algo-scan".into(),
        n,
        trials: k,
        legacy_ns,
        engine_ns,
        legacy_allocs: None,
        engine_allocs: None,
        working_set_bytes: plan.working_set_bytes(),
        counters,
    }
}

/// The `langs` groups: one per LCL case in the registry.
fn lcl_verdict_groups(quick: bool) -> Vec<BenchGroup> {
    rlnc_langs::registry::CaseRegistry::builtin()
        .iter()
        .filter_map(|case| lcl_verdict_group(&case, quick))
        .collect()
}

/// Runs all engine-vs-legacy measurements.
pub fn run(quick: bool) -> BenchExport {
    let mut groups = vec![
        ring_monte_carlo(quick),
        resilient_decider(quick),
        ball_extraction(quick),
        boosted_union_acceptance(quick),
        glued_acceptance(quick),
        shard_overhead(quick),
        pool_warmup(quick),
        verdict_soa(quick),
        multi_algo_scan(quick),
    ];
    groups.extend(lcl_verdict_groups(quick));
    #[cfg(feature = "count-alloc")]
    let peak_alloc_bytes = Some(crate::alloc_counter::peak_bytes() as u64);
    #[cfg(not(feature = "count-alloc"))]
    let peak_alloc_bytes = None;
    BenchExport {
        quick,
        groups,
        peak_alloc_bytes,
    }
}

/// Serializes an export as deterministic-schema JSON (hand-rolled; the
/// vendored serde is a no-op stub — same convention as `rlnc-sweep::emit`).
///
/// Every field is always present: allocation fields and
/// `peak_alloc_bytes` are an explicit `null` when the export was produced
/// without the `count-alloc` feature, so downstream parsers (and
/// `bench-gate`) never have to guess whether a column was measured or
/// merely omitted.
pub fn to_json(export: &BenchExport) -> String {
    let opt_u64 = |v: Option<u64>| v.map_or_else(|| "null".to_string(), |x| x.to_string());
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"rlnc-bench-export-v2\",\n");
    out.push_str("  \"bench\": \"engine-vs-legacy\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if export.quick { "quick" } else { "full" }
    ));
    out.push_str(&format!(
        "  \"peak_alloc_bytes\": {},\n",
        opt_u64(export.peak_alloc_bytes)
    ));
    out.push_str("  \"groups\": [\n");
    for (i, g) in export.groups.iter().enumerate() {
        let mut counters = String::from("{");
        for (j, (name, value)) in g.counters.iter().enumerate() {
            if j > 0 {
                counters.push(',');
            }
            counters.push_str(&format!("\"{name}\":{value}"));
        }
        counters.push('}');
        out.push_str(&format!(
            concat!(
                "    {{\"name\":\"{}\",\"n\":{},\"trials\":{},",
                "\"legacy_ns\":{},\"engine_ns\":{},\"speedup\":{:.2},",
                "\"working_set_bytes\":{},\"counters\":{},",
                "\"legacy_allocs\":{},\"engine_allocs\":{}}}{}\n"
            ),
            g.name,
            g.n,
            g.trials,
            g.legacy_ns,
            g.engine_ns,
            g.speedup(),
            g.working_set_bytes,
            counters,
            opt_u64(g.legacy_allocs),
            opt_u64(g.engine_allocs),
            if i + 1 < export.groups.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses a `bench-export` JSON document back into a [`BenchExport`].
///
/// Accepts both the current `rlnc-bench-export-v2` schema and the v1
/// files committed by earlier PRs (`BENCH_4.json`, `BENCH_5.json`), where
/// `working_set_bytes`/`counters` are absent (parsed as `0`/empty) and
/// allocation fields are omitted rather than `null`. This is what
/// `bench-gate` loads its baseline through.
pub fn from_json(text: &str) -> Result<BenchExport, String> {
    use rlnc_sweep::emit::json;

    let opt_u64 = |fields: &[(String, json::Value)],
                   key: &str,
                   what: &str|
     -> Result<Option<u64>, String> {
        match fields.iter().find(|(k, _)| k == key).map(|(_, v)| v) {
            None | Some(json::Value::Null) => Ok(None),
            Some(v) => v.as_u64(what).map(Some),
        }
    };

    let value = json::parse(text)?;
    let obj = value.as_object("top level")?;
    let schema = json::get(obj, "schema")?.as_string("schema")?;
    if schema != "rlnc-bench-export-v2" && schema != "rlnc-bench-export-v1" {
        return Err(format!("unsupported bench schema '{schema}'"));
    }
    let quick = match json::get(obj, "mode")?.as_string("mode")?.as_str() {
        "quick" => true,
        "full" => false,
        other => return Err(format!("mode: expected quick|full, got '{other}'")),
    };
    let peak_alloc_bytes = opt_u64(obj, "peak_alloc_bytes", "peak_alloc_bytes")?;
    let mut groups = Vec::new();
    for (i, gv) in json::get(obj, "groups")?.as_array("groups")?.iter().enumerate() {
        let g = gv.as_object(&format!("groups[{i}]"))?;
        let mut counters = Vec::new();
        if let Some((_, cv)) = g.iter().find(|(k, _)| k == "counters") {
            for (name, v) in cv.as_object("counters")? {
                counters.push((name.clone(), v.as_u64(&format!("counters.{name}"))?));
            }
        }
        groups.push(BenchGroup {
            name: json::get(g, "name")?.as_string("name")?,
            n: json::get(g, "n")?.as_u64("n")? as usize,
            trials: json::get(g, "trials")?.as_u64("trials")?,
            legacy_ns: u128::from(json::get(g, "legacy_ns")?.as_u64("legacy_ns")?),
            engine_ns: u128::from(json::get(g, "engine_ns")?.as_u64("engine_ns")?),
            legacy_allocs: opt_u64(g, "legacy_allocs", "legacy_allocs")?,
            engine_allocs: opt_u64(g, "engine_allocs", "engine_allocs")?,
            working_set_bytes: opt_u64(g, "working_set_bytes", "working_set_bytes")?
                .unwrap_or(0),
            counters,
        });
    }
    Ok(BenchExport {
        quick,
        groups,
        peak_alloc_bytes,
    })
}

/// Renders the human-readable summary printed alongside the export.
pub fn to_summary(export: &BenchExport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "engine-vs-legacy ({} mode)\n",
        if export.quick { "quick" } else { "full" }
    ));
    for g in &export.groups {
        let allocs = match (g.legacy_allocs, g.engine_allocs) {
            (Some(l), Some(e)) => format!("  allocs {l} -> {e}"),
            _ => String::new(),
        };
        out.push_str(&format!(
            "  {:<28} n={:<6} legacy {:>12} ns  engine {:>12} ns  speedup {:>6.2}x  ws {:>9} B{}\n",
            g.name,
            g.n,
            g.legacy_ns,
            g.engine_ns,
            g.speedup(),
            g.working_set_bytes,
            allocs
        ));
    }
    if let Some(peak) = export.peak_alloc_bytes {
        out.push_str(&format!("  peak live heap: {peak} bytes\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_export_measures_and_serializes() {
        let export = run(true);
        // 9 engine groups plus one lcl-verdicts group per LCL case.
        let lcl_cases = rlnc_langs::registry::CaseRegistry::builtin()
            .iter()
            .filter(|c| c.lcl.is_some())
            .count();
        assert_eq!(export.groups.len(), 9 + lcl_cases);
        for group in &export.groups {
            assert!(group.legacy_ns > 0 && group.engine_ns > 0);
            assert!(group.speedup() > 0.0);
        }
        let json = to_json(&export);
        assert!(json.contains("\"schema\": \"rlnc-bench-export-v2\""));
        assert!(json.contains("\"mode\": \"quick\""));
        assert!(json.contains("ring-monte-carlo"));
        assert!(json.contains("boosted-union-acceptance"));
        assert!(json.contains("glued-acceptance"));
        assert!(json.contains("pool-warmup"));
        assert!(json.contains("verdict-soa"));
        assert!(json.contains("multi-algo-scan"));
        assert!(json.contains("lcl-verdicts-coloring3"));
        assert!(json.contains("lcl-verdicts-matching"));
        assert!(json.ends_with("}\n"));
        let summary = to_summary(&export);
        assert!(summary.contains("speedup"));
        assert!(summary.contains("lcl-verdicts-min-dominating-set"));
        // Alloc fields are always present; they are null exactly when the
        // counting allocator is compiled out.
        let counted = cfg!(feature = "count-alloc");
        assert!(json.contains("\"legacy_allocs\":"));
        // Only the lcl-verdicts groups measure per-pass allocations, so
        // nulls appear in both builds; *measured* values only when counted.
        assert_eq!(
            export.groups.iter().any(|g| g.legacy_allocs.is_some()),
            counted
        );
        assert_eq!(json.contains("\"peak_alloc_bytes\": null"), !counted);
        assert_eq!(export.peak_alloc_bytes.is_some(), counted);
        // Enrichment: every group carries a working-set proxy, and the
        // engine groups report what work their pass did.
        for group in &export.groups {
            assert!(
                group.working_set_bytes > 0,
                "group '{}' has no working-set proxy",
                group.name
            );
        }
        let ring = export.groups.iter().find(|g| g.name == "ring-monte-carlo").unwrap();
        assert!(
            ring.counters.iter().any(|(name, v)| name == "engine.batch.trials" && *v > 0),
            "ring group counters: {:?}",
            ring.counters
        );
        assert!(ring.counters.windows(2).all(|w| w[0].0 < w[1].0), "counters sorted");
    }

    #[test]
    fn json_round_trips_through_from_json() {
        // A hand-built export exercises both null and present optionals
        // without paying for a measurement run.
        let export = BenchExport {
            quick: false,
            peak_alloc_bytes: Some(123_456),
            groups: vec![
                BenchGroup {
                    name: "demo-a".into(),
                    n: 96,
                    trials: 500,
                    legacy_ns: 1_000_000,
                    engine_ns: 250_000,
                    legacy_allocs: Some(4_200),
                    engine_allocs: Some(0),
                    working_set_bytes: 8_192,
                    counters: vec![
                        ("engine.batch.trials".into(), 500),
                        ("graph.arena.balls".into(), 96),
                    ],
                },
                BenchGroup {
                    name: "demo-b".into(),
                    n: 16,
                    trials: 1,
                    legacy_ns: 10,
                    engine_ns: 7,
                    legacy_allocs: None,
                    engine_allocs: None,
                    working_set_bytes: 640,
                    counters: Vec::new(),
                },
            ],
        };
        let back = from_json(&to_json(&export)).expect("parse back");
        assert_eq!(back, export);
        // And the emit of the parse is byte-identical (full round trip).
        assert_eq!(to_json(&back), to_json(&export));
    }

    #[test]
    fn from_json_accepts_v1_exports_without_enrichment() {
        // The shape BENCH_4.json / BENCH_5.json were committed in.
        let v1 = concat!(
            "{\n",
            "  \"schema\": \"rlnc-bench-export-v1\",\n",
            "  \"bench\": \"engine-vs-legacy\",\n",
            "  \"mode\": \"full\",\n",
            "  \"groups\": [\n",
            "    {\"name\":\"ring-monte-carlo\",\"n\":256,\"trials\":1000,",
            "\"legacy_ns\":5000,\"engine_ns\":1000,\"speedup\":5.00}\n",
            "  ]\n}\n"
        );
        let export = from_json(v1).expect("v1 parses");
        assert!(!export.quick);
        assert_eq!(export.peak_alloc_bytes, None);
        assert_eq!(export.groups.len(), 1);
        assert_eq!(export.groups[0].legacy_allocs, None);
        assert_eq!(export.groups[0].working_set_bytes, 0);
        assert!(export.groups[0].counters.is_empty());
        assert!(from_json("{\"schema\":\"bogus\"}").is_err());
    }
}

//! `bench-export` — the recorded perf trajectory of the execution engine.
//!
//! Measures the engine-vs-legacy hot paths with plain wall-clock timing
//! (warm-up pass + best-of-N repetitions) and emits a deterministic-schema
//! JSON document (`BENCH_<pr>.json`). The *values* are machine-dependent —
//! that is the point: committing one export per PR starts a perf
//! trajectory the project can read trends from, and CI uploads a fresh
//! export per run as an artifact.
//!
//! The three groups mirror the `simulator_perf` criterion benchmarks:
//!
//! * `ring-monte-carlo` — the headline: K Monte-Carlo trials of the
//!   zero-round random 3-coloring on a consecutive-identity ring,
//!   legacy (re-collect every view each trial) vs engine
//!   ([`ExecutionPlan`] once + [`BatchRunner`]). Both sides run the trial
//!   loop sequentially so the ratio isolates the plan amortization, not
//!   thread counts.
//! * `resilient-decider` — the Corollary-1 decider on a planted-conflict
//!   cycle: legacy `acceptance_probability` (radius-1 views re-collected
//!   per node per trial) vs the engine's cached decision plan.
//! * `ball-extraction` — the substrate: per-node `Ball::extract` vs the
//!   shared-scratch [`BallArena`] pass.
//!
//! The derand groups (new with the pipeline refactor) measure the two
//! Theorem-1 kernels against their legacy `rlnc_core::derand` reference
//! implementations, asserting bit-identical success counts on the way:
//!
//! * `boosted-union-acceptance` — Claim 3's decide-over-union: legacy
//!   `disjoint_union_acceptance` (per-trial view collection on the union)
//!   vs the pipeline's [`UnionPlan`] kernel.
//! * `glued-acceptance` — Claims 4–5's far-from-every-anchor event: legacy
//!   `GluingExperiment::acceptance_far_from_all_anchors` (per-trial,
//!   per-anchor BFS + per-node view collection) vs the
//!   [`GluedPlan`](rlnc_engine::GluedPlan) kernel with its precomputed
//!   participation set.

use rlnc_core::decision::acceptance_probability;
use rlnc_core::derand::boosting::disjoint_union_acceptance;
use rlnc_core::derand::gluing::{anchor_candidates, GluingExperiment};
use rlnc_core::derand::hard_instances::consecutive_cycle_candidates;
use rlnc_core::prelude::*;
use rlnc_derand::{DerandPipeline, OneSidedLclDecider, PipelineParams};
use rlnc_engine::{BatchRunner, ExecutionPlan, UnionPlan};
use rlnc_graph::arena::BallArena;
use rlnc_graph::ball::Ball;
use rlnc_graph::generators::cycle;
use rlnc_graph::{IdAssignment, NodeId};
use rlnc_langs::coloring::ProperColoring;
use rlnc_langs::random_coloring::RandomColoring;
use rlnc_par::trials::MonteCarlo;
use rlnc_sweep::workload::planted_cycle_configuration;
use std::time::Instant;

/// One engine-vs-legacy measurement.
#[derive(Debug, Clone)]
pub struct BenchGroup {
    /// Group name (stable across PRs, so trajectories can be joined).
    pub name: &'static str,
    /// Instance size.
    pub n: usize,
    /// Trials (or repetitions) measured per pass.
    pub trials: u64,
    /// Best-of-N wall-clock nanoseconds for the legacy path.
    pub legacy_ns: u128,
    /// Best-of-N wall-clock nanoseconds for the engine path.
    pub engine_ns: u128,
}

impl BenchGroup {
    /// Legacy-over-engine speedup factor.
    pub fn speedup(&self) -> f64 {
        self.legacy_ns as f64 / self.engine_ns.max(1) as f64
    }
}

/// A full export: the groups plus the mode they ran at.
#[derive(Debug, Clone)]
pub struct BenchExport {
    /// `true` for the CI-friendly quick mode (smaller sizes, fewer reps).
    pub quick: bool,
    /// The measurements.
    pub groups: Vec<BenchGroup>,
}

/// Best-of-`reps` wall time of `f`, with one untimed warm-up pass.
fn best_of<F: FnMut()>(reps: u32, mut f: F) -> u128 {
    f();
    let mut best = u128::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos());
    }
    best.max(1)
}

fn ring_monte_carlo(quick: bool) -> BenchGroup {
    let (n, trials, reps) = if quick { (256, 200u64, 3) } else { (256, 1_000u64, 5) };
    let graph = cycle(n);
    let input = Labeling::empty(n);
    let ids = IdAssignment::consecutive(&graph);
    let instance = Instance::new(&graph, &input, &ids);
    let algo = RandomColoring::new(3);
    let success = |out: &Labeling| out.get(NodeId(0)).as_u64() == 1;

    let legacy_ns = best_of(reps, || {
        let est = MonteCarlo::new(trials).sequential().with_seed(7).estimate(|seed| {
            let out = Simulator::sequential().run_randomized(&algo, &instance, seed);
            success(&out)
        });
        assert!(est.p_hat >= 0.0);
    });
    let engine_ns = best_of(reps, || {
        let plan = ExecutionPlan::for_instance(&instance, 0);
        let est = BatchRunner::sequential().estimate(&algo, &plan, trials, 7, success);
        assert!(est.p_hat >= 0.0);
    });
    BenchGroup {
        name: "ring-monte-carlo",
        n,
        trials,
        legacy_ns,
        engine_ns,
    }
}

fn resilient_decider(quick: bool) -> BenchGroup {
    let (n, trials, reps) = if quick { (96, 500u64, 3) } else { (96, 2_000u64, 5) };
    let (graph, input, output) = planted_cycle_configuration(n, 2);
    let ids = IdAssignment::consecutive(&graph);
    let io = IoConfig::new(&graph, &input, &output);
    let decider = ResilientDecider::new(
        rlnc_langs::coloring::ProperColoring::new(2),
        4,
    );

    let legacy_ns = best_of(reps, || {
        let est = acceptance_probability(&decider, &io, &ids, trials, 11);
        assert!(est.p_hat >= 0.0);
    });
    let engine_ns = best_of(reps, || {
        let plan = ExecutionPlan::for_io(&io, &ids, 1);
        let est = BatchRunner::sequential().acceptance(&decider, &plan, trials, 11);
        assert!(est.p_hat >= 0.0);
    });
    BenchGroup {
        name: "resilient-decider",
        n,
        trials,
        legacy_ns,
        engine_ns,
    }
}

fn ball_extraction(quick: bool) -> BenchGroup {
    let (n, radius, reps) = if quick { (1_024, 8u32, 3) } else { (4_096, 8u32, 5) };
    let graph = cycle(n);
    let legacy_ns = best_of(reps, || {
        let mut total = 0usize;
        for v in graph.nodes() {
            total += Ball::extract(&graph, v, radius).len();
        }
        assert_eq!(total, n * (2 * radius as usize + 1));
    });
    let engine_ns = best_of(reps, || {
        let arena = BallArena::extract_all(&graph, radius);
        assert_eq!(arena.total_members(), n * (2 * radius as usize + 1));
    });
    BenchGroup {
        name: "ball-extraction-r8",
        n,
        trials: 1,
        legacy_ns,
        engine_ns,
    }
}

fn boosted_union_acceptance(quick: bool) -> BenchGroup {
    let (cycle_size, nu, trials, reps) = if quick {
        (12usize, 6usize, 300u64, 3)
    } else {
        (12, 6, 1_500, 5)
    };
    let hard = consecutive_cycle_candidates([cycle_size]);
    let constructor = RandomColoring::new(3);
    let language = ProperColoring::new(3);
    let decider = OneSidedLclDecider::new(language, 0.75);

    let mut legacy_successes = 0u64;
    let legacy_ns = best_of(reps, || {
        let est = disjoint_union_acceptance(&constructor, &decider, &hard, nu, trials, 7);
        legacy_successes = est.successes;
    });
    let mut engine_successes = 0u64;
    let engine_ns = best_of(reps, || {
        let parts: Vec<_> = hard.iter().map(|h| (&h.graph, &h.input, &h.ids)).collect();
        let union = UnionPlan::for_parts(&parts, nu, 0, 1);
        let est = BatchRunner::new().union_acceptance(&union, &constructor, &decider, trials, 7);
        engine_successes = est.successes;
    });
    assert_eq!(
        legacy_successes, engine_successes,
        "union kernel must be bit-identical to the legacy estimator"
    );
    BenchGroup {
        name: "boosted-union-acceptance",
        n: cycle_size * nu,
        trials,
        legacy_ns,
        engine_ns,
    }
}

fn glued_acceptance(quick: bool) -> BenchGroup {
    let (cycle_size, nu, trials, reps) = if quick {
        (16usize, 4usize, 200u64, 3)
    } else {
        (16, 4, 1_000, 5)
    };
    let constructor = RandomColoring::new(3);
    let language = ProperColoring::new(3);
    let decider = OneSidedLclDecider::new(language, 0.75);
    let params = PipelineParams { r: 0.9, p: 0.75, t: 0, t_prime: 1 };
    let build_parts = || consecutive_cycle_candidates(vec![cycle_size; nu]);
    let anchors_of = |parts: &[rlnc_core::derand::HardInstance]| -> Vec<NodeId> {
        parts.iter().map(|h| anchor_candidates(h, 0, 1, 0.75)[0]).collect()
    };

    let mut legacy_successes = 0u64;
    let legacy_ns = best_of(reps, || {
        let parts = build_parts();
        let anchors = anchors_of(&parts);
        let experiment = GluingExperiment::build(parts, anchors, 0, 1);
        let est = experiment.acceptance_far_from_all_anchors(&constructor, &decider, trials, 11);
        legacy_successes = est.successes;
    });
    let pipeline = DerandPipeline::new(&constructor, &decider, &language, params);
    let mut engine_successes = 0u64;
    let engine_ns = best_of(reps, || {
        let parts = build_parts();
        let anchors = anchors_of(&parts);
        let stage = pipeline.glued_stage(parts, anchors);
        let est = pipeline.glued_far_acceptance(&stage, trials, 11);
        engine_successes = est.successes;
    });
    assert_eq!(
        legacy_successes, engine_successes,
        "glued kernel must be bit-identical to the legacy estimator"
    );
    BenchGroup {
        name: "glued-acceptance",
        n: cycle_size * nu + 2 * nu,
        trials,
        legacy_ns,
        engine_ns,
    }
}

/// Runs all engine-vs-legacy measurements.
pub fn run(quick: bool) -> BenchExport {
    BenchExport {
        quick,
        groups: vec![
            ring_monte_carlo(quick),
            resilient_decider(quick),
            ball_extraction(quick),
            boosted_union_acceptance(quick),
            glued_acceptance(quick),
        ],
    }
}

/// Serializes an export as deterministic-schema JSON (hand-rolled; the
/// vendored serde is a no-op stub — same convention as `rlnc-sweep::emit`).
pub fn to_json(export: &BenchExport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"rlnc-bench-export-v1\",\n");
    out.push_str("  \"bench\": \"engine-vs-legacy\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if export.quick { "quick" } else { "full" }
    ));
    out.push_str("  \"groups\": [\n");
    for (i, g) in export.groups.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"name\":\"{}\",\"n\":{},\"trials\":{},",
                "\"legacy_ns\":{},\"engine_ns\":{},\"speedup\":{:.2}}}{}\n"
            ),
            g.name,
            g.n,
            g.trials,
            g.legacy_ns,
            g.engine_ns,
            g.speedup(),
            if i + 1 < export.groups.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the human-readable summary printed alongside the export.
pub fn to_summary(export: &BenchExport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "engine-vs-legacy ({} mode)\n",
        if export.quick { "quick" } else { "full" }
    ));
    for g in &export.groups {
        out.push_str(&format!(
            "  {:<20} n={:<6} legacy {:>12} ns  engine {:>12} ns  speedup {:>6.2}x\n",
            g.name,
            g.n,
            g.legacy_ns,
            g.engine_ns,
            g.speedup()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_export_measures_and_serializes() {
        let export = run(true);
        assert_eq!(export.groups.len(), 5);
        for group in &export.groups {
            assert!(group.legacy_ns > 0 && group.engine_ns > 0);
            assert!(group.speedup() > 0.0);
        }
        let json = to_json(&export);
        assert!(json.contains("\"schema\": \"rlnc-bench-export-v1\""));
        assert!(json.contains("\"mode\": \"quick\""));
        assert!(json.contains("ring-monte-carlo"));
        assert!(json.contains("boosted-union-acceptance"));
        assert!(json.contains("glued-acceptance"));
        assert!(json.ends_with("}\n"));
        let summary = to_summary(&export);
        assert!(summary.contains("speedup"));
    }
}

//! # rlnc-experiments — the experiment harness
//!
//! The paper contains no numbered tables or figures; its "evaluation" is a
//! chain of quantitative claims (decider guarantees, probability bounds,
//! growth rates, decay rates). Each module here regenerates one of those
//! claims as a table or series, following the experiment index in
//! `DESIGN.md` (§5):
//!
//! | Id | Claim |
//! |----|-------|
//! | E1 | `amos` golden-ratio decider guarantee ≈ 0.618 (§2.3.1) |
//! | E2 | random 3-coloring solves the ε-slack relaxation (§1.1) |
//! | E3 | Cole–Vishkin 3-colors rings in `O(log* n)` rounds (§1.1) |
//! | E4 | order-invariant algorithms are monochromatic on consecutive-ID cycles (§4) |
//! | E5 | the `L_f` decider of Corollary 1 has guarantee `> 1/2` |
//! | E6 | disjoint-union boosting: acceptance ≤ `(1−βp)^ν` (Claim 3) |
//! | E7 | gluing: connected, degree ≤ k, acceptance decays with ν′ (Theorem 1) |
//! | E8 | Ramsey lift: order-invariance + agreement on consistent ID sets (Claim 1 / Appendix A) |
//! | E9 | ε-slack: randomization helps, constant-round deterministic algorithms do not (§5) |
//! | E10 | message-passing execution ≡ ball-view execution (§2.1) |
//!
//! Every experiment returns an [`ExperimentReport`] holding a rendered
//! table plus a list of [`Finding`]s (paper claim vs measured value), which
//! the `rlnc-experiments` binary assembles into `EXPERIMENTS.md`.

// The counting allocator (and its `unsafe impl GlobalAlloc`) moved to
// `rlnc-obs`; this crate is pure-safe again and re-exports the shim.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "count-alloc")]
pub mod alloc_counter;
pub mod bench_export;
pub mod bench_gate;
pub mod e01_amos;
pub mod e02_slack;
pub mod e03_cole_vishkin;
pub mod e04_order_invariant;
pub mod e05_resilient_decider;
pub mod e06_boosting;
pub mod e07_gluing;
pub mod e08_ramsey;
pub mod e09_slack_vs_det;
pub mod e10_equivalence;
pub mod report;
pub mod status;
pub mod trace;

pub use report::{ExperimentReport, Finding, Scale, Table};

/// One entry of the [`EXPERIMENTS`] runner table: identifier, one-line
/// description, and the seeded runner.
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    /// Canonical lower-case identifier (`"e1"`, ..., `"e10"`).
    pub id: &'static str,
    /// One-line description (shown by `rlnc-experiments --list`).
    pub description: &'static str,
    /// The runner; the seed perturbs every random stream (`0` is the
    /// historical default).
    pub run: fn(Scale, u64) -> ExperimentReport,
}

/// The experiment runners in index order — the single source of truth for
/// which experiments exist (experiment `eN` is `EXPERIMENTS[N - 1]`).
pub const EXPERIMENTS: [Experiment; 10] = [
    Experiment {
        id: "e1",
        description: "amos golden-ratio zero-round decider (§2.3.1)",
        run: e01_amos::run_seeded,
    },
    Experiment {
        id: "e2",
        description: "ε-slack relaxation via the zero-round random coloring (§1.1)",
        run: e02_slack::run_seeded,
    },
    Experiment {
        id: "e3",
        description: "Cole–Vishkin 3-colors oriented rings in O(log* n) rounds (§1.1)",
        run: e03_cole_vishkin::run_seeded,
    },
    Experiment {
        id: "e4",
        description: "order-invariant algorithms are monochromatic on consecutive-ID cycles (§4)",
        run: e04_order_invariant::run_seeded,
    },
    Experiment {
        id: "e5",
        description: "the f-resilient decider of Corollary 1 has guarantee > 1/2 (§4)",
        run: e05_resilient_decider::run_seeded,
    },
    Experiment {
        id: "e6",
        description: "disjoint-union boosting: acceptance ≤ (1−βp)^ν (Claim 3)",
        run: e06_boosting::run_seeded,
    },
    Experiment {
        id: "e7",
        description: "gluing: connected, degree ≤ k, acceptance decays with ν′ (Theorem 1)",
        run: e07_gluing::run_seeded,
    },
    Experiment {
        id: "e8",
        description: "Ramsey lift: consistent ID sets force order-invariance (Claim 1)",
        run: e08_ramsey::run_seeded,
    },
    Experiment {
        id: "e9",
        description: "ε-slack: randomization helps, constant-round determinism does not (§5)",
        run: e09_slack_vs_det::run_seeded,
    },
    Experiment {
        id: "e10",
        description: "message-passing execution ≡ ball-view execution (§2.1)",
        run: e10_equivalence::run_seeded,
    },
];

/// Runs every experiment at the given scale, in index order, with the
/// default seed.
pub fn run_all(scale: Scale) -> Vec<ExperimentReport> {
    run_all_seeded(scale, 0)
}

/// Runs every experiment at the given scale and master seed, in index
/// order.
pub fn run_all_seeded(scale: Scale, seed: u64) -> Vec<ExperimentReport> {
    EXPERIMENTS.iter().map(|e| (e.run)(scale, seed)).collect()
}

/// Parses an experiment identifier (`"e1"`, `"E07"`, `"7"`) into its
/// number, returning `None` for ids that name no experiment.
pub fn parse_experiment_id(id: &str) -> Option<usize> {
    let normalized = id.trim().to_ascii_lowercase();
    let number: usize = normalized.trim_start_matches('e').parse().ok()?;
    (1..=EXPERIMENTS.len()).contains(&number).then_some(number)
}

/// Runs a single experiment by its identifier (e.g. `"e1"`, `"E07"`) with
/// the default seed.
pub fn run_by_id(id: &str, scale: Scale) -> Option<ExperimentReport> {
    run_by_id_seeded(id, scale, 0)
}

/// Runs a single experiment by its identifier at an explicit master seed.
pub fn run_by_id_seeded(id: &str, scale: Scale, seed: u64) -> Option<ExperimentReport> {
    let experiment = EXPERIMENTS[parse_experiment_id(id)? - 1];
    Some((experiment.run)(scale, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_by_id_accepts_flexible_spelling() {
        assert!(run_by_id("e1", Scale::Smoke).is_some());
        assert!(run_by_id("E03", Scale::Smoke).is_some());
        assert!(run_by_id("7", Scale::Smoke).is_some());
        assert!(run_by_id("e99", Scale::Smoke).is_none());
        assert!(run_by_id("nonsense", Scale::Smoke).is_none());
    }

    #[test]
    fn experiments_table_ids_and_descriptions_are_well_formed() {
        for (i, e) in EXPERIMENTS.iter().enumerate() {
            assert_eq!(e.id, format!("e{}", i + 1));
            assert!(!e.description.is_empty());
            assert_eq!(parse_experiment_id(e.id), Some(i + 1));
        }
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let a = run_by_id_seeded("e1", Scale::Smoke, 42).unwrap();
        let b = run_by_id_seeded("e1", Scale::Smoke, 42).unwrap();
        assert_eq!(a.table.rows, b.table.rows);
        // Seed 0 is the documented default.
        let default_run = run_by_id("e1", Scale::Smoke).unwrap();
        let explicit_zero = run_by_id_seeded("e1", Scale::Smoke, 0).unwrap();
        assert_eq!(default_run.table.rows, explicit_zero.table.rows);
    }

    #[test]
    fn all_experiments_produce_consistent_reports_at_smoke_scale() {
        for report in run_all(Scale::Smoke) {
            assert!(!report.id.is_empty());
            assert!(!report.table.columns.is_empty());
            assert!(!report.table.rows.is_empty());
            assert!(!report.findings.is_empty());
            for row in &report.table.rows {
                assert_eq!(row.len(), report.table.columns.len(), "ragged row in {}", report.id);
            }
            let markdown = report.to_markdown();
            assert!(markdown.contains(&report.id));
            assert!(markdown.contains('|'));
        }
    }
}

//! `bench-gate` — turn the committed perf trajectory into a regression
//! gate.
//!
//! The trajectory files (`BENCH_*.json`) record, per group, the
//! legacy-over-engine speedup plus deterministic memory proxies. A gate
//! run compares a *fresh* export against a committed *baseline* and fails
//! (exit 1 from the CLI) when any group regressed beyond its tolerance:
//!
//! * **Speedup** (always checked): fail when
//!   `fresh.speedup * tolerance < baseline.speedup`. Wall-clock ratios are
//!   noisy — CI machines differ from the machine that committed the
//!   baseline — so the default tolerance is generous and per-group
//!   overrides (`--tolerance-group NAME=F`) let known-jittery groups
//!   breathe without loosening the rest.
//! * **Allocations / working set** (checked only when the group's `n` and
//!   `trials` match the baseline's): these are *deterministic* functions
//!   of the work requested, so when the shapes match they are compared
//!   strictly — any increase fails. When shapes differ (quick vs full
//!   mode, resized groups) the strict checks are skipped rather than
//!   producing false alarms.
//!
//! Groups present on only one side are reported but never fail the gate:
//! adding a bench group must not break CI retroactively, and gating
//! against an older baseline that lacks a new group is routine.

use crate::bench_export::BenchExport;

/// Tolerance configuration for a gate run.
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Default speedup tolerance: fail when
    /// `fresh_speedup * tolerance < baseline_speedup`. Must be ≥ 1.
    pub tolerance: f64,
    /// Per-group overrides of [`GateConfig::tolerance`].
    pub group_tolerance: Vec<(String, f64)>,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            // Wide enough to absorb scheduler jitter between two runs on
            // one machine; cross-machine gates should widen further.
            tolerance: 1.75,
            group_tolerance: Vec::new(),
        }
    }
}

impl GateConfig {
    /// The tolerance applying to `group` (override or default).
    pub fn tolerance_for(&self, group: &str) -> f64 {
        self.group_tolerance
            .iter()
            .find(|(name, _)| name == group)
            .map_or(self.tolerance, |(_, t)| *t)
    }
}

/// One per-group comparison line.
#[derive(Debug, Clone)]
pub struct GateLine {
    /// Group name.
    pub group: String,
    /// Human-readable verdict detail.
    pub detail: String,
    /// Whether this line fails the gate.
    pub failed: bool,
}

/// The outcome of comparing a fresh export against a baseline.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Per-group verdicts, in baseline group order.
    pub lines: Vec<GateLine>,
}

impl GateReport {
    /// Whether any group regressed.
    pub fn failed(&self) -> bool {
        self.lines.iter().any(|l| l.failed)
    }

    /// Renders the report as the text the CLI prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(&format!(
                "  {} {:<28} {}\n",
                if line.failed { "FAIL" } else { "ok  " },
                line.group,
                line.detail
            ));
        }
        out
    }
}

/// Compares `fresh` against `baseline` under `config`.
pub fn evaluate(fresh: &BenchExport, baseline: &BenchExport, config: &GateConfig) -> GateReport {
    let mut lines = Vec::new();
    for base in &baseline.groups {
        let Some(new) = fresh.groups.iter().find(|g| g.name == base.name) else {
            lines.push(GateLine {
                group: base.name.clone(),
                detail: "missing from fresh export (skipped)".into(),
                failed: false,
            });
            continue;
        };
        let tolerance = config.tolerance_for(&base.name);
        let base_speedup = base.speedup();
        let new_speedup = new.speedup();
        let speedup_ok = new_speedup * tolerance >= base_speedup;
        let mut details = vec![format!(
            "speedup {:.2}x vs {:.2}x (tol {:.2})",
            new_speedup, base_speedup, tolerance
        )];
        let mut failed = !speedup_ok;
        if !speedup_ok {
            details[0].push_str(" REGRESSED");
        }

        // Deterministic checks: only meaningful when the group measured
        // the same shape of work.
        if new.n == base.n && new.trials == base.trials {
            if let (Some(new_allocs), Some(base_allocs)) =
                (new.engine_allocs, base.engine_allocs)
            {
                if new_allocs > base_allocs {
                    failed = true;
                    details.push(format!(
                        "engine allocs {new_allocs} > baseline {base_allocs} REGRESSED"
                    ));
                } else {
                    details.push(format!("allocs {new_allocs} <= {base_allocs}"));
                }
            }
            if new.working_set_bytes > 0 && base.working_set_bytes > 0 {
                if new.working_set_bytes > base.working_set_bytes {
                    failed = true;
                    details.push(format!(
                        "working set {} B > baseline {} B REGRESSED",
                        new.working_set_bytes, base.working_set_bytes
                    ));
                } else {
                    details.push(format!("ws {} B", new.working_set_bytes));
                }
            }
        } else {
            details.push("shape differs; strict checks skipped".into());
        }

        lines.push(GateLine {
            group: base.name.clone(),
            detail: details.join("; "),
            failed,
        });
    }
    for new in &fresh.groups {
        if !baseline.groups.iter().any(|g| g.name == new.name) {
            lines.push(GateLine {
                group: new.name.clone(),
                detail: "new group (no baseline; skipped)".into(),
                failed: false,
            });
        }
    }
    GateReport { lines }
}

/// Picks the latest committed trajectory file in `dir`: the
/// `BENCH_<number>.json` with the highest number (ties impossible —
/// file names are unique). Non-numeric suffixes (`BENCH_ci.json`) are
/// ignored. Returns `None` when no trajectory file exists.
pub fn latest_bench_file(dir: &std::path::Path) -> Option<std::path::PathBuf> {
    let mut best: Option<(u64, std::path::PathBuf)> = None;
    for entry in std::fs::read_dir(dir).ok()?.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(stem) = name.strip_prefix("BENCH_").and_then(|s| s.strip_suffix(".json"))
        else {
            continue;
        };
        let Ok(number) = stem.parse::<u64>() else {
            continue;
        };
        if best.as_ref().is_none_or(|(n, _)| number > *n) {
            best = Some((number, entry.path()));
        }
    }
    best.map(|(_, path)| path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_export::BenchGroup;

    fn group(name: &str, legacy_ns: u128, engine_ns: u128) -> BenchGroup {
        BenchGroup {
            name: name.into(),
            n: 96,
            trials: 500,
            legacy_ns,
            engine_ns,
            legacy_allocs: None,
            engine_allocs: None,
            working_set_bytes: 1_000,
            counters: Vec::new(),
        }
    }

    fn export(groups: Vec<BenchGroup>) -> BenchExport {
        BenchExport {
            quick: true,
            groups,
            peak_alloc_bytes: None,
        }
    }

    #[test]
    fn identical_exports_pass() {
        let e = export(vec![group("a", 1000, 100), group("b", 500, 100)]);
        let report = evaluate(&e, &e, &GateConfig::default());
        assert!(!report.failed(), "{}", report.render());
    }

    #[test]
    fn twofold_speedup_regression_fails_and_tolerance_waives() {
        let baseline = export(vec![group("a", 1000, 100)]); // 10x
        let fresh = export(vec![group("a", 1000, 200)]); // 5x — a 2x regression
        let report = evaluate(&fresh, &baseline, &GateConfig::default());
        assert!(report.failed(), "default 1.75 must catch a 2x regression");
        assert!(report.render().contains("REGRESSED"));

        let lenient = GateConfig {
            tolerance: 2.5,
            group_tolerance: Vec::new(),
        };
        assert!(!evaluate(&fresh, &baseline, &lenient).failed());

        // A per-group override beats the default.
        let per_group = GateConfig {
            tolerance: 1.1,
            group_tolerance: vec![("a".into(), 3.0)],
        };
        assert!(!evaluate(&fresh, &baseline, &per_group).failed());
    }

    #[test]
    fn strict_checks_apply_only_on_matching_shapes() {
        let mut base_group = group("a", 1000, 100);
        base_group.engine_allocs = Some(5);
        let mut fresh_group = base_group.clone();
        fresh_group.engine_allocs = Some(6); // one extra allocation
        let report = evaluate(
            &export(vec![fresh_group.clone()]),
            &export(vec![base_group.clone()]),
            &GateConfig::default(),
        );
        assert!(report.failed(), "alloc increase on same shape must fail");

        // Same regression but a different n: strict checks skipped.
        fresh_group.n = 192;
        let report = evaluate(
            &export(vec![fresh_group]),
            &export(vec![base_group]),
            &GateConfig::default(),
        );
        assert!(!report.failed());
        assert!(report.render().contains("strict checks skipped"));
    }

    #[test]
    fn working_set_growth_fails_on_matching_shapes() {
        let base_group = group("a", 1000, 100);
        let mut fresh_group = base_group.clone();
        fresh_group.working_set_bytes = 2_000;
        let report = evaluate(
            &export(vec![fresh_group]),
            &export(vec![base_group]),
            &GateConfig::default(),
        );
        assert!(report.failed());
        assert!(report.render().contains("working set"));
    }

    #[test]
    fn one_sided_groups_never_fail() {
        let baseline = export(vec![group("only-in-base", 10, 1)]);
        let fresh = export(vec![group("only-in-fresh", 10, 1)]);
        let report = evaluate(&fresh, &baseline, &GateConfig::default());
        assert!(!report.failed());
        assert_eq!(report.lines.len(), 2);
    }

    #[test]
    fn latest_bench_file_picks_highest_number() {
        let dir = std::env::temp_dir().join(format!("bench-gate-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for name in ["BENCH_4.json", "BENCH_10.json", "BENCH_ci.json", "other.json"] {
            std::fs::write(dir.join(name), "{}").unwrap();
        }
        let latest = latest_bench_file(&dir).expect("found");
        assert!(latest.ends_with("BENCH_10.json"), "{latest:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

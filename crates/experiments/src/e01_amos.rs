//! E1 — the `amos` golden-ratio decider (§2.3.1).
//!
//! Measures `Pr[all accept]` of the zero-round golden-ratio decider for 0,
//! 1, 2, 3 selected nodes across graph families and checks that the
//! empirical guarantee matches `p = (√5 − 1)/2 ≈ 0.618` on both sides.

use crate::report::{fmt_prob, ExperimentReport, Finding, Scale, Table};
use rlnc_core::decision::acceptance_probability;
use rlnc_core::prelude::*;
use rlnc_graph::generators::Family;
use rlnc_graph::{IdAssignment, NodeId};
use rlnc_langs::amos::{selection_output, Amos, AmosGoldenDecider, GOLDEN_GUARANTEE};
use rlnc_par::rng::SeedSequence;

/// Runs the experiment at the default master seed.
pub fn run(scale: Scale) -> ExperimentReport {
    run_seeded(scale, 0)
}

/// Runs the experiment; `seed` perturbs every random stream (`0`
/// reproduces the historical default streams).
pub fn run_seeded(scale: Scale, seed: u64) -> ExperimentReport {
    let trials = scale.trials(20_000);
    let n = scale.size(64);
    let decider = AmosGoldenDecider::new();
    let language = Amos::new();
    let mut table = Table::new(&[
        "family",
        "n",
        "selected",
        "Pr[all accept] (measured)",
        "Pr[all accept] (theory p^k)",
        "guarantee side",
    ]);

    let mut worst_yes = 1.0f64;
    let mut worst_no = 1.0f64;
    let mut rng = SeedSequence::new(seed ^ 0xE1).rng();

    for family in [Family::Cycle, Family::Path, Family::Grid] {
        let graph = family.generate(n, &mut rng);
        let nodes = graph.node_count();
        let ids = IdAssignment::consecutive(&graph);
        let input = Labeling::empty(nodes);
        for selected_count in 0..=3usize {
            // Spread the selected nodes as far apart as index spacing allows.
            let selected: Vec<NodeId> = (0..selected_count)
                .map(|i| NodeId::from_index(i * nodes / selected_count.max(1)))
                .collect();
            let output = selection_output(nodes, &selected);
            let io = IoConfig::new(&graph, &input, &output);
            let est = acceptance_probability(&decider, &io, &ids, trials, seed ^ (0xE1 + selected_count as u64));
            let theory = GOLDEN_GUARANTEE.powi(selected_count as i32);
            let in_language = language.contains(&io);
            if in_language {
                worst_yes = worst_yes.min(est.p_hat);
            } else {
                worst_no = worst_no.min(1.0 - est.p_hat);
            }
            table.push_row(vec![
                family.name().to_string(),
                nodes.to_string(),
                selected_count.to_string(),
                fmt_prob(est.p_hat),
                fmt_prob(theory),
                if in_language { "yes-instance".into() } else { "no-instance".into() },
            ]);
        }
    }

    let guarantee = worst_yes.min(worst_no);
    let findings = vec![
        Finding::new(
            "§2.3.1: amos is randomly decidable in zero rounds with guarantee p = (√5−1)/2 ≈ 0.618",
            format!("empirical guarantee {:.3} (worst yes {:.3}, worst no {:.3})", guarantee, worst_yes, worst_no),
            (guarantee - GOLDEN_GUARANTEE).abs() < 0.05 || guarantee > GOLDEN_GUARANTEE,
        ),
        Finding::new(
            "Eq. (1): both error sides stay above 1/2, so amos ∈ BPLD \\ LD",
            format!("worst-case side {:.3} > 0.5", guarantee),
            guarantee > 0.5,
        ),
    ];

    ExperimentReport {
        id: "E1".into(),
        title: "amos golden-ratio zero-round decider".into(),
        paper_reference: "§2.3.1 (example `amos`), Eq. (1)".into(),
        table,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_reproduces_the_golden_ratio_guarantee() {
        let report = run(Scale::Smoke);
        assert_eq!(report.id, "E1");
        assert!(report.all_consistent(), "findings: {:?}", report.findings);
        assert_eq!(report.table.rows.len(), 12);
    }
}

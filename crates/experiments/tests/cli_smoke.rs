//! Smoke coverage of the experiment harness and its CLI: the library entry
//! point (`run_by_id` at `Scale::Smoke`) for the first and last experiments,
//! and the compiled `rlnc-experiments` binary end to end.

use rlnc_experiments::{run_by_id, Scale};

#[test]
fn e1_smoke_run_produces_a_consistent_report() {
    let report = run_by_id("e1", Scale::Smoke).expect("e1 exists");
    assert_eq!(report.id, "E1");
    assert!(report.all_consistent(), "findings: {:?}", report.findings);
    let markdown = report.to_markdown();
    assert!(markdown.contains("E1"));
    assert!(markdown.contains("consistent"));
}

#[test]
fn e10_smoke_run_produces_a_consistent_report() {
    let report = run_by_id("e10", Scale::Smoke).expect("e10 exists");
    assert_eq!(report.id, "E10");
    assert!(report.all_consistent(), "findings: {:?}", report.findings);
    assert!(!report.table.rows.is_empty());
}

#[test]
fn cli_binary_runs_e1_and_e10_at_smoke_scale() {
    let exe = env!("CARGO_BIN_EXE_rlnc-experiments");
    let out_path = std::env::temp_dir().join(format!(
        "rlnc-cli-smoke-{}.md",
        std::process::id()
    ));
    let output = std::process::Command::new(exe)
        .args(["--scale", "smoke", "--only", "e1", "e10"])
        .arg("--markdown")
        .arg(&out_path)
        .output()
        .expect("failed to spawn rlnc-experiments");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "CLI exited with {:?}\nstdout:\n{stdout}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr),
    );
    assert!(stdout.contains("E1"), "stdout missing E1 report:\n{stdout}");
    assert!(stdout.contains("E10"), "stdout missing E10 report:\n{stdout}");
    let written = std::fs::read_to_string(&out_path).expect("markdown report written");
    assert!(written.contains("E1") && written.contains("E10"));
    let _ = std::fs::remove_file(&out_path);
}

#[test]
fn cli_binary_rejects_unknown_arguments() {
    let exe = env!("CARGO_BIN_EXE_rlnc-experiments");
    let output = std::process::Command::new(exe)
        .arg("--definitely-not-a-flag")
        .output()
        .expect("failed to spawn rlnc-experiments");
    assert_eq!(output.status.code(), Some(2));
}

#[test]
fn cli_list_prints_every_experiment_and_exits_zero() {
    let exe = env!("CARGO_BIN_EXE_rlnc-experiments");
    let output = std::process::Command::new(exe)
        .arg("--list")
        .output()
        .expect("failed to spawn rlnc-experiments");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    for e in rlnc_experiments::EXPERIMENTS {
        assert!(stdout.contains(e.id), "--list missing {}:\n{stdout}", e.id);
        assert!(
            stdout.contains(e.description),
            "--list missing description of {}:\n{stdout}",
            e.id
        );
    }
}

#[test]
fn cli_seed_flag_is_accepted_and_reproducible() {
    let exe = env!("CARGO_BIN_EXE_rlnc-experiments");
    let run = |seed: &str| {
        let output = std::process::Command::new(exe)
            .args(["--scale", "smoke", "--seed", seed, "--only", "e1"])
            .output()
            .expect("failed to spawn rlnc-experiments");
        assert!(
            output.status.success(),
            "seeded run failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        String::from_utf8_lossy(&output.stdout).into_owned()
    };
    let a = run("7");
    let b = run("7");
    assert_eq!(a, b, "same seed must reproduce the same report");
    // Hex spelling is accepted too.
    let h = run("0x7");
    assert_eq!(a, h);
    // A bad seed is a usage error.
    let output = std::process::Command::new(exe)
        .args(["--seed", "not-a-number"])
        .output()
        .expect("failed to spawn rlnc-experiments");
    assert_eq!(output.status.code(), Some(2));
}

#[test]
fn sweep_subcommand_runs_exports_and_is_byte_reproducible() {
    let exe = env!("CARGO_BIN_EXE_rlnc-experiments");
    let tmp = std::env::temp_dir();
    let json_path = tmp.join(format!("rlnc-sweep-smoke-{}.json", std::process::id()));
    let csv_path = tmp.join(format!("rlnc-sweep-smoke-{}.csv", std::process::id()));
    let run_sweep = || {
        let output = std::process::Command::new(exe)
            .args(["sweep", "--scenario", "smoke", "--scale", "smoke", "--seed", "11"])
            .arg("--out")
            .arg(&json_path)
            .arg("--csv")
            .arg(&csv_path)
            .output()
            .expect("failed to spawn rlnc-experiments sweep");
        assert!(
            output.status.success(),
            "sweep failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        String::from_utf8_lossy(&output.stdout).into_owned()
    };
    let stdout = run_sweep();
    assert!(stdout.contains("sweep `smoke`"), "stdout:\n{stdout}");
    let json_a = std::fs::read_to_string(&json_path).expect("JSON export written");
    let csv = std::fs::read_to_string(&csv_path).expect("CSV export written");
    assert!(csv.starts_with("scenario,point,family,"));
    assert!(csv.lines().count() > 1);

    // The export must parse back (the --check mode CI uses).
    let parsed = rlnc_sweep::emit::from_json(&json_a).expect("export parses back");
    assert_eq!(parsed.scenario, "smoke");
    let check = std::process::Command::new(exe)
        .args(["sweep", "--check"])
        .arg(&json_path)
        .output()
        .expect("failed to spawn sweep --check");
    assert!(check.status.success());
    assert!(String::from_utf8_lossy(&check.stdout).contains("OK"));

    // Re-running with the same seed produces byte-identical records.
    let _ = run_sweep();
    let json_b = std::fs::read_to_string(&json_path).unwrap();
    assert_eq!(json_a, json_b, "same-seed sweep exports must be byte-identical");

    let _ = std::fs::remove_file(&json_path);
    let _ = std::fs::remove_file(&csv_path);
}

#[test]
fn sweep_subcommand_lists_scenarios_and_rejects_unknown_ones() {
    let exe = env!("CARGO_BIN_EXE_rlnc-experiments");
    let output = std::process::Command::new(exe)
        .args(["sweep", "--list-scenarios"])
        .output()
        .expect("failed to spawn rlnc-experiments sweep");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    for name in ["smoke", "slack-ring", "slack-topologies", "resilient-boundary", "boosting-decay"] {
        assert!(stdout.contains(name), "--list-scenarios missing {name}:\n{stdout}");
    }

    let output = std::process::Command::new(exe)
        .args(["sweep", "--scenario", "no-such-scenario"])
        .output()
        .expect("failed to spawn rlnc-experiments sweep");
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("unknown scenario"));

    // Bare `sweep` without a scenario is a usage error.
    let output = std::process::Command::new(exe)
        .arg("sweep")
        .output()
        .expect("failed to spawn rlnc-experiments sweep");
    assert_eq!(output.status.code(), Some(2));

    // --check on garbage exits 1.
    let garbage = std::env::temp_dir().join(format!("rlnc-garbage-{}.json", std::process::id()));
    std::fs::write(&garbage, "not json at all").unwrap();
    let output = std::process::Command::new(exe)
        .args(["sweep", "--check"])
        .arg(&garbage)
        .output()
        .expect("failed to spawn sweep --check");
    assert_eq!(output.status.code(), Some(1));
    let _ = std::fs::remove_file(&garbage);
}

#[test]
fn bench_export_subcommand_writes_the_perf_trajectory() {
    let exe = env!("CARGO_BIN_EXE_rlnc-experiments");
    let out_path = std::env::temp_dir().join(format!(
        "rlnc-bench-export-{}.json",
        std::process::id()
    ));
    let output = std::process::Command::new(exe)
        .args(["bench-export", "--quick"])
        .arg("--out")
        .arg(&out_path)
        .output()
        .expect("failed to spawn rlnc-experiments bench-export");
    assert!(
        output.status.success(),
        "bench-export failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("engine-vs-legacy"), "stdout:\n{stdout}");
    assert!(stdout.contains("speedup"), "stdout:\n{stdout}");
    let written = std::fs::read_to_string(&out_path).expect("JSON export written");
    assert!(written.contains("\"schema\": \"rlnc-bench-export-v2\""));
    assert!(written.contains("ring-monte-carlo"));
    assert!(written.contains("\"working_set_bytes\""));
    let _ = std::fs::remove_file(&out_path);

    // Unknown flags are usage errors.
    let bad = std::process::Command::new(exe)
        .args(["bench-export", "--turbo"])
        .output()
        .expect("failed to spawn bench-export");
    assert_eq!(bad.status.code(), Some(2));
}

#[test]
fn quiet_flag_silences_status_notes_but_not_stdout_or_exit_codes() {
    let exe = env!("CARGO_BIN_EXE_rlnc-experiments");
    let tmp = std::env::temp_dir();
    let md_path = tmp.join(format!("rlnc-quiet-{}.md", std::process::id()));
    let run = |quiet: bool| {
        let mut args = vec!["--scale", "smoke", "--only", "e1"];
        if quiet {
            args.push("--quiet");
        }
        let output = std::process::Command::new(exe)
            .args(&args)
            .arg("--markdown")
            .arg(&md_path)
            .output()
            .expect("failed to spawn rlnc-experiments");
        assert!(output.status.success());
        (
            String::from_utf8_lossy(&output.stdout).into_owned(),
            String::from_utf8_lossy(&output.stderr).into_owned(),
        )
    };
    let (loud_stdout, loud_stderr) = run(false);
    assert!(loud_stderr.contains("wrote"), "status note expected:\n{loud_stderr}");
    let (quiet_stdout, quiet_stderr) = run(true);
    assert!(!quiet_stderr.contains("wrote"), "--quiet leaked a note:\n{quiet_stderr}");
    // The report itself is untouched.
    assert_eq!(loud_stdout, quiet_stdout);
    let _ = std::fs::remove_file(&md_path);
}

#[test]
fn trace_out_deterministic_section_is_reproducible_and_parses_back() {
    let exe = env!("CARGO_BIN_EXE_rlnc-experiments");
    let tmp = std::env::temp_dir();
    let trace_path = tmp.join(format!("rlnc-trace-{}.json", std::process::id()));
    let run = || {
        let output = std::process::Command::new(exe)
            .args([
                "sweep", "--scenario", "fault-matrix", "--scale", "smoke", "--seed", "3",
                "--quiet",
            ])
            .arg("--trace-out")
            .arg(&trace_path)
            .output()
            .expect("failed to spawn rlnc-experiments sweep --trace-out");
        assert!(
            output.status.success(),
            "sweep --trace-out failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        std::fs::read_to_string(&trace_path).expect("trace written")
    };
    let text_a = run();
    let doc_a = rlnc_experiments::trace::from_json(&text_a).expect("trace parses back");
    assert!(
        !doc_a.deterministic.is_empty(),
        "a fault-matrix sweep must populate deterministic metrics"
    );
    assert!(doc_a.deterministic.get("sweep.runs").is_some());
    assert!(doc_a
        .timing
        .get(rlnc_experiments::trace::RAYON_SPAWNS_METRIC)
        .is_some());

    // Across process runs (fresh thread schedules) the deterministic
    // section is byte-identical; the timing section may differ.
    let text_b = run();
    let doc_b = rlnc_experiments::trace::from_json(&text_b).expect("trace parses back");
    assert_eq!(
        doc_a.deterministic_json(),
        doc_b.deterministic_json(),
        "deterministic trace section must not depend on scheduling"
    );
    let _ = std::fs::remove_file(&trace_path);
}

#[test]
fn bench_gate_passes_identical_exports_and_fails_injected_regressions() {
    let exe = env!("CARGO_BIN_EXE_rlnc-experiments");
    let tmp = std::env::temp_dir();
    let base_path = tmp.join(format!("rlnc-gate-base-{}.json", std::process::id()));
    let slow_path = tmp.join(format!("rlnc-gate-slow-{}.json", std::process::id()));

    // Measure once, then gate the export against itself: must pass.
    let output = std::process::Command::new(exe)
        .args(["bench-export", "--quick", "--check", "--quiet"])
        .arg("--out")
        .arg(&base_path)
        .output()
        .expect("failed to spawn bench-export");
    assert!(
        output.status.success(),
        "bench-export --check failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let baseline = std::fs::read_to_string(&base_path).unwrap();
    let gate = std::process::Command::new(exe)
        .args(["bench-gate", "--fresh"])
        .arg(&base_path)
        .arg("--against")
        .arg(&base_path)
        .output()
        .expect("failed to spawn bench-gate");
    assert!(
        gate.status.success(),
        "self-gate must pass:\n{}",
        String::from_utf8_lossy(&gate.stdout)
    );
    assert!(String::from_utf8_lossy(&gate.stdout).contains("bench-gate: ok"));

    // Inject a 10x engine slowdown into every group: gate must exit 1.
    let parsed = rlnc_experiments::bench_export::from_json(&baseline).unwrap();
    let mut slowed = parsed.clone();
    for group in &mut slowed.groups {
        group.engine_ns *= 10;
    }
    std::fs::write(&slow_path, rlnc_experiments::bench_export::to_json(&slowed)).unwrap();
    let gate = std::process::Command::new(exe)
        .args(["bench-gate", "--fresh"])
        .arg(&slow_path)
        .arg("--against")
        .arg(&base_path)
        .output()
        .expect("failed to spawn bench-gate");
    assert_eq!(gate.status.code(), Some(1), "10x regression must fail the gate");
    assert!(String::from_utf8_lossy(&gate.stdout).contains("REGRESSED"));

    // A wide-open tolerance waives it again.
    let gate = std::process::Command::new(exe)
        .args(["bench-gate", "--fresh"])
        .arg(&slow_path)
        .arg("--against")
        .arg(&base_path)
        .args(["--tolerance", "20.0"])
        .output()
        .expect("failed to spawn bench-gate");
    assert!(gate.status.success());

    // Usage errors exit 2.
    let bad = std::process::Command::new(exe)
        .args(["bench-gate", "--tolerance", "0.5"])
        .output()
        .expect("failed to spawn bench-gate");
    assert_eq!(bad.status.code(), Some(2));

    let _ = std::fs::remove_file(&base_path);
    let _ = std::fs::remove_file(&slow_path);
}

#[test]
fn cli_binary_rejects_unknown_experiment_ids_and_bad_scales() {
    let exe = env!("CARGO_BIN_EXE_rlnc-experiments");
    // A typo'd id must fail loudly instead of running nothing and exiting 0.
    let output = std::process::Command::new(exe)
        .args(["--scale", "smoke", "--only", "e99"])
        .output()
        .expect("failed to spawn rlnc-experiments");
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("unknown experiment id"));

    let output = std::process::Command::new(exe)
        .args(["--scale", "warp"])
        .output()
        .expect("failed to spawn rlnc-experiments");
    assert_eq!(output.status.code(), Some(2));

    let output = std::process::Command::new(exe)
        .arg("--markdown")
        .output()
        .expect("failed to spawn rlnc-experiments");
    assert_eq!(output.status.code(), Some(2));
}

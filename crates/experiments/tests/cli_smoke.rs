//! Smoke coverage of the experiment harness and its CLI: the library entry
//! point (`run_by_id` at `Scale::Smoke`) for the first and last experiments,
//! and the compiled `rlnc-experiments` binary end to end.

use rlnc_experiments::{run_by_id, Scale};

#[test]
fn e1_smoke_run_produces_a_consistent_report() {
    let report = run_by_id("e1", Scale::Smoke).expect("e1 exists");
    assert_eq!(report.id, "E1");
    assert!(report.all_consistent(), "findings: {:?}", report.findings);
    let markdown = report.to_markdown();
    assert!(markdown.contains("E1"));
    assert!(markdown.contains("consistent"));
}

#[test]
fn e10_smoke_run_produces_a_consistent_report() {
    let report = run_by_id("e10", Scale::Smoke).expect("e10 exists");
    assert_eq!(report.id, "E10");
    assert!(report.all_consistent(), "findings: {:?}", report.findings);
    assert!(!report.table.rows.is_empty());
}

#[test]
fn cli_binary_runs_e1_and_e10_at_smoke_scale() {
    let exe = env!("CARGO_BIN_EXE_rlnc-experiments");
    let out_path = std::env::temp_dir().join(format!(
        "rlnc-cli-smoke-{}.md",
        std::process::id()
    ));
    let output = std::process::Command::new(exe)
        .args(["--scale", "smoke", "--only", "e1", "e10"])
        .arg("--markdown")
        .arg(&out_path)
        .output()
        .expect("failed to spawn rlnc-experiments");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "CLI exited with {:?}\nstdout:\n{stdout}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr),
    );
    assert!(stdout.contains("E1"), "stdout missing E1 report:\n{stdout}");
    assert!(stdout.contains("E10"), "stdout missing E10 report:\n{stdout}");
    let written = std::fs::read_to_string(&out_path).expect("markdown report written");
    assert!(written.contains("E1") && written.contains("E10"));
    let _ = std::fs::remove_file(&out_path);
}

#[test]
fn cli_binary_rejects_unknown_arguments() {
    let exe = env!("CARGO_BIN_EXE_rlnc-experiments");
    let output = std::process::Command::new(exe)
        .arg("--definitely-not-a-flag")
        .output()
        .expect("failed to spawn rlnc-experiments");
    assert_eq!(output.status.code(), Some(2));
}

#[test]
fn cli_list_prints_every_experiment_and_exits_zero() {
    let exe = env!("CARGO_BIN_EXE_rlnc-experiments");
    let output = std::process::Command::new(exe)
        .arg("--list")
        .output()
        .expect("failed to spawn rlnc-experiments");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    for e in rlnc_experiments::EXPERIMENTS {
        assert!(stdout.contains(e.id), "--list missing {}:\n{stdout}", e.id);
        assert!(
            stdout.contains(e.description),
            "--list missing description of {}:\n{stdout}",
            e.id
        );
    }
}

#[test]
fn cli_seed_flag_is_accepted_and_reproducible() {
    let exe = env!("CARGO_BIN_EXE_rlnc-experiments");
    let run = |seed: &str| {
        let output = std::process::Command::new(exe)
            .args(["--scale", "smoke", "--seed", seed, "--only", "e1"])
            .output()
            .expect("failed to spawn rlnc-experiments");
        assert!(
            output.status.success(),
            "seeded run failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        String::from_utf8_lossy(&output.stdout).into_owned()
    };
    let a = run("7");
    let b = run("7");
    assert_eq!(a, b, "same seed must reproduce the same report");
    // Hex spelling is accepted too.
    let h = run("0x7");
    assert_eq!(a, h);
    // A bad seed is a usage error.
    let output = std::process::Command::new(exe)
        .args(["--seed", "not-a-number"])
        .output()
        .expect("failed to spawn rlnc-experiments");
    assert_eq!(output.status.code(), Some(2));
}

#[test]
fn sweep_subcommand_runs_exports_and_is_byte_reproducible() {
    let exe = env!("CARGO_BIN_EXE_rlnc-experiments");
    let tmp = std::env::temp_dir();
    let json_path = tmp.join(format!("rlnc-sweep-smoke-{}.json", std::process::id()));
    let csv_path = tmp.join(format!("rlnc-sweep-smoke-{}.csv", std::process::id()));
    let run_sweep = || {
        let output = std::process::Command::new(exe)
            .args(["sweep", "--scenario", "smoke", "--scale", "smoke", "--seed", "11"])
            .arg("--out")
            .arg(&json_path)
            .arg("--csv")
            .arg(&csv_path)
            .output()
            .expect("failed to spawn rlnc-experiments sweep");
        assert!(
            output.status.success(),
            "sweep failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        String::from_utf8_lossy(&output.stdout).into_owned()
    };
    let stdout = run_sweep();
    assert!(stdout.contains("sweep `smoke`"), "stdout:\n{stdout}");
    let json_a = std::fs::read_to_string(&json_path).expect("JSON export written");
    let csv = std::fs::read_to_string(&csv_path).expect("CSV export written");
    assert!(csv.starts_with("scenario,point,family,"));
    assert!(csv.lines().count() > 1);

    // The export must parse back (the --check mode CI uses).
    let parsed = rlnc_sweep::emit::from_json(&json_a).expect("export parses back");
    assert_eq!(parsed.scenario, "smoke");
    let check = std::process::Command::new(exe)
        .args(["sweep", "--check"])
        .arg(&json_path)
        .output()
        .expect("failed to spawn sweep --check");
    assert!(check.status.success());
    assert!(String::from_utf8_lossy(&check.stdout).contains("OK"));

    // Re-running with the same seed produces byte-identical records.
    let _ = run_sweep();
    let json_b = std::fs::read_to_string(&json_path).unwrap();
    assert_eq!(json_a, json_b, "same-seed sweep exports must be byte-identical");

    let _ = std::fs::remove_file(&json_path);
    let _ = std::fs::remove_file(&csv_path);
}

#[test]
fn sweep_subcommand_lists_scenarios_and_rejects_unknown_ones() {
    let exe = env!("CARGO_BIN_EXE_rlnc-experiments");
    let output = std::process::Command::new(exe)
        .args(["sweep", "--list-scenarios"])
        .output()
        .expect("failed to spawn rlnc-experiments sweep");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    for name in ["smoke", "slack-ring", "slack-topologies", "resilient-boundary", "boosting-decay"] {
        assert!(stdout.contains(name), "--list-scenarios missing {name}:\n{stdout}");
    }

    let output = std::process::Command::new(exe)
        .args(["sweep", "--scenario", "no-such-scenario"])
        .output()
        .expect("failed to spawn rlnc-experiments sweep");
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("unknown scenario"));

    // Bare `sweep` without a scenario is a usage error.
    let output = std::process::Command::new(exe)
        .arg("sweep")
        .output()
        .expect("failed to spawn rlnc-experiments sweep");
    assert_eq!(output.status.code(), Some(2));

    // --check on garbage exits 1.
    let garbage = std::env::temp_dir().join(format!("rlnc-garbage-{}.json", std::process::id()));
    std::fs::write(&garbage, "not json at all").unwrap();
    let output = std::process::Command::new(exe)
        .args(["sweep", "--check"])
        .arg(&garbage)
        .output()
        .expect("failed to spawn sweep --check");
    assert_eq!(output.status.code(), Some(1));
    let _ = std::fs::remove_file(&garbage);
}

#[test]
fn bench_export_subcommand_writes_the_perf_trajectory() {
    let exe = env!("CARGO_BIN_EXE_rlnc-experiments");
    let out_path = std::env::temp_dir().join(format!(
        "rlnc-bench-export-{}.json",
        std::process::id()
    ));
    let output = std::process::Command::new(exe)
        .args(["bench-export", "--quick"])
        .arg("--out")
        .arg(&out_path)
        .output()
        .expect("failed to spawn rlnc-experiments bench-export");
    assert!(
        output.status.success(),
        "bench-export failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("engine-vs-legacy"), "stdout:\n{stdout}");
    assert!(stdout.contains("speedup"), "stdout:\n{stdout}");
    let written = std::fs::read_to_string(&out_path).expect("JSON export written");
    assert!(written.contains("\"schema\": \"rlnc-bench-export-v2\""));
    assert!(written.contains("ring-monte-carlo"));
    assert!(written.contains("\"working_set_bytes\""));
    let _ = std::fs::remove_file(&out_path);

    // Unknown flags are usage errors.
    let bad = std::process::Command::new(exe)
        .args(["bench-export", "--turbo"])
        .output()
        .expect("failed to spawn bench-export");
    assert_eq!(bad.status.code(), Some(2));
}

#[test]
fn quiet_flag_silences_status_notes_but_not_stdout_or_exit_codes() {
    let exe = env!("CARGO_BIN_EXE_rlnc-experiments");
    let tmp = std::env::temp_dir();
    let md_path = tmp.join(format!("rlnc-quiet-{}.md", std::process::id()));
    let run = |quiet: bool| {
        let mut args = vec!["--scale", "smoke", "--only", "e1"];
        if quiet {
            args.push("--quiet");
        }
        let output = std::process::Command::new(exe)
            .args(&args)
            .arg("--markdown")
            .arg(&md_path)
            .output()
            .expect("failed to spawn rlnc-experiments");
        assert!(output.status.success());
        (
            String::from_utf8_lossy(&output.stdout).into_owned(),
            String::from_utf8_lossy(&output.stderr).into_owned(),
        )
    };
    let (loud_stdout, loud_stderr) = run(false);
    assert!(loud_stderr.contains("wrote"), "status note expected:\n{loud_stderr}");
    let (quiet_stdout, quiet_stderr) = run(true);
    assert!(!quiet_stderr.contains("wrote"), "--quiet leaked a note:\n{quiet_stderr}");
    // The report itself is untouched.
    assert_eq!(loud_stdout, quiet_stdout);
    let _ = std::fs::remove_file(&md_path);
}

#[test]
fn trace_out_deterministic_section_is_reproducible_and_parses_back() {
    let exe = env!("CARGO_BIN_EXE_rlnc-experiments");
    let tmp = std::env::temp_dir();
    let trace_path = tmp.join(format!("rlnc-trace-{}.json", std::process::id()));
    let run = || {
        let output = std::process::Command::new(exe)
            .args([
                "sweep", "--scenario", "fault-matrix", "--scale", "smoke", "--seed", "3",
                "--quiet",
            ])
            .arg("--trace-out")
            .arg(&trace_path)
            .output()
            .expect("failed to spawn rlnc-experiments sweep --trace-out");
        assert!(
            output.status.success(),
            "sweep --trace-out failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        std::fs::read_to_string(&trace_path).expect("trace written")
    };
    let text_a = run();
    let doc_a = rlnc_experiments::trace::from_json(&text_a).expect("trace parses back");
    assert!(
        !doc_a.deterministic.is_empty(),
        "a fault-matrix sweep must populate deterministic metrics"
    );
    assert!(doc_a.deterministic.get("sweep.runs").is_some());
    assert!(doc_a
        .timing
        .get(rlnc_experiments::trace::RAYON_SPAWNS_METRIC)
        .is_some());

    // Across process runs (fresh thread schedules) the deterministic
    // section is byte-identical; the timing section may differ.
    let text_b = run();
    let doc_b = rlnc_experiments::trace::from_json(&text_b).expect("trace parses back");
    assert_eq!(
        doc_a.deterministic_json(),
        doc_b.deterministic_json(),
        "deterministic trace section must not depend on scheduling"
    );
    let _ = std::fs::remove_file(&trace_path);
}

#[test]
fn bench_gate_passes_identical_exports_and_fails_injected_regressions() {
    let exe = env!("CARGO_BIN_EXE_rlnc-experiments");
    let tmp = std::env::temp_dir();
    let base_path = tmp.join(format!("rlnc-gate-base-{}.json", std::process::id()));
    let slow_path = tmp.join(format!("rlnc-gate-slow-{}.json", std::process::id()));

    // Measure once, then gate the export against itself: must pass.
    let output = std::process::Command::new(exe)
        .args(["bench-export", "--quick", "--check", "--quiet"])
        .arg("--out")
        .arg(&base_path)
        .output()
        .expect("failed to spawn bench-export");
    assert!(
        output.status.success(),
        "bench-export --check failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let baseline = std::fs::read_to_string(&base_path).unwrap();
    let gate = std::process::Command::new(exe)
        .args(["bench-gate", "--fresh"])
        .arg(&base_path)
        .arg("--against")
        .arg(&base_path)
        .output()
        .expect("failed to spawn bench-gate");
    assert!(
        gate.status.success(),
        "self-gate must pass:\n{}",
        String::from_utf8_lossy(&gate.stdout)
    );
    assert!(String::from_utf8_lossy(&gate.stdout).contains("bench-gate: ok"));

    // Inject a 10x engine slowdown into every group: gate must exit 1.
    let parsed = rlnc_experiments::bench_export::from_json(&baseline).unwrap();
    let mut slowed = parsed.clone();
    for group in &mut slowed.groups {
        group.engine_ns *= 10;
    }
    std::fs::write(&slow_path, rlnc_experiments::bench_export::to_json(&slowed)).unwrap();
    let gate = std::process::Command::new(exe)
        .args(["bench-gate", "--fresh"])
        .arg(&slow_path)
        .arg("--against")
        .arg(&base_path)
        .output()
        .expect("failed to spawn bench-gate");
    assert_eq!(gate.status.code(), Some(1), "10x regression must fail the gate");
    assert!(String::from_utf8_lossy(&gate.stdout).contains("REGRESSED"));

    // A wide-open tolerance waives it again.
    let gate = std::process::Command::new(exe)
        .args(["bench-gate", "--fresh"])
        .arg(&slow_path)
        .arg("--against")
        .arg(&base_path)
        .args(["--tolerance", "20.0"])
        .output()
        .expect("failed to spawn bench-gate");
    assert!(gate.status.success());

    // Usage errors exit 2.
    let bad = std::process::Command::new(exe)
        .args(["bench-gate", "--tolerance", "0.5"])
        .output()
        .expect("failed to spawn bench-gate");
    assert_eq!(bad.status.code(), Some(2));

    let _ = std::fs::remove_file(&base_path);
    let _ = std::fs::remove_file(&slow_path);
}

#[test]
fn sweep_shard_exports_merge_byte_identically_to_the_full_run() {
    let exe = env!("CARGO_BIN_EXE_rlnc-experiments");
    let tmp = std::env::temp_dir();
    let pid = std::process::id();
    let full_path = tmp.join(format!("rlnc-shard-full-{pid}.json"));
    let merged_path = tmp.join(format!("rlnc-shard-merged-{pid}.json"));
    let shard_paths: Vec<_> =
        (1..=3).map(|i| tmp.join(format!("rlnc-shard-{i}of3-{pid}.json"))).collect();

    let sweep = |extra: &[&str], out: &std::path::Path| {
        let output = std::process::Command::new(exe)
            .args(["sweep", "--scenario", "fault-matrix", "--scale", "smoke", "--seed", "21"])
            .args(extra)
            .arg("--out")
            .arg(out)
            .arg("--quiet")
            .output()
            .expect("failed to spawn rlnc-experiments sweep");
        assert!(
            output.status.success(),
            "sweep {extra:?} failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
    };
    sweep(&[], &full_path);
    for (i, path) in shard_paths.iter().enumerate() {
        sweep(&["--shard", &format!("{}/3", i + 1)], path);
    }

    // sweep-merge reassembles the shard exports byte-identically.
    let merge = std::process::Command::new(exe)
        .arg("sweep-merge")
        .args(&shard_paths)
        .arg("--out")
        .arg(&merged_path)
        .arg("--quiet")
        .output()
        .expect("failed to spawn sweep-merge");
    assert!(
        merge.status.success(),
        "sweep-merge failed: {}",
        String::from_utf8_lossy(&merge.stderr)
    );
    let full = std::fs::read_to_string(&full_path).unwrap();
    let merged = std::fs::read_to_string(&merged_path).unwrap();
    assert_eq!(full, merged, "merged shard exports must be byte-identical to the full run");

    // Dropping a shard makes the merge incomplete: exit 1 without
    // --allow-partial, exit 0 with it.
    let partial = std::process::Command::new(exe)
        .arg("sweep-merge")
        .args(&shard_paths[..2])
        .arg("--quiet")
        .output()
        .expect("failed to spawn sweep-merge");
    assert_eq!(partial.status.code(), Some(1), "incomplete merge must fail");
    assert!(String::from_utf8_lossy(&partial.stderr).contains("grid points"));
    let partial_ok = std::process::Command::new(exe)
        .arg("sweep-merge")
        .args(&shard_paths[..2])
        .args(["--allow-partial", "--quiet"])
        .output()
        .expect("failed to spawn sweep-merge");
    assert!(partial_ok.status.success());

    // A record conflict (same metadata, different content) is refused.
    let forged_path = tmp.join(format!("rlnc-shard-forged-{pid}.json"));
    let other = {
        let out = tmp.join(format!("rlnc-shard-otherseed-{pid}.json"));
        sweep(&["--shard", "1/3"], &full_path); // reuse full_path as shard 1 at seed 21
        let output = std::process::Command::new(exe)
            .args(["sweep", "--scenario", "fault-matrix", "--scale", "smoke", "--seed", "22"])
            .args(["--shard", "1/3"])
            .arg("--out")
            .arg(&out)
            .arg("--quiet")
            .output()
            .expect("failed to spawn rlnc-experiments sweep");
        assert!(output.status.success());
        std::fs::read_to_string(&out).unwrap().replace("\"master_seed\": 22", "\"master_seed\": 21")
    };
    std::fs::write(&forged_path, other).unwrap();
    let conflict = std::process::Command::new(exe)
        .arg("sweep-merge")
        .arg(&full_path)
        .arg(&forged_path)
        .arg("--quiet")
        .output()
        .expect("failed to spawn sweep-merge");
    assert_eq!(conflict.status.code(), Some(1), "conflicting records must fail the merge");
    assert!(String::from_utf8_lossy(&conflict.stderr).contains("conflicting records"));

    // Malformed --shard specs are usage errors (exit 2) on one line.
    for bad in ["0/4", "5/4", "x/y", "3", "4/0"] {
        let output = std::process::Command::new(exe)
            .args(["sweep", "--scenario", "smoke", "--shard", bad])
            .output()
            .expect("failed to spawn rlnc-experiments sweep");
        assert_eq!(output.status.code(), Some(2), "--shard {bad} must exit 2");
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert_eq!(stderr.trim().lines().count(), 1, "--shard {bad} error:\n{stderr}");
    }
    // A bare --shard with no value is a usage error too.
    let output = std::process::Command::new(exe)
        .args(["sweep", "--scenario", "smoke", "--shard"])
        .output()
        .expect("failed to spawn rlnc-experiments sweep");
    assert_eq!(output.status.code(), Some(2));
    // Bare sweep-merge without inputs as well.
    let output = std::process::Command::new(exe)
        .arg("sweep-merge")
        .output()
        .expect("failed to spawn sweep-merge");
    assert_eq!(output.status.code(), Some(2));

    for path in shard_paths.iter().chain([&full_path, &merged_path, &forged_path]) {
        let _ = std::fs::remove_file(path);
    }
    let _ = std::fs::remove_file(tmp.join(format!("rlnc-shard-otherseed-{pid}.json")));
}

#[test]
fn sweep_merge_combines_all_shard_traces_not_just_the_first() {
    let exe = env!("CARGO_BIN_EXE_rlnc-experiments");
    let tmp = std::env::temp_dir();
    let pid = std::process::id();
    let out_paths: Vec<_> =
        (1..=2).map(|i| tmp.join(format!("rlnc-trmerge-{i}of2-{pid}.json"))).collect();
    let trace_paths: Vec<_> = (1..=2)
        .map(|i| tmp.join(format!("rlnc-trmerge-trace-{i}of2-{pid}.json")))
        .collect();
    let merged_trace = tmp.join(format!("rlnc-trmerge-merged-{pid}.json"));

    for i in 0..2 {
        let output = std::process::Command::new(exe)
            .args(["sweep", "--scenario", "fault-matrix", "--scale", "smoke", "--seed", "9"])
            .args(["--shard", &format!("{}/2", i + 1)])
            .arg("--out")
            .arg(&out_paths[i])
            .arg("--trace-out")
            .arg(&trace_paths[i])
            .arg("--quiet")
            .output()
            .expect("failed to spawn rlnc-experiments sweep");
        assert!(
            output.status.success(),
            "shard sweep failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
    }

    let merge = std::process::Command::new(exe)
        .arg("sweep-merge")
        .args(&out_paths)
        .arg("--trace")
        .arg(&trace_paths[0])
        .arg("--trace")
        .arg(&trace_paths[1])
        .arg("--trace-out")
        .arg(&merged_trace)
        .arg("--quiet")
        .output()
        .expect("failed to spawn sweep-merge");
    assert!(
        merge.status.success(),
        "sweep-merge failed: {}",
        String::from_utf8_lossy(&merge.stderr)
    );

    let counter = |doc: &rlnc_obs::TraceDocument, key: &str| match doc.deterministic.get(key) {
        Some(rlnc_obs::MetricValue::Counter(n)) => *n,
        other => panic!("{key}: expected a counter, got {other:?}"),
    };
    let docs: Vec<_> = trace_paths
        .iter()
        .map(|p| {
            let text = std::fs::read_to_string(p).expect("shard trace written");
            rlnc_experiments::trace::from_json(&text).expect("shard trace parses")
        })
        .collect();
    let merged = rlnc_experiments::trace::from_json(
        &std::fs::read_to_string(&merged_trace).expect("merged trace written"),
    )
    .expect("merged trace parses");

    // Every shard's counters land in the merged document: each shard
    // process records sweep.runs = 1, so the merge must report 2 — a merge
    // that keeps only the first trace would report 1.
    assert_eq!(counter(&merged, "sweep.runs"), 2);
    assert_eq!(
        counter(&merged, "sweep.points.completed"),
        counter(&docs[0], "sweep.points.completed")
            + counter(&docs[1], "sweep.points.completed"),
    );
    // And the whole document equals the library-level merge of the inputs.
    let mut expected = docs[0].clone();
    expected.merge(&docs[1]).expect("shard traces merge");
    assert_eq!(merged.to_json(), expected.to_json());

    for path in out_paths.iter().chain(&trace_paths).chain([&merged_trace]) {
        let _ = std::fs::remove_file(path);
    }
}

/// Kills the resident server on drop so a failing assertion can't leak the
/// child process into the test harness.
struct ServerGuard(std::process::Child);

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn sweep_serve_streams_byte_identical_runs_and_warms_the_plan_cache() {
    let exe = env!("CARGO_BIN_EXE_rlnc-experiments");
    let tmp = std::env::temp_dir();
    let pid = std::process::id();
    let socket = tmp.join(format!("rlnc-serve-cli-{pid}.sock"));
    let endpoint = format!("unix:{}", socket.display());
    let local_path = tmp.join(format!("rlnc-serve-local-{pid}.json"));
    let served_path = tmp.join(format!("rlnc-serve-streamed-{pid}.json"));

    let mut server = ServerGuard(
        std::process::Command::new(exe)
            .args(["sweep-serve", "--listen", &endpoint, "--quiet"])
            .stdout(std::process::Stdio::null())
            .spawn()
            .expect("failed to spawn sweep-serve"),
    );

    let client = |action_args: &[&str]| {
        let output = std::process::Command::new(exe)
            .args(["serve-client", "--connect", &endpoint])
            .args(action_args)
            .arg("--quiet")
            .output()
            .expect("failed to spawn serve-client");
        assert!(
            output.status.success(),
            "serve-client {action_args:?} failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        String::from_utf8_lossy(&output.stdout).into_owned()
    };

    // serve-client retries the connect, so no sleep is needed here.
    let listing = client(&["list-scenarios"]);
    assert!(listing.contains("fault-matrix"), "listing:\n{listing}");

    let run_args = ["run", "--scenario", "smoke", "--scale", "smoke", "--seed", "31"];
    let first = client(
        &[&run_args[..], &["--out", served_path.to_str().unwrap()]].concat(),
    );
    assert!(first.contains("streamed"), "run output:\n{first}");

    // The streamed export is byte-identical to a local run.
    let local = std::process::Command::new(exe)
        .args(["sweep", "--scenario", "smoke", "--scale", "smoke", "--seed", "31"])
        .arg("--out")
        .arg(&local_path)
        .arg("--quiet")
        .output()
        .expect("failed to spawn local sweep");
    assert!(local.status.success());
    assert_eq!(
        std::fs::read_to_string(&served_path).unwrap(),
        std::fs::read_to_string(&local_path).unwrap(),
        "served export must be byte-identical to a local run"
    );

    // An identical repeat request is answered from the warm plan cache:
    // the hits delta on the summary line must be nonzero.
    let repeat = client(&run_args);
    let hits: u64 = repeat
        .lines()
        .find_map(|line| line.split("plan_cache_hits_delta=").nth(1))
        .and_then(|rest| rest.split(&[',', ')'][..]).next())
        .and_then(|digits| digits.parse().ok())
        .expect("run output carries plan_cache_hits_delta");
    assert!(hits > 0, "repeat request must hit the warm cache:\n{repeat}");

    let status = client(&["status"]);
    // list-scenarios, two runs, and the status request itself.
    assert!(status.contains("requests=4"), "status:\n{status}");
    assert!(status.contains("errors=0"), "status:\n{status}");

    client(&["shutdown"]);
    let code = server.0.wait().expect("server exits after shutdown");
    assert!(code.success(), "sweep-serve must exit 0 after shutdown: {code:?}");

    let _ = std::fs::remove_file(&local_path);
    let _ = std::fs::remove_file(&served_path);
}

#[test]
fn serve_subcommands_reject_bad_usage() {
    let exe = env!("CARGO_BIN_EXE_rlnc-experiments");
    for args in [
        &["sweep-serve"][..],
        &["sweep-serve", "--listen", "carrier-pigeon:coop"][..],
        &["serve-client", "status"][..],
        &["serve-client", "--connect", "unix:/tmp/x.sock"][..],
        &["serve-client", "--connect", "unix:/tmp/x.sock", "run", "status"][..],
    ] {
        let output = std::process::Command::new(exe)
            .args(args)
            .output()
            .expect("failed to spawn rlnc-experiments");
        assert_eq!(output.status.code(), Some(2), "{args:?} must be a usage error");
    }
}

#[test]
fn cli_binary_rejects_unknown_experiment_ids_and_bad_scales() {
    let exe = env!("CARGO_BIN_EXE_rlnc-experiments");
    // A typo'd id must fail loudly instead of running nothing and exiting 0.
    let output = std::process::Command::new(exe)
        .args(["--scale", "smoke", "--only", "e99"])
        .output()
        .expect("failed to spawn rlnc-experiments");
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("unknown experiment id"));

    let output = std::process::Command::new(exe)
        .args(["--scale", "warp"])
        .output()
        .expect("failed to spawn rlnc-experiments");
    assert_eq!(output.status.code(), Some(2));

    let output = std::process::Command::new(exe)
        .arg("--markdown")
        .output()
        .expect("failed to spawn rlnc-experiments");
    assert_eq!(output.status.code(), Some(2));
}

//! Smoke coverage of the experiment harness and its CLI: the library entry
//! point (`run_by_id` at `Scale::Smoke`) for the first and last experiments,
//! and the compiled `rlnc-experiments` binary end to end.

use rlnc_experiments::{run_by_id, Scale};

#[test]
fn e1_smoke_run_produces_a_consistent_report() {
    let report = run_by_id("e1", Scale::Smoke).expect("e1 exists");
    assert_eq!(report.id, "E1");
    assert!(report.all_consistent(), "findings: {:?}", report.findings);
    let markdown = report.to_markdown();
    assert!(markdown.contains("E1"));
    assert!(markdown.contains("consistent"));
}

#[test]
fn e10_smoke_run_produces_a_consistent_report() {
    let report = run_by_id("e10", Scale::Smoke).expect("e10 exists");
    assert_eq!(report.id, "E10");
    assert!(report.all_consistent(), "findings: {:?}", report.findings);
    assert!(!report.table.rows.is_empty());
}

#[test]
fn cli_binary_runs_e1_and_e10_at_smoke_scale() {
    let exe = env!("CARGO_BIN_EXE_rlnc-experiments");
    let out_path = std::env::temp_dir().join(format!(
        "rlnc-cli-smoke-{}.md",
        std::process::id()
    ));
    let output = std::process::Command::new(exe)
        .args(["--scale", "smoke", "--only", "e1", "e10"])
        .arg("--markdown")
        .arg(&out_path)
        .output()
        .expect("failed to spawn rlnc-experiments");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "CLI exited with {:?}\nstdout:\n{stdout}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr),
    );
    assert!(stdout.contains("E1"), "stdout missing E1 report:\n{stdout}");
    assert!(stdout.contains("E10"), "stdout missing E10 report:\n{stdout}");
    let written = std::fs::read_to_string(&out_path).expect("markdown report written");
    assert!(written.contains("E1") && written.contains("E10"));
    let _ = std::fs::remove_file(&out_path);
}

#[test]
fn cli_binary_rejects_unknown_arguments() {
    let exe = env!("CARGO_BIN_EXE_rlnc-experiments");
    let output = std::process::Command::new(exe)
        .arg("--definitely-not-a-flag")
        .output()
        .expect("failed to spawn rlnc-experiments");
    assert_eq!(output.status.code(), Some(2));
}

#[test]
fn cli_binary_rejects_unknown_experiment_ids_and_bad_scales() {
    let exe = env!("CARGO_BIN_EXE_rlnc-experiments");
    // A typo'd id must fail loudly instead of running nothing and exiting 0.
    let output = std::process::Command::new(exe)
        .args(["--scale", "smoke", "--only", "e99"])
        .output()
        .expect("failed to spawn rlnc-experiments");
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("unknown experiment id"));

    let output = std::process::Command::new(exe)
        .args(["--scale", "warp"])
        .output()
        .expect("failed to spawn rlnc-experiments");
    assert_eq!(output.status.code(), Some(2));

    let output = std::process::Command::new(exe)
        .arg("--markdown")
        .output()
        .expect("failed to spawn rlnc-experiments");
    assert_eq!(output.status.code(), Some(2));
}

//! Property tests for the trace JSON round-trip and for snapshot merging.
//!
//! * `rlnc_experiments::trace::from_json` is the exact inverse of
//!   `TraceDocument::to_json` — for arbitrary documents, including empty
//!   sections, empty histograms, extreme `u64` values, and metric names
//!   that need JSON escaping.
//! * `MetricsSnapshot::merge` is order-independent: shard-local snapshots
//!   merged in any order produce the same snapshot and the same bytes.
//!   This is the property that lets the parallel sweep executor merge
//!   per-batch observations without caring which worker finishes first.

use proptest::prelude::*;
use rand::Rng;
use rlnc_experiments::trace;
use rlnc_obs::{MetricValue, MetricsSnapshot, TraceDocument};
use rlnc_par::SeedSequence;

/// Characters deliberately including every JSON-escape class the emitter
/// handles: quote, backslash, control characters, and plain text.
const NAME_CHARS: [char; 12] =
    ['a', 'z', '.', '_', '-', '"', '\\', '\n', '\t', '\r', '\u{1}', ' '];

fn arbitrary_name(rng: &mut impl Rng) -> String {
    let len = rng.random_range(1usize..10);
    (0..len)
        .map(|_| NAME_CHARS[rng.random_range(0..NAME_CHARS.len())])
        .collect()
}

fn arbitrary_value(rng: &mut impl Rng) -> MetricValue {
    match rng.random_range(0u32..4) {
        0 => MetricValue::Counter(extreme_u64(rng)),
        1 => MetricValue::Gauge(extreme_u64(rng)),
        2 => {
            // Sorted strictly-increasing bounds; possibly empty (a
            // one-bucket "histogram" is legal and must round-trip).
            let len = rng.random_range(0usize..5);
            let mut bounds = Vec::with_capacity(len);
            let mut next = 0u64;
            for _ in 0..len {
                next += rng.random_range(1u64..1000);
                bounds.push(next);
            }
            let counts = (0..bounds.len() + 1).map(|_| extreme_u64(rng)).collect();
            MetricValue::Histogram {
                bounds,
                counts,
                sum: extreme_u64(rng),
            }
        }
        _ => MetricValue::Span {
            calls: rng.random_range(0u64..1000),
            total_ns: extreme_u64(rng),
            min_ns: extreme_u64(rng),
            max_ns: extreme_u64(rng),
        },
    }
}

/// Mostly small values, occasionally the `u64` extremes that would break
/// a parser routing integers through `f64`.
fn extreme_u64(rng: &mut impl Rng) -> u64 {
    match rng.random_range(0u32..4) {
        0 => u64::MAX,
        1 => u64::MAX - 1,
        2 => 0,
        _ => rng.random_range(0u64..1_000_000),
    }
}

fn arbitrary_document(seed: u64) -> TraceDocument {
    let mut rng = SeedSequence::new(seed).rng();
    let mut doc = TraceDocument::default();
    for _ in 0..rng.random_range(0usize..6) {
        let value = arbitrary_value(&mut rng);
        doc.deterministic.insert(arbitrary_name(&mut rng), value);
    }
    for _ in 0..rng.random_range(0usize..6) {
        let value = arbitrary_value(&mut rng);
        doc.timing.insert(arbitrary_name(&mut rng), value);
    }
    doc
}

/// A shard snapshot over a fixed name/kind vocabulary, so any two shards
/// are merge-compatible (same kind, same histogram bounds per name).
fn arbitrary_shard(rng: &mut impl Rng) -> MetricsSnapshot {
    let mut shard = MetricsSnapshot::new();
    for name in ["c.trials", "c.steps"] {
        if rng.random_range(0u32..3) > 0 {
            shard.insert(name, MetricValue::Counter(rng.random_range(0u64..1_000_000)));
        }
    }
    if rng.random_range(0u32..3) > 0 {
        shard.insert("g.peak", MetricValue::Gauge(rng.random_range(0u64..1_000_000)));
    }
    if rng.random_range(0u32..3) > 0 {
        let counts = (0..4).map(|_| rng.random_range(0u64..1000)).collect();
        shard.insert(
            "h.delivered",
            MetricValue::Histogram {
                bounds: vec![1, 8, 64],
                counts,
                sum: rng.random_range(0u64..100_000),
            },
        );
    }
    if rng.random_range(0u32..3) > 0 {
        let calls = rng.random_range(0u64..50);
        let (min_ns, max_ns) = if calls == 0 {
            (0, 0)
        } else {
            let a = rng.random_range(1u64..1000);
            let b = rng.random_range(1u64..1000);
            (a.min(b), a.max(b))
        };
        shard.insert(
            "s.extract",
            MetricValue::Span {
                calls,
                total_ns: rng.random_range(0u64..1_000_000),
                min_ns,
                max_ns,
            },
        );
    }
    shard
}

fn merge_all(shards: &[&MetricsSnapshot]) -> MetricsSnapshot {
    let mut merged = MetricsSnapshot::new();
    for shard in shards {
        merged.merge(shard).expect("fixed vocabulary is merge-compatible");
    }
    merged
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn trace_documents_round_trip_through_json(seed in 0u64..1_000_000) {
        let doc = arbitrary_document(seed);
        let json = doc.to_json();
        let parsed = trace::from_json(&json)
            .map_err(|e| format!("emitted JSON failed to parse: {e}\n{json}"))?;
        prop_assert_eq!(&parsed, &doc);
        // And re-emitting is byte-stable (canonical form).
        prop_assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn snapshot_merge_is_order_independent(seed in 0u64..1_000_000) {
        let mut rng = SeedSequence::new(seed).rng();
        let a = arbitrary_shard(&mut rng);
        let b = arbitrary_shard(&mut rng);
        let c = arbitrary_shard(&mut rng);
        let abc = merge_all(&[&a, &b, &c]);
        let cba = merge_all(&[&c, &b, &a]);
        let bac = merge_all(&[&b, &a, &c]);
        prop_assert_eq!(&abc, &cba);
        prop_assert_eq!(&abc, &bac);
        prop_assert_eq!(abc.to_json(), cba.to_json());
        // Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
        let mut left = merge_all(&[&a, &b]);
        left.merge(&c).unwrap();
        let mut right = a.clone();
        right.merge(&merge_all(&[&b, &c])).unwrap();
        prop_assert_eq!(left, right);
    }
}

//! End-to-end coverage of the sweep pipeline: run a built-in scenario,
//! export it, parse it back, and resume from the export — everything must
//! be bit-exact.

use rlnc_par::Scale;
use rlnc_sweep::{emit, Registry, SweepExecutor};

#[test]
fn smoke_scenario_runs_exports_and_round_trips() {
    let registry = Registry::builtin();
    let spec = registry.get("smoke").expect("built-in smoke scenario");
    let exec = SweepExecutor::new(Scale::Smoke).with_seed(0xC1);
    let run = exec.run(spec);
    assert_eq!(run.records.len(), spec.grid(Scale::Smoke).len());

    // JSON round-trip is the identity, and emission is byte-deterministic.
    let json = emit::to_json(&run);
    let parsed = emit::from_json(&json).expect("exported JSON parses back");
    assert_eq!(parsed, run);
    assert_eq!(emit::to_json(&parsed), json);
    let rerun = exec.run(spec);
    assert_eq!(emit::to_json(&rerun), json, "same seed must re-emit byte-identical JSON");

    // CSV carries one line per record under the shared header.
    let csv = emit::to_csv(&run);
    assert_eq!(csv.lines().count(), 1 + run.records.len());
    assert!(csv.starts_with(&emit::CSV_COLUMNS.join(",")));

    // Markdown renders every record row.
    let md = emit::to_markdown(&run);
    assert!(md.contains("sweep `smoke`"));
    assert!(md.contains("| torus |"));

    // Resuming from the parsed export recomputes nothing and loses nothing.
    let resumed = exec.resume(spec, &parsed.records);
    assert_eq!(resumed, run);
}

#[test]
fn resilient_boundary_scenario_matches_corollary_1_at_smoke_scale() {
    // The sweep engine must reproduce the E5 statistics: on the yes side
    // (|F| ≤ f) acceptance stays above 1/2, on the no side below 1/2, and
    // every point tracks the theoretical p^|F|.
    let registry = Registry::builtin();
    let spec = registry.get("resilient-boundary").expect("scenario");
    let run = SweepExecutor::new(Scale::Smoke).run(spec);
    for r in &run.records {
        let f = r.param_a as usize;
        let bad = rlnc_sweep::workload::planted_bad_balls(r.n as usize, r.param_b);
        let theory = rlnc_core::resilient::theoretical_acceptance(f, bad);
        assert!(
            (r.p_hat - theory).abs() < 0.05,
            "f={f} planted={} measured {} vs theory {theory}",
            r.param_b,
            r.p_hat
        );
        if bad <= f {
            assert!(r.p_hat > 0.5, "yes-side point below 1/2: {r:?}");
        } else {
            assert!(1.0 - r.p_hat > 0.5, "no-side point above 1/2: {r:?}");
        }
    }
}

//! Shard partition equivalence, pinned across the whole registry: for
//! every built-in scenario and every shard count N in {2, 3, 5}, the
//! concatenation of all N shard runs equals the full run record-for-
//! record, and `emit::merge_runs` over the shard exports reproduces the
//! single-process JSON export byte-for-byte (the property `sweep-merge`
//! and the CI shard job rely on).

use rlnc_par::Scale;
use rlnc_sweep::{emit, Registry, RunRecord, SweepExecutor, SweepRun};

const SHARD_COUNTS: [u64; 3] = [2, 3, 5];
const SEED: u64 = 0x5EED_0008;

#[test]
fn every_scenario_shards_and_merges_byte_identically() {
    let registry = Registry::builtin();
    let exec = SweepExecutor::new(Scale::Smoke).with_seed(SEED);
    for name in registry.names() {
        let spec = registry.get(name).expect("registry scenario");
        let full = exec.run(spec);
        let full_json = emit::to_json(&full);
        for count in SHARD_COUNTS {
            let shards: Vec<SweepRun> =
                (1..=count).map(|i| exec.run_shard(spec, i, count)).collect();

            // Concatenation covers the grid exactly once, record-for-record.
            let mut concat: Vec<RunRecord> =
                shards.iter().flat_map(|s| s.records.iter().cloned()).collect();
            assert_eq!(
                concat.len(),
                full.records.len(),
                "{name} x{count}: shards partition the grid"
            );
            concat.sort_by_key(|r| r.point);
            assert_eq!(concat, full.records, "{name} x{count}: records match bit-for-bit");

            // Merging the shard exports is byte-identical to the
            // single-process export — including through a JSON round-trip,
            // the exact path `sweep-merge` takes over shard files.
            let merged = emit::merge_runs(&shards).expect("merge shards");
            assert_eq!(
                emit::to_json(&merged),
                full_json,
                "{name} x{count}: merged export is byte-identical"
            );
            let reparsed: Vec<SweepRun> = shards
                .iter()
                .map(|s| emit::from_json(&emit::to_json(s)).expect("shard export parses"))
                .collect();
            let merged_from_files = emit::merge_runs(&reparsed).expect("merge parsed shards");
            assert_eq!(emit::to_json(&merged_from_files), full_json);
        }
    }
}

#[test]
fn shard_merge_detects_cross_seed_conflicts() {
    let registry = Registry::builtin();
    let spec = registry.get("smoke").expect("smoke scenario");
    let a = SweepExecutor::new(Scale::Smoke).with_seed(1).run_shard(spec, 1, 2);
    let mut b = SweepExecutor::new(Scale::Smoke).with_seed(2).run_shard(spec, 1, 2);
    // Same master_seed metadata forged, conflicting record content: the
    // merge must refuse rather than silently emit both.
    b.master_seed = a.master_seed;
    let err = emit::merge_runs(&[a, b]).expect_err("conflicting shards rejected");
    assert!(err.contains("conflicting records"), "unexpected error: {err}");
}

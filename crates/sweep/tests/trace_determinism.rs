//! The observability determinism contract, pinned at the sweep layer.
//!
//! `rlnc-obs` splits every export into a *deterministic* section (pure
//! function of the work requested) and a *timing* section (wall clock,
//! scheduling). This test runs the same scenarios through executor
//! variants that change **only** the schedule — default parallel,
//! `.sequential()`, and an odd batch size — and asserts the deterministic
//! section renders to byte-identical JSON every time.
//!
//! The pool-size leg of the contract runs in **subprocesses**: the
//! persistent work-stealing pool reads `RLNC_THREADS` once per process,
//! so each thread count gets its own re-exec of this test binary
//! (guarded by `RLNC_TRACE_CHILD`), and the parent asserts the sweep
//! export plus the deterministic trace section are byte-identical across
//! `RLNC_THREADS ∈ {1, 2, 8}`. Each child also reruns its sweep on the
//! warm pool and asserts the bytes don't move.
//!
//! The registry is process-global, so only one `#[test]` in this binary
//! touches the obs registry in-process: within one binary cargo may
//! interleave tests on multiple threads, and a second obs-touching test
//! would race the `reset()`/`snapshot()` windows. The subprocess parent
//! only spawns children; the child body exits immediately unless its
//! guard variable is set.

use rlnc_sweep::{Registry, SweepExecutor};

/// Runs `configure(executor)` over `scenario` with a clean registry and
/// returns the deterministic section's canonical JSON.
fn deterministic_json(
    scenario: &str,
    configure: impl FnOnce(SweepExecutor) -> SweepExecutor,
) -> String {
    let registry = Registry::builtin();
    let spec = registry.get(scenario).expect("scenario exists");
    let executor = configure(SweepExecutor::new(rlnc_par::Scale::Smoke).with_seed(5));
    rlnc_obs::reset();
    rlnc_obs::set_enabled(true);
    let run = executor.run(spec);
    rlnc_obs::set_enabled(false);
    assert!(!run.records.is_empty(), "{scenario}: sweep produced no records");
    let json = rlnc_obs::snapshot().deterministic_json();
    assert_ne!(json, "{}", "{scenario}: no deterministic metrics collected");
    json
}

#[test]
fn deterministic_section_is_schedule_independent() {
    // fault-matrix exercises rounds + faults + engine; language-matrix
    // exercises the registry-driven plan-cache path; claim2-scan
    // exercises the batched multi-algorithm kernel and the arena lanes.
    for scenario in ["fault-matrix", "language-matrix", "claim2-scan"] {
        let parallel = deterministic_json(scenario, |e| e);
        let sequential = deterministic_json(scenario, |e| e.sequential());
        let odd_batch = deterministic_json(scenario, |e| e.with_batch(7));
        assert_eq!(
            parallel, sequential,
            "{scenario}: parallel vs sequential deterministic sections differ"
        );
        assert_eq!(
            parallel, odd_batch,
            "{scenario}: batch size leaked into the deterministic section"
        );
        // Re-running the same variant is also byte-stable.
        let parallel_again = deterministic_json(scenario, |e| e);
        assert_eq!(parallel, parallel_again, "{scenario}: rerun not reproducible");
    }
}

/// Subprocess body: only runs when re-executed by
/// `exports_are_byte_identical_across_thread_counts` with the guard
/// variable set. Runs both scenarios twice (the second pass hits the
/// already-warm pool), asserts the bytes are identical, and writes the
/// combined sweep-export + deterministic-trace document to the path in
/// `RLNC_TRACE_OUT`.
#[test]
fn child_emit_export_and_trace() {
    if std::env::var("RLNC_TRACE_CHILD").is_err() {
        return;
    }
    let out_path = std::env::var("RLNC_TRACE_OUT").expect("RLNC_TRACE_OUT set");
    let emit_once = || {
        let registry = Registry::builtin();
        let mut combined = String::new();
        for scenario in ["fault-matrix", "language-matrix", "claim2-scan"] {
            let spec = registry.get(scenario).expect("scenario exists");
            let executor = SweepExecutor::new(rlnc_par::Scale::Smoke).with_seed(5);
            rlnc_obs::reset();
            rlnc_obs::set_enabled(true);
            let run = executor.run(spec);
            rlnc_obs::set_enabled(false);
            combined.push_str(&rlnc_sweep::emit::to_json(&run));
            combined.push_str("\n---\n");
            combined.push_str(&rlnc_obs::snapshot().deterministic_json());
            combined.push('\n');
        }
        combined
    };
    let cold = emit_once();
    let warm = emit_once();
    assert_eq!(cold, warm, "warm-pool rerun changed the export bytes");
    std::fs::write(out_path, cold).expect("write child export");
}

#[test]
fn exports_are_byte_identical_across_thread_counts() {
    let exe = std::env::current_exe().expect("test binary path");
    let mut outputs: Vec<(&str, Vec<u8>)> = Vec::new();
    for threads in ["1", "2", "8"] {
        let out_path = std::env::temp_dir().join(format!(
            "rlnc-trace-threads-{threads}-{}.txt",
            std::process::id()
        ));
        let status = std::process::Command::new(&exe)
            .args(["child_emit_export_and_trace", "--exact", "--nocapture"])
            .env("RLNC_THREADS", threads)
            .env("RLNC_TRACE_CHILD", "1")
            .env("RLNC_TRACE_OUT", &out_path)
            .status()
            .expect("spawn child test process");
        assert!(status.success(), "child with RLNC_THREADS={threads} failed");
        let bytes = std::fs::read(&out_path).expect("read child export");
        let _ = std::fs::remove_file(&out_path);
        assert!(!bytes.is_empty(), "child with RLNC_THREADS={threads} wrote nothing");
        outputs.push((threads, bytes));
    }
    let (base_threads, base) = &outputs[0];
    for (threads, bytes) in &outputs[1..] {
        assert_eq!(
            bytes, base,
            "RLNC_THREADS={threads} export differs from RLNC_THREADS={base_threads}"
        );
    }
}

//! The observability determinism contract, pinned at the sweep layer.
//!
//! `rlnc-obs` splits every export into a *deterministic* section (pure
//! function of the work requested) and a *timing* section (wall clock,
//! scheduling). This test runs the same scenarios through executor
//! variants that change **only** the schedule — default parallel,
//! `.sequential()`, and an odd batch size — and asserts the deterministic
//! section renders to byte-identical JSON every time.
//!
//! The registry is process-global, so this is a single `#[test]` in its
//! own integration binary: within one binary cargo may interleave tests
//! on multiple threads, and a second obs-touching test would race the
//! `reset()`/`snapshot()` windows.

use rlnc_sweep::{Registry, SweepExecutor};

/// Runs `configure(executor)` over `scenario` with a clean registry and
/// returns the deterministic section's canonical JSON.
fn deterministic_json(
    scenario: &str,
    configure: impl FnOnce(SweepExecutor) -> SweepExecutor,
) -> String {
    let registry = Registry::builtin();
    let spec = registry.get(scenario).expect("scenario exists");
    let executor = configure(SweepExecutor::new(rlnc_par::Scale::Smoke).with_seed(5));
    rlnc_obs::reset();
    rlnc_obs::set_enabled(true);
    let run = executor.run(spec);
    rlnc_obs::set_enabled(false);
    assert!(!run.records.is_empty(), "{scenario}: sweep produced no records");
    let json = rlnc_obs::snapshot().deterministic_json();
    assert_ne!(json, "{}", "{scenario}: no deterministic metrics collected");
    json
}

#[test]
fn deterministic_section_is_schedule_independent() {
    // fault-matrix exercises rounds + faults + engine; language-matrix
    // exercises the registry-driven plan-cache path.
    for scenario in ["fault-matrix", "language-matrix"] {
        let parallel = deterministic_json(scenario, |e| e);
        let sequential = deterministic_json(scenario, |e| e.sequential());
        let odd_batch = deterministic_json(scenario, |e| e.with_batch(7));
        assert_eq!(
            parallel, sequential,
            "{scenario}: parallel vs sequential deterministic sections differ"
        );
        assert_eq!(
            parallel, odd_batch,
            "{scenario}: batch size leaked into the deterministic section"
        );
        // Re-running the same variant is also byte-stable.
        let parallel_again = deterministic_json(scenario, |e| e);
        assert_eq!(parallel, parallel_again, "{scenario}: rerun not reproducible");
    }
}

//! # rlnc-sweep — the declarative scenario-sweep engine
//!
//! The paper's claims (Theorem 1, Corollary 1) are statements over
//! *families* of instances — graph family × identity scheme × algorithm ×
//! language/relaxation — and the experiment drivers in `rlnc-experiments`
//! all need the same machinery to quantify over such families: build a grid
//! of configurations, run a batch of Monte-Carlo trials at every grid
//! point, and collect the estimates. This crate turns that pattern into a
//! first-class subsystem:
//!
//! * [`spec`] — [`ScenarioSpec`]: a named grid over graph [`Family`],
//!   size range, [`IdScheme`], workload parameters, and a trial budget.
//! * [`workload`] — the [`Workload`] kernels a grid point can run
//!   (ε-slack random coloring, the Corollary-1 resilient-decider boundary,
//!   Claim-3 disjoint-union boosting).
//! * [`registry`] — a [`Registry`] of named, ready-to-run scenarios
//!   assembled from `rlnc-langs` and `rlnc-graph` building blocks; the
//!   `rlnc-experiments sweep` subcommand looks scenarios up here.
//! * [`executor`] — [`SweepExecutor`]: a batched parallel executor that
//!   derives every trial's [`rlnc_par::SeedSequence`] from
//!   `(scenario, grid point, trial)`, so runs are bit-reproducible
//!   regardless of thread scheduling or batch size, and resumable from
//!   previously exported records.
//! * [`record`] — structured [`RunRecord`] results ([`SweepRun`] bundles
//!   them with the scenario metadata).
//! * [`emit`] — deterministic JSON / CSV / markdown emitters plus a JSON
//!   parser, so exported runs round-trip exactly (the CI smoke check and
//!   the executor's resume path both rely on this).
//!
//! ## Example
//!
//! ```
//! use rlnc_par::Scale;
//! use rlnc_sweep::{Registry, SweepExecutor};
//!
//! let registry = Registry::builtin();
//! let spec = registry.get("smoke").expect("built-in scenario");
//! let run = SweepExecutor::new(Scale::Smoke).with_seed(7).run(spec);
//! assert_eq!(run.records.len(), spec.grid(Scale::Smoke).len());
//! // Export and re-import without losing a bit.
//! let json = rlnc_sweep::emit::to_json(&run);
//! assert_eq!(rlnc_sweep::emit::from_json(&json).unwrap(), run);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod emit;
pub mod executor;
pub mod record;
pub mod registry;
pub mod spec;
pub mod workload;

pub use executor::{SweepExecutor, DEFAULT_SWEEP_SEED};
pub use record::{RunRecord, SweepRun};
pub use registry::Registry;
pub use spec::{GridPoint, IdScheme, Params, ScenarioSpec};
pub use workload::{decode_fault_params, Workload};

// Re-exported so scenario authors don't need a direct rlnc-graph dep.
pub use rlnc_graph::generators::Family;

//! The batched parallel sweep executor.
//!
//! ## Seed discipline
//!
//! Every trial's random stream is pinned by the path
//! `(scenario, grid point, trial)` through a [`SeedSequence`] tree:
//!
//! ```text
//! SeedSequence::new(master_seed)
//!   .child(fnv1a64(scenario name))     // scenario branch
//!   .child(point.index)                // grid-point branch
//!   .child(0)                          // setup stream (ids, ...)
//!   .child(1).child(trial)             // trial stream
//! ```
//!
//! Nothing depends on thread scheduling or batch size, so a sweep is
//! bit-reproducible; and because each grid point's records are derived
//! independently, a sweep is resumable: feed previously exported records
//! back via [`SweepExecutor::resume`] and only the missing points run.

use crate::record::{RunRecord, SweepRun};
use crate::spec::{GridPoint, ScenarioSpec};
use rlnc_obs::{LazyCounter, LazySpan, Section};
use rlnc_par::rng::SeedSequence;
use rlnc_par::stats::Estimate;
use rlnc_par::sweep::{balanced_ranges, sweep, sweep_sequential};
use rlnc_par::Scale;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

// Sweep-level observability: runs, freshly computed grid points, and
// trials are functions of (spec, scale, resume set) alone — deterministic.
// The resume span is wall-clock — timing.
static OBS_RUNS: LazyCounter = LazyCounter::new("sweep.runs", Section::Deterministic);
static OBS_POINTS: LazyCounter =
    LazyCounter::new("sweep.points.completed", Section::Deterministic);
static OBS_TRIALS: LazyCounter = LazyCounter::new("sweep.trials", Section::Deterministic);
static OBS_RESUME_SPAN: LazySpan = LazySpan::new("sweep.resume");

/// Default master seed of the sweep engine (overridable per run and from
/// the CLI's `--seed`).
pub const DEFAULT_SWEEP_SEED: u64 = 0x5EED_2015_0613;

/// 64-bit FNV-1a hash of a string — maps a scenario name to its branch of
/// the seed tree.
pub fn scenario_tag(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs [`ScenarioSpec`]s: materializes the grid, executes trial batches
/// in parallel, and collects [`RunRecord`]s.
#[derive(Debug, Clone, Copy)]
pub struct SweepExecutor {
    scale: Scale,
    master_seed: u64,
    batch: u64,
    parallel: bool,
    progress: bool,
}

impl SweepExecutor {
    /// Creates an executor at the given scale with the default seed,
    /// parallel execution, and 256-trial batches.
    pub fn new(scale: Scale) -> Self {
        SweepExecutor {
            scale,
            master_seed: DEFAULT_SWEEP_SEED,
            batch: 256,
            parallel: true,
            progress: false,
        }
    }

    /// Enables live per-point progress reporting: one
    /// `[sweep] <scenario>: <done>/<total> points` line on stderr per
    /// completed grid point (the CLI's `--progress`). Results are
    /// unaffected; stdout and exports stay byte-identical.
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    /// Overrides the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Overrides the batch size (trials per parallel work item). Results
    /// are independent of this knob; it only shapes load balancing.
    ///
    /// # Panics
    /// Panics if `batch` is zero.
    pub fn with_batch(mut self, batch: u64) -> Self {
        assert!(batch > 0, "batch size must be positive");
        self.batch = batch;
        self
    }

    /// Forces sequential execution (for debugging or nested contexts).
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// The scale this executor runs at.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The master seed this executor derives every stream from.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// The seed branch of a scenario under this executor's master seed.
    pub fn scenario_sequence(&self, name: &str) -> SeedSequence {
        SeedSequence::new(self.master_seed).child(scenario_tag(name))
    }

    /// Runs the full grid of `spec`.
    ///
    /// # Panics
    /// Panics if `spec` fails [`ScenarioSpec::validate`].
    pub fn run(&self, spec: &ScenarioSpec) -> SweepRun {
        self.resume(spec, &[])
    }

    /// Runs shard `index` of `count` of `spec`'s grid: the round-robin
    /// subset of points with `point.index % count == index - 1` (shards are
    /// 1-based, balanced, and stable under re-runs). Each grid point's seed
    /// branch depends only on its index, so concatenating the records of
    /// all `count` shards reproduces a full [`run`](Self::run)
    /// bit-for-bit (see `emit::merge_runs`).
    ///
    /// # Panics
    /// Panics if `spec` is invalid or `(index, count)` is not a valid
    /// 1-based shard (`1 <= index <= count`). The CLI validates `--shard`
    /// before calling through (`rlnc-serve`'s `ShardSpec::parse`).
    pub fn run_shard(&self, spec: &ScenarioSpec, index: u64, count: u64) -> SweepRun {
        self.resume_shard(spec, &[], index, count)
    }

    /// [`resume`](Self::resume) restricted to shard `index` of `count`
    /// (see [`run_shard`](Self::run_shard)).
    ///
    /// # Panics
    /// Panics if `spec` is invalid or the shard coordinates are.
    pub fn resume_shard(
        &self,
        spec: &ScenarioSpec,
        existing: &[RunRecord],
        index: u64,
        count: u64,
    ) -> SweepRun {
        assert!(
            count >= 1 && index >= 1 && index <= count,
            "invalid shard {index}/{count}: need 1 <= index <= count"
        );
        self.resume_where(spec, existing, |p| p.index % count == index - 1)
    }

    /// Runs `spec`, skipping grid points for which `existing` already holds
    /// a matching record (same scenario, point index, grid coordinates,
    /// trial count, and seed — i.e. a record this executor would reproduce
    /// bit-for-bit). Records are returned in grid order regardless of how
    /// `existing` was ordered, so a resumed run equals a fresh one.
    ///
    /// # Panics
    /// Panics if `spec` fails [`ScenarioSpec::validate`].
    pub fn resume(&self, spec: &ScenarioSpec, existing: &[RunRecord]) -> SweepRun {
        self.resume_where(spec, existing, |_| true)
    }

    /// The general run path [`resume`](Self::resume) and the shard drivers
    /// share: runs exactly the grid points selected by `keep`, reusing
    /// matching records from `existing`. The returned run carries only the
    /// kept points' records, in grid order; because every point's seed
    /// branch and workload setup are derived independently, a filtered run
    /// computes records bit-identical to the same points of a full run.
    ///
    /// # Panics
    /// Panics if `spec` fails [`ScenarioSpec::validate`].
    pub fn resume_where(
        &self,
        spec: &ScenarioSpec,
        existing: &[RunRecord],
        keep: impl Fn(&GridPoint) -> bool,
    ) -> SweepRun {
        if let Err(e) = spec.validate() {
            panic!("invalid scenario: {e}");
        }
        let _span = OBS_RESUME_SPAN.start();
        OBS_RUNS.inc();
        let points: Vec<GridPoint> =
            spec.grid(self.scale).into_iter().filter(|p| keep(p)).collect();
        let scenario_seq = self.scenario_sequence(&spec.name);

        let reusable: HashMap<u64, &RunRecord> = existing
            .iter()
            .filter(|r| r.scenario == spec.name)
            .map(|r| (r.point, r))
            .collect();

        let todo: Vec<&GridPoint> = points
            .iter()
            .filter(|p| match reusable.get(&p.index) {
                Some(r) => !record_matches_point(r, p, scenario_seq, spec),
                None => true,
            })
            .collect();

        let computed = self.compute_points(spec, &todo, scenario_seq);

        let records = points
            .iter()
            .map(|p| match computed.get(&p.index) {
                Some(r) => r.clone(),
                None => (*reusable[&p.index]).clone(),
            })
            .collect();

        SweepRun {
            scenario: spec.name.clone(),
            description: spec.description.clone(),
            workload: spec.workload.name().to_string(),
            scale: self.scale.name().to_string(),
            master_seed: self.master_seed,
            records,
        }
    }

    /// Streaming variant of [`resume_where`](Self::resume_where): runs the
    /// kept grid points one at a time (trial batches still execute in
    /// parallel within a point) and hands each point's record to
    /// `on_record` as soon as it completes, in grid order. Validation,
    /// grid enumeration, and run-level obs accounting (`sweep.runs`, the
    /// resume span) happen once per call, so a streamed run counts as one
    /// run and its point/trial counters sum to the non-streaming totals;
    /// records are bit-identical to the same points of a non-streamed run.
    /// Returns the number of records delivered, or the first `on_record`
    /// error (remaining points are skipped).
    ///
    /// # Panics
    /// Panics if `spec` fails [`ScenarioSpec::validate`].
    pub fn stream_where<E>(
        &self,
        spec: &ScenarioSpec,
        existing: &[RunRecord],
        keep: impl Fn(&GridPoint) -> bool,
        mut on_record: impl FnMut(RunRecord) -> Result<(), E>,
    ) -> Result<u64, E> {
        if let Err(e) = spec.validate() {
            panic!("invalid scenario: {e}");
        }
        let _span = OBS_RESUME_SPAN.start();
        OBS_RUNS.inc();
        let points: Vec<GridPoint> =
            spec.grid(self.scale).into_iter().filter(|p| keep(p)).collect();
        let scenario_seq = self.scenario_sequence(&spec.name);

        let reusable: HashMap<u64, &RunRecord> = existing
            .iter()
            .filter(|r| r.scenario == spec.name)
            .map(|r| (r.point, r))
            .collect();

        let mut streamed = 0u64;
        for p in &points {
            let record = match reusable.get(&p.index) {
                Some(r) if record_matches_point(r, p, scenario_seq, spec) => (*r).clone(),
                _ => self
                    .compute_points(spec, &[p], scenario_seq)
                    .remove(&p.index)
                    .expect("compute_points yields a record per todo point"),
            };
            on_record(record)?;
            streamed += 1;
        }
        Ok(streamed)
    }

    /// The execution core shared by [`resume_where`](Self::resume_where)
    /// and [`stream_where`](Self::stream_where): per-point setup, parallel
    /// trial batches, and the schedule-independent fold into
    /// [`RunRecord`]s, keyed by grid-point index.
    fn compute_points(
        &self,
        spec: &ScenarioSpec,
        todo: &[&GridPoint],
        scenario_seq: SeedSequence,
    ) -> HashMap<u64, RunRecord> {
        // Per-point setup once; trial batches share it read-only.
        let prepared: Vec<_> = todo
            .iter()
            .map(|p| {
                let point_seq = scenario_seq.child(p.index);
                (*p, point_seq, spec.workload.prepare(p, point_seq))
            })
            .collect();

        // Flatten (point, trial range) work items so small grids with large
        // trial budgets still saturate the thread pool.
        let items: Vec<(usize, std::ops::Range<usize>)> = prepared
            .iter()
            .enumerate()
            .flat_map(|(slot, (p, _, _))| {
                let chunks = (p.trials.div_ceil(self.batch)).max(1) as usize;
                balanced_ranges(p.trials as usize, chunks)
                    .into_iter()
                    .map(move |r| (slot, r))
            })
            .collect();

        // Per-point progress bookkeeping (only when requested): a slot is
        // done when its last trial range finishes, whichever worker ran it.
        let progress = self.progress.then(|| {
            let mut per_slot = vec![0u64; prepared.len()];
            for &(slot, _) in &items {
                per_slot[slot] += 1;
            }
            let remaining: Vec<AtomicU64> = per_slot.into_iter().map(AtomicU64::new).collect();
            (remaining, AtomicU64::new(0))
        });
        let total_points = prepared.len();

        let run_item = |&(slot, ref range): &(usize, std::ops::Range<usize>)| {
            let (_, point_seq, prep) = &prepared[slot];
            let trial_root = point_seq.child(1);
            let mut scratch = prep.scratch();
            let mut successes = 0u64;
            let mut values = Vec::with_capacity(range.len());
            for trial in range.clone() {
                let outcome = prep.run_trial_with(&mut scratch, trial_root.child(trial as u64));
                successes += u64::from(outcome.success);
                values.push(outcome.value);
            }
            if let Some((remaining, done)) = &progress {
                if remaining[slot].fetch_sub(1, Ordering::AcqRel) == 1 {
                    let finished = done.fetch_add(1, Ordering::AcqRel) + 1;
                    eprintln!("[sweep] {}: {finished}/{total_points} points", spec.name);
                }
            }
            (slot, successes, values)
        };
        let partials: Vec<(usize, u64, Vec<f64>)> = if self.parallel {
            sweep(items, run_item)
        } else {
            sweep_sequential(items, run_item)
        };

        // Items arrive in submission order (ascending trial ranges per
        // slot), so concatenating value chunks restores trial order; the
        // left-fold sum below is then independent of batch size and thread
        // schedule, keeping mean_value bit-reproducible.
        let mut successes = vec![0u64; prepared.len()];
        let mut values: Vec<Vec<f64>> = vec![Vec::new(); prepared.len()];
        for (slot, succ, chunk) in partials {
            successes[slot] += succ;
            values[slot].extend(chunk);
        }
        if rlnc_obs::enabled() {
            OBS_POINTS.add(prepared.len() as u64);
            OBS_TRIALS.add(prepared.iter().map(|(p, _, _)| p.trials).sum());
        }
        let value_sums: Vec<f64> = values.iter().map(|v| v.iter().sum()).collect();

        prepared
            .iter()
            .enumerate()
            .map(|(slot, (p, point_seq, _))| {
                let est = Estimate::from_counts(successes[slot], p.trials);
                let record = RunRecord {
                    scenario: spec.name.clone(),
                    point: p.index,
                    family: p.family.name().to_string(),
                    n: p.n as u64,
                    id_scheme: p.id_scheme.name(),
                    workload: spec.workload.name().to_string(),
                    param_a: p.params.a,
                    param_b: p.params.b,
                    trials: p.trials,
                    seed: point_seq.seed(),
                    successes: successes[slot],
                    p_hat: est.p_hat,
                    lower: est.lower,
                    upper: est.upper,
                    mean_value: value_sums[slot] / p.trials as f64,
                };
                (p.index, record)
            })
            .collect()
    }
}

/// Returns `true` if `record` pins exactly the work this executor would do
/// at `point` (so re-running it is provably redundant).
fn record_matches_point(
    record: &RunRecord,
    point: &GridPoint,
    scenario_seq: SeedSequence,
    spec: &ScenarioSpec,
) -> bool {
    record.point == point.index
        && record.family == point.family.name()
        && record.n == point.n as u64
        && record.id_scheme == point.id_scheme.name()
        && record.workload == spec.workload.name()
        && record.param_a == point.params.a
        && record.param_b == point.params.b
        && record.trials == point.trials
        && record.seed == scenario_seq.child(point.index).seed()
        && record.successes <= record.trials
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn smoke_spec() -> ScenarioSpec {
        Registry::builtin().get("smoke").expect("smoke scenario").clone()
    }

    #[test]
    fn runs_are_bit_reproducible_across_schedules_and_batching() {
        let spec = smoke_spec();
        let a = SweepExecutor::new(Scale::Smoke).with_seed(11).run(&spec);
        let b = SweepExecutor::new(Scale::Smoke).with_seed(11).run(&spec);
        assert_eq!(a, b);
        let sequential = SweepExecutor::new(Scale::Smoke).with_seed(11).sequential().run(&spec);
        assert_eq!(a, sequential);
        let odd_batches = SweepExecutor::new(Scale::Smoke).with_seed(11).with_batch(7).run(&spec);
        assert_eq!(a, odd_batches);
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let spec = smoke_spec();
        let a = SweepExecutor::new(Scale::Smoke).with_seed(1).run(&spec);
        let b = SweepExecutor::new(Scale::Smoke).with_seed(2).run(&spec);
        assert_ne!(
            a.records.iter().map(|r| r.seed).collect::<Vec<_>>(),
            b.records.iter().map(|r| r.seed).collect::<Vec<_>>()
        );
    }

    #[test]
    fn resume_reuses_matching_records_and_fills_the_rest() {
        let spec = smoke_spec();
        let exec = SweepExecutor::new(Scale::Smoke).with_seed(23);
        let full = exec.run(&spec);
        assert!(full.records.len() >= 2);
        let partial = &full.records[..full.records.len() / 2];
        let resumed = exec.resume(&spec, partial);
        assert_eq!(resumed, full);
        // Records from a different seed don't match and are recomputed.
        let stale = SweepExecutor::new(Scale::Smoke).with_seed(99).run(&spec);
        let recomputed = exec.resume(&spec, &stale.records);
        assert_eq!(recomputed, full);
    }

    #[test]
    fn records_carry_the_grid_coordinates() {
        let spec = smoke_spec();
        let run = SweepExecutor::new(Scale::Smoke).run(&spec);
        let grid = spec.grid(Scale::Smoke);
        assert_eq!(run.records.len(), grid.len());
        for (record, point) in run.records.iter().zip(&grid) {
            assert_eq!(record.point, point.index);
            assert_eq!(record.family, point.family.name());
            assert_eq!(record.trials, point.trials);
            assert!(record.successes <= record.trials);
            assert!((0.0..=1.0).contains(&record.p_hat));
            assert!(record.lower <= record.p_hat && record.p_hat <= record.upper);
        }
    }

    #[test]
    fn scenario_tags_separate_scenarios() {
        assert_ne!(scenario_tag("a"), scenario_tag("b"));
        assert_eq!(scenario_tag("smoke"), scenario_tag("smoke"));
        let exec = SweepExecutor::new(Scale::Smoke).with_seed(5);
        assert_ne!(
            exec.scenario_sequence("a").seed(),
            exec.scenario_sequence("b").seed()
        );
    }

    #[test]
    fn shard_runs_partition_the_grid_and_match_the_full_run() {
        let spec = smoke_spec();
        let exec = SweepExecutor::new(Scale::Smoke).with_seed(77);
        let full = exec.run(&spec);
        for count in [2u64, 3] {
            let shards: Vec<SweepRun> =
                (1..=count).map(|i| exec.run_shard(&spec, i, count)).collect();
            // Shards are disjoint, cover the grid, and reproduce the full
            // run's records bit-for-bit.
            let mut all: Vec<RunRecord> =
                shards.iter().flat_map(|s| s.records.iter().cloned()).collect();
            assert_eq!(all.len(), full.records.len());
            all.sort_by_key(|r| r.point);
            assert_eq!(all, full.records);
            for (i, shard) in shards.iter().enumerate() {
                assert!(shard.records.iter().all(|r| r.point % count == i as u64));
            }
        }
    }

    #[test]
    fn stream_where_matches_resume_where_and_stops_on_error() {
        let spec = smoke_spec();
        let exec = SweepExecutor::new(Scale::Smoke).with_seed(17);
        let full = exec.run(&spec);

        // Streaming the full grid delivers the same records in grid order.
        let mut streamed = Vec::new();
        let n = exec
            .stream_where(&spec, &[], |_| true, |r| {
                streamed.push(r);
                Ok::<(), ()>(())
            })
            .unwrap();
        assert_eq!(n as usize, full.records.len());
        assert_eq!(streamed, full.records);

        // A shard filter with matching existing records re-serves them.
        let shard: Vec<RunRecord> =
            full.records.iter().filter(|r| r.point % 2 == 0).cloned().collect();
        assert!(!shard.is_empty());
        let mut resumed = Vec::new();
        exec.stream_where(&spec, &shard, |p| p.index % 2 == 0, |r| {
            resumed.push(r);
            Ok::<(), ()>(())
        })
        .unwrap();
        assert_eq!(resumed, shard);

        // An on_record error propagates and stops the stream.
        let mut delivered = 0;
        let err = exec.stream_where(&spec, &[], |_| true, |_| {
            delivered += 1;
            Err("stop")
        });
        assert_eq!(err, Err("stop"));
        assert_eq!(delivered, 1);
    }

    #[test]
    fn shard_runs_resume_like_full_runs() {
        let spec = smoke_spec();
        let exec = SweepExecutor::new(Scale::Smoke).with_seed(31);
        let shard = exec.run_shard(&spec, 2, 2);
        let resumed = exec.resume_shard(&spec, &shard.records, 2, 2);
        assert_eq!(resumed, shard);
    }

    #[test]
    #[should_panic(expected = "invalid shard")]
    fn zero_based_shard_indices_are_rejected() {
        let spec = smoke_spec();
        let _ = SweepExecutor::new(Scale::Smoke).run_shard(&spec, 0, 4);
    }

    #[test]
    #[should_panic(expected = "invalid shard")]
    fn out_of_range_shard_indices_are_rejected() {
        let spec = smoke_spec();
        let _ = SweepExecutor::new(Scale::Smoke).run_shard(&spec, 5, 4);
    }

    #[test]
    #[should_panic(expected = "invalid scenario")]
    fn invalid_specs_are_rejected() {
        let mut spec = smoke_spec();
        spec.sizes.clear();
        let _ = SweepExecutor::new(Scale::Smoke).run(&spec);
    }
}

//! Structured sweep results: one [`RunRecord`] per grid point, bundled
//! into a [`SweepRun`] with the scenario metadata needed to reproduce it.

use serde::{Deserialize, Serialize};

/// The result of all Monte-Carlo trials at one grid point.
///
/// Records are plain data: every field either identifies the grid point
/// (scenario, point index, family, size, identity scheme, workload,
/// parameters, seed) or reports the measurement (trial count, successes,
/// Wilson interval, mean trial value). Equality is exact, which is what
/// the resume path and the JSON round-trip tests rely on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Scenario name this record belongs to.
    pub scenario: String,
    /// Grid-point index within the scenario's enumeration order.
    pub point: u64,
    /// Graph family name (see [`rlnc_graph::generators::Family::name`]).
    pub family: String,
    /// Target node count of the grid point.
    pub n: u64,
    /// Identity-scheme name.
    pub id_scheme: String,
    /// Workload kernel name.
    pub workload: String,
    /// Primary workload parameter.
    pub param_a: u64,
    /// Secondary workload parameter.
    pub param_b: u64,
    /// Number of Monte-Carlo trials run.
    pub trials: u64,
    /// The grid point's seed (the raw state of its [`rlnc_par::SeedSequence`]
    /// branch) — together with the scenario name this pins every trial's
    /// random stream.
    pub seed: u64,
    /// Number of successful trials.
    pub successes: u64,
    /// Point estimate `successes / trials`.
    pub p_hat: f64,
    /// Lower end of the 95% Wilson score interval.
    pub lower: f64,
    /// Upper end of the 95% Wilson score interval.
    pub upper: f64,
    /// Mean of the per-trial real values (for kernels that measure more
    /// than a boolean, e.g. the improper-node fraction).
    pub mean_value: f64,
}

/// A completed sweep: scenario metadata plus one record per grid point, in
/// grid enumeration order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepRun {
    /// Scenario name.
    pub scenario: String,
    /// Scenario description.
    pub description: String,
    /// Workload kernel name.
    pub workload: String,
    /// The scale the sweep ran at (`smoke`/`standard`/`full`).
    pub scale: String,
    /// The executor's master seed.
    pub master_seed: u64,
    /// One record per grid point.
    pub records: Vec<RunRecord>,
}

impl SweepRun {
    /// Renders the run as a GitHub-flavoured markdown section.
    pub fn to_markdown(&self) -> String {
        let mut out = format!(
            "## sweep `{}` — {}\n\n*workload:* {} · *scale:* {} · *master seed:* {}\n\n",
            self.scenario, self.description, self.workload, self.scale, self.master_seed
        );
        out.push_str("| point | family | n | ids | a | b | trials | successes | p̂ | 95% CI | mean value |\n");
        out.push_str("|---|---|---|---|---|---|---|---|---|---|---|\n");
        for r in &self.records {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} | {} | {:.4} | [{:.4}, {:.4}] | {:.4} |\n",
                r.point,
                r.family,
                r.n,
                r.id_scheme,
                r.param_a,
                r.param_b,
                r.trials,
                r.successes,
                r.p_hat,
                r.lower,
                r.upper,
                r.mean_value
            ));
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn demo_record(point: u64) -> RunRecord {
        RunRecord {
            scenario: "demo".into(),
            point,
            family: "cycle".into(),
            n: 36,
            id_scheme: "consecutive".into(),
            workload: "slack-coloring".into(),
            param_a: 0,
            param_b: 0,
            trials: 100,
            seed: 0xDEAD_BEEF_0BAD_F00D,
            successes: 61,
            p_hat: 0.61,
            lower: 0.512,
            upper: 0.7,
            mean_value: 0.55,
        }
    }

    #[test]
    fn markdown_rendering_includes_every_record() {
        let run = SweepRun {
            scenario: "demo".into(),
            description: "demo sweep".into(),
            workload: "slack-coloring".into(),
            scale: "smoke".into(),
            master_seed: 42,
            records: vec![demo_record(0), demo_record(1)],
        };
        let md = run.to_markdown();
        assert!(md.contains("sweep `demo`"));
        assert_eq!(md.matches("| cycle |").count(), 2);
        assert!(md.contains("0.6100"));
    }
}

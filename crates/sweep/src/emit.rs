//! Deterministic exporters for sweep results: JSON (with an exact
//! parser, so exports round-trip and resumed runs can reload them), CSV,
//! and markdown.
//!
//! The vendored `serde` is a no-op API stub (this workspace builds
//! hermetically, without a serialization backend), so the formats here are
//! hand-rolled: fixed key order, `u64` printed exactly, `f64` printed via
//! Rust's shortest-round-trip formatting — re-running a sweep with the
//! same seed therefore produces byte-identical files.

use crate::record::{RunRecord, SweepRun};

/// Column order shared by the CSV emitter and header checks.
pub const CSV_COLUMNS: [&str; 15] = [
    "scenario",
    "point",
    "family",
    "n",
    "id_scheme",
    "workload",
    "param_a",
    "param_b",
    "trials",
    "seed",
    "successes",
    "p_hat",
    "lower",
    "upper",
    "mean_value",
];

/// Formats a float so that parsing the text back yields the identical bit
/// pattern (Rust's `{}` for `f64` is shortest-round-trip).
fn fmt_f64(x: f64) -> String {
    assert!(x.is_finite(), "sweep records must hold finite values, got {x}");
    format!("{x}")
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes one record as a single-line JSON object — the exact byte
/// form embedded in [`to_json`] exports and streamed over the
/// `sweep-serve` wire protocol (`rlnc-serve`), so a client reassembling
/// streamed records re-exports byte-identical documents.
pub fn record_json(r: &RunRecord) -> String {
    format!(
        concat!(
            "{{\"scenario\":\"{}\",\"point\":{},\"family\":\"{}\",\"n\":{},",
            "\"id_scheme\":\"{}\",\"workload\":\"{}\",\"param_a\":{},\"param_b\":{},",
            "\"trials\":{},\"seed\":{},\"successes\":{},\"p_hat\":{},\"lower\":{},",
            "\"upper\":{},\"mean_value\":{}}}"
        ),
        escape_json(&r.scenario),
        r.point,
        escape_json(&r.family),
        r.n,
        escape_json(&r.id_scheme),
        escape_json(&r.workload),
        r.param_a,
        r.param_b,
        r.trials,
        r.seed,
        r.successes,
        fmt_f64(r.p_hat),
        fmt_f64(r.lower),
        fmt_f64(r.upper),
        fmt_f64(r.mean_value)
    )
}

/// Serializes a run as deterministic JSON (one record per line).
pub fn to_json(run: &SweepRun) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"scenario\": \"{}\",\n", escape_json(&run.scenario)));
    out.push_str(&format!("  \"description\": \"{}\",\n", escape_json(&run.description)));
    out.push_str(&format!("  \"workload\": \"{}\",\n", escape_json(&run.workload)));
    out.push_str(&format!("  \"scale\": \"{}\",\n", escape_json(&run.scale)));
    out.push_str(&format!("  \"master_seed\": {},\n", run.master_seed));
    out.push_str("  \"records\": [\n");
    for (i, r) in run.records.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&record_json(r));
        out.push_str(if i + 1 < run.records.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Serializes a run's records as CSV with the [`CSV_COLUMNS`] header.
pub fn to_csv(run: &SweepRun) -> String {
    let mut out = CSV_COLUMNS.join(",");
    out.push('\n');
    for r in &run.records {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            r.scenario,
            r.point,
            r.family,
            r.n,
            r.id_scheme,
            r.workload,
            r.param_a,
            r.param_b,
            r.trials,
            r.seed,
            r.successes,
            fmt_f64(r.p_hat),
            fmt_f64(r.lower),
            fmt_f64(r.upper),
            fmt_f64(r.mean_value)
        ));
    }
    out
}

/// Serializes a run as a markdown section (see [`SweepRun::to_markdown`]).
pub fn to_markdown(run: &SweepRun) -> String {
    run.to_markdown()
}

/// Parses JSON previously produced by [`to_json`] back into a [`SweepRun`].
///
/// The parser accepts general JSON (whitespace, escapes, any key order)
/// but requires every [`RunRecord`] field to be present with the right
/// type; [`to_json`] → [`from_json`] is the identity.
pub fn from_json(text: &str) -> Result<SweepRun, String> {
    let value = json::parse(text)?;
    let obj = value.as_object("top level")?;
    let records_value = json::get(obj, "records")?;
    let mut records = Vec::new();
    for (i, rv) in records_value.as_array("records")?.iter().enumerate() {
        records.push(record_from_json(rv, &format!("records[{i}]"))?);
    }
    Ok(SweepRun {
        scenario: json::get(obj, "scenario")?.as_string("scenario")?,
        description: json::get(obj, "description")?.as_string("description")?,
        workload: json::get(obj, "workload")?.as_string("workload")?,
        scale: json::get(obj, "scale")?.as_string("scale")?,
        master_seed: json::get(obj, "master_seed")?.as_u64("master_seed")?,
        records,
    })
}

/// Parses one record object (the [`record_json`] shape) from a parsed JSON
/// value; `what` names the value in error messages. The inverse of
/// [`record_json`], shared by [`from_json`] and the `sweep-serve` protocol
/// parser.
pub fn record_from_json(value: &json::Value, what: &str) -> Result<RunRecord, String> {
    let r = value.as_object(what)?;
    Ok(RunRecord {
        scenario: json::get(r, "scenario")?.as_string("scenario")?,
        point: json::get(r, "point")?.as_u64("point")?,
        family: json::get(r, "family")?.as_string("family")?,
        n: json::get(r, "n")?.as_u64("n")?,
        id_scheme: json::get(r, "id_scheme")?.as_string("id_scheme")?,
        workload: json::get(r, "workload")?.as_string("workload")?,
        param_a: json::get(r, "param_a")?.as_u64("param_a")?,
        param_b: json::get(r, "param_b")?.as_u64("param_b")?,
        trials: json::get(r, "trials")?.as_u64("trials")?,
        seed: json::get(r, "seed")?.as_u64("seed")?,
        successes: json::get(r, "successes")?.as_u64("successes")?,
        p_hat: json::get(r, "p_hat")?.as_f64("p_hat")?,
        lower: json::get(r, "lower")?.as_f64("lower")?,
        upper: json::get(r, "upper")?.as_f64("upper")?,
        mean_value: json::get(r, "mean_value")?.as_f64("mean_value")?,
    })
}

/// Merges shard runs (e.g. the exports of `sweep --shard i/N` for each
/// `i`) into one run.
///
/// All inputs must agree on the run metadata (scenario, description,
/// workload, scale, master seed). Records are keyed by grid-point index:
/// byte-identical duplicates are deduplicated (re-running a shard is
/// harmless), while *conflicting* records for the same
/// `(scenario, point, trials)` key — same point, different content — are
/// rejected with an error naming the point, since silently keeping either
/// would hide a seed or scenario mismatch. Output records are sorted by
/// point index, i.e. grid order, so merging the complete shard set of a
/// scenario reproduces the single-process export byte-for-byte.
pub fn merge_runs(runs: &[SweepRun]) -> Result<SweepRun, String> {
    let Some(first) = runs.first() else {
        return Err("nothing to merge: no runs given".into());
    };
    let mut by_point: std::collections::BTreeMap<u64, &RunRecord> = std::collections::BTreeMap::new();
    for run in runs {
        if run.scenario != first.scenario
            || run.description != first.description
            || run.workload != first.workload
            || run.scale != first.scale
            || run.master_seed != first.master_seed
        {
            return Err(format!(
                "cannot merge: run metadata mismatch (scenario '{}' scale '{}' seed {} \
                 vs scenario '{}' scale '{}' seed {})",
                first.scenario, first.scale, first.master_seed,
                run.scenario, run.scale, run.master_seed,
            ));
        }
        for r in &run.records {
            match by_point.get(&r.point) {
                None => {
                    by_point.insert(r.point, r);
                }
                Some(prev) if *prev == r => {} // identical duplicate: dedup
                Some(prev) => {
                    return Err(format!(
                        "conflicting records for (scenario '{}', point {}, trials {}): \
                         successes {} vs {}, seed {} vs {}",
                        r.scenario, r.point, r.trials, prev.successes, r.successes, prev.seed,
                        r.seed,
                    ));
                }
            }
        }
    }
    Ok(SweepRun {
        scenario: first.scenario.clone(),
        description: first.description.clone(),
        workload: first.workload.clone(),
        scale: first.scale.clone(),
        master_seed: first.master_seed,
        records: by_point.into_values().cloned().collect(),
    })
}

/// A minimal JSON value model and recursive-descent parser.
///
/// Numbers keep their raw token so 64-bit integers (seeds!) never pass
/// through `f64` and lose precision. Public (since PR 7) so sibling crates
/// can parse the workspace's other hand-rolled JSON documents — trace
/// exports (`rlnc-obs`) and bench trajectories (`bench-export`) — without
/// growing their own parsers: one parser, one set of escape rules,
/// property-tested round-trips.
pub mod json {
    /// A parsed JSON value.
    #[derive(Debug)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// A number, kept as its raw token.
        Number(String),
        /// A string (unescaped).
        String(String),
        /// An array.
        Array(Vec<Value>),
        /// An object, in source order.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// The object fields, or an error naming `what`.
        pub fn as_object(&self, what: &str) -> Result<&Vec<(String, Value)>, String> {
            match self {
                Value::Object(fields) => Ok(fields),
                _ => Err(format!("{what}: expected a JSON object")),
            }
        }

        /// The array items, or an error naming `what`.
        pub fn as_array(&self, what: &str) -> Result<&Vec<Value>, String> {
            match self {
                Value::Array(items) => Ok(items),
                _ => Err(format!("{what}: expected a JSON array")),
            }
        }

        /// The string contents, or an error naming `what`.
        pub fn as_string(&self, what: &str) -> Result<String, String> {
            match self {
                Value::String(s) => Ok(s.clone()),
                _ => Err(format!("{what}: expected a JSON string")),
            }
        }

        /// The boolean, or an error naming `what`.
        pub fn as_bool(&self, what: &str) -> Result<bool, String> {
            match self {
                Value::Bool(b) => Ok(*b),
                _ => Err(format!("{what}: expected a JSON boolean")),
            }
        }

        /// The number as a `u64` (exact, never via `f64`), or an error.
        pub fn as_u64(&self, what: &str) -> Result<u64, String> {
            match self {
                Value::Number(raw) => raw
                    .parse::<u64>()
                    .map_err(|e| format!("{what}: expected an unsigned integer, got '{raw}' ({e})")),
                _ => Err(format!("{what}: expected a JSON number")),
            }
        }

        /// The number as a finite `f64`, or an error naming `what`.
        pub fn as_f64(&self, what: &str) -> Result<f64, String> {
            match self {
                Value::Number(raw) => {
                    let x = raw
                        .parse::<f64>()
                        .map_err(|e| format!("{what}: expected a number, got '{raw}' ({e})"))?;
                    // Emission refuses non-finite values, so accepting an
                    // overflowing token like 1e999 here would break the
                    // to_json/from_json identity (and panic on re-emit).
                    if !x.is_finite() {
                        return Err(format!("{what}: '{raw}' is not a finite number"));
                    }
                    Ok(x)
                }
                _ => Err(format!("{what}: expected a JSON number")),
            }
        }
    }

    /// Escapes a string for embedding in a JSON document, byte-compatible
    /// with this workspace's exact emitters (quotes, backslashes, named
    /// control escapes, `\u00xx` for the rest of the control range;
    /// everything else raw UTF-8).
    pub fn escape(s: &str) -> String {
        super::escape_json(s)
    }

    /// Looks a key up in an object.
    pub fn get<'a>(fields: &'a [(String, Value)], key: &str) -> Result<&'a Value, String> {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field '{key}'"))
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    /// Parses a complete JSON document.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }

    impl<'a> Parser<'a> {
        fn skip_ws(&mut self) {
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!(
                    "expected '{}' at byte {}, found {:?}",
                    b as char,
                    self.pos,
                    self.peek().map(|c| c as char)
                ))
            }
        }

        fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(value)
            } else {
                Err(format!("invalid literal at byte {}", self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            self.skip_ws();
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::String(self.string()?)),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'n') => self.literal("null", Value::Null),
                Some(b'-') | Some(b'0'..=b'9') => self.number(),
                other => Err(format!("unexpected {:?} at byte {}", other.map(|c| c as char), self.pos)),
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                let value = self.value()?;
                fields.push((key, value));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'b') => out.push('\u{0008}'),
                            Some(b'f') => out.push('\u{000C}'),
                            Some(b'u') => {
                                let code = self.hex_escape_digits()?;
                                if (0xD800..=0xDBFF).contains(&code) {
                                    // High surrogate: a low surrogate escape
                                    // must follow (standard JSON encoding of
                                    // astral characters).
                                    self.pos += 1;
                                    if self.peek() != Some(b'\\') {
                                        return Err("unpaired high surrogate".into());
                                    }
                                    self.pos += 1;
                                    if self.peek() != Some(b'u') {
                                        return Err("unpaired high surrogate".into());
                                    }
                                    let low = self.hex_escape_digits()?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err("invalid low surrogate".into());
                                    }
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    out.push(
                                        char::from_u32(combined).ok_or("non-scalar \\u escape")?,
                                    );
                                } else {
                                    out.push(
                                        char::from_u32(code).ok_or("non-scalar \\u escape")?,
                                    );
                                }
                            }
                            other => {
                                return Err(format!("invalid escape {:?}", other.map(|c| c as char)))
                            }
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar (the input is a &str, so
                        // boundaries are valid).
                        let start = self.pos;
                        let mut end = start + 1;
                        while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                            end += 1;
                        }
                        out.push_str(std::str::from_utf8(&self.bytes[start..end]).unwrap());
                        self.pos = end;
                    }
                }
            }
        }

        /// Reads the four hex digits of a `\uXXXX` escape; on entry `pos`
        /// is at the `u`, on exit at its last hex digit.
        fn hex_escape_digits(&mut self) -> Result<u32, String> {
            let hex = self
                .bytes
                .get(self.pos + 1..self.pos + 5)
                .ok_or("truncated \\u escape")?;
            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
            let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
            self.pos += 4;
            Ok(code)
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-'))
            {
                self.pos += 1;
            }
            let raw = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
            if raw.is_empty() || raw == "-" {
                return Err(format!("invalid number at byte {start}"));
            }
            // Validate the token parses as a float (covers integers too).
            raw.parse::<f64>().map_err(|e| format!("invalid number '{raw}': {e}"))?;
            Ok(Value::Number(raw.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_run() -> SweepRun {
        SweepRun {
            scenario: "demo".into(),
            description: "a \"quoted\" description\nwith two lines".into(),
            workload: "slack-coloring".into(),
            scale: "smoke".into(),
            master_seed: u64::MAX,
            records: vec![
                RunRecord {
                    scenario: "demo".into(),
                    point: 0,
                    family: "cycle".into(),
                    n: 36,
                    id_scheme: "consecutive".into(),
                    workload: "slack-coloring".into(),
                    param_a: 1,
                    param_b: 2,
                    trials: 100,
                    seed: 0xFFFF_FFFF_FFFF_FFFE,
                    successes: 61,
                    p_hat: 0.61,
                    lower: 0.512_345_678_901_234_5,
                    upper: 0.7,
                    mean_value: 1.0 / 3.0,
                },
                RunRecord {
                    scenario: "demo".into(),
                    point: 1,
                    family: "torus".into(),
                    n: 36,
                    id_scheme: "spread-16".into(),
                    workload: "slack-coloring".into(),
                    param_a: 0,
                    param_b: 0,
                    trials: 100,
                    seed: 7,
                    successes: 100,
                    p_hat: 1.0,
                    lower: 0.963,
                    upper: 1.0,
                    mean_value: 0.0,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let run = demo_run();
        let json = to_json(&run);
        let back = from_json(&json).expect("parse back");
        assert_eq!(back, run);
        // Byte determinism: emitting the parsed run again is identical.
        assert_eq!(to_json(&back), json);
    }

    #[test]
    fn json_round_trip_preserves_u64_and_f64_precision() {
        let run = demo_run();
        let back = from_json(&to_json(&run)).unwrap();
        assert_eq!(back.master_seed, u64::MAX);
        assert_eq!(back.records[0].seed, 0xFFFF_FFFF_FFFF_FFFE);
        assert_eq!(back.records[0].mean_value.to_bits(), (1.0f64 / 3.0).to_bits());
        assert_eq!(
            back.records[0].lower.to_bits(),
            0.512_345_678_901_234_5f64.to_bits()
        );
    }

    #[test]
    fn parser_handles_general_json_shapes() {
        let v = json::parse(r#" { "a" : [1, -2.5e3, true, false, null, "xA\n"] } "#).unwrap();
        let obj = v.as_object("top").unwrap();
        let arr = json::get(obj, "a").unwrap().as_array("a").unwrap();
        assert_eq!(arr.len(), 6);
        assert_eq!(arr[0].as_u64("n").unwrap(), 1);
        assert_eq!(arr[1].as_f64("f").unwrap(), -2500.0);
        assert!(arr[2].as_bool("t").unwrap());
        assert!(!arr[3].as_bool("f").unwrap());
        assert_eq!(arr[5].as_string("s").unwrap(), "xA\n");
    }

    #[test]
    fn overflowing_float_tokens_are_rejected_not_saturated() {
        let mut json = to_json(&demo_run());
        json = json.replace("\"p_hat\":0.61", "\"p_hat\":1e999");
        let err = from_json(&json).unwrap_err();
        assert!(err.contains("finite"), "unexpected error: {err}");
    }

    #[test]
    fn parser_decodes_surrogate_pairs() {
        // Standard JSON encodes astral characters as surrogate pairs; a
        // foreign emitter's export must still pass `sweep --check`.
        let v = json::parse(r#""\ud83d\ude00 and \u00e9""#).unwrap();
        assert_eq!(v.as_string("s").unwrap(), "😀 and é");
        // Raw UTF-8 (unescaped) passes through untouched too.
        let raw = json::parse("\"😀 raw\"").unwrap();
        assert_eq!(raw.as_string("s").unwrap(), "😀 raw");
        assert!(json::parse(r#""\ud83d""#).is_err(), "unpaired high surrogate");
        assert!(json::parse(r#""\ud83dA""#).is_err(), "bad low surrogate");
        assert!(json::parse(r#""\udc00""#).is_err(), "lone low surrogate");
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(from_json("").is_err());
        assert!(from_json("{").is_err());
        assert!(from_json("{}").unwrap_err().contains("missing field"));
        assert!(from_json("[1, 2]").unwrap_err().contains("object"));
        assert!(json::parse("{\"a\": 1} trailing").is_err());
        assert!(json::parse("{\"a\": }").is_err());
    }

    #[test]
    fn merge_runs_reassembles_shards_dedups_and_sorts() {
        let run = demo_run();
        // Shard split: point 1 in one run, point 0 in the other (out of
        // order), with point 0 duplicated byte-identically across both.
        let shard_a = SweepRun {
            records: vec![run.records[1].clone(), run.records[0].clone()],
            ..run.clone()
        };
        let shard_b = SweepRun {
            records: vec![run.records[0].clone()],
            ..run.clone()
        };
        let merged = merge_runs(&[shard_a, shard_b]).expect("merge");
        assert_eq!(merged, run);
        assert_eq!(to_json(&merged), to_json(&run));
    }

    #[test]
    fn merge_runs_rejects_conflicts_and_metadata_mismatches() {
        let run = demo_run();
        assert!(merge_runs(&[]).unwrap_err().contains("no runs"));

        // Same point, different content: a conflict, not a dedup.
        let mut conflicting = run.clone();
        conflicting.records[0].successes += 1;
        let err = merge_runs(&[run.clone(), conflicting]).unwrap_err();
        assert!(err.contains("conflicting records"), "unexpected error: {err}");
        assert!(err.contains("point 0"), "error names the point: {err}");

        // Mismatched run metadata (e.g. different master seed).
        let mut reseeded = run.clone();
        reseeded.master_seed ^= 1;
        let err = merge_runs(&[run, reseeded]).unwrap_err();
        assert!(err.contains("metadata mismatch"), "unexpected error: {err}");
    }

    #[test]
    fn record_json_round_trips_through_record_from_json() {
        let record = demo_run().records[0].clone();
        let line = record_json(&record);
        let back = record_from_json(&json::parse(&line).unwrap(), "record").unwrap();
        assert_eq!(back, record);
        assert_eq!(record_json(&back), line);
    }

    #[test]
    fn csv_has_header_plus_one_line_per_record() {
        let run = demo_run();
        let csv = to_csv(&run);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + run.records.len());
        assert_eq!(lines[0], CSV_COLUMNS.join(","));
        assert!(lines[1].starts_with("demo,0,cycle,36,consecutive,"));
        assert_eq!(lines[1].split(',').count(), CSV_COLUMNS.len());
    }

    #[test]
    fn markdown_emitter_delegates_to_the_run() {
        let run = demo_run();
        assert_eq!(to_markdown(&run), run.to_markdown());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_values_are_rejected_at_emit_time() {
        let mut run = demo_run();
        run.records[0].p_hat = f64::NAN;
        let _ = to_json(&run);
    }
}

//! The registry of named, ready-to-run scenarios.
//!
//! Scenario names are the CLI's currency (`rlnc-experiments sweep
//! --scenario NAME`) and the first component of every trial's seed path,
//! so they must be unique. [`Registry::builtin`] assembles the scenarios
//! shipped with the workspace from `rlnc-langs` and `rlnc-graph` building
//! blocks; callers can [`Registry::insert`] their own.

use crate::spec::{IdScheme, Params, ScenarioSpec};
use crate::workload::Workload;
use rlnc_graph::generators::Family;

/// A collection of named scenarios.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    scenarios: Vec<ScenarioSpec>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The scenarios shipped with the workspace.
    pub fn builtin() -> Self {
        let mut registry = Registry::new();
        registry.insert(ScenarioSpec {
            name: "smoke".into(),
            description: "tiny ε-slack sweep over a cycle and a torus (CI front door)".into(),
            families: vec![Family::Cycle, Family::Torus],
            sizes: vec![36],
            id_schemes: vec![IdScheme::Consecutive],
            params: vec![Params::ZERO],
            base_trials: 400,
            workload: Workload::SlackColoring { colors: 3, epsilon: 0.60 },
        });
        registry.insert(ScenarioSpec {
            name: "slack-ring".into(),
            description: "§1.1: zero-round random 3-coloring vs the 0.60-slack relaxation on growing rings".into(),
            families: vec![Family::Cycle],
            sizes: vec![64, 256, 1024],
            id_schemes: vec![IdScheme::Consecutive],
            params: vec![Params::ZERO],
            base_trials: 400,
            workload: Workload::SlackColoring { colors: 3, epsilon: 0.60 },
        });
        registry.insert(ScenarioSpec {
            name: "slack-topologies".into(),
            description: "ε-slack random coloring across bounded-degree topologies the paper never tests (torus, random 4-regular, circulant, prism) and identity schemes".into(),
            families: vec![
                Family::Cycle,
                Family::Grid,
                Family::BinaryTree,
                Family::Cubic,
                Family::Torus,
                Family::RandomRegular4,
                Family::Circulant2,
                Family::Prism,
            ],
            sizes: vec![64, 144],
            id_schemes: vec![IdScheme::Consecutive, IdScheme::RandomPermutation],
            params: vec![Params::ZERO],
            base_trials: 300,
            workload: Workload::SlackColoring { colors: 3, epsilon: 0.60 },
        });
        registry.insert(resilient_boundary_spec());
        registry.insert(boosting_spec(8));
        registry.insert(glued_decay_spec(6));
        registry.insert(ramsey_lift_spec());
        registry.insert(theorem1_pipeline_spec());
        registry.insert(language_matrix_spec());
        registry.insert(fault_matrix_spec());
        registry.insert(claim2_scan_spec());
        registry
    }

    /// Adds or replaces (by name) a scenario.
    pub fn insert(&mut self, spec: ScenarioSpec) {
        if let Some(existing) = self.scenarios.iter_mut().find(|s| s.name == spec.name) {
            *existing = spec;
        } else {
            self.scenarios.push(spec);
        }
    }

    /// Looks a scenario up by name.
    pub fn get(&self, name: &str) -> Option<&ScenarioSpec> {
        self.scenarios.iter().find(|s| s.name == name)
    }

    /// All scenario names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.scenarios.iter().map(|s| s.name.as_str()).collect()
    }

    /// Iterates over the registered scenarios.
    pub fn iter(&self) -> impl Iterator<Item = &ScenarioSpec> {
        self.scenarios.iter()
    }
}

/// The E5 grid as a scenario: the Corollary-1 decider at the resilience
/// boundary, `f ∈ {1, 2, 4, 8}` × planted conflicts `∈ {0, 1, 2, 3}`.
pub fn resilient_boundary_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "resilient-boundary".into(),
        description: "Corollary 1: the f-resilient decider's acceptance probability across the |F| ≤ f boundary".into(),
        families: vec![Family::Cycle],
        sizes: vec![96],
        id_schemes: vec![IdScheme::Consecutive],
        params: [1u64, 2, 4, 8]
            .iter()
            .flat_map(|&f| (0u64..4).map(move |planted| Params::two(f, planted)))
            .collect(),
        base_trials: 10_000,
        workload: Workload::ResilientBoundary { colors: 2 },
    }
}

/// The E6 grid as a scenario: Claim-3 disjoint-union boosting with
/// `ν ∈ {1, ..., max_nu}` copies (E6 picks `max_nu` from the measured
/// constructor failure probability β).
pub fn boosting_spec(max_nu: u64) -> ScenarioSpec {
    ScenarioSpec {
        name: "boosting-decay".into(),
        description: "Claim 3: decider acceptance on the disjoint union of ν hard cycles decays as (1−βp)^ν".into(),
        families: vec![Family::Cycle],
        sizes: vec![12],
        id_schemes: vec![IdScheme::Consecutive],
        params: (1..=max_nu.max(1)).map(Params::one).collect(),
        base_trials: 3_000,
        workload: Workload::BoostingUnion {
            cycle_size: 12,
            per_node_fault: 0.05,
            colors: 3,
            decider_p: 0.8,
        },
    }
}

/// The E7 decay grid as a scenario: Claims 4–5 glued acceptance across
/// `ν' ∈ {2, ..., max_parts}` glued hard cycles, evaluated through the
/// engine's [`GluedPlan`](rlnc_engine::GluedPlan) kernels.
pub fn glued_decay_spec(max_parts: u64) -> ScenarioSpec {
    ScenarioSpec {
        name: "glued-decay".into(),
        description: "Claims 4–5: acceptance far from every anchor on the connected gluing of ν' hard cycles decays like (1−β(1−p)/µ)^ν'".into(),
        families: vec![Family::Cycle],
        sizes: vec![16],
        id_schemes: vec![IdScheme::Consecutive],
        params: (2..=max_parts.max(2)).map(Params::one).collect(),
        base_trials: 1_500,
        workload: Workload::GluedDecay {
            cycle_size: 16,
            per_node_fault: 0.05,
            colors: 3,
            decider_p: 0.75,
        },
    }
}

/// The Claim-1 grid as a scenario: the Ramsey-refined identity set and the
/// order-invariant lift's agreement, for three wrapped algorithms.
pub fn ramsey_lift_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "ramsey-lift".into(),
        description: "Claim 1 / Appendix A: the lift A' agrees with A on instances whose identities come from the Ramsey-refined set".into(),
        families: vec![Family::Cycle, Family::Torus],
        sizes: vec![24],
        id_schemes: vec![IdScheme::Consecutive],
        params: (0..3).map(Params::one).collect(),
        base_trials: 200,
        // The per-round sample count must stay high regardless of scale, or
        // the refined set can retain stray identities (same caveat as E8).
        workload: Workload::RamseyLift {
            universe: 160,
            samples: 400,
        },
    }
}

/// The end-to-end Theorem-1 scenario: the full four-stage pipeline across
/// graph families, a ν grid, and three language/algorithm pairs from
/// `rlnc-langs` (3-coloring, `amos`, weak 2-coloring — see
/// [`rlnc_derand::PipelineCase`]).
pub fn theorem1_pipeline_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "theorem1-pipeline".into(),
        description: "Theorem 1 end to end: ramsey lift → hard-instance search → boosted union → connected gluing, for 3-coloring, amos, and weak 2-coloring".into(),
        families: vec![Family::Cycle, Family::Circulant2, Family::Prism],
        sizes: vec![16],
        id_schemes: vec![IdScheme::Consecutive],
        params: (0..3)
            .flat_map(|case| [2u64, 4].iter().map(move |&nu| Params::two(nu, case)))
            .collect(),
        base_trials: 240,
        workload: Workload::Theorem1Pipeline,
    }
}

/// The full-catalog scenario: every case registered in
/// [`rlnc_langs::registry::CaseRegistry`] — coloring, `amos`, weak
/// coloring, MIS, matching, dominating set, LLL, frugal coloring,
/// Cole–Vishkin, majority — through the four-stage Theorem-1 pipeline,
/// across connected regular families and a ν grid. The case is the
/// `params.b` axis ([`rlnc_langs::registry::CaseId::from_index`]); `params.a`
/// is ν.
pub fn language_matrix_spec() -> ScenarioSpec {
    let registry = rlnc_langs::registry::CaseRegistry::builtin();
    ScenarioSpec {
        name: "language-matrix".into(),
        description: format!(
            "the whole language catalog through the Theorem-1 pipeline: {} registered cases ({}) × families × ν",
            registry.len(),
            registry.names().join(", ")
        ),
        families: vec![Family::Cycle, Family::Circulant2, Family::Prism],
        sizes: vec![16],
        id_schemes: vec![IdScheme::Consecutive],
        params: (0..registry.len() as u64)
            .flat_map(|case| [2u64, 4].iter().map(move |&nu| Params::two(nu, case)))
            .collect(),
        base_trials: 160,
        workload: Workload::LanguagePipeline,
    }
}

/// The fault-resilience scenario: every registered language case's
/// constructor runs through the **round backend** under each
/// [`FaultPlan`](rlnc_core::FaultPlan) kind (crash-on-start,
/// crash-at-round, crash-cascade, byzantine-relabel) at two intensities,
/// then the case's decider judges the corrupted output. The fault axis is
/// `params.a` (`plan kind × 1000 + intensity‰`, see
/// [`crate::workload::decode_fault_params`]); the case is `params.b`.
/// Success tracks the all-nodes-accept rate as faults intensify; the value
/// channel records the realized faulty-node fraction.
pub fn fault_matrix_spec() -> ScenarioSpec {
    let registry = rlnc_langs::registry::CaseRegistry::builtin();
    let cases = registry.len() as u64;
    let intensities_permille = [150u64, 350];
    ScenarioSpec {
        name: "fault-matrix".into(),
        description: format!(
            "fault plans × intensity × the whole language catalog on the round backend: \
             crash-on-start, crash-at-round, crash-cascade, byzantine-relabel against {} cases ({})",
            registry.len(),
            registry.names().join(", ")
        ),
        families: vec![Family::Cycle, Family::Circulant2, Family::Prism],
        sizes: vec![16],
        id_schemes: vec![IdScheme::Consecutive],
        params: (0..rlnc_core::FAULT_PLAN_KINDS as u64)
            .flat_map(|plan| {
                intensities_permille.iter().flat_map(move |&permille| {
                    (0..cases).map(move |case| Params::two(plan * 1000 + permille, case))
                })
            })
            .collect(),
        base_trials: 200,
        workload: Workload::FaultMatrix,
    }
}

/// The batched Claim-2 scan as a scenario: the K-axis of the
/// multi-algorithm hard-instance search. `params.a` is the width `K` of
/// the deterministic probe family (the registry case's algorithms widened
/// with same-radius variants — see
/// [`crate::workload::Workload::Claim2Scan`]); `params.b` selects the
/// case. A trial estimates the found instance's constructor failure rate;
/// the value channel records the scan's pool coverage `found / K`.
pub fn claim2_scan_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "claim2-scan".into(),
        description: "Claim 2, batched: K deterministic probes scan the candidate pool in one \
                      multi-algorithm pass per cached instance (3-coloring, amos, weak \
                      2-coloring), then trials estimate constructor failure on the found hard \
                      instance"
            .into(),
        families: vec![Family::Cycle, Family::Circulant2, Family::Prism],
        sizes: vec![16],
        id_schemes: vec![IdScheme::Consecutive],
        params: [1u64, 4, 8, 16]
            .iter()
            .flat_map(|&k| (0..3u64).map(move |case| Params::two(k, case)))
            .collect(),
        base_trials: 200,
        workload: Workload::Claim2Scan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_scenarios_are_unique_and_valid() {
        let registry = Registry::builtin();
        let names = registry.names();
        assert!(names.len() >= 5);
        let unique: std::collections::HashSet<&&str> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "duplicate scenario names");
        for spec in registry.iter() {
            spec.validate().unwrap_or_else(|e| panic!("{e}"));
            assert!(!spec.description.is_empty(), "{} lacks a description", spec.name);
        }
        assert!(registry.get("smoke").is_some());
        assert!(registry.get("resilient-boundary").is_some());
        assert!(registry.get("no-such-scenario").is_none());
    }

    #[test]
    fn insert_replaces_by_name() {
        let mut registry = Registry::builtin();
        let before = registry.names().len();
        let mut spec = registry.get("smoke").unwrap().clone();
        spec.base_trials = 7;
        registry.insert(spec);
        assert_eq!(registry.names().len(), before);
        assert_eq!(registry.get("smoke").unwrap().base_trials, 7);
    }

    #[test]
    fn slack_topologies_covers_the_prism_family() {
        let registry = Registry::builtin();
        let spec = registry.get("slack-topologies").expect("slack-topologies");
        assert!(
            spec.families.contains(&Family::Prism),
            "the prism generator must be exercised by a registry scenario"
        );
        // And the grid actually materializes prism points that run.
        let grid = spec.grid(rlnc_par::Scale::Smoke);
        let prism_point = grid
            .iter()
            .find(|p| p.family == Family::Prism)
            .expect("a prism grid point");
        let prepared = spec
            .workload
            .prepare(prism_point, rlnc_par::SeedSequence::new(1).child(prism_point.index));
        let outcome = prepared.run_trial(rlnc_par::SeedSequence::new(1).child(0));
        assert!((0.0..=1.0).contains(&outcome.value));
    }

    #[test]
    fn parameterized_spec_builders() {
        assert_eq!(resilient_boundary_spec().params.len(), 16);
        assert_eq!(boosting_spec(5).params.len(), 5);
        assert_eq!(boosting_spec(0).params.len(), 1, "ν is clamped to at least 1");
        assert!(boosting_spec(3).validate().is_ok());
        assert_eq!(glued_decay_spec(6).params.len(), 5);
        assert_eq!(glued_decay_spec(0).params.len(), 1, "ν' is clamped to at least 2");
        assert!(glued_decay_spec(4).validate().is_ok());
        assert!(ramsey_lift_spec().validate().is_ok());
        assert!(theorem1_pipeline_spec().validate().is_ok());
    }

    #[test]
    fn derand_scenarios_are_registered() {
        let registry = Registry::builtin();
        for name in [
            "glued-decay",
            "ramsey-lift",
            "theorem1-pipeline",
            "language-matrix",
            "claim2-scan",
        ] {
            assert!(registry.get(name).is_some(), "{name} missing from the registry");
        }
    }

    #[test]
    fn claim2_scan_exposes_a_real_k_axis() {
        let spec = claim2_scan_spec();
        assert!(spec.validate().is_ok());
        let ks: std::collections::HashSet<u64> = spec.params.iter().map(|p| p.a).collect();
        assert!(ks.len() >= 3, "the K axis must be a real grid");
        assert!(ks.contains(&8), "the ≥3×-at-K≥8 regime must be on the axis");
        let cases: std::collections::HashSet<u64> = spec.params.iter().map(|p| p.b).collect();
        assert_eq!(cases.len(), 3, "the three legacy cases ride the case axis");
    }

    #[test]
    fn claim2_scan_smoke_grid_point_runs_and_covers_the_pool() {
        let spec = claim2_scan_spec();
        let grid = spec.grid(rlnc_par::Scale::Smoke);
        let point = grid
            .iter()
            .find(|p| p.params.a == 8 && p.params.b == 0)
            .expect("a K = 8 coloring grid point");
        let point_seed = rlnc_par::SeedSequence::new(17).child(point.index);
        let prepared = spec.workload.prepare(point, point_seed);
        let outcome = prepared.run_trial(point_seed.child(1).child(0));
        assert!((0.0..=1.0).contains(&outcome.value));
        // The widened probe family finds hard instances: the coverage
        // channel must report a non-empty pool.
        assert!(outcome.value > 0.0, "the scan found no hard instance");
    }

    #[test]
    fn language_matrix_covers_every_registered_case() {
        let spec = language_matrix_spec();
        assert!(spec.validate().is_ok());
        let case_registry = rlnc_langs::registry::CaseRegistry::builtin();
        let cases: std::collections::HashSet<u64> = spec.params.iter().map(|p| p.b).collect();
        assert_eq!(
            cases.len(),
            case_registry.len(),
            "every registered language case must appear on the sweep axis"
        );
        for name in case_registry.names() {
            assert!(
                spec.description.contains(name),
                "description must surface case '{name}'"
            );
        }
        let nus: std::collections::HashSet<u64> = spec.params.iter().map(|p| p.a).collect();
        assert!(nus.len() >= 2, "the ν axis must be a real grid");
    }

    #[test]
    fn language_matrix_smoke_grid_runs_the_non_legacy_cases() {
        // The legacy prefix is pinned elsewhere (bit-identity with
        // theorem1-pipeline); here the new catalog entries run end to end
        // through real grid points.
        let spec = language_matrix_spec();
        let grid = spec.grid(rlnc_par::Scale::Smoke);
        for case in 3..rlnc_langs::registry::CaseRegistry::builtin().len() as u64 {
            let point = grid
                .iter()
                .find(|p| p.params.b == case)
                .expect("a grid point per case");
            let prepared = spec
                .workload
                .prepare(point, rlnc_par::SeedSequence::new(11).child(point.index));
            let outcome = prepared.run_trial(rlnc_par::SeedSequence::new(11).child(1).child(0));
            assert!((0.0..=1.0).contains(&outcome.value), "case {case}");
        }
    }

    #[test]
    fn fault_matrix_covers_every_plan_intensity_and_case() {
        let spec = fault_matrix_spec();
        assert!(spec.validate().is_ok());
        let case_registry = rlnc_langs::registry::CaseRegistry::builtin();
        let cases: std::collections::HashSet<u64> = spec.params.iter().map(|p| p.b).collect();
        assert_eq!(
            cases.len(),
            case_registry.len(),
            "every registered language case must appear on the fault axis"
        );
        for name in case_registry.names() {
            assert!(
                spec.description.contains(name),
                "description must surface case '{name}'"
            );
        }
        let plans: std::collections::HashSet<usize> = spec
            .params
            .iter()
            .map(|p| crate::workload::decode_fault_params(p.a).0)
            .collect();
        assert_eq!(
            plans.len(),
            rlnc_core::FAULT_PLAN_KINDS,
            "every fault-plan kind must appear on the sweep axis"
        );
        let intensities: std::collections::HashSet<u64> =
            spec.params.iter().map(|p| p.a % 1000).collect();
        assert!(intensities.len() >= 2, "the intensity axis must be a real grid");
        assert!(spec.families.len() >= 3, "need several graph families");
    }

    #[test]
    fn fault_matrix_smoke_grid_runs_every_plan_kind() {
        let spec = fault_matrix_spec();
        let grid = spec.grid(rlnc_par::Scale::Smoke);
        for plan in 0..rlnc_core::FAULT_PLAN_KINDS as u64 {
            let point = grid
                .iter()
                .find(|p| crate::workload::decode_fault_params(p.params.a).0 == plan as usize)
                .expect("a grid point per fault-plan kind");
            let prepared = spec
                .workload
                .prepare(point, rlnc_par::SeedSequence::new(13).child(point.index));
            let outcome = prepared.run_trial(rlnc_par::SeedSequence::new(13).child(1).child(0));
            assert!((0.0..=1.0).contains(&outcome.value), "plan {plan}");
        }
    }

    #[test]
    fn fault_matrix_trials_are_bit_reproducible() {
        // The same (scenario, point, trial) leaf replays byte-identically
        // no matter how often or in which scratch the trial runs — the
        // executor's batching/thread freedom rests on this.
        let spec = fault_matrix_spec();
        let grid = spec.grid(rlnc_par::Scale::Smoke);
        let point = &grid[3];
        let point_seed =
            rlnc_par::SeedSequence::new(crate::DEFAULT_SWEEP_SEED).child(point.index);
        let prepared = spec.workload.prepare(point, point_seed);
        for trial in 0..4u64 {
            let seed = point_seed.child(1).child(trial);
            let mut scratch_a = prepared.scratch();
            let mut scratch_b = prepared.scratch();
            let a = prepared.run_trial_with(&mut scratch_a, seed);
            let b = prepared.run_trial_with(&mut scratch_b, seed);
            assert_eq!(a, b, "trial {trial} must replay identically");
            assert_eq!(a, prepared.run_trial(seed));
        }
    }

    #[test]
    fn theorem1_pipeline_covers_three_cases_and_families() {
        let spec = theorem1_pipeline_spec();
        assert!(spec.families.len() >= 3, "need several graph families");
        let cases: std::collections::HashSet<u64> = spec.params.iter().map(|p| p.b).collect();
        assert_eq!(cases.len(), 3, "all three language/algorithm pairs must appear");
        let nus: std::collections::HashSet<u64> = spec.params.iter().map(|p| p.a).collect();
        assert!(nus.len() >= 2, "the ν axis must be a real grid");
    }

    #[test]
    fn theorem1_pipeline_smoke_grid_point_runs_every_case() {
        let spec = theorem1_pipeline_spec();
        let grid = spec.grid(rlnc_par::Scale::Smoke);
        for case in 0..3u64 {
            let point = grid
                .iter()
                .find(|p| p.params.b == case)
                .expect("a grid point per case");
            let prepared = spec
                .workload
                .prepare(point, rlnc_par::SeedSequence::new(7).child(point.index));
            let outcome = prepared.run_trial(rlnc_par::SeedSequence::new(7).child(1).child(0));
            assert!((0.0..=1.0).contains(&outcome.value), "case {case}");
        }
    }

    #[test]
    fn glued_decay_acceptance_decays_with_parts() {
        let spec = glued_decay_spec(4);
        let run = crate::SweepExecutor::new(rlnc_par::Scale::Smoke).with_seed(3).run(&spec);
        assert_eq!(run.records.len(), 3);
        let first = &run.records[0];
        let last = &run.records[run.records.len() - 1];
        assert!(
            last.p_hat <= first.p_hat + 0.15,
            "far-acceptance should not grow with ν' ({} -> {})",
            first.p_hat,
            last.p_hat
        );
        // The value channel records the (all-nodes) acceptance, which can
        // only be rarer than the far event.
        for record in &run.records {
            assert!(record.mean_value <= record.p_hat + 1e-9);
        }
    }

    #[test]
    fn ramsey_lift_scenario_agrees_on_in_set_instances() {
        let spec = ramsey_lift_spec();
        let run = crate::SweepExecutor::new(rlnc_par::Scale::Smoke).with_seed(5).run(&spec);
        for record in &run.records {
            assert_eq!(
                record.successes, record.trials,
                "lift must agree with the wrapped algorithm on in-set instances (point {})",
                record.point
            );
            assert!(record.mean_value > 0.0 && record.mean_value <= 1.0);
        }
    }
}

//! Workload kernels: what one Monte-Carlo trial at a grid point actually
//! does.
//!
//! A [`Workload`] is the declarative half (an enum that names the kernel
//! and its fixed parameters, recorded in every [`crate::RunRecord`]); a
//! [`Prepared`] point is the executable half, built once per grid point by
//! [`Workload::prepare`] and then driven trial-by-trial with independent
//! [`SeedSequence`]s by the executor.
//!
//! Preparation goes through the `rlnc-engine` planner: everything that is
//! fixed across a grid point's trials (graphs, identity assignments,
//! planted outputs — and, crucially, every node's extracted ball) is baked
//! into [`ExecutionPlan`]s once, so a trial only evaluates algorithm and
//! decider output functions against cached views. The trial streams are
//! bit-identical to the legacy collect-per-trial path (the engine's
//! equivalence suite pins this down).

use crate::spec::{GridPoint, IdScheme};
use rlnc_core::algorithm::{Coins, LocalAlgorithm};
use rlnc_core::decision::RandomizedDecider;
use rlnc_core::derand::boosting::build_disjoint_union;
use rlnc_core::derand::gluing::anchor_candidates;
use rlnc_core::derand::hard_instances::{consecutive_cycle_candidates, HardInstance};
use rlnc_core::derand::ramsey::OrderInvariantLift;
use rlnc_core::faults::FaultPlan;
use rlnc_core::language::DistributedLanguage;
use rlnc_core::prelude::{
    FnAlgorithm, Instance, IoConfig, Label, Labeling, RandomizedLocalAlgorithm, Simulator, View,
};
use rlnc_core::relaxation::EpsilonSlack;
use rlnc_core::resilient::{theoretical_acceptance, ResilientDecider};
use rlnc_derand::{CaseId, DerandPipeline, PipelineCase};
use rlnc_engine::{DecisionScratch, ExecutionPlan, GluedPlan, PlanCache, RoundPlan, UnionPlan};
use rlnc_graph::generators::{cycle, Family};
use rlnc_graph::{Graph, IdAssignment, NodeId};
use rlnc_langs::coloring::{improperly_colored_nodes, GlobalGreedyColoring, ProperColoring};
use rlnc_langs::faulty::FaultyConstructor;
use rlnc_langs::random_coloring::RandomColoring;
use rlnc_par::rng::SeedSequence;
use rlnc_par::trials::TrialOutcome;
use rand::seq::IndexedRandom;
use rand::Rng;

/// The Monte-Carlo kernel a scenario runs at every grid point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// Zero-round uniformly random `colors`-coloring; a trial succeeds if
    /// the output lands in the ε-slack relaxation of proper coloring
    /// (§1.1). The trial value is the improper-node fraction. Ignores
    /// [`crate::Params`]. Works on every graph family.
    SlackColoring {
        /// Palette size of the random coloring.
        colors: u64,
        /// Slack fraction ε of tolerated bad balls.
        epsilon: f64,
    },
    /// The Corollary-1 `f`-resilient decider on an even cycle with planted
    /// 2-coloring conflicts (§4). Reads `params.a` as the resilience `f`
    /// and `params.b` as the number of planted conflicts (each planted
    /// conflict creates 3 bad balls). A trial succeeds if every node
    /// accepts. Requires [`Family::Cycle`].
    ResilientBoundary {
        /// Palette size of the underlying proper coloring (the paper's
        /// boundary instance uses 2).
        colors: u64,
    },
    /// Claim-3 error boosting: a fault-injected colorer runs on the
    /// disjoint union of `params.a` copies of a consecutive-identity hard
    /// cycle, then a one-sided per-bad-ball rejecting decider with
    /// guarantee `decider_p` decides the result. A trial succeeds if the
    /// decider accepts everywhere. Requires [`Family::Cycle`].
    BoostingUnion {
        /// Size of each hard cycle copy.
        cycle_size: usize,
        /// Per-node corruption probability of the faulty constructor.
        per_node_fault: f64,
        /// Palette size of the greedy colorer and of the decider's range
        /// check.
        colors: u64,
        /// Rejection probability at bad-ball centers (the decider's
        /// one-sided guarantee).
        decider_p: f64,
    },
    /// Claims 4–5 glued decay: the fault-injected colorer runs on the
    /// connected gluing of `params.a` hard cycles; the engine's
    /// [`GluedPlan`] evaluates both the "accepts far from every anchor"
    /// event (the trial's success) and the all-nodes acceptance (the
    /// trial's value) against cached views and a precomputed participation
    /// set. Requires [`Family::Cycle`].
    GluedDecay {
        /// Size of each glued hard cycle.
        cycle_size: usize,
        /// Per-node corruption probability of the faulty constructor.
        per_node_fault: f64,
        /// Palette size.
        colors: u64,
        /// The decider's one-sided guarantee `p`.
        decider_p: f64,
    },
    /// Claim 1 Ramsey lift: refine an identity universe until the wrapped
    /// algorithm (selected by `params.a`: 0 = rank coloring, 1 = id
    /// parity, 2 = id mod 3) is consistent on every ball type, then test
    /// per trial that the lift `A'` agrees with `A` on a fresh instance
    /// whose identities are drawn from the refined set. The trial value is
    /// the refined set's survival rate. Works on every graph family.
    RamseyLift {
        /// Identity-universe size (raised to `6 × n` when smaller, so the
        /// refined set can always relabel a whole instance).
        universe: u64,
        /// Consistency samples per template per refinement round.
        samples: u32,
    },
    /// The full four-stage Theorem-1 pipeline (ramsey lift → hard-instance
    /// search → boosted disjoint union → connected gluing), generic over
    /// the language/constructor/decider bundle selected by `params.b`
    /// (see [`PipelineCase::from_index`]); `params.a` is the repetition
    /// count `ν`. A trial constructs and decides once on the planned
    /// union (the trial's value) and once on the planned gluing's
    /// far-from-anchors event (the trial's success). Requires a connected
    /// regular family (cycle, circulant, prism, torus).
    Theorem1Pipeline,
    /// The generic **language workload**: the same four-stage pipeline as
    /// [`Workload::Theorem1Pipeline`], but the case axis `params.b` ranges
    /// over the *whole* `rlnc-langs` case registry
    /// ([`CaseId::from_index`] — coloring, `amos`, weak coloring, MIS,
    /// matching, dominating set, LLL, frugal coloring, Cole–Vishkin,
    /// majority) instead of the three legacy cases. Candidate instances
    /// follow the case's input convention (identity names for matching,
    /// ring orientation for Cole–Vishkin — which also pins its candidates
    /// to the cycle family regardless of the grid's family axis). For
    /// `params.b < 3` the trial streams are bit-identical to
    /// `Theorem1Pipeline`'s. Requires a connected regular family.
    LanguagePipeline,
    /// The **fault matrix**: one registry case's constructor runs through
    /// the round backend ([`RoundPlan`]) under a seeded
    /// [`FaultPlan`] — crashes, crash cascades, or
    /// Byzantine identity relabeling — and the case's decider then judges
    /// the (possibly corrupted) output on the fault-free engine path.
    /// `params.a` encodes the fault axis as
    /// `plan_kind × 1000 + intensity‰` (see
    /// [`decode_fault_params`]); `params.b` selects the case via
    /// [`CaseId::from_index`]. A trial succeeds iff every node accepts;
    /// the trial value is the schedule's realized faulty-node fraction.
    /// Requires a connected regular family.
    FaultMatrix,
    /// The **batched Claim-2 scan**: the K-axis of the multi-algorithm
    /// hard-instance search. `params.a` is the width `K` of the
    /// deterministic probe family (the registry case's algorithms,
    /// widened with same-radius synthesized variants); `params.b`
    /// selects the case via [`CaseId::from_index`]. Preparation runs the
    /// batched [`DerandPipeline::hard_instance_stage_cached`] scan —
    /// one `run_many` pass settles a whole same-radius algorithm slice
    /// per cached candidate — and a trial then estimates the found hard
    /// instance's constructor failure rate (the trial's success); the
    /// value channel records the scan's pool coverage `found / K`.
    /// Requires a connected regular family.
    Claim2Scan,
}

/// Decodes the fault-matrix `params.a` axis: the thousands digit group
/// selects the [`FaultPlan`] kind and the low three
/// digits its intensity in permille (`2_250` → kind 2 at intensity 0.25).
pub fn decode_fault_params(a: u64) -> (usize, f64) {
    ((a / 1000) as usize, (a % 1000) as f64 / 1000.0)
}

impl Workload {
    /// The name recorded in [`crate::RunRecord`]s.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::SlackColoring { .. } => "slack-coloring",
            Workload::ResilientBoundary { .. } => "resilient-boundary",
            Workload::BoostingUnion { .. } => "boosting-union",
            Workload::GluedDecay { .. } => "glued-decay",
            Workload::RamseyLift { .. } => "ramsey-lift",
            Workload::Theorem1Pipeline => "theorem1-pipeline",
            Workload::LanguagePipeline => "language-pipeline",
            Workload::FaultMatrix => "fault-matrix",
            Workload::Claim2Scan => "claim2-scan",
        }
    }

    /// Rejects grid families the kernel cannot run on.
    pub fn check_family(&self, family: Family) -> Result<(), String> {
        match self {
            Workload::SlackColoring { .. } | Workload::RamseyLift { .. } => Ok(()),
            Workload::ResilientBoundary { .. }
            | Workload::BoostingUnion { .. }
            | Workload::GluedDecay { .. } => {
                if family == Family::Cycle {
                    Ok(())
                } else {
                    Err(format!(
                        "workload '{}' runs on the cycle family only, got '{}'",
                        self.name(),
                        family.name()
                    ))
                }
            }
            Workload::Theorem1Pipeline
            | Workload::LanguagePipeline
            | Workload::FaultMatrix
            | Workload::Claim2Scan => {
                if matches!(
                    family,
                    Family::Cycle | Family::Circulant2 | Family::Prism | Family::Torus
                ) {
                    Ok(())
                } else {
                    Err(format!(
                        "workload '{}' needs a connected regular family \
                         (cycle, circulant-2, prism, torus), got '{}'",
                        self.name(),
                        family.name()
                    ))
                }
            }
        }
    }

    /// Adjusts a scaled size to the kernel's structural requirements (the
    /// planted-conflict construction needs an even cycle with room for the
    /// planted regions).
    pub fn normalize_size(&self, n: usize) -> usize {
        match self {
            Workload::ResilientBoundary { .. } => (n.max(48) / 6) * 6,
            // The boosting and gluing kernels always build their composites
            // out of copies of a fixed hard cycle, so the recorded size is
            // pinned to the copy size (the scale knob varies trials, not
            // the instance).
            Workload::BoostingUnion { cycle_size, .. }
            | Workload::GluedDecay { cycle_size, .. } => *cycle_size,
            // The pipeline's hard-instance candidates need room for anchors
            // pairwise 2(t + t') apart and a usable Ramsey probe.
            Workload::Theorem1Pipeline
            | Workload::LanguagePipeline
            | Workload::FaultMatrix
            | Workload::Claim2Scan => n.max(12),
            Workload::RamseyLift { .. } => n.max(8),
            Workload::SlackColoring { .. } => n,
        }
    }

    /// A statistical floor on the trial count of a grid point.
    ///
    /// Near the resilience boundary the inequality under test can be
    /// razor-thin (`f = 8`, `|F| = 9` leaves `1/2 − p⁹ ≈ 0.016`), so the
    /// resilient kernel demands enough trials to resolve its own margin at
    /// ≈4σ; the 0.015 margin floor caps the demand at ≈17.8k trials.
    pub fn min_trials(&self, point: &GridPoint) -> u64 {
        match self {
            Workload::ResilientBoundary { .. } => {
                let f = point.params.a.max(1) as usize;
                let bad = planted_bad_balls(point.n, point.params.b);
                let theory = theoretical_acceptance(f, bad);
                let margin = (theory - 0.5).abs().max(0.015);
                (0.25 * (4.0 / margin).powi(2)).ceil() as u64
            }
            Workload::SlackColoring { .. }
            | Workload::BoostingUnion { .. }
            | Workload::GluedDecay { .. }
            | Workload::RamseyLift { .. }
            | Workload::Theorem1Pipeline
            | Workload::LanguagePipeline
            | Workload::FaultMatrix
            | Workload::Claim2Scan => 0,
        }
    }

    /// Builds the per-point state (graphs, labelings, deciders) once, so
    /// trial batches only pay for the Monte-Carlo part. `point_seed` is the
    /// grid point's branch of the scenario seed tree; preparation draws
    /// from its child `0`, trials from its child `1` (see
    /// [`crate::SweepExecutor`]).
    pub fn prepare(&self, point: &GridPoint, point_seed: SeedSequence) -> Prepared {
        let mut prep_rng = point_seed.child(0).rng();
        match *self {
            Workload::SlackColoring { colors, epsilon } => {
                // Deterministic families (and id schemes) produce the same
                // instance every trial, so build them once here; randomized
                // ones are regenerated per trial from the trial seed. The
                // trial streams are identical either way (the setup draws
                // from dedicated seed children).
                let fixed = if point.family.is_randomized() {
                    None
                } else {
                    let graph = point.family.generate(point.n, &mut prep_rng);
                    let input = Labeling::empty(graph.node_count());
                    let ids = if point.id_scheme.is_randomized() {
                        None
                    } else {
                        Some(point.id_scheme.build(&graph, &mut prep_rng))
                    };
                    Some((graph, input, ids))
                };
                // Fully fixed instances (deterministic family *and* id
                // scheme) are planned once: the engine caches every node's
                // view for all trials of the grid point.
                // Plan construction goes through the process-global shared
                // cache (`rlnc-engine`), which is a plain `for_instance`
                // unless a resident server opted in — then repeat requests
                // reuse the plan across requests.
                let plan = match &fixed {
                    Some((graph, input, Some(ids))) => {
                        let instance = Instance::new(graph, input, ids);
                        Some(rlnc_engine::shared_plan_for_instance(&instance, 0))
                    }
                    _ => None,
                };
                Prepared::Slack {
                    colors,
                    epsilon,
                    family: point.family,
                    n: point.n,
                    id_scheme: point.id_scheme,
                    fixed,
                    plan,
                }
            }
            Workload::ResilientBoundary { colors } => {
                let f = point.params.a.max(1) as usize;
                let (graph, input, output) = planted_cycle_configuration(point.n, point.params.b);
                let ids = point.id_scheme.build(&graph, &mut prep_rng);
                let decider = ResilientDecider::new(ProperColoring::new(colors), f);
                // Graph, identities, *and* outputs are fixed, so the whole
                // decision configuration is planned once; a trial only
                // re-draws the decider's coins.
                let io = IoConfig::new(&graph, &input, &output);
                let plan =
                    rlnc_engine::shared_plan_for_io(&io, &ids, RandomizedDecider::radius(&decider));
                Prepared::Resilient { decider, plan }
            }
            Workload::BoostingUnion {
                cycle_size,
                per_node_fault,
                colors,
                decider_p,
            } => {
                let nu = point.params.a.max(1) as usize;
                let hard = consecutive_cycle_candidates([cycle_size]);
                let union = build_disjoint_union(&hard, nu);
                let constructor = FaultyConstructor::new(
                    GlobalGreedyColoring::new(cycle_size as u32, colors),
                    per_node_fault,
                    Label::from_u64(0),
                );
                let decider = RejectBadBallsDecider::new(colors, decider_p);
                let instance = union.as_instance();
                let construction_plan = rlnc_engine::shared_plan_for_instance(
                    &instance,
                    RandomizedLocalAlgorithm::radius(&constructor),
                );
                // The decider's outputs vary per trial, so its plan carries
                // construction views whose outputs a per-batch
                // [`DecisionScratch`] refreshes.
                let decision_plan = rlnc_engine::shared_plan_for_instance(
                    &instance,
                    RandomizedDecider::radius(&decider),
                );
                Prepared::Boosting {
                    constructor,
                    decider,
                    construction_plan,
                    decision_plan,
                }
            }
            Workload::GluedDecay {
                cycle_size,
                per_node_fault,
                colors,
                decider_p,
            } => {
                let (t, t_prime) = (0u32, 1u32);
                let nu = point.params.a.max(2) as usize;
                let parts = consecutive_cycle_candidates(vec![cycle_size; nu]);
                let anchors: Vec<NodeId> = parts
                    .iter()
                    .map(|part| anchor_candidates(part, t, t_prime, decider_p)[0])
                    .collect();
                let constructor = FaultyConstructor::new(
                    GlobalGreedyColoring::new(cycle_size as u32, colors),
                    per_node_fault,
                    Label::from_u64(0),
                );
                let decider = RejectBadBallsDecider::new(colors, decider_p);
                // The whole glued composite — both view sets and the
                // Claims-4/5 participation mask — is planned once by the
                // pipeline's gluing stage; trials only flip coins.
                let language = ProperColoring::new(colors);
                let stage = DerandPipeline::new(
                    &constructor,
                    &decider,
                    &language,
                    rlnc_derand::PipelineParams { r: 0.9, p: decider_p, t, t_prime },
                )
                .glued_stage(parts, anchors);
                Prepared::Glued {
                    constructor,
                    decider,
                    plan: stage.plan,
                }
            }
            Workload::RamseyLift { universe, samples } => {
                let graph = point.family.generate(point.n, &mut prep_rng);
                let n = graph.node_count();
                let input = Labeling::empty(n);
                let ids = point.id_scheme.build(&graph, &mut prep_rng);
                let algo = ramsey_algorithm(point.params.a);
                let universe: Vec<u64> = (1..=universe.max(6 * n as u64)).collect();
                let stage = rlnc_derand::ramsey_stage(
                    &*algo,
                    &[Instance::new(&graph, &input, &ids)],
                    &universe,
                    samples as usize,
                    point_seed.child(0).seed(),
                );
                Prepared::Ramsey {
                    graph,
                    input,
                    algo,
                    id_set: stage.id_set,
                    universe_size: stage.universe_size,
                }
            }
            Workload::Theorem1Pipeline => prepare_case_pipeline(
                PipelineCase::from_index(point.params.b).case_id(),
                point,
                &mut prep_rng,
                point_seed,
            ),
            Workload::LanguagePipeline => prepare_case_pipeline(
                CaseId::from_index(point.params.b),
                point,
                &mut prep_rng,
                point_seed,
            ),
            Workload::FaultMatrix => {
                let (plan_kind, intensity) = decode_fault_params(point.params.a);
                let case = CaseId::from_index(point.params.b).case();
                // One candidate instance per grid point, in the case's own
                // convention (candidate family, inputs); identities follow
                // the grid's scheme. Everything fixed across trials is
                // planned once: the round backend's delivery topology and
                // the decider's cached views.
                let family = case.candidate_family(point.family);
                let graph = family.generate(point.n, &mut prep_rng);
                let ids = point.id_scheme.build(&graph, &mut prep_rng);
                let input = case.build_input(&graph, &ids);
                let instance = Instance::new(&graph, &input, &ids);
                let round_plan = RoundPlan::for_instance(&instance, case.constructor_radius());
                let decision_plan =
                    rlnc_engine::shared_plan_for_instance(&instance, case.checking_radius());
                Prepared::FaultMatrix {
                    constructor: case.constructor,
                    decider: case.decider,
                    fault_plan: FaultPlan::from_index(plan_kind, intensity),
                    round_plan,
                    decision_plan,
                }
            }
            Workload::Claim2Scan => {
                let mut case = CaseId::from_index(point.params.b).case();
                let k = point.params.a.max(1) as usize;
                // Same candidate convention as the pipeline workloads:
                // three increasing members of the case's candidate family,
                // consecutive identities, case-convention inputs.
                let family = case.candidate_family(point.family);
                let candidates: Vec<HardInstance> = [point.n, point.n + 2, point.n + 4]
                    .iter()
                    .map(|&size| {
                        let graph = family.generate(size, &mut prep_rng);
                        let ids = IdAssignment::consecutive(&graph);
                        let input = case.build_input(&graph, &ids);
                        HardInstance::new(graph, input, ids)
                    })
                    .collect();
                let algos = scan_family(std::mem::take(&mut case.det_family), k);
                // The batched scan itself: one `run_many` pass per cached
                // candidate settles verdicts for the whole same-radius
                // algorithm slice, so widening K widens the batch instead
                // of multiplying view walks.
                let (found, target) = {
                    let refs: Vec<&dyn LocalAlgorithm> =
                        algos.iter().map(|b| &**b).collect();
                    let pipeline = DerandPipeline::new(
                        &*case.constructor,
                        &*case.decider,
                        &*case.language,
                        case.params.into(),
                    );
                    let mut cache = PlanCache::new();
                    let mut hard =
                        pipeline.hard_instance_stage_cached(&refs, &candidates, 0, 1, &mut cache);
                    let found = hard.pool.len();
                    let target = if hard.pool.is_empty() {
                        candidates[0].clone()
                    } else {
                        hard.pool.remove(0)
                    };
                    (found, target)
                };
                let plan = {
                    let instance = target.as_instance();
                    rlnc_engine::shared_plan_for_instance(&instance, case.constructor_radius())
                };
                Prepared::Claim2Scan {
                    constructor: case.constructor,
                    language: case.language,
                    target,
                    plan,
                    found,
                    k,
                }
            }
        }
    }
}

/// Widens a case's deterministic family to `k` probe algorithms for the
/// `claim2-scan` workload: the registry algorithms first, then synthesized
/// identity-keyed variants at the family's radius, so the batched
/// hard-instance scan has a real same-radius slice to amortize each
/// cached-view walk over.
fn scan_family(
    mut algos: Vec<Box<dyn LocalAlgorithm>>,
    k: usize,
) -> Vec<Box<dyn LocalAlgorithm>> {
    let radius = algos.first().map_or(1, |a| a.radius());
    for i in algos.len()..k {
        let i = i as u64;
        algos.push(Box::new(FnAlgorithm::new(radius, "scan-probe", move |v: &View| {
            Label::from_u64((v.center_id() + i) % (2 + i % 3))
        })));
    }
    algos.truncate(k.max(1));
    algos
}

/// Shared body of the two pipeline workloads: stages the full four-stage
/// Theorem-1 argument for one registry case at one grid point.
///
/// `Theorem1Pipeline` maps `params.b` through the legacy three-case axis
/// and `LanguagePipeline` through the whole registry, but both run this
/// code — for the legacy cases the two workloads draw identical streams
/// from `prep_rng`/`point_seed`, so their trial outcomes are bit-identical
/// (pinned by a workload test).
fn prepare_case_pipeline(
    case_id: CaseId,
    point: &GridPoint,
    prep_rng: &mut impl Rng,
    point_seed: SeedSequence,
) -> Prepared {
    let case = case_id.case();
    let nu = point.params.a.max(2) as usize;
    // Claim-2 candidates: three members of the case's candidate family
    // (the grid's family, unless the case pins one — Cole–Vishkin needs
    // oriented rings) of increasing size, consecutive identities, inputs
    // per the case's convention (empty / identity names / ring
    // orientation).
    let family = case.candidate_family(point.family);
    let candidates: Vec<HardInstance> = [point.n, point.n + 2, point.n + 4]
        .iter()
        .map(|&size| {
            let graph = family.generate(size, prep_rng);
            let ids = IdAssignment::consecutive(&graph);
            let input = case.build_input(&graph, &ids);
            HardInstance::new(graph, input, ids)
        })
        .collect();
    let pipeline = DerandPipeline::new(
        &*case.constructor,
        &*case.decider,
        &*case.language,
        case.params.into(),
    );
    // Stage 1: the Ramsey refinement of the first deterministic algorithm
    // over a universe sized to the probe. Its output feeds stage 2: the
    // smallest surviving identity becomes the hard-instance floor,
    // restricting the pool toward the refined universe exactly as Claim 1
    // hands Claim 2 the consistent set.
    let universe: Vec<u64> = (1..=(4 * point.n as u64).max(48)).collect();
    let ramsey = pipeline.ramsey_stage(
        &*case.det_family[0],
        &[candidates[0].as_instance()],
        &universe,
        40,
        point_seed.child(0).seed(),
    );
    let id_floor = ramsey.id_set.first().copied().unwrap_or(1);
    // Stage 2: one hard instance per deterministic algorithm, identity
    // ranges pairwise disjoint above the Claim-1 floor. Candidate plans are
    // shared through one cache across the whole algorithm family.
    let algos: Vec<&dyn LocalAlgorithm> = case.det_family.iter().map(|b| &**b).collect();
    let mut cache = PlanCache::new();
    let hard = pipeline.hard_instance_stage_cached(&algos, &candidates, 0, id_floor, &mut cache);
    assert!(
        !hard.pool.is_empty(),
        "language pipeline: no hard instance found for case '{}'",
        case.name
    );
    // Stages 3 and 4: both composites planned once.
    let union = pipeline.union_stage(&hard.pool, nu);
    let glued = pipeline.glued_stage_auto(&hard.pool, nu);
    Prepared::Pipeline {
        constructor: case.constructor,
        decider: case.decider,
        union: union.plan,
        glued: glued.plan,
    }
}

/// The wrapped algorithms of the `ramsey-lift` workload, by parameter
/// index: 0 = rank coloring (already order-invariant), 1 = id parity,
/// 2 = id mod 3.
fn ramsey_algorithm(index: u64) -> Box<dyn LocalAlgorithm> {
    match index % 3 {
        0 => Box::new(FnAlgorithm::new(1, "rank", |v: &View| {
            Label::from_u64(v.center_rank() as u64)
        })),
        1 => Box::new(FnAlgorithm::new(0, "id-parity", |v: &View| {
            Label::from_u64(v.center_id() % 2)
        })),
        _ => Box::new(FnAlgorithm::new(0, "id-mod-3", |v: &View| {
            Label::from_u64(v.center_id() % 3)
        })),
    }
}

/// The executable state of one grid point (see [`Workload::prepare`]).
pub enum Prepared {
    /// ε-slack random coloring: deterministic instances are prebuilt (and,
    /// when the identities are deterministic too, planned into cached
    /// views); randomized families/id schemes are rebuilt per trial from
    /// the trial seed.
    Slack {
        /// Palette size.
        colors: u64,
        /// Slack fraction.
        epsilon: f64,
        /// Graph family to instantiate per trial.
        family: Family,
        /// Target node count.
        n: usize,
        /// Identity scheme per trial.
        id_scheme: IdScheme,
        /// Prebuilt `(graph, input, ids)` when the family (and, for the
        /// ids, the scheme) is deterministic; `None` means per-trial
        /// regeneration.
        fixed: Option<(Graph, Labeling, Option<IdAssignment>)>,
        /// The engine plan over the fully fixed instance (present exactly
        /// when `fixed` carries an identity assignment).
        plan: Option<ExecutionPlan>,
    },
    /// Resilient-decider boundary: the planted configuration is fixed, so
    /// the whole decision plan (views with outputs) is cached; only the
    /// decider's coins vary per trial.
    Resilient {
        /// The Corollary-1 decider.
        decider: ResilientDecider<ProperColoring>,
        /// Cached decision views of the planted configuration.
        plan: ExecutionPlan,
    },
    /// Boosting union: the composite instance and both algorithms are
    /// fixed, construction and decision coins vary per trial.
    Boosting {
        /// The fault-injected colorer.
        constructor: FaultyConstructor<GlobalGreedyColoring>,
        /// The one-sided rejecting decider.
        decider: RejectBadBallsDecider,
        /// Cached construction views at the constructor's radius.
        construction_plan: ExecutionPlan,
        /// Cached radius-1 views whose outputs a [`DecisionScratch`]
        /// refreshes per trial.
        decision_plan: ExecutionPlan,
    },
    /// Glued decay: the glued composite is planned once (views, anchors,
    /// far-from-anchors participants); a trial constructs with fresh coins
    /// and evaluates both acceptance events.
    Glued {
        /// The fault-injected colorer.
        constructor: FaultyConstructor<GlobalGreedyColoring>,
        /// The one-sided rejecting decider.
        decider: RejectBadBallsDecider,
        /// The engine plan over the glued instance.
        plan: GluedPlan,
    },
    /// Ramsey lift: the refined identity set is computed once per grid
    /// point; a trial draws a fresh in-set identity assignment and checks
    /// that the lift agrees with the wrapped algorithm.
    Ramsey {
        /// The (fixed) host graph.
        graph: Graph,
        /// The (empty) input labeling.
        input: Labeling,
        /// The wrapped algorithm `A`.
        algo: Box<dyn LocalAlgorithm>,
        /// The refined identity set `U`.
        id_set: Vec<u64>,
        /// Size of the universe the refinement started from.
        universe_size: usize,
    },
    /// Full Theorem-1 pipeline: both composites (union and gluing, built
    /// from the hard-instance pool of the case's deterministic family) are
    /// planned once; a trial evaluates one construct-decide on each.
    Pipeline {
        /// The case's randomized constructor.
        constructor: Box<dyn RandomizedLocalAlgorithm>,
        /// The case's randomized decider.
        decider: Box<dyn RandomizedDecider>,
        /// The planned Claim-3 disjoint union.
        union: UnionPlan,
        /// The planned Claims-4/5 gluing.
        glued: GluedPlan,
    },
    /// Fault matrix: the candidate instance is fixed per grid point, so
    /// the round backend's topology and the decider's cached views are
    /// planned once; a trial materializes a fault schedule, constructs
    /// through the (faulty) round backend, and decides on the engine path.
    FaultMatrix {
        /// The case's randomized constructor.
        constructor: Box<dyn RandomizedLocalAlgorithm>,
        /// The case's randomized decider.
        decider: Box<dyn RandomizedDecider>,
        /// The declarative fault axis this grid point injects.
        fault_plan: FaultPlan,
        /// The planned round-backend instance (constructor radius).
        round_plan: RoundPlan,
        /// Cached decision views (checking radius) whose outputs a
        /// [`DecisionScratch`] refreshes per trial.
        decision_plan: ExecutionPlan,
    },
    /// Batched Claim-2 scan: the hard-instance pool is found at prepare
    /// time by one batched multi-algorithm pass per cached candidate; a
    /// trial runs the case's randomized constructor on the first found
    /// instance and checks whether the output leaves the language.
    Claim2Scan {
        /// The case's randomized constructor.
        constructor: Box<dyn RandomizedLocalAlgorithm>,
        /// The case's language (the trial's failure check).
        language: Box<dyn DistributedLanguage>,
        /// The first hard instance the scan found (or the smallest
        /// candidate when the probe family never fails).
        target: HardInstance,
        /// Cached construction views over `target`.
        plan: ExecutionPlan,
        /// Pool size the scan produced.
        found: usize,
        /// Width of the probe family (the K axis).
        k: usize,
    },
}

/// Reusable per-batch state for [`Prepared::run_trial_with`]: holds the
/// decision scratches (cloned cached views whose output labels are
/// overwritten per trial) and output buffers of the composite kernels.
/// Create one per trial batch via [`Prepared::scratch`], not per trial.
pub struct TrialScratch {
    decision: Option<DecisionScratch>,
    glued: Option<(DecisionScratch, Labeling)>,
    union: Option<(DecisionScratch, Labeling)>,
}

impl Prepared {
    /// Creates the per-batch scratch for this grid point.
    pub fn scratch(&self) -> TrialScratch {
        let mut scratch = TrialScratch {
            decision: None,
            glued: None,
            union: None,
        };
        match self {
            Prepared::Boosting { decision_plan, .. }
            | Prepared::FaultMatrix { decision_plan, .. } => {
                scratch.decision = Some(decision_plan.decision_scratch());
            }
            Prepared::Glued { plan, .. } => {
                scratch.glued =
                    Some((plan.plan().decision_scratch(), Labeling::empty(plan.node_count())));
            }
            Prepared::Pipeline { union, glued, .. } => {
                scratch.union = Some((
                    union.plan().decision_scratch(),
                    Labeling::empty(union.node_count()),
                ));
                scratch.glued = Some((
                    glued.plan().decision_scratch(),
                    Labeling::empty(glued.node_count()),
                ));
            }
            _ => {}
        }
        scratch
    }

    /// Runs one Monte-Carlo trial; `seed` is this trial's leaf of the
    /// `(scenario, grid point, trial)` seed tree. Convenience wrapper over
    /// [`Prepared::run_trial_with`] that pays the scratch setup per call —
    /// batch drivers should create one [`TrialScratch`] per batch instead.
    pub fn run_trial(&self, seed: SeedSequence) -> TrialOutcome {
        self.run_trial_with(&mut self.scratch(), seed)
    }

    /// Runs one Monte-Carlo trial against a reusable [`TrialScratch`].
    pub fn run_trial_with(&self, scratch: &mut TrialScratch, seed: SeedSequence) -> TrialOutcome {
        match self {
            Prepared::Slack {
                colors,
                epsilon,
                family,
                n,
                id_scheme,
                fixed,
                plan,
            } => {
                let algo = RandomColoring::new(*colors);
                let generated: Option<(Graph, Labeling)>;
                let (graph, input): (&Graph, &Labeling) = match fixed {
                    Some((graph, input, _)) => (graph, input),
                    None => {
                        let mut graph_rng = seed.child(0).rng();
                        let graph = family.generate(*n, &mut graph_rng);
                        let input = Labeling::empty(graph.node_count());
                        generated = Some((graph, input));
                        let (g, i) = generated.as_ref().unwrap();
                        (g, i)
                    }
                };
                let out = match plan {
                    // Fully fixed instance: evaluate against cached views.
                    Some(plan) => plan.run_randomized(&algo, seed.child(2)),
                    None => {
                        let generated_ids: Option<IdAssignment>;
                        let ids: &IdAssignment =
                            match fixed.as_ref().and_then(|(_, _, ids)| ids.as_ref()) {
                                Some(ids) => ids,
                                None => {
                                    generated_ids =
                                        Some(id_scheme.build(graph, &mut seed.child(1).rng()));
                                    generated_ids.as_ref().unwrap()
                                }
                            };
                        let inst = Instance::new(graph, input, ids);
                        Simulator::new().run_randomized(&algo, &inst, seed.child(2))
                    }
                };
                let actual_n = graph.node_count();
                let io = IoConfig::new(graph, input, &out);
                let lang = ProperColoring::new(*colors);
                let improper = improperly_colored_nodes(&lang, &io) as f64 / actual_n as f64;
                let relaxed = EpsilonSlack::new(ProperColoring::new(*colors), *epsilon);
                TrialOutcome {
                    success: relaxed.contains(&io),
                    value: improper,
                }
            }
            Prepared::Resilient { decider, plan } => {
                TrialOutcome::from_bool(plan.decide_randomized(decider, seed))
            }
            Prepared::Boosting {
                constructor,
                decider,
                construction_plan,
                decision_plan,
            } => {
                let out = construction_plan.run_randomized(constructor, seed.child(0));
                let decision = scratch
                    .decision
                    .get_or_insert_with(|| decision_plan.decision_scratch());
                assert_eq!(
                    decision.plan_id(),
                    decision_plan.id(),
                    "TrialScratch does not belong to this grid point (build it \
                     with this Prepared's scratch())"
                );
                TrialOutcome::from_bool(decision.decide_randomized(
                    decider,
                    &out,
                    seed.child(1),
                ))
            }
            Prepared::Glued {
                constructor,
                decider,
                plan,
            } => {
                let (scratch, out) = scratch.glued.get_or_insert_with(|| {
                    (plan.plan().decision_scratch(), Labeling::empty(plan.node_count()))
                });
                // Construct once, then evaluate the far-from-anchors event
                // (success) and the all-nodes acceptance (value) from the
                // same execution: the decider's verdict at a node depends
                // only on (trial seed, node), so the second pass reuses the
                // same coins.
                let far = plan.plan().accept_once(
                    scratch,
                    out,
                    constructor,
                    decider,
                    Some(plan.participants()),
                    seed,
                );
                let full = scratch.decide_randomized(decider, out, seed.child(1));
                TrialOutcome {
                    success: far,
                    value: f64::from(u8::from(full)),
                }
            }
            Prepared::Ramsey {
                graph,
                input,
                algo,
                id_set,
                universe_size,
            } => {
                // Fresh in-set identities each trial: sample n distinct
                // identities from the refined set, assign in node order.
                let mut rng = seed.child(0).rng();
                let n = graph.node_count();
                let mut chosen: Vec<u64> =
                    id_set.choose_multiple(&mut rng, n).copied().collect();
                assert_eq!(chosen.len(), n, "refined identity set too small to relabel");
                chosen.sort_unstable();
                let ids = IdAssignment::new(chosen);
                let inst = Instance::new(graph, input, &ids);
                // One arena pass serves both deterministic evaluations.
                let plan = ExecutionPlan::for_instance(&inst, algo.radius());
                let lift = OrderInvariantLift::new(&**algo, id_set.clone());
                let agree = plan.run(&**algo) == plan.run(&lift);
                TrialOutcome {
                    success: agree,
                    value: id_set.len() as f64 / *universe_size as f64,
                }
            }
            Prepared::Pipeline {
                constructor,
                decider,
                union,
                glued,
            } => {
                let (union_scratch, union_out) = scratch.union.get_or_insert_with(|| {
                    (union.plan().decision_scratch(), Labeling::empty(union.node_count()))
                });
                let union_accept = union.plan().accept_once(
                    union_scratch,
                    union_out,
                    &**constructor,
                    &**decider,
                    None,
                    seed.child(0),
                );
                let (glued_scratch, glued_out) = scratch.glued.get_or_insert_with(|| {
                    (glued.plan().decision_scratch(), Labeling::empty(glued.node_count()))
                });
                let glued_far = glued.plan().accept_once(
                    glued_scratch,
                    glued_out,
                    &**constructor,
                    &**decider,
                    Some(glued.participants()),
                    seed.child(1),
                );
                TrialOutcome {
                    success: glued_far,
                    value: f64::from(u8::from(union_accept)),
                }
            }
            Prepared::FaultMatrix {
                constructor,
                decider,
                fault_plan,
                round_plan,
                decision_plan,
            } => {
                // Trial seed discipline: child(0) materializes the fault
                // schedule, child(1) drives the constructor's coins through
                // the round backend, child(2) the decider's — so the same
                // trial replays byte-identically whatever the batching.
                let schedule = fault_plan.schedule(round_plan.graph(), seed.child(0));
                let out = round_plan.run_with_faults(&**constructor, seed.child(1), &schedule);
                let decision = scratch
                    .decision
                    .get_or_insert_with(|| decision_plan.decision_scratch());
                assert_eq!(
                    decision.plan_id(),
                    decision_plan.id(),
                    "TrialScratch does not belong to this grid point (build it \
                     with this Prepared's scratch())"
                );
                let accept = decision.decide_randomized(&**decider, &out, seed.child(2));
                TrialOutcome {
                    success: accept,
                    value: schedule.faulty_fraction(),
                }
            }
            Prepared::Claim2Scan {
                constructor,
                language,
                target,
                plan,
                found,
                k,
            } => {
                let out = plan.run_randomized(&**constructor, seed.child(0));
                let inst = target.as_instance();
                let io = IoConfig::from_instance(&inst, &out);
                TrialOutcome {
                    success: !language.contains(&io),
                    value: *found as f64 / (*k).max(1) as f64,
                }
            }
        }
    }
}

/// The one-sided decider used by the boosting workload (and E6): accept at
/// properly-colored centers, reject at bad centers with probability `p`.
#[derive(Debug, Clone, Copy)]
pub struct RejectBadBallsDecider {
    colors: u64,
    p: f64,
}

impl RejectBadBallsDecider {
    /// Builds the decider for a `colors`-palette with rejection probability
    /// `p` at bad-ball centers.
    pub fn new(colors: u64, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "rejection probability must lie in [0, 1]");
        RejectBadBallsDecider { colors, p }
    }
}

impl RandomizedDecider for RejectBadBallsDecider {
    fn radius(&self) -> u32 {
        1
    }

    fn accepts(&self, view: &View, coins: &Coins) -> bool {
        let mine = view.output(view.center_local());
        let in_range = mine.as_u64() >= 1 && mine.as_u64() <= self.colors;
        let conflict = view.center_neighbor_indices().any(|i| view.output(i) == mine);
        if in_range && !conflict {
            true
        } else {
            !coins.for_center(view).random_bool(self.p)
        }
    }

    fn name(&self) -> String {
        format!("reject-bad-balls(p={})", self.p)
    }
}

/// Plants `planted` recolorings on a properly 2-colored even cycle of size
/// `n`: each recolored node matches both of its neighbors, so the victim's
/// ball and both neighbors' balls become bad — exactly 3 bad balls per
/// planted conflict while the planted regions stay at distance ≥ 4 apart.
/// The conflict count is capped at `n / 6` so regions never merge.
///
/// # Panics
/// Panics unless `n` is an even multiple of 6 (use
/// [`Workload::normalize_size`]).
pub fn planted_cycle_configuration(n: usize, planted: u64) -> (Graph, Labeling, Labeling) {
    assert!(n % 6 == 0 && n % 2 == 0, "need an even multiple of 6, got {n}");
    let conflicts = (planted as usize).min(n / 6);
    let graph = cycle(n);
    let input = Labeling::empty(n);
    let mut output = Labeling::from_fn(&graph, |v| Label::from_u64(u64::from(v.0 % 2) + 1));
    for c in 0..conflicts {
        // Recolor node 6c+1 to match node 6c+2 (both get color 1).
        output.set(NodeId((6 * c + 1) as u32), Label::from_u64(1));
    }
    (graph, input, output)
}

/// The number of bad balls created by [`planted_cycle_configuration`]:
/// 3 per planted conflict, with the same `n / 6` cap.
pub fn planted_bad_balls(n: usize, planted: u64) -> usize {
    3 * (planted as usize).min(n / 6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Params;
    use rlnc_core::decision::decide_randomized;
    use rlnc_core::language::bad_ball_count;

    #[test]
    fn planted_configuration_creates_three_bad_balls_per_conflict() {
        for planted in 0..4 {
            let (graph, input, output) = planted_cycle_configuration(48, planted);
            let lang = ProperColoring::new(2);
            let bad = bad_ball_count(&lang, &IoConfig::new(&graph, &input, &output));
            assert_eq!(bad, planted_bad_balls(48, planted));
            assert_eq!(bad, 3 * planted as usize);
        }
    }

    #[test]
    fn normalize_size_produces_even_multiples_of_six() {
        let w = Workload::ResilientBoundary { colors: 2 };
        assert_eq!(w.normalize_size(8), 48);
        assert_eq!(w.normalize_size(96), 96);
        assert_eq!(w.normalize_size(100), 96);
        let s = Workload::SlackColoring { colors: 3, epsilon: 0.6 };
        assert_eq!(s.normalize_size(100), 100);
        // Boosting always runs ν copies of its fixed hard cycle; the
        // recorded size must say so instead of echoing the scaled axis.
        let b = Workload::BoostingUnion {
            cycle_size: 12,
            per_node_fault: 0.05,
            colors: 3,
            decider_p: 0.8,
        };
        assert_eq!(b.normalize_size(8), 12);
        assert_eq!(b.normalize_size(48), 12);
    }

    #[test]
    fn min_trials_scales_with_the_boundary_margin() {
        let w = Workload::ResilientBoundary { colors: 2 };
        let easy = GridPoint {
            index: 0,
            family: Family::Cycle,
            n: 96,
            id_scheme: IdScheme::Consecutive,
            params: Params::two(1, 0),
            trials: 0,
        };
        let hard = GridPoint {
            params: Params::two(8, 3),
            ..easy
        };
        // f = 8 with 9 planted bad balls sits ~0.016 from 1/2 and needs far
        // more trials than the comfortable f = 1, |F| = 0 row.
        assert!(w.min_trials(&hard) > 10 * w.min_trials(&easy));
        assert!(w.min_trials(&hard) <= 18_000);
        let s = Workload::SlackColoring { colors: 3, epsilon: 0.6 };
        assert_eq!(s.min_trials(&easy), 0);
    }

    #[test]
    fn reject_bad_balls_decider_accepts_proper_colorings_deterministically() {
        let (graph, input, output) = planted_cycle_configuration(48, 0);
        let ids = IdAssignment::consecutive(&graph);
        let io = IoConfig::new(&graph, &input, &output);
        let decider = RejectBadBallsDecider::new(2, 0.8);
        for t in 0..8 {
            assert!(decide_randomized(
                &decider,
                &io,
                &ids,
                SeedSequence::new(t)
            ));
        }
        assert!(decider.name().contains("0.8"));
    }

    #[test]
    fn slack_hoisting_is_stream_transparent() {
        // A prepared point with a deterministic family prebuilds the graph
        // and ids; the outcome must be identical to the per-trial path.
        let workload = Workload::SlackColoring { colors: 3, epsilon: 0.6 };
        let point = GridPoint {
            index: 0,
            family: Family::Torus,
            n: 36,
            id_scheme: IdScheme::Consecutive,
            params: Params::ZERO,
            trials: 8,
        };
        let point_seed = SeedSequence::new(42).child(0);
        let hoisted = workload.prepare(&point, point_seed);
        assert!(matches!(
            &hoisted,
            Prepared::Slack { fixed: Some(_), plan: Some(_), .. }
        ));
        let per_trial = Prepared::Slack {
            colors: 3,
            epsilon: 0.6,
            family: Family::Torus,
            n: 36,
            id_scheme: IdScheme::Consecutive,
            fixed: None,
            plan: None,
        };
        for trial in 0..8 {
            let seed = point_seed.child(1).child(trial);
            assert_eq!(hoisted.run_trial(seed), per_trial.run_trial(seed));
        }
        // Randomized families stay on the per-trial path.
        let random_point = GridPoint {
            family: Family::RandomRegular4,
            ..point
        };
        let prepared = workload.prepare(&random_point, point_seed);
        assert!(matches!(&prepared, Prepared::Slack { fixed: None, plan: None, .. }));
        // Deterministic graph + randomized ids: prebuilt graph, no plan.
        let mixed_point = GridPoint {
            id_scheme: IdScheme::RandomPermutation,
            ..point
        };
        let mixed = workload.prepare(&mixed_point, point_seed);
        assert!(matches!(&mixed, Prepared::Slack { fixed: Some(_), plan: None, .. }));
        for trial in 0..4 {
            let seed = point_seed.child(1).child(trial);
            assert_eq!(mixed.run_trial(seed), mixed.run_trial(seed));
        }
    }

    #[test]
    fn workload_family_checks() {
        let slack = Workload::SlackColoring { colors: 3, epsilon: 0.6 };
        assert!(slack.check_family(Family::Torus).is_ok());
        let res = Workload::ResilientBoundary { colors: 2 };
        assert!(res.check_family(Family::Cycle).is_ok());
        assert!(res.check_family(Family::Torus).is_err());
        let boost = Workload::BoostingUnion {
            cycle_size: 12,
            per_node_fault: 0.05,
            colors: 3,
            decider_p: 0.8,
        };
        assert!(boost.check_family(Family::Grid).is_err());
        assert!(Workload::LanguagePipeline.check_family(Family::Circulant2).is_ok());
        assert!(Workload::LanguagePipeline.check_family(Family::Path).is_err());
        assert_eq!(Workload::LanguagePipeline.normalize_size(4), 12);
    }

    #[test]
    fn language_pipeline_reproduces_theorem1_for_the_legacy_cases() {
        // The generic language workload and the hand-wired theorem1
        // workload share the registry's three-case prefix: for
        // params.b ∈ {0, 1, 2} their trial streams must be bit-identical.
        for case in 0..3u64 {
            let point = GridPoint {
                index: case,
                family: Family::Cycle,
                n: 12,
                id_scheme: IdScheme::Consecutive,
                params: Params::two(2, case),
                trials: 4,
            };
            let point_seed = SeedSequence::new(9).child(point.index);
            let legacy = Workload::Theorem1Pipeline.prepare(&point, point_seed);
            let generic = Workload::LanguagePipeline.prepare(&point, point_seed);
            for trial in 0..4u64 {
                let seed = point_seed.child(1).child(trial);
                assert_eq!(
                    legacy.run_trial(seed),
                    generic.run_trial(seed),
                    "case {case}, trial {trial}"
                );
            }
        }
    }

    #[test]
    fn language_pipeline_runs_every_registered_case() {
        // The whole catalog — including the id-named matching case and the
        // family-pinned Cole–Vishkin case — stages and runs end to end.
        let registry = rlnc_langs::registry::CaseRegistry::builtin();
        for (index, id) in registry.ids().iter().enumerate() {
            let point = GridPoint {
                index: index as u64,
                family: Family::Prism,
                n: 12,
                id_scheme: IdScheme::Consecutive,
                params: Params::two(2, index as u64),
                trials: 2,
            };
            let point_seed = SeedSequence::new(3).child(point.index);
            let prepared = Workload::LanguagePipeline.prepare(&point, point_seed);
            assert!(matches!(&prepared, Prepared::Pipeline { .. }));
            for trial in 0..2u64 {
                let outcome = prepared.run_trial(point_seed.child(1).child(trial));
                assert!(
                    (0.0..=1.0).contains(&outcome.value),
                    "case '{}' produced an out-of-range value",
                    id.name()
                );
            }
        }
    }
}

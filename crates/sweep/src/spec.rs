//! Scenario specifications: the declarative grid a sweep quantifies over.
//!
//! A [`ScenarioSpec`] is the cartesian product of four axes — graph
//! [`Family`], base size, [`IdScheme`], and workload [`Params`] — plus a
//! trial budget and the [`Workload`] kernel every grid point runs. The
//! grid is materialized by [`ScenarioSpec::grid`] at a chosen
//! [`Scale`], which multiplies sizes and trial counts exactly the way the
//! E1–E10 drivers do.

use crate::workload::Workload;
use rand::Rng;
use rlnc_graph::generators::Family;
use rlnc_graph::{Graph, IdAssignment};
use rlnc_par::Scale;

/// How identities are assigned to the nodes of a generated graph.
///
/// The paper's lower bounds hinge on the *relative order* of identities,
/// so sweeps vary the scheme: adversarial consecutive identities (§4),
/// uniformly random permutations, and order-preserving spread identities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdScheme {
    /// Consecutive identities `1..=n` in node order (the adversarial
    /// assignment of §4 on the cycle).
    Consecutive,
    /// A uniformly random permutation of `1..=n`.
    RandomPermutation,
    /// Identities `stride, 2·stride, ...` — same order type as
    /// [`IdScheme::Consecutive`] but with large value gaps.
    Spread(u64),
}

impl IdScheme {
    /// The name recorded in [`crate::RunRecord`]s and table rows.
    pub fn name(&self) -> String {
        match self {
            IdScheme::Consecutive => "consecutive".to_string(),
            IdScheme::RandomPermutation => "random-permutation".to_string(),
            IdScheme::Spread(stride) => format!("spread-{stride}"),
        }
    }

    /// Returns `true` if [`IdScheme::build`] draws from the RNG (so each
    /// call yields a different assignment).
    pub fn is_randomized(&self) -> bool {
        matches!(self, IdScheme::RandomPermutation)
    }

    /// Materializes the assignment for `graph`, drawing randomness (for the
    /// random schemes) from `rng`.
    pub fn build<R: Rng + ?Sized>(&self, graph: &Graph, rng: &mut R) -> IdAssignment {
        match self {
            IdScheme::Consecutive => IdAssignment::consecutive(graph),
            IdScheme::RandomPermutation => IdAssignment::random_permutation(graph, rng),
            IdScheme::Spread(stride) => IdAssignment::spread(graph, (*stride).max(1)),
        }
    }
}

/// A workload-specific parameter pair attached to a grid point.
///
/// The meaning of the two components is fixed by the [`Workload`]: the
/// resilient-boundary kernel reads `(f, planted conflicts)`, the boosting
/// kernel reads `(ν, _)`, and the slack kernel ignores both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Params {
    /// Primary parameter (e.g. the resilience `f`, or the copy count `ν`).
    pub a: u64,
    /// Secondary parameter (e.g. the number of planted conflicts).
    pub b: u64,
}

impl Params {
    /// The all-zero parameter pair (for workloads that take no parameters).
    pub const ZERO: Params = Params { a: 0, b: 0 };

    /// A single-parameter point.
    pub fn one(a: u64) -> Params {
        Params { a, b: 0 }
    }

    /// A two-parameter point.
    pub fn two(a: u64, b: u64) -> Params {
        Params { a, b }
    }
}

/// One concrete configuration of a scenario grid, with its scaled size and
/// trial budget resolved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPoint {
    /// Position of this point in the scenario's grid enumeration order
    /// (the second component of the `(scenario, grid point, trial)` seed
    /// path).
    pub index: u64,
    /// Graph family to instantiate.
    pub family: Family,
    /// Target node count (already scaled and workload-normalized; random
    /// families may deviate slightly, e.g. grids round to a square).
    pub n: usize,
    /// Identity scheme for the instantiated graphs.
    pub id_scheme: IdScheme,
    /// Workload-specific parameters.
    pub params: Params,
    /// Monte-Carlo trials to run at this point (scale-multiplied base
    /// budget, raised to the workload's statistical floor).
    pub trials: u64,
}

/// A named, declarative scenario: the grid axes plus the workload kernel.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Unique scenario name (a slug; used for registry lookup and as the
    /// first component of every trial's seed path).
    pub name: String,
    /// One-line human-readable description.
    pub description: String,
    /// Graph-family axis.
    pub families: Vec<Family>,
    /// Base-size axis (scaled by [`Scale::size`] at grid time).
    pub sizes: Vec<usize>,
    /// Identity-scheme axis.
    pub id_schemes: Vec<IdScheme>,
    /// Workload-parameter axis.
    pub params: Vec<Params>,
    /// Base Monte-Carlo trial count per grid point (scaled by
    /// [`Scale::trials`]).
    pub base_trials: u64,
    /// The kernel every grid point runs.
    pub workload: Workload,
}

impl ScenarioSpec {
    /// Checks that the grid is non-degenerate (every axis non-empty, a
    /// positive trial budget, workload-compatible families).
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("scenario name must be non-empty".into());
        }
        // Names flow verbatim into CSV cells and markdown table rows, so
        // restrict them to slugs (the emitters don't quote).
        if !self
            .name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(format!(
                "scenario name '{}' must be a slug (ASCII alphanumerics, '-', '_')",
                self.name
            ));
        }
        for (axis, len) in [
            ("families", self.families.len()),
            ("sizes", self.sizes.len()),
            ("id_schemes", self.id_schemes.len()),
            ("params", self.params.len()),
        ] {
            if len == 0 {
                return Err(format!("scenario '{}': axis '{axis}' is empty", self.name));
            }
        }
        if self.base_trials == 0 {
            return Err(format!("scenario '{}': base_trials must be positive", self.name));
        }
        for &family in &self.families {
            self.workload
                .check_family(family)
                .map_err(|e| format!("scenario '{}': {e}", self.name))?;
        }
        Ok(())
    }

    /// One-line workload/axis metadata for scenario listings (the CLI's
    /// `--list-scenarios`): the workload kernel plus the size of every grid
    /// axis, so new scenarios are discoverable without reading the registry
    /// source.
    pub fn summary(&self) -> String {
        format!(
            "workload={} · families={} · sizes={} · id-schemes={} · params={} points · base-trials={}",
            self.workload.name(),
            self.families.iter().map(|f| f.name()).collect::<Vec<_>>().join(","),
            self.sizes.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(","),
            self.id_schemes.iter().map(|s| s.name()).collect::<Vec<_>>().join(","),
            self.params.len(),
            self.base_trials
        )
    }

    /// Materializes the grid at the given scale, in deterministic
    /// enumeration order (family, then size, then id scheme, then params).
    pub fn grid(&self, scale: Scale) -> Vec<GridPoint> {
        let mut points = Vec::with_capacity(
            self.families.len() * self.sizes.len() * self.id_schemes.len() * self.params.len(),
        );
        let mut index = 0u64;
        for &family in &self.families {
            for &size in &self.sizes {
                let n = self.workload.normalize_size(scale.size(size));
                for &id_scheme in &self.id_schemes {
                    for &params in &self.params {
                        let mut point = GridPoint {
                            index,
                            family,
                            n,
                            id_scheme,
                            params,
                            trials: 0,
                        };
                        point.trials = scale
                            .trials(self.base_trials)
                            .max(self.workload.min_trials(&point));
                        points.push(point);
                        index += 1;
                    }
                }
            }
        }
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "demo".into(),
            description: "demo spec".into(),
            families: vec![Family::Cycle, Family::Torus],
            sizes: vec![32, 64],
            id_schemes: vec![IdScheme::Consecutive, IdScheme::RandomPermutation],
            params: vec![Params::ZERO],
            base_trials: 400,
            workload: Workload::SlackColoring {
                colors: 3,
                epsilon: 0.6,
            },
        }
    }

    #[test]
    fn grid_enumerates_the_cartesian_product_in_order() {
        let spec = demo_spec();
        let grid = spec.grid(Scale::Standard);
        assert_eq!(grid.len(), 2 * 2 * 2);
        for (i, p) in grid.iter().enumerate() {
            assert_eq!(p.index, i as u64);
            assert_eq!(p.trials, 400);
        }
        assert_eq!(grid[0].family, Family::Cycle);
        assert_eq!(grid[0].n, 32);
        assert_eq!(grid[4].family, Family::Torus);
        // Smoke scale shrinks both axes.
        let smoke = spec.grid(Scale::Smoke);
        assert_eq!(smoke[0].n, 8);
        assert_eq!(smoke[0].trials, 20);
    }

    #[test]
    fn validation_rejects_degenerate_specs() {
        assert!(demo_spec().validate().is_ok());
        let mut bad_name = demo_spec();
        bad_name.name = "commas,break,csv".into();
        assert!(bad_name.validate().unwrap_err().contains("slug"));
        let mut empty_axis = demo_spec();
        empty_axis.sizes.clear();
        assert!(empty_axis.validate().unwrap_err().contains("sizes"));
        let mut no_trials = demo_spec();
        no_trials.base_trials = 0;
        assert!(no_trials.validate().is_err());
        let mut wrong_family = demo_spec();
        wrong_family.workload = Workload::ResilientBoundary { colors: 2 };
        wrong_family.params = vec![Params::two(1, 0)];
        assert!(wrong_family.validate().unwrap_err().contains("cycle"));
    }

    #[test]
    fn summary_surfaces_workload_and_axes() {
        let spec = demo_spec();
        let summary = spec.summary();
        assert!(summary.contains("workload=slack-coloring"));
        assert!(summary.contains("families=cycle,torus"));
        assert!(summary.contains("sizes=32,64"));
        assert!(summary.contains("id-schemes=consecutive,random-permutation"));
        assert!(summary.contains("params=1 points"));
        assert!(summary.contains("base-trials=400"));
    }

    #[test]
    fn id_schemes_build_valid_assignments() {
        let g = rlnc_graph::generators::cycle(12);
        let mut rng = rlnc_par::SeedSequence::new(3).rng();
        for scheme in [
            IdScheme::Consecutive,
            IdScheme::RandomPermutation,
            IdScheme::Spread(100),
        ] {
            let ids = scheme.build(&g, &mut rng);
            assert_eq!(ids.len(), 12);
            assert!(!scheme.name().is_empty());
        }
        assert_eq!(IdScheme::Spread(7).name(), "spread-7");
    }

    #[test]
    fn params_constructors() {
        assert_eq!(Params::one(5), Params { a: 5, b: 0 });
        assert_eq!(Params::two(2, 9).b, 9);
        assert_eq!(Params::default(), Params::ZERO);
    }
}

//! Execution plans: every node's view of a fixed instance, cached once.
//!
//! A plan is the amortizable half of a Monte-Carlo loop. Building one costs
//! a single arena pass over the graph
//! ([`View::collect_all`] /
//! [`View::collect_all_io`]); every execution
//! afterwards only evaluates the algorithm's output function against the
//! cached views — no ball extraction, no induced-graph construction, no
//! identity or input re-gathering.

use rlnc_core::algorithm::{Coins, LocalAlgorithm, RandomizedLocalAlgorithm};
use rlnc_core::config::{Instance, IoConfig};
use rlnc_core::decision::RandomizedDecider;
use rlnc_core::labels::Labeling;
use rlnc_core::view::{HostLaneScratch, View};
use rlnc_graph::IdAssignment;
use rlnc_obs::{LazyCounter, LazySpan, Section};
use rlnc_par::rng::SeedSequence;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic source of plan identities (see [`ExecutionPlan::id`]).
static NEXT_PLAN_ID: AtomicU64 = AtomicU64::new(1);

// Plans built and decisions taken are functions of the requested work —
// deterministic; the build span is wall-clock — timing.
static OBS_PLANS_BUILT: LazyCounter =
    LazyCounter::new("engine.plans_built", Section::Deterministic);
static OBS_DECISIONS: LazyCounter =
    LazyCounter::new("engine.scratch.decisions", Section::Deterministic);
static OBS_PLAN_SPAN: LazySpan = LazySpan::new("engine.plan.build");

/// The cached views of every node of one fixed instance (or input-output
/// configuration) at one radius.
///
/// Construction plans ([`ExecutionPlan::for_instance`]) carry views without
/// outputs and drive [`LocalAlgorithm`]s / [`RandomizedLocalAlgorithm`]s;
/// decision plans ([`ExecutionPlan::for_io`]) carry outputs too and drive
/// [`RandomizedDecider`]s. For deciders whose outputs change per trial, see
/// [`DecisionScratch`].
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    id: u64,
    radius: u32,
    views: Vec<View>,
    work_per_execution: usize,
    has_outputs: bool,
}

impl ExecutionPlan {
    /// Plans a construction instance: collects the radius-`radius` view of
    /// every node once, through the shared-scratch ball arena.
    pub fn for_instance(instance: &Instance<'_>, radius: u32) -> ExecutionPlan {
        let views = View::collect_all(instance, radius);
        ExecutionPlan::from_views(views, radius, false)
    }

    /// Plans a decision configuration (views carry output labels), for
    /// deciders over a **fixed** input-output configuration.
    pub fn for_io(io: &IoConfig<'_>, ids: &IdAssignment, radius: u32) -> ExecutionPlan {
        let views = View::collect_all_io(io, ids, radius);
        ExecutionPlan::from_views(views, radius, true)
    }

    fn from_views(views: Vec<View>, radius: u32, has_outputs: bool) -> ExecutionPlan {
        let _span = OBS_PLAN_SPAN.start();
        OBS_PLANS_BUILT.inc();
        let work_per_execution = views.iter().map(View::len).sum();
        ExecutionPlan {
            id: NEXT_PLAN_ID.fetch_add(1, Ordering::Relaxed),
            radius,
            views,
            work_per_execution,
            has_outputs,
        }
    }

    /// A process-unique identity for this plan, shared by its clones and
    /// carried into every [`DecisionScratch`] it creates — lets callers
    /// that hold a scratch assert it was built from *this* plan.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The radius the plan was built at. Algorithms and deciders evaluated
    /// against the plan must declare exactly this radius.
    pub fn radius(&self) -> u32 {
        self.radius
    }

    /// Number of nodes (= cached views) in the planned instance.
    pub fn node_count(&self) -> usize {
        self.views.len()
    }

    /// The cached views, indexed by host node.
    pub fn views(&self) -> &[View] {
        &self.views
    }

    /// Total ball membership across all views — the amount of data one
    /// execution touches. The [`BatchRunner`](crate::BatchRunner) uses
    /// `work_per_execution × trials` to decide parallel vs sequential.
    pub fn work_per_execution(&self) -> usize {
        self.work_per_execution
    }

    /// Approximate heap bytes of the cached views — the working set one
    /// execution pass touches. This is the cache-behavior proxy recorded
    /// per group in `bench-export` (`working_set_bytes`) alongside the
    /// arena-level `graph.arena.working_set_bytes` gauge.
    ///
    /// Radius-1 views window arena-wide flat SoA lanes instead of carrying
    /// private copies; each distinct lane is counted exactly **once** here
    /// (deduped by address), never once per view.
    pub fn working_set_bytes(&self) -> u64 {
        let mut total: u64 = self.views.iter().map(View::memory_bytes).sum();
        let mut seen: Vec<usize> = Vec::new();
        for view in &self.views {
            for (addr, bytes) in view.shared_lane_refs() {
                if !seen.contains(&addr) {
                    seen.push(addr);
                    total += bytes;
                }
            }
        }
        total
    }

    /// Returns `true` if the cached views carry output labels (a decision
    /// plan).
    pub fn has_outputs(&self) -> bool {
        self.has_outputs
    }

    /// Evaluates a deterministic algorithm once, sequentially, against the
    /// cached views. Bit-identical to
    /// [`Simulator::run`](rlnc_core::Simulator::run).
    pub fn run<A: LocalAlgorithm + ?Sized>(&self, algo: &A) -> Labeling {
        self.assert_radius(algo.radius());
        Labeling::new(self.views.iter().map(|v| algo.output(v)).collect())
    }

    /// Evaluates one execution (one coin seed) of a randomized algorithm,
    /// sequentially, against the cached views. Bit-identical to
    /// [`Simulator::run_randomized`](rlnc_core::Simulator::run_randomized)
    /// with the same seed.
    pub fn run_randomized<A: RandomizedLocalAlgorithm + ?Sized>(
        &self,
        algo: &A,
        execution_seed: SeedSequence,
    ) -> Labeling {
        self.assert_radius(algo.radius());
        let coins = Coins::new(execution_seed);
        Labeling::new(self.views.iter().map(|v| algo.output(v, &coins)).collect())
    }

    /// One execution of a randomized decider on a decision plan: accepted
    /// iff every node accepts. Bit-identical to
    /// [`decide_randomized`](rlnc_core::decision::decide_randomized) with
    /// the same seed.
    ///
    /// # Panics
    /// Panics on construction plans (no outputs) or on a radius mismatch.
    pub fn decide_randomized<D: RandomizedDecider + ?Sized>(
        &self,
        decider: &D,
        execution_seed: SeedSequence,
    ) -> bool {
        assert!(
            self.has_outputs,
            "decide_randomized needs a decision plan (ExecutionPlan::for_io)"
        );
        self.assert_radius(decider.radius());
        let coins = Coins::new(execution_seed);
        self.views.iter().all(|v| decider.accepts(v, &coins))
    }

    /// Clones the cached views into a mutable scratch whose output labels
    /// can be refreshed per trial — the "construct, then decide" shape.
    /// Clone once per worker (or per trial block), not per trial.
    pub fn decision_scratch(&self) -> DecisionScratch {
        DecisionScratch {
            plan_id: self.id,
            radius: self.radius,
            views: self.views.clone(),
            lane_scratch: HostLaneScratch::new(),
        }
    }

    fn assert_radius(&self, declared: u32) {
        assert_eq!(
            declared, self.radius,
            "algorithm radius {declared} does not match plan radius {}",
            self.radius
        );
    }
}

/// Reusable per-worker views for deciding configurations whose *outputs*
/// vary per trial while graph, identities, and inputs stay fixed.
///
/// Created by [`ExecutionPlan::decision_scratch`]; each
/// [`DecisionScratch::decide_randomized`] call overwrites the cached
/// views' output labels from the trial's output labeling (reusing the
/// existing allocations) and evaluates the decider.
#[derive(Debug, Clone)]
pub struct DecisionScratch {
    plan_id: u64,
    radius: u32,
    views: Vec<View>,
    /// Per-labeling packed host keys: each trial packs every host node's
    /// output label once and the per-view refresh gathers from here,
    /// instead of re-packing per ball membership (see
    /// [`View::refresh_outputs_all`]).
    lane_scratch: HostLaneScratch,
}

impl DecisionScratch {
    /// Number of views in the scratch.
    pub fn node_count(&self) -> usize {
        self.views.len()
    }

    /// The [`ExecutionPlan::id`] of the plan this scratch was cloned from.
    pub fn plan_id(&self) -> u64 {
        self.plan_id
    }

    /// Decides `(G, (x, output))` with one coin seed: refreshes every
    /// cached view's outputs from `output`, then checks that every node
    /// accepts. Bit-identical to collecting fresh decision views and
    /// calling [`decide_randomized`](rlnc_core::decision::decide_randomized).
    pub fn decide_randomized<D: RandomizedDecider + ?Sized>(
        &mut self,
        decider: &D,
        output: &Labeling,
        execution_seed: SeedSequence,
    ) -> bool {
        assert_eq!(
            decider.radius(),
            self.radius,
            "decider radius {} does not match plan radius {}",
            decider.radius(),
            self.radius
        );
        OBS_DECISIONS.inc();
        let coins = Coins::new(execution_seed);
        if self.radius == 1 {
            self.lane_scratch.pack(output);
        }
        let lane_scratch = &self.lane_scratch;
        self.views.iter_mut().all(|view| {
            view.refresh_outputs_from(output, lane_scratch);
            decider.accepts(view, &coins)
        })
    }

    /// Like [`DecisionScratch::decide_randomized`], but only quantifies over
    /// the listed nodes (host-graph indices): accepted iff every listed node
    /// accepts. This is the kernel behind the "accepts far from every
    /// anchor" event of the gluing construction — the participation set is
    /// computed once per plan instead of once per trial. Coins still derive
    /// from `(execution seed, node)`, so the verdict at a node is identical
    /// to the all-nodes variant's.
    pub fn decide_randomized_at<D: RandomizedDecider + ?Sized>(
        &mut self,
        decider: &D,
        output: &Labeling,
        nodes: &[usize],
        execution_seed: SeedSequence,
    ) -> bool {
        assert_eq!(
            decider.radius(),
            self.radius,
            "decider radius {} does not match plan radius {}",
            decider.radius(),
            self.radius
        );
        OBS_DECISIONS.inc();
        let coins = Coins::new(execution_seed);
        nodes.iter().all(|&i| {
            let view = &mut self.views[i];
            view.refresh_outputs(output);
            decider.accepts(view, &coins)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlnc_core::algorithm::{FnAlgorithm, FnRandomizedAlgorithm};
    use rlnc_core::decision::{decide_randomized, FnRandomizedDecider};
    use rlnc_core::labels::Label;
    use rlnc_core::simulator::Simulator;
    use rand::Rng;
    use rlnc_graph::generators::cycle;
    use rlnc_graph::IdAssignment;

    fn fixture(n: usize) -> (rlnc_graph::Graph, Labeling, IdAssignment) {
        let g = cycle(n);
        let x = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0 % 2)));
        let ids = IdAssignment::spread(&g, 10);
        (g, x, ids)
    }

    #[test]
    fn construction_plan_matches_simulator() {
        let (g, x, ids) = fixture(24);
        let inst = Instance::new(&g, &x, &ids);
        let det = FnAlgorithm::new(2, "sum", |v: &View| {
            Label::from_u64((0..v.len()).map(|i| v.id(i)).sum())
        });
        let plan = ExecutionPlan::for_instance(&inst, 2);
        assert_eq!(plan.node_count(), 24);
        assert_eq!(plan.radius(), 2);
        assert!(!plan.has_outputs());
        assert_eq!(plan.work_per_execution(), 24 * 5);
        assert_eq!(plan.run(&det), Simulator::sequential().run(&det, &inst));

        let rand_algo = FnRandomizedAlgorithm::new(2, "coin", |v: &View, c: &Coins| {
            Label::from_bool(c.for_center(v).random_bool(0.5))
        });
        for t in 0..8 {
            let seed = SeedSequence::new(5).child(t);
            assert_eq!(
                plan.run_randomized(&rand_algo, seed),
                Simulator::sequential().run_randomized(&rand_algo, &inst, seed)
            );
        }
    }

    #[test]
    fn decision_plan_matches_decide_randomized() {
        let (g, x, ids) = fixture(18);
        let y = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0 % 3)));
        let io = IoConfig::new(&g, &x, &y);
        let decider = FnRandomizedDecider::new(1, "noisy", |view: &View, coins: &Coins| {
            coins.for_center(view).random_bool(0.9) || view.center_degree() == 0
        });
        let plan = ExecutionPlan::for_io(&io, &ids, 1);
        assert!(plan.has_outputs());
        for t in 0..16 {
            let seed = SeedSequence::new(9).child(t);
            assert_eq!(
                plan.decide_randomized(&decider, seed),
                decide_randomized(&decider, &io, &ids, seed)
            );
        }
    }

    #[test]
    fn decision_scratch_refreshes_outputs_per_trial() {
        let (g, x, ids) = fixture(20);
        let inst = Instance::new(&g, &x, &ids);
        let plan = ExecutionPlan::for_instance(&inst, 1);
        let mut scratch = plan.decision_scratch();
        let decider = FnRandomizedDecider::new(1, "match", |view: &View, coins: &Coins| {
            let ok = view.output(0) == view.input(0);
            ok || coins.for_center(view).random_bool(0.5)
        });
        for t in 0..8 {
            let seed = SeedSequence::new(2).child(t);
            // Outputs differ per trial: equal to inputs on even trials.
            let y = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0 % 2) + (t % 2)));
            let io = IoConfig::new(&g, &x, &y);
            assert_eq!(
                scratch.decide_randomized(&decider, &y, seed),
                decide_randomized(&decider, &io, &ids, seed)
            );
        }
        assert_eq!(scratch.node_count(), 20);
    }

    #[test]
    fn working_set_counts_each_flat_lane_exactly_once() {
        let (g, x, ids) = fixture(16);
        let y = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0 % 3)));
        let io = IoConfig::new(&g, &x, &y);
        let plan = ExecutionPlan::for_io(&io, &ids, 1);
        // Radius-1 decision views window two arena-wide lanes (inputs and
        // outputs), each one u64 per ball membership.
        let per_view: u64 = plan.views().iter().map(View::memory_bytes).sum();
        let lane_bytes = (2 * plan.work_per_execution() * 8) as u64;
        assert_eq!(plan.working_set_bytes(), per_view + lane_bytes);
        // The old accounting counted the lane once per view; with every
        // ball on a cycle holding 3 members the flat lane and the sum of
        // windows coincide, so pin the sharing itself too: every view
        // reports the same two lane addresses.
        let first: Vec<(usize, u64)> = plan.views()[0].shared_lane_refs().collect();
        assert_eq!(first.len(), 2);
        for view in plan.views() {
            let refs: Vec<(usize, u64)> = view.shared_lane_refs().collect();
            assert_eq!(refs, first, "views must window the same flat lanes");
        }
        // Radius-2 plans carry no lanes at all.
        let wide = ExecutionPlan::for_io(&io, &ids, 2);
        let wide_sum: u64 = wide.views().iter().map(View::memory_bytes).sum();
        assert_eq!(wide.working_set_bytes(), wide_sum);
        assert!(wide.views().iter().all(|v| v.shared_lane_refs().count() == 0));
    }

    #[test]
    #[should_panic(expected = "does not match plan radius")]
    fn radius_mismatch_is_rejected() {
        let (g, x, ids) = fixture(8);
        let inst = Instance::new(&g, &x, &ids);
        let plan = ExecutionPlan::for_instance(&inst, 1);
        let det = FnAlgorithm::new(2, "wrong-radius", |_: &View| Label::from_u64(0));
        let _ = plan.run(&det);
    }

    #[test]
    #[should_panic(expected = "needs a decision plan")]
    fn deciding_on_a_construction_plan_is_rejected() {
        let (g, x, ids) = fixture(8);
        let inst = Instance::new(&g, &x, &ids);
        let plan = ExecutionPlan::for_instance(&inst, 0);
        let decider = FnRandomizedDecider::new(0, "always", |_: &View, _: &Coins| true);
        let _ = plan.decide_randomized(&decider, SeedSequence::new(0));
    }
}

//! The round backend's plan/runner pair: batched `algorithm × K seeds`
//! execution through explicit message passing instead of ball extraction.
//!
//! A [`RoundPlan`] is the amortizable half — it owns the instance and the
//! prebuilt [`RoundTopology`] (the delivery map), so per-seed executions
//! pay no per-trial topology cost. A [`RoundRunner`] mirrors
//! [`BatchRunner`](crate::BatchRunner): blocked trial batches with
//! per-block output-buffer reuse, the same nested-parallelism heuristic,
//! and results that never depend on scheduling — every trial's coins and
//! fault schedule derive from its seed alone.
//!
//! Fault-free executions are bit-identical to the ball-extraction path
//! ([`ExecutionPlan`](crate::ExecutionPlan)) with the same seed — proven
//! by the `round_equivalence` proptest suite across every registry case.
//! Fault-injected executions ([`RoundPlan::run_with_faults`]) are where
//! the two backends diverge: crashes and Byzantine relabeling simply have
//! no ball-extraction counterpart.

use rlnc_core::algorithm::{Coins, RandomizedLocalAlgorithm};
use rlnc_core::decision::RandomizedDecider;
use rlnc_core::faults::FaultSchedule;
use rlnc_core::labels::Labeling;
use rlnc_core::rounds::{GatherDecide, GatherRun, RelabelAdversary, RoundSystem, RoundTopology};
use rlnc_core::{Instance, Label};
use rlnc_graph::{Graph, IdAssignment};
use rlnc_par::rng::SeedSequence;
use rlnc_par::stats::Estimate;
use rlnc_par::sweep::{balanced_ranges, sweep, sweep_sequential};
use std::ops::Range;

/// Total `node count × (rounds + 1) × trials` work below which a batch
/// runs sequentially (mirrors the engine's threshold).
const PARALLEL_WORK_THRESHOLD: u64 = 1 << 14;

/// One instance prepared for repeated round-backend execution: the graph,
/// inputs, and identities (owned), plus the prebuilt delivery topology.
#[derive(Debug, Clone)]
pub struct RoundPlan {
    graph: Graph,
    input: Labeling,
    ids: IdAssignment,
    topology: RoundTopology,
    radius: u32,
}

impl RoundPlan {
    /// Plans an instance for radius-`radius` algorithms: clones the
    /// instance and builds the delivery map once.
    pub fn for_instance(instance: &Instance<'_>, radius: u32) -> RoundPlan {
        RoundPlan {
            graph: instance.graph.clone(),
            input: instance.input.clone(),
            ids: instance.ids.clone(),
            topology: RoundTopology::new(instance.graph),
            radius,
        }
    }

    /// The planned instance (borrowing the plan's owned copies).
    pub fn instance(&self) -> Instance<'_> {
        Instance::new(&self.graph, &self.input, &self.ids)
    }

    /// The planned graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The prebuilt delivery topology.
    pub fn topology(&self) -> &RoundTopology {
        &self.topology
    }

    /// Number of nodes in the planned instance.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// The radius the plan was built at; algorithms and deciders must
    /// declare exactly this radius.
    pub fn radius(&self) -> u32 {
        self.radius
    }

    /// Work proxy of one execution (`node count × (rounds + 1)`), for the
    /// runner's parallelism heuristic.
    pub fn work_per_execution(&self) -> usize {
        self.graph.node_count() * (self.radius as usize + 1)
    }

    fn assert_radius(&self, declared: u32) {
        assert_eq!(
            declared, self.radius,
            "algorithm radius {declared} does not match round plan radius {}",
            self.radius
        );
    }

    /// One fault-free execution of a randomized algorithm through the
    /// round backend. Bit-identical to
    /// [`ExecutionPlan::run_randomized`](crate::ExecutionPlan::run_randomized)
    /// with the same seed.
    pub fn run_randomized<A: RandomizedLocalAlgorithm + ?Sized>(
        &self,
        algo: &A,
        execution_seed: SeedSequence,
    ) -> Labeling {
        self.assert_radius(algo.radius());
        let instance = self.instance();
        let wrapper = GatherRun::new(algo, Coins::new(execution_seed));
        RoundSystem::with_topology(&wrapper, &instance, &self.topology)
            .sequential()
            .run()
    }

    /// One fault-injected execution: crashed nodes fall silent per the
    /// schedule, and if the schedule marks Byzantine nodes their messages
    /// pass through the [`RelabelAdversary`]. With a fault-free schedule
    /// this equals [`RoundPlan::run_randomized`].
    pub fn run_with_faults<A: RandomizedLocalAlgorithm + ?Sized>(
        &self,
        algo: &A,
        execution_seed: SeedSequence,
        schedule: &FaultSchedule,
    ) -> Labeling {
        self.assert_radius(algo.radius());
        let instance = self.instance();
        let wrapper = GatherRun::new(algo, Coins::new(execution_seed));
        let adversary = RelabelAdversary::new();
        let mut system = RoundSystem::with_topology(&wrapper, &instance, &self.topology)
            .sequential()
            .with_faults(schedule);
        if schedule.has_byzantine() {
            system = system.with_adversary(&adversary);
        }
        system.run()
    }

    /// One decision of `(G, (x, output))` through the round backend:
    /// every node gathers its decision view by messages and votes;
    /// accepted iff every node accepts. Bit-identical to
    /// [`DecisionScratch::decide_randomized`](crate::DecisionScratch::decide_randomized)
    /// with the same seed.
    pub fn decide_randomized<D: RandomizedDecider + ?Sized>(
        &self,
        decider: &D,
        output: &Labeling,
        execution_seed: SeedSequence,
    ) -> bool {
        self.assert_radius(decider.radius());
        let instance = self.instance();
        let wrapper = GatherDecide::new(decider, output, Coins::new(execution_seed));
        let verdicts = RoundSystem::with_topology(&wrapper, &instance, &self.topology)
            .sequential()
            .run();
        let yes = Label::from_bool(true);
        verdicts.as_slice().iter().all(|v| *v == yes)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Auto,
    Sequential,
}

/// Evaluates algorithms against [`RoundPlan`]s, one seed or many — the
/// round backend's [`BatchRunner`](crate::BatchRunner).
#[derive(Debug, Clone, Copy)]
pub struct RoundRunner {
    mode: Mode,
    block: u64,
}

impl Default for RoundRunner {
    fn default() -> Self {
        RoundRunner::new()
    }
}

impl RoundRunner {
    /// A runner with automatic parallelism and 64-trial blocks.
    pub fn new() -> Self {
        RoundRunner {
            mode: Mode::Auto,
            block: 64,
        }
    }

    /// A runner that always evaluates sequentially (results are identical
    /// either way).
    pub fn sequential() -> Self {
        RoundRunner {
            mode: Mode::Sequential,
            block: 64,
        }
    }

    /// Overrides the trial block size. Results are independent of this
    /// knob; it only shapes load balancing.
    ///
    /// # Panics
    /// Panics if `block` is zero.
    pub fn with_block(mut self, block: u64) -> Self {
        assert!(block > 0, "block size must be positive");
        self.block = block;
        self
    }

    /// The nested-parallelism heuristic, same shape as the engine's: fan
    /// out iff not already inside a parallel region, more than one trial,
    /// and enough total work.
    fn parallel_trials(&self, plan: &RoundPlan, trials: u64) -> bool {
        match self.mode {
            Mode::Sequential => false,
            Mode::Auto => {
                trials > 1
                    && rayon::current_thread_index().is_none()
                    && (plan.work_per_execution() as u64).saturating_mul(trials)
                        >= PARALLEL_WORK_THRESHOLD
            }
        }
    }

    /// Runs one fault-free execution per seed and maps each output
    /// labeling through `f`, in seed order. Trials are grouped into
    /// blocks; each block reuses one output buffer.
    pub fn map_executions<A, T, F>(
        &self,
        algo: &A,
        plan: &RoundPlan,
        seeds: &[SeedSequence],
        f: F,
    ) -> Vec<T>
    where
        A: RandomizedLocalAlgorithm + ?Sized,
        T: Send,
        F: Fn(usize, &Labeling) -> T + Sync,
    {
        plan.assert_radius(algo.radius());
        let n = plan.node_count();
        let instance = plan.instance();
        let run_block = |range: &Range<usize>| -> Vec<T> {
            let mut out = Labeling::empty(n);
            let mut results = Vec::with_capacity(range.len());
            for trial in range.clone() {
                let wrapper = GatherRun::new(algo, Coins::new(seeds[trial]));
                let mut system =
                    RoundSystem::with_topology(&wrapper, &instance, &plan.topology).sequential();
                system.step_until_quiet();
                system.write_outputs(&mut out);
                results.push(f(trial, &out));
            }
            results
        };
        let chunks = seeds.len().div_ceil(self.block as usize).max(1);
        let ranges = balanced_ranges(seeds.len(), chunks);
        let nested: Vec<Vec<T>> = if self.parallel_trials(plan, seeds.len() as u64) {
            sweep(ranges, run_block)
        } else {
            sweep_sequential(ranges, run_block)
        };
        nested.into_iter().flatten().collect()
    }

    /// Runs one **fault-injected** execution per seed: trial `t`'s fault
    /// schedule derives from `seeds[t].child(0)` via `schedule`, its coins
    /// from `seeds[t].child(1)`, and `f` sees the output labeling together
    /// with the materialized schedule. Blocked and buffer-reusing like
    /// [`RoundRunner::map_executions`].
    pub fn map_fault_executions<A, T, F>(
        &self,
        algo: &A,
        plan: &RoundPlan,
        fault_plan: &rlnc_core::faults::FaultPlan,
        seeds: &[SeedSequence],
        f: F,
    ) -> Vec<T>
    where
        A: RandomizedLocalAlgorithm + ?Sized,
        T: Send,
        F: Fn(usize, &Labeling, &FaultSchedule) -> T + Sync,
    {
        plan.assert_radius(algo.radius());
        let run_block = |range: &Range<usize>| -> Vec<T> {
            let mut results = Vec::with_capacity(range.len());
            for trial in range.clone() {
                let schedule = fault_plan.schedule(&plan.graph, seeds[trial].child(0));
                let out = plan.run_with_faults(algo, seeds[trial].child(1), &schedule);
                results.push(f(trial, &out, &schedule));
            }
            results
        };
        let chunks = seeds.len().div_ceil(self.block as usize).max(1);
        let ranges = balanced_ranges(seeds.len(), chunks);
        let nested: Vec<Vec<T>> = if self.parallel_trials(plan, seeds.len() as u64) {
            sweep(ranges, run_block)
        } else {
            sweep_sequential(ranges, run_block)
        };
        nested.into_iter().flatten().collect()
    }

    /// Estimates `Pr[success(output)]` over `trials` fault-free
    /// executions with the same `(master_seed, trial)` derivation as
    /// [`BatchRunner::estimate`](crate::BatchRunner::estimate) — the
    /// success stream is bit-identical to the engine's for any algorithm
    /// the equivalence suite covers.
    pub fn estimate<A, F>(
        &self,
        algo: &A,
        plan: &RoundPlan,
        trials: u64,
        master_seed: u64,
        success: F,
    ) -> Estimate
    where
        A: RandomizedLocalAlgorithm + ?Sized,
        F: Fn(&Labeling) -> bool + Sync,
    {
        let root = SeedSequence::new(master_seed);
        let seeds: Vec<SeedSequence> = (0..trials).map(|i| root.child(i)).collect();
        let flags = self.map_executions(algo, plan, &seeds, |_, out| success(out));
        Estimate::from_counts(flags.into_iter().filter(|&b| b).count() as u64, trials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ExecutionPlan;
    use crate::runner::BatchRunner;
    use rlnc_core::algorithm::FnRandomizedAlgorithm;
    use rlnc_core::decision::FnRandomizedDecider;
    use rlnc_core::faults::FaultPlan;
    use rlnc_core::view::View;
    use rand::Rng;
    use rlnc_graph::generators::cycle;

    fn fixture(n: usize) -> (rlnc_graph::Graph, Labeling, IdAssignment) {
        let g = cycle(n);
        let x = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0 % 3)));
        let ids = IdAssignment::spread(&g, 7);
        (g, x, ids)
    }

    fn coin_algo() -> FnRandomizedAlgorithm<impl Fn(&View, &Coins) -> Label + Sync> {
        FnRandomizedAlgorithm::new(1, "coin-sum", |v: &View, c: &Coins| {
            let total: u64 = (0..v.len())
                .map(|i| c.for_view_node(v, i).random::<u64>() & 0xFF)
                .sum();
            Label::from_u64(total)
        })
    }

    #[test]
    fn round_plan_matches_execution_plan_per_seed() {
        let (g, x, ids) = fixture(20);
        let inst = Instance::new(&g, &x, &ids);
        let algo = coin_algo();
        let ball_plan = ExecutionPlan::for_instance(&inst, 1);
        let round_plan = RoundPlan::for_instance(&inst, 1);
        assert_eq!(round_plan.node_count(), 20);
        assert_eq!(round_plan.radius(), 1);
        for t in 0..6 {
            let seed = SeedSequence::new(31).child(t);
            assert_eq!(
                round_plan.run_randomized(&algo, seed),
                ball_plan.run_randomized(&algo, seed)
            );
        }
    }

    #[test]
    fn round_runner_estimate_is_bit_identical_to_batch_runner() {
        let (g, x, ids) = fixture(24);
        let inst = Instance::new(&g, &x, &ids);
        let algo = coin_algo();
        let ball_plan = ExecutionPlan::for_instance(&inst, 1);
        let round_plan = RoundPlan::for_instance(&inst, 1);
        let success = |out: &Labeling| out.get(rlnc_graph::NodeId(0)).as_u64() % 2 == 0;
        let reference = BatchRunner::sequential().estimate(&algo, &ball_plan, 60, 17, success);
        for runner in [
            RoundRunner::new(),
            RoundRunner::sequential(),
            RoundRunner::new().with_block(7),
        ] {
            let got = runner.estimate(&algo, &round_plan, 60, 17, success);
            assert_eq!(got.successes, reference.successes);
            assert_eq!(got.p_hat, reference.p_hat);
        }
    }

    #[test]
    fn round_plan_decides_like_the_decision_scratch() {
        let (g, x, ids) = fixture(16);
        let inst = Instance::new(&g, &x, &ids);
        let y = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0 % 2)));
        let decider = FnRandomizedDecider::new(1, "noisy", |view: &View, coins: &Coins| {
            view.output(0).as_u64() == 0 || coins.for_center(view).random_bool(0.6)
        });
        let ball_plan = ExecutionPlan::for_instance(&inst, 1);
        let mut scratch = ball_plan.decision_scratch();
        let round_plan = RoundPlan::for_instance(&inst, 1);
        for t in 0..12 {
            let seed = SeedSequence::new(3).child(t);
            assert_eq!(
                round_plan.decide_randomized(&decider, &y, seed),
                scratch.decide_randomized(&decider, &y, seed)
            );
        }
    }

    #[test]
    fn fault_free_schedule_reproduces_the_fault_free_run() {
        let (g, x, ids) = fixture(12);
        let inst = Instance::new(&g, &x, &ids);
        let algo = coin_algo();
        let plan = RoundPlan::for_instance(&inst, 1);
        let seed = SeedSequence::new(5).child(2);
        let schedule = FaultSchedule::fault_free(12, SeedSequence::new(0));
        assert_eq!(
            plan.run_with_faults(&algo, seed, &schedule),
            plan.run_randomized(&algo, seed)
        );
    }

    #[test]
    fn fault_executions_are_deterministic_across_batching() {
        let (g, x, ids) = fixture(16);
        let inst = Instance::new(&g, &x, &ids);
        let algo = coin_algo();
        let plan = RoundPlan::for_instance(&inst, 1);
        let fault_plan = FaultPlan::from_index(2, 0.4);
        let root = SeedSequence::new(77);
        let seeds: Vec<SeedSequence> = (0..30).map(|i| root.child(i)).collect();
        let digest = |_t: usize, out: &Labeling, s: &FaultSchedule| {
            (s.fingerprint(), out.get(rlnc_graph::NodeId(0)).as_u64())
        };
        let a = RoundRunner::new().map_fault_executions(&algo, &plan, &fault_plan, &seeds, digest);
        let b = RoundRunner::sequential()
            .map_fault_executions(&algo, &plan, &fault_plan, &seeds, digest);
        let c = RoundRunner::new()
            .with_block(3)
            .map_fault_executions(&algo, &plan, &fault_plan, &seeds, digest);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    #[should_panic(expected = "does not match round plan radius")]
    fn radius_mismatch_is_rejected() {
        let (g, x, ids) = fixture(8);
        let inst = Instance::new(&g, &x, &ids);
        let plan = RoundPlan::for_instance(&inst, 2);
        let _ = plan.run_randomized(&coin_algo(), SeedSequence::new(0));
    }
}

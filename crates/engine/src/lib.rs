//! # rlnc-engine — the batched LOCAL execution engine
//!
//! Every quantitative claim in the reproduced paper is estimated by
//! Monte-Carlo loops of the shape *"fix an instance, run an algorithm with
//! K independent coin seeds, aggregate"*. The legacy path re-derives each
//! node's radius-`t` ball on **every** trial, even though the topology,
//! identities, and ball membership never change across the trials of a
//! grid point. This crate separates **planning** from **execution**:
//!
//! * [`ExecutionPlan`] is built **once** per `(graph, ids, radius)` (plus
//!   the fixed inputs, and optionally fixed outputs for decision plans).
//!   It extracts every node's ball through a single
//!   [`BallArena`](rlnc_graph::arena::BallArena) — flat member/distance/
//!   offset arrays filled by one shared bounded-BFS scratch, no per-node
//!   hash maps — and caches the per-ball layout as ready-to-evaluate
//!   [`View`](rlnc_core::View)s.
//! * [`BatchRunner`] then evaluates `(algorithm × plan × K seeds)` in
//!   blocked parallel passes with a reusable per-block output buffer,
//!   deciding parallel-vs-sequential automatically from the plan size ×
//!   trial count (and never fanning out inside an already-parallel
//!   region).
//! * [`DecisionScratch`] covers the remaining shape — deciders whose
//!   *outputs* change per trial (e.g. "construct, then decide") — by
//!   refreshing only the output labels of cloned cached views.
//! * [`ConstructDecidePlan`], [`UnionPlan`], and [`GluedPlan`]
//!   (mod [`composite`]) package the derandomization pipeline's hot shape —
//!   construct on a disjoint union or gluing of hard instances, then decide
//!   — into plans built once per composite instance, including the
//!   precomputed "far from every anchor" participation set of Claims 4–5.
//! * [`PlanCache`] (mod [`cache`]) memoizes plans by a content fingerprint
//!   of `(graph, ids, inputs, radius)`, so searches that evaluate many
//!   algorithms against the same candidate instances (the Claim-2
//!   hard-instance search) plan each candidate once instead of once per
//!   `(algorithm, candidate)` pair.
//! * [`RoundPlan`] / [`RoundRunner`] (mod [`round`]) are the same
//!   plan/runner split over the **round backend** — explicit message
//!   passing instead of ball extraction — with seeded fault injection
//!   ([`FaultPlan`](rlnc_core::FaultPlan)) the ball path cannot express.
//!   Fault-free round executions are proven bit-identical to the engine
//!   path by `tests/round_equivalence.rs`.
//!
//! ## Determinism
//!
//! Results are **bit-identical** to the legacy
//! [`Simulator`](rlnc_core::Simulator) path. Coins are derived from
//! `(execution seed, node)` exactly as before
//! ([`Coins`](rlnc_core::Coins) hands node `v` the stream
//! `seed.child(v)` no matter who asks), cached views are bit-identical to
//! freshly collected ones ([`View::collect_all`](rlnc_core::View::collect_all)
//! is tested against [`View::collect`](rlnc_core::View::collect) per
//! node), and trial seeds follow the same `(master, trial)` derivation as
//! [`MonteCarlo`](rlnc_par::MonteCarlo). The proptest suite in
//! `tests/equivalence.rs` pins all of this down across random graph
//! families, radii, seeds, and both deterministic and randomized
//! algorithms.
//!
//! ## Example
//!
//! ```
//! use rand::Rng;
//! use rlnc_core::prelude::*;
//! use rlnc_engine::{BatchRunner, ExecutionPlan};
//! use rlnc_graph::{generators::cycle, IdAssignment};
//!
//! let graph = cycle(64);
//! let input = Labeling::empty(64);
//! let ids = IdAssignment::consecutive(&graph);
//! let instance = Instance::new(&graph, &input, &ids);
//!
//! // Plan once...
//! let algo = FnRandomizedAlgorithm::new(0, "coin", |v: &View, c: &Coins| {
//!     Label::from_bool(c.for_center(v).random_bool(0.5))
//! });
//! let plan = ExecutionPlan::for_instance(&instance, 0);
//!
//! // ...execute many times against the cached views.
//! let est = BatchRunner::new().estimate(&algo, &plan, 500, 7, |out| {
//!     out.get(rlnc_graph::NodeId(0)).as_bool()
//! });
//! assert!(est.p_hat > 0.3 && est.p_hat < 0.7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod composite;
pub mod plan;
pub mod round;
pub mod runner;

pub use cache::{
    set_shared_plan_cache, shared_plan_cache_clear, shared_plan_cache_enabled,
    shared_plan_cache_stats, shared_plan_for_instance, shared_plan_for_io, PlanCache,
    SharedCacheStats,
};
pub use composite::{ConstructDecidePlan, GluedPlan, UnionPlan};
pub use plan::{DecisionScratch, ExecutionPlan};
pub use round::{RoundPlan, RoundRunner};
pub use runner::BatchRunner;

//! A shared plan cache keyed by instance content.
//!
//! The Claim-2 hard-instance search evaluates *many* deterministic
//! algorithms against *the same* candidate instances: for every
//! `(algorithm, candidate)` pair it needs the candidate's views at the
//! algorithm's radius. Without a cache that is one fresh
//! [`ExecutionPlan`] (one full ball-arena pass) per pair — wasteful
//! exactly in the regime the paper cares about, where the algorithm family
//! is large (`N = |order-invariant algorithms|`) and most algorithms scan
//! the whole candidate list without finding a failure (a missing algorithm
//! does not advance the identity floor, so the next algorithm re-plans the
//! very same shifted candidates).
//!
//! [`PlanCache`] memoizes plans by a content fingerprint of
//! `(graph, identities, inputs, radius)`. The key the issue tracker names
//! is `(graph, ids, radius)`; inputs are folded in as well because a
//! plan's cached views carry input labels, so two instances that differ
//! only in inputs must not share a plan. Hits return the cached plan
//! unchanged — results are bit-identical to planning from scratch (plans
//! are pure functions of the fingerprinted content).

use crate::plan::ExecutionPlan;
use rlnc_core::config::{Instance, IoConfig};
use rlnc_graph::IdAssignment;
use rlnc_obs::{LazyCounter, Section};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

// Hit/miss totals are order-invariant for a fixed multiset of lookups
// (misses = distinct fingerprints), so they qualify for the deterministic
// trace section.
static OBS_HITS: LazyCounter = LazyCounter::new("engine.plan_cache.hits", Section::Deterministic);
static OBS_MISSES: LazyCounter =
    LazyCounter::new("engine.plan_cache.misses", Section::Deterministic);

/// Memoizes [`ExecutionPlan`]s by instance-content fingerprint.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: HashMap<u64, ExecutionPlan>,
    hits: u64,
    misses: u64,
}

/// SplitMix64 finalizer — a strong 64-bit mixer for the fingerprint.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Content fingerprint of `(graph, ids, inputs, radius)`: a mixed running
/// hash over the node count, every edge, every identity, every input
/// label's bytes, and the radius. 64 bits of well-mixed state make
/// accidental collisions vanishingly unlikely for the instance counts a
/// search touches (and a collision could only ever occur between
/// *different* candidates deliberately fed to the same cache).
fn fingerprint(instance: &Instance<'_>, radius: u32) -> u64 {
    let mut h = mix(0x9e37_79b9_7f4a_7c15 ^ instance.graph.node_count() as u64);
    for (u, v) in instance.graph.edges() {
        h = mix(h ^ (u64::from(u.0) << 32 | u64::from(v.0)));
    }
    for v in instance.graph.nodes() {
        h = mix(h ^ instance.ids.id(v));
        for &b in instance.input.get(v).as_bytes() {
            h = mix(h ^ u64::from(b));
        }
        h = mix(h ^ 0xA5);
    }
    mix(h ^ u64::from(radius))
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// The plan of `instance` at `radius`: cached when this exact content
    /// was planned before, freshly built (and retained) otherwise.
    pub fn plan_for(&mut self, instance: &Instance<'_>, radius: u32) -> &ExecutionPlan {
        let key = fingerprint(instance, radius);
        match self.plans.entry(key) {
            Entry::Occupied(entry) => {
                self.hits += 1;
                OBS_HITS.inc();
                entry.into_mut()
            }
            Entry::Vacant(entry) => {
                self.misses += 1;
                OBS_MISSES.inc();
                entry.insert(ExecutionPlan::for_instance(instance, radius))
            }
        }
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of cache misses (= plans built) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of distinct plans currently held.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Returns `true` if no plan has been built yet.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Process-global shared plan cache (opt-in)
// ---------------------------------------------------------------------------

/// Distinguishes construction plans from decision plans in the shared
/// fingerprint space: a `for_io` plan carries output labels its
/// `for_instance` twin does not, so identical graph/ids/inputs content must
/// not collide across the two constructors.
const IO_PLAN_TAG: u64 = 0x10C0_F160_0D1E_A5ED;

/// Generation cap of the shared cache: once this many distinct plans are
/// held the whole map is dropped and refilled, bounding resident memory of
/// a long-lived `sweep-serve` process without LRU bookkeeping. Repeat
/// requests touch far fewer distinct plans than this, so in practice the
/// cache never cycles mid-workload.
const SHARED_PLAN_CAP: usize = 1024;

static SHARED_ENABLED: AtomicBool = AtomicBool::new(false);

#[derive(Default)]
struct SharedState {
    plans: HashMap<u64, ExecutionPlan>,
    hits: u64,
    misses: u64,
}

fn shared_state() -> &'static Mutex<SharedState> {
    static SHARED: OnceLock<Mutex<SharedState>> = OnceLock::new();
    SHARED.get_or_init(|| Mutex::new(SharedState::default()))
}

/// Cumulative hit/miss/occupancy counters of the process-global shared
/// plan cache (see [`set_shared_plan_cache`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that built (and retained) a fresh plan.
    pub misses: u64,
    /// Distinct plans currently resident.
    pub plans: u64,
}

/// Enables (or disables) the process-global shared plan cache consulted by
/// [`shared_plan_for_instance`] / [`shared_plan_for_io`].
///
/// Disabled by default: every lookup then builds a fresh plan, which keeps
/// one-shot runs byte-identical in behavior *and* observability (no
/// `engine.plan_cache.*` counter traffic) to the pre-cache code. A
/// resident `sweep-serve` process enables it once at startup so repeat
/// requests for the same scenario reuse plans across requests. Disabling
/// clears the cache.
pub fn set_shared_plan_cache(enabled: bool) {
    SHARED_ENABLED.store(enabled, Ordering::Release);
    if !enabled {
        shared_plan_cache_clear();
    }
}

/// Whether the process-global shared plan cache is currently enabled.
pub fn shared_plan_cache_enabled() -> bool {
    SHARED_ENABLED.load(Ordering::Acquire)
}

/// Drops every resident plan and keeps the cumulative hit/miss counters.
pub fn shared_plan_cache_clear() {
    let mut state = shared_state().lock().unwrap_or_else(PoisonError::into_inner);
    state.plans.clear();
}

/// Snapshot of the shared cache's hit/miss/occupancy counters. Counters
/// accumulate across enable/disable cycles; `sweep-serve` reports the
/// per-request deltas.
pub fn shared_plan_cache_stats() -> SharedCacheStats {
    let state = shared_state().lock().unwrap_or_else(PoisonError::into_inner);
    SharedCacheStats {
        hits: state.hits,
        misses: state.misses,
        plans: state.plans.len() as u64,
    }
}

/// Shared-cache lookup body: returns a clone of the cached plan (cloning
/// the flat view arrays is cheap next to the ball-arena pass that builds
/// them), building and retaining on miss. Hits/misses feed the same
/// `engine.plan_cache.*` observability counters as [`PlanCache`].
fn shared_lookup(key: u64, build: impl FnOnce() -> ExecutionPlan) -> ExecutionPlan {
    let mut state = shared_state().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(plan) = state.plans.get(&key).cloned() {
        state.hits += 1;
        OBS_HITS.inc();
        return plan;
    }
    state.misses += 1;
    OBS_MISSES.inc();
    if state.plans.len() >= SHARED_PLAN_CAP {
        state.plans.clear();
    }
    let plan = build();
    state.plans.insert(key, plan.clone());
    plan
}

/// The plan of `instance` at `radius`, via the process-global shared cache
/// when [enabled](set_shared_plan_cache) (freshly built otherwise — exactly
/// [`ExecutionPlan::for_instance`]). Cached plans are pure functions of
/// the fingerprinted content, so results are bit-identical either way.
pub fn shared_plan_for_instance(instance: &Instance<'_>, radius: u32) -> ExecutionPlan {
    if !shared_plan_cache_enabled() {
        return ExecutionPlan::for_instance(instance, radius);
    }
    let key = fingerprint(instance, radius);
    shared_lookup(key, || ExecutionPlan::for_instance(instance, radius))
}

/// The decision plan of `io` at `radius`, via the process-global shared
/// cache when [enabled](set_shared_plan_cache) (freshly built otherwise —
/// exactly [`ExecutionPlan::for_io`]). The fingerprint folds the output
/// labels and an io tag on top of the instance content, so construction
/// and decision plans over the same graph never collide.
pub fn shared_plan_for_io(io: &IoConfig<'_>, ids: &IdAssignment, radius: u32) -> ExecutionPlan {
    if !shared_plan_cache_enabled() {
        return ExecutionPlan::for_io(io, ids, radius);
    }
    let instance = Instance::new(io.graph, io.input, ids);
    let mut h = fingerprint(&instance, radius) ^ IO_PLAN_TAG;
    for v in io.graph.nodes() {
        for &b in io.output.get(v).as_bytes() {
            h = mix(h ^ u64::from(b));
        }
        h = mix(h ^ 0x5A);
    }
    shared_lookup(h, || ExecutionPlan::for_io(io, ids, radius))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlnc_core::algorithm::FnAlgorithm;
    use rlnc_core::labels::{Label, Labeling};
    use rlnc_core::view::View;
    use rlnc_graph::generators::cycle;
    use rlnc_graph::IdAssignment;

    #[test]
    fn cache_hits_on_identical_content_and_misses_on_changes() {
        let g = cycle(10);
        let x = Labeling::empty(10);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let mut cache = PlanCache::new();
        assert!(cache.is_empty());
        let id_first = cache.plan_for(&inst, 1).id();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        // Same content (even via a different borrow): a hit, same plan.
        let g2 = cycle(10);
        let x2 = Labeling::empty(10);
        let ids2 = IdAssignment::consecutive(&g2);
        let inst2 = Instance::new(&g2, &x2, &ids2);
        assert_eq!(cache.plan_for(&inst2, 1).id(), id_first);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // Different radius, identities, or inputs: misses.
        cache.plan_for(&inst, 2);
        let shifted = ids.shifted(5);
        cache.plan_for(&Instance::new(&g, &x, &shifted), 1);
        let named = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0) + 1));
        cache.plan_for(&Instance::new(&g, &named, &ids), 1);
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn cached_plans_evaluate_identically_to_fresh_plans() {
        let g = cycle(12);
        let x = Labeling::empty(12);
        let ids = IdAssignment::spread(&g, 7);
        let inst = Instance::new(&g, &x, &ids);
        let algo = FnAlgorithm::new(2, "id-sum", |v: &View| {
            Label::from_u64((0..v.len()).map(|i| v.id(i)).sum())
        });
        let fresh = crate::plan::ExecutionPlan::for_instance(&inst, 2).run(&algo);
        let mut cache = PlanCache::new();
        let first = cache.plan_for(&inst, 2).run(&algo);
        let second = cache.plan_for(&inst, 2).run(&algo);
        assert_eq!(first, fresh);
        assert_eq!(second, fresh);
        assert_eq!(cache.hits(), 1);
    }

    // One combined test (not several) because the shared cache is
    // process-global and the test harness runs tests concurrently: a
    // second shared-cache test would race the enable/disable toggles.
    #[test]
    fn shared_cache_is_opt_in_warm_and_io_distinct() {
        let g = cycle(10);
        let x = Labeling::empty(10);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let algo = FnAlgorithm::new(1, "id-min", |v: &View| {
            Label::from_u64((0..v.len()).map(|i| v.id(i)).min().unwrap_or(0))
        });
        let fresh = ExecutionPlan::for_instance(&inst, 1).run(&algo);

        // Disabled (the default): no state is retained, stats don't move.
        assert!(!shared_plan_cache_enabled());
        let before = shared_plan_cache_stats();
        let cold = shared_plan_for_instance(&inst, 1).run(&algo);
        assert_eq!(cold, fresh);
        assert_eq!(shared_plan_cache_stats(), before);

        // Enabled: first lookup misses, repeat lookups hit, results are
        // bit-identical to fresh planning.
        set_shared_plan_cache(true);
        let s0 = shared_plan_cache_stats();
        let first = shared_plan_for_instance(&inst, 1).run(&algo);
        let second = shared_plan_for_instance(&inst, 1).run(&algo);
        assert_eq!(first, fresh);
        assert_eq!(second, fresh);
        let s1 = shared_plan_cache_stats();
        assert_eq!(s1.misses - s0.misses, 1);
        assert!(s1.hits - s0.hits >= 1);
        assert!(s1.plans >= 1);

        // An io plan over the same graph/ids/inputs must not collide with
        // the instance plan (outputs + tag are folded into the key).
        let y = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0) % 3));
        let io = IoConfig::new(&g, &x, &y);
        let io_plan = shared_plan_for_io(&io, &ids, 1);
        assert_ne!(io_plan.id(), shared_plan_for_instance(&inst, 1).id());
        let io_hit = shared_plan_for_io(&io, &ids, 1);
        assert_eq!(io_hit.working_set_bytes(), io_plan.working_set_bytes());

        // Disabling clears residency but keeps cumulative counters.
        set_shared_plan_cache(false);
        let cleared = shared_plan_cache_stats();
        assert_eq!(cleared.plans, 0);
        assert!(cleared.misses >= s1.misses);
    }
}

//! A shared plan cache keyed by instance content.
//!
//! The Claim-2 hard-instance search evaluates *many* deterministic
//! algorithms against *the same* candidate instances: for every
//! `(algorithm, candidate)` pair it needs the candidate's views at the
//! algorithm's radius. Without a cache that is one fresh
//! [`ExecutionPlan`] (one full ball-arena pass) per pair — wasteful
//! exactly in the regime the paper cares about, where the algorithm family
//! is large (`N = |order-invariant algorithms|`) and most algorithms scan
//! the whole candidate list without finding a failure (a missing algorithm
//! does not advance the identity floor, so the next algorithm re-plans the
//! very same shifted candidates).
//!
//! [`PlanCache`] memoizes plans by a content fingerprint of
//! `(graph, identities, inputs, radius)`. The key the issue tracker names
//! is `(graph, ids, radius)`; inputs are folded in as well because a
//! plan's cached views carry input labels, so two instances that differ
//! only in inputs must not share a plan. Hits return the cached plan
//! unchanged — results are bit-identical to planning from scratch (plans
//! are pure functions of the fingerprinted content).

use crate::plan::ExecutionPlan;
use rlnc_core::config::Instance;
use rlnc_obs::{LazyCounter, Section};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

// Hit/miss totals are order-invariant for a fixed multiset of lookups
// (misses = distinct fingerprints), so they qualify for the deterministic
// trace section.
static OBS_HITS: LazyCounter = LazyCounter::new("engine.plan_cache.hits", Section::Deterministic);
static OBS_MISSES: LazyCounter =
    LazyCounter::new("engine.plan_cache.misses", Section::Deterministic);

/// Memoizes [`ExecutionPlan`]s by instance-content fingerprint.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: HashMap<u64, ExecutionPlan>,
    hits: u64,
    misses: u64,
}

/// SplitMix64 finalizer — a strong 64-bit mixer for the fingerprint.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Content fingerprint of `(graph, ids, inputs, radius)`: a mixed running
/// hash over the node count, every edge, every identity, every input
/// label's bytes, and the radius. 64 bits of well-mixed state make
/// accidental collisions vanishingly unlikely for the instance counts a
/// search touches (and a collision could only ever occur between
/// *different* candidates deliberately fed to the same cache).
fn fingerprint(instance: &Instance<'_>, radius: u32) -> u64 {
    let mut h = mix(0x9e37_79b9_7f4a_7c15 ^ instance.graph.node_count() as u64);
    for (u, v) in instance.graph.edges() {
        h = mix(h ^ (u64::from(u.0) << 32 | u64::from(v.0)));
    }
    for v in instance.graph.nodes() {
        h = mix(h ^ instance.ids.id(v));
        for &b in instance.input.get(v).as_bytes() {
            h = mix(h ^ u64::from(b));
        }
        h = mix(h ^ 0xA5);
    }
    mix(h ^ u64::from(radius))
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// The plan of `instance` at `radius`: cached when this exact content
    /// was planned before, freshly built (and retained) otherwise.
    pub fn plan_for(&mut self, instance: &Instance<'_>, radius: u32) -> &ExecutionPlan {
        let key = fingerprint(instance, radius);
        match self.plans.entry(key) {
            Entry::Occupied(entry) => {
                self.hits += 1;
                OBS_HITS.inc();
                entry.into_mut()
            }
            Entry::Vacant(entry) => {
                self.misses += 1;
                OBS_MISSES.inc();
                entry.insert(ExecutionPlan::for_instance(instance, radius))
            }
        }
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of cache misses (= plans built) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of distinct plans currently held.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Returns `true` if no plan has been built yet.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlnc_core::algorithm::FnAlgorithm;
    use rlnc_core::labels::{Label, Labeling};
    use rlnc_core::view::View;
    use rlnc_graph::generators::cycle;
    use rlnc_graph::IdAssignment;

    #[test]
    fn cache_hits_on_identical_content_and_misses_on_changes() {
        let g = cycle(10);
        let x = Labeling::empty(10);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let mut cache = PlanCache::new();
        assert!(cache.is_empty());
        let id_first = cache.plan_for(&inst, 1).id();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        // Same content (even via a different borrow): a hit, same plan.
        let g2 = cycle(10);
        let x2 = Labeling::empty(10);
        let ids2 = IdAssignment::consecutive(&g2);
        let inst2 = Instance::new(&g2, &x2, &ids2);
        assert_eq!(cache.plan_for(&inst2, 1).id(), id_first);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // Different radius, identities, or inputs: misses.
        cache.plan_for(&inst, 2);
        let shifted = ids.shifted(5);
        cache.plan_for(&Instance::new(&g, &x, &shifted), 1);
        let named = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0) + 1));
        cache.plan_for(&Instance::new(&g, &named, &ids), 1);
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn cached_plans_evaluate_identically_to_fresh_plans() {
        let g = cycle(12);
        let x = Labeling::empty(12);
        let ids = IdAssignment::spread(&g, 7);
        let inst = Instance::new(&g, &x, &ids);
        let algo = FnAlgorithm::new(2, "id-sum", |v: &View| {
            Label::from_u64((0..v.len()).map(|i| v.id(i)).sum())
        });
        let fresh = crate::plan::ExecutionPlan::for_instance(&inst, 2).run(&algo);
        let mut cache = PlanCache::new();
        let first = cache.plan_for(&inst, 2).run(&algo);
        let second = cache.plan_for(&inst, 2).run(&algo);
        assert_eq!(first, fresh);
        assert_eq!(second, fresh);
        assert_eq!(cache.hits(), 1);
    }
}

//! The batch runner: `(algorithm × plan × K seeds)` in blocked parallel
//! passes.
//!
//! A [`BatchRunner`] owns only scheduling policy. Whether a batch fans out
//! over the thread pool is decided automatically from `plan size × trial
//! count` (the total work of the batch), and **never** inside an
//! already-parallel region — the nested-parallelism heuristic that
//! replaces the manual `Simulator::sequential()` convention. The choice
//! can never change a result: every trial's coins derive from
//! `(trial seed, node)` alone.

use crate::plan::ExecutionPlan;
use rlnc_core::algorithm::{Coins, LocalAlgorithm, RandomizedLocalAlgorithm};
use rlnc_core::decision::RandomizedDecider;
use rlnc_core::labels::Labeling;
use rlnc_graph::NodeId;
use rlnc_par::rng::SeedSequence;
use rlnc_par::stats::Estimate;
use rlnc_obs::{LazyCounter, Section};
use rlnc_par::sweep::{balanced_ranges, sweep, sweep_sequential};
use std::ops::Range;

/// Total `plan size × trial count` work below which a batch runs
/// sequentially (the fan-out bookkeeping would dominate).
const PARALLEL_WORK_THRESHOLD: u64 = 1 << 14;

// Trials executed are a function of the requested batch alone —
// deterministic. Pass counts depend on the block-size knob, and the
// parallel/sequential split on core count and nesting context, so those
// stay in the timing section.
static OBS_TRIALS: LazyCounter = LazyCounter::new("engine.batch.trials", Section::Deterministic);
static OBS_BLOCKED_PASSES: LazyCounter =
    LazyCounter::new("engine.batch.blocked_passes", Section::Timing);
static OBS_PARALLEL_PASSES: LazyCounter =
    LazyCounter::new("engine.batch.parallel_passes", Section::Timing);
static OBS_SEQUENTIAL_PASSES: LazyCounter =
    LazyCounter::new("engine.batch.sequential_passes", Section::Timing);

/// Records one batched pass over `trials` trials into the registry.
fn record_batch_pass(trials: u64, parallel: bool) {
    if !rlnc_obs::enabled() {
        return;
    }
    OBS_TRIALS.add(trials);
    OBS_BLOCKED_PASSES.inc();
    if parallel {
        OBS_PARALLEL_PASSES.inc();
    } else {
        OBS_SEQUENTIAL_PASSES.inc();
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Decide from batch work and the nesting context (the default).
    Auto,
    /// Never fan out.
    Sequential,
}

/// Evaluates algorithms against [`ExecutionPlan`]s, one seed or many.
#[derive(Debug, Clone, Copy)]
pub struct BatchRunner {
    mode: Mode,
    block: u64,
}

impl Default for BatchRunner {
    fn default() -> Self {
        BatchRunner::new()
    }
}

impl BatchRunner {
    /// A runner with automatic parallelism and 64-trial blocks.
    pub fn new() -> Self {
        BatchRunner {
            mode: Mode::Auto,
            block: 64,
        }
    }

    /// A runner that always evaluates sequentially (debugging, or pinning
    /// scheduling down in tests — results are identical either way).
    pub fn sequential() -> Self {
        BatchRunner {
            mode: Mode::Sequential,
            block: 64,
        }
    }

    /// Overrides the trial block size (trials per parallel work item).
    /// Results are independent of this knob; it only shapes load balancing.
    ///
    /// # Panics
    /// Panics if `block` is zero.
    pub fn with_block(mut self, block: u64) -> Self {
        assert!(block > 0, "block size must be positive");
        self.block = block;
        self
    }

    /// The nested-parallelism heuristic: fan a batch of `trials` executions
    /// out iff (a) the runner is not already inside a parallel region,
    /// (b) there is more than one trial, and (c) the total work
    /// `plan size × trials` clears [`PARALLEL_WORK_THRESHOLD`].
    fn parallel_trials(&self, plan: &ExecutionPlan, trials: u64) -> bool {
        match self.mode {
            Mode::Sequential => false,
            Mode::Auto => {
                trials > 1
                    && rayon::current_thread_index().is_none()
                    && (plan.work_per_execution() as u64).saturating_mul(trials)
                        >= PARALLEL_WORK_THRESHOLD
            }
        }
    }

    /// The work-based form of the heuristic, for plans (e.g. composite
    /// construct-then-decide plans) whose per-trial work is not a single
    /// `ExecutionPlan`'s.
    fn parallel_for_work(&self, total_work: u64, trials: u64) -> bool {
        match self.mode {
            Mode::Sequential => false,
            Mode::Auto => {
                trials > 1
                    && rayon::current_thread_index().is_none()
                    && total_work >= PARALLEL_WORK_THRESHOLD
            }
        }
    }

    /// Chunks `trials` into blocks and maps `f` over the trial ranges,
    /// fanning out iff `total_work` clears the heuristic. Results arrive in
    /// submission (ascending-range) order either way.
    pub(crate) fn run_blocked<T, F>(&self, trials: u64, total_work: u64, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Range<usize>) -> T + Sync,
    {
        let chunks = (trials as usize).div_ceil(self.block as usize).max(1);
        let ranges = balanced_ranges(trials as usize, chunks);
        let parallel = self.parallel_for_work(total_work, trials);
        record_batch_pass(trials, parallel);
        if parallel {
            sweep(ranges, f)
        } else {
            sweep_sequential(ranges, f)
        }
    }

    /// The single-execution variant of the heuristic: fan out over nodes
    /// iff the one execution alone carries enough work.
    fn parallel_nodes(&self, plan: &ExecutionPlan) -> bool {
        match self.mode {
            Mode::Sequential => false,
            Mode::Auto => {
                plan.node_count() >= 64
                    && rayon::current_thread_index().is_none()
                    && plan.work_per_execution() as u64 >= PARALLEL_WORK_THRESHOLD
            }
        }
    }

    /// Evaluates a deterministic algorithm once against the plan,
    /// parallelizing over nodes when the single execution is large enough.
    pub fn run<A: LocalAlgorithm + ?Sized>(&self, algo: &A, plan: &ExecutionPlan) -> Labeling {
        if !self.parallel_nodes(plan) {
            return plan.run(algo);
        }
        let chunks = plan.node_count().div_ceil(self.block as usize).max(1);
        let ranges = balanced_ranges(plan.node_count(), chunks);
        let parts: Vec<Vec<rlnc_core::labels::Label>> = sweep(ranges, |range: &Range<usize>| {
            plan.views()[range.clone()].iter().map(|v| algo.output(v)).collect()
        });
        Labeling::new(parts.into_iter().flatten().collect())
    }

    /// Evaluates one execution of a randomized algorithm against the plan,
    /// parallelizing over nodes when the execution is large enough.
    pub fn run_randomized<A: RandomizedLocalAlgorithm + ?Sized>(
        &self,
        algo: &A,
        plan: &ExecutionPlan,
        execution_seed: SeedSequence,
    ) -> Labeling {
        if !self.parallel_nodes(plan) {
            return plan.run_randomized(algo, execution_seed);
        }
        let coins = Coins::new(execution_seed);
        let chunks = plan.node_count().div_ceil(self.block as usize).max(1);
        let ranges = balanced_ranges(plan.node_count(), chunks);
        let parts: Vec<Vec<rlnc_core::labels::Label>> = sweep(ranges, |range: &Range<usize>| {
            plan.views()[range.clone()]
                .iter()
                .map(|v| algo.output(v, &coins))
                .collect()
        });
        Labeling::new(parts.into_iter().flatten().collect())
    }

    /// The multi-algorithm form of the heuristic: one pass over the plan
    /// carrying `k` evaluations per view.
    fn parallel_many(&self, plan: &ExecutionPlan, k: u64) -> bool {
        match self.mode {
            Mode::Sequential => false,
            Mode::Auto => {
                plan.node_count() >= 64
                    && rayon::current_thread_index().is_none()
                    && (plan.work_per_execution() as u64).saturating_mul(k)
                        >= PARALLEL_WORK_THRESHOLD
            }
        }
    }

    /// Evaluates **K same-radius deterministic algorithms** against the
    /// plan in one view walk: node blocks are dispatched exactly like
    /// [`BatchRunner::run`], and within each resident block the algorithm
    /// loop runs *innermost* — every view is loaded once and serves all K
    /// output functions while hot, amortizing the walk's memory traffic
    /// across the whole algorithm slice. Returns one labeling per
    /// algorithm, in slice order.
    ///
    /// Bit-identical to K sequential [`BatchRunner::run`] calls: each
    /// output is a pure function of the (immutable) view, so neither the
    /// loop interchange nor the block dispatch can change a label.
    pub fn run_many<A: LocalAlgorithm + ?Sized>(
        &self,
        algos: &[&A],
        plan: &ExecutionPlan,
    ) -> Vec<Labeling> {
        for algo in algos {
            assert_eq!(
                algo.radius(),
                plan.radius(),
                "algorithm radius {} does not match plan radius {}",
                algo.radius(),
                plan.radius()
            );
        }
        let k = algos.len();
        if k == 0 {
            return Vec::new();
        }
        let n = plan.node_count();
        let parallel = self.parallel_many(plan, k as u64);
        record_batch_pass(k as u64, parallel);
        if !parallel {
            // Direct-write walk: every output lands straight in its final
            // slot, so the sequential path carries no block buffers or
            // stitch copies on top of the plain per-algorithm loop.
            let mut outs: Vec<Vec<rlnc_core::labels::Label>> =
                (0..k).map(|_| Vec::with_capacity(n)).collect();
            for view in plan.views() {
                for (slot, algo) in outs.iter_mut().zip(algos) {
                    slot.push(algo.output(view));
                }
            }
            return outs.into_iter().map(Labeling::new).collect();
        }
        let run_block = |range: &Range<usize>| -> Vec<Vec<rlnc_core::labels::Label>> {
            let mut parts: Vec<Vec<rlnc_core::labels::Label>> =
                (0..k).map(|_| Vec::with_capacity(range.len())).collect();
            for view in &plan.views()[range.clone()] {
                for (slot, algo) in parts.iter_mut().zip(algos) {
                    slot.push(algo.output(view));
                }
            }
            parts
        };
        let chunks = n.div_ceil(self.block as usize).max(1);
        let ranges = balanced_ranges(n, chunks);
        let blocks = sweep(ranges, run_block);
        let mut outs: Vec<Vec<rlnc_core::labels::Label>> =
            (0..k).map(|_| Vec::with_capacity(n)).collect();
        for block in blocks {
            for (slot, part) in outs.iter_mut().zip(block) {
                slot.extend(part);
            }
        }
        outs.into_iter().map(Labeling::new).collect()
    }

    /// Estimates the acceptance probability of **K deciders at once** over
    /// a decision plan: trials are blocked exactly like
    /// [`BatchRunner::acceptance`], and within each trial one walk over the
    /// cached views runs the decider loop innermost, keeping one verdict
    /// bit per decider (a rejected decider is never re-evaluated, and the
    /// walk stops early once every verdict has settled).
    ///
    /// Bit-identical, decider by decider, to K sequential
    /// [`BatchRunner::acceptance`] calls with the same master seed: trial
    /// `t`'s coins derive from `(master_seed, t, node)` alone, and a
    /// decider's trial verdict is "accepts at every view" either way —
    /// skipped evaluations only ever follow a rejection that already
    /// settled the verdict.
    pub fn acceptance_many<D>(
        &self,
        deciders: &[&D],
        plan: &ExecutionPlan,
        trials: u64,
        master_seed: u64,
    ) -> Vec<Estimate>
    where
        D: RandomizedDecider + ?Sized,
    {
        assert!(
            plan.has_outputs(),
            "acceptance_many needs a decision plan (ExecutionPlan::for_io)"
        );
        for decider in deciders {
            assert_eq!(
                decider.radius(),
                plan.radius(),
                "decider radius {} does not match plan radius {}",
                decider.radius(),
                plan.radius()
            );
        }
        let k = deciders.len();
        if k == 0 {
            return Vec::new();
        }
        let words = k.div_ceil(64);
        let root = SeedSequence::new(master_seed);
        let run_block = |range: &Range<usize>| -> Vec<u64> {
            let mut successes = vec![0u64; k];
            let mut alive = vec![0u64; words];
            for trial in range.clone() {
                let coins = Coins::new(root.child(trial as u64));
                for slot in alive.iter_mut() {
                    *slot = u64::MAX;
                }
                if k % 64 != 0 {
                    alive[words - 1] = (1u64 << (k % 64)) - 1;
                }
                let mut remaining = k;
                'walk: for view in plan.views() {
                    for (j, decider) in deciders.iter().enumerate() {
                        let bit = 1u64 << (j % 64);
                        if alive[j / 64] & bit != 0 && !decider.accepts(view, &coins) {
                            alive[j / 64] &= !bit;
                            remaining -= 1;
                            if remaining == 0 {
                                break 'walk;
                            }
                        }
                    }
                }
                for (j, success) in successes.iter_mut().enumerate() {
                    *success += (alive[j / 64] >> (j % 64)) & 1;
                }
            }
            successes
        };
        let total_work = (plan.work_per_execution() as u64)
            .saturating_mul(trials)
            .saturating_mul(k as u64);
        let counts = self.run_blocked(trials, total_work, run_block);
        let mut successes = vec![0u64; k];
        for block in counts {
            for (total, count) in successes.iter_mut().zip(block) {
                *total += count;
            }
        }
        successes
            .into_iter()
            .map(|s| Estimate::from_counts(s, trials))
            .collect()
    }

    /// Runs one execution per seed and maps each output labeling through
    /// `f`, returning the results in seed order. Trials are grouped into
    /// blocks; each block reuses one output buffer, and blocks run in
    /// parallel when the heuristic says so.
    pub fn map_executions<A, T, F>(
        &self,
        algo: &A,
        plan: &ExecutionPlan,
        seeds: &[SeedSequence],
        f: F,
    ) -> Vec<T>
    where
        A: RandomizedLocalAlgorithm + ?Sized,
        T: Send,
        F: Fn(usize, &Labeling) -> T + Sync,
    {
        let n = plan.node_count();
        let run_block = |range: &Range<usize>| -> Vec<T> {
            let mut out = Labeling::empty(n);
            let mut results = Vec::with_capacity(range.len());
            for trial in range.clone() {
                let coins = Coins::new(seeds[trial]);
                for (i, view) in plan.views().iter().enumerate() {
                    out.set(NodeId::from_index(i), algo.output(view, &coins));
                }
                results.push(f(trial, &out));
            }
            results
        };
        // Plans carry a radius; fail fast before spawning anything.
        assert_eq!(
            algo.radius(),
            plan.radius(),
            "algorithm radius {} does not match plan radius {}",
            algo.radius(),
            plan.radius()
        );
        let chunks = seeds.len().div_ceil(self.block as usize).max(1);
        let ranges = balanced_ranges(seeds.len(), chunks);
        let parallel = self.parallel_trials(plan, seeds.len() as u64);
        record_batch_pass(seeds.len() as u64, parallel);
        let nested: Vec<Vec<T>> = if parallel {
            sweep(ranges, run_block)
        } else {
            sweep_sequential(ranges, run_block)
        };
        nested.into_iter().flatten().collect()
    }

    /// Estimates `Pr[success(output)]` over `trials` executions whose seeds
    /// derive from `(master_seed, trial)` exactly like
    /// [`MonteCarlo`](rlnc_par::MonteCarlo) — the per-trial success stream
    /// is bit-identical to running the legacy simulator under
    /// `MonteCarlo::new(trials).with_seed(master_seed)`.
    pub fn estimate<A, F>(
        &self,
        algo: &A,
        plan: &ExecutionPlan,
        trials: u64,
        master_seed: u64,
        success: F,
    ) -> Estimate
    where
        A: RandomizedLocalAlgorithm + ?Sized,
        F: Fn(&Labeling) -> bool + Sync,
    {
        let root = SeedSequence::new(master_seed);
        let seeds: Vec<SeedSequence> = (0..trials).map(|i| root.child(i)).collect();
        let flags = self.map_executions(algo, plan, &seeds, |_, out| success(out));
        Estimate::from_counts(flags.into_iter().filter(|&b| b).count() as u64, trials)
    }

    /// Estimates the acceptance probability `Pr[all nodes accept]` of a
    /// randomized decider over a **decision plan** (fixed outputs), with
    /// the same `(master_seed, trial)` seed derivation as
    /// [`acceptance_probability`](rlnc_core::decision::acceptance_probability).
    pub fn acceptance<D>(
        &self,
        decider: &D,
        plan: &ExecutionPlan,
        trials: u64,
        master_seed: u64,
    ) -> Estimate
    where
        D: RandomizedDecider + ?Sized,
    {
        let root = SeedSequence::new(master_seed);
        let run_block = |range: &Range<usize>| -> u64 {
            range
                .clone()
                .filter(|&trial| plan.decide_randomized(decider, root.child(trial as u64)))
                .count() as u64
        };
        let chunks = (trials as usize).div_ceil(self.block as usize).max(1);
        let ranges = balanced_ranges(trials as usize, chunks);
        let parallel = self.parallel_trials(plan, trials);
        record_batch_pass(trials, parallel);
        let counts: Vec<u64> = if parallel {
            sweep(ranges, run_block)
        } else {
            sweep_sequential(ranges, run_block)
        };
        Estimate::from_counts(counts.into_iter().sum(), trials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlnc_core::algorithm::{FnAlgorithm, FnRandomizedAlgorithm};
    use rlnc_core::config::{Instance, IoConfig};
    use rlnc_core::decision::{acceptance_probability, FnRandomizedDecider};
    use rlnc_core::labels::Label;
    use rlnc_core::simulator::Simulator;
    use rlnc_core::view::View;
    use rand::Rng;
    use rlnc_graph::generators::cycle;
    use rlnc_graph::IdAssignment;
    use rlnc_par::trials::MonteCarlo;

    fn fixture(n: usize) -> (rlnc_graph::Graph, Labeling, IdAssignment) {
        let g = cycle(n);
        let x = Labeling::empty(n);
        let ids = IdAssignment::consecutive(&g);
        (g, x, ids)
    }

    fn coin_algo() -> FnRandomizedAlgorithm<impl Fn(&View, &Coins) -> Label + Sync> {
        FnRandomizedAlgorithm::new(1, "coin-sum", |v: &View, c: &Coins| {
            let total: u64 = (0..v.len())
                .map(|i| {
                    let mut rng = c.for_view_node(v, i);
                    rng.random::<u64>() & 0x7
                })
                .sum();
            Label::from_u64(total)
        })
    }

    #[test]
    fn runner_matches_simulator_for_single_executions() {
        let (g, x, ids) = fixture(200);
        let inst = Instance::new(&g, &x, &ids);
        let plan = ExecutionPlan::for_instance(&inst, 1);
        let det = FnAlgorithm::new(1, "ids", |v: &View| Label::from_u64(v.center_id()));
        assert_eq!(
            BatchRunner::new().run(&det, &plan),
            Simulator::sequential().run(&det, &inst)
        );
        let algo = coin_algo();
        let seed = SeedSequence::new(77).child(3);
        assert_eq!(
            BatchRunner::new().run_randomized(&algo, &plan, seed),
            Simulator::sequential().run_randomized(&algo, &inst, seed)
        );
        assert_eq!(
            BatchRunner::sequential().run_randomized(&algo, &plan, seed),
            Simulator::sequential().run_randomized(&algo, &inst, seed)
        );
    }

    #[test]
    fn estimate_is_bit_identical_to_monte_carlo_over_the_simulator() {
        let (g, x, ids) = fixture(96);
        let inst = Instance::new(&g, &x, &ids);
        let algo = coin_algo();
        let plan = ExecutionPlan::for_instance(&inst, 1);
        let success =
            |out: &Labeling| out.get(rlnc_graph::NodeId(0)).as_u64() % 2 == 0;
        let legacy = MonteCarlo::new(400).with_seed(13).estimate(|seed| {
            let out = Simulator::sequential().run_randomized(&algo, &inst, seed);
            success(&out)
        });
        for runner in [
            BatchRunner::new(),
            BatchRunner::sequential(),
            BatchRunner::new().with_block(7),
        ] {
            let engine = runner.estimate(&algo, &plan, 400, 13, success);
            assert_eq!(engine.successes, legacy.successes);
            assert_eq!(engine.p_hat, legacy.p_hat);
        }
    }

    #[test]
    fn acceptance_is_bit_identical_to_legacy_acceptance_probability() {
        let (g, x, ids) = fixture(48);
        let y = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0 % 2)));
        let io = IoConfig::new(&g, &x, &y);
        let decider = FnRandomizedDecider::new(1, "bernoulli", |view: &View, coins: &Coins| {
            coins.for_center(view).random_bool(0.97)
        });
        let plan = ExecutionPlan::for_io(&io, &ids, 1);
        let legacy = acceptance_probability(&decider, &io, &ids, 600, 5);
        let engine = BatchRunner::new().acceptance(&decider, &plan, 600, 5);
        assert_eq!(engine.successes, legacy.successes);
        let sequential = BatchRunner::sequential().acceptance(&decider, &plan, 600, 5);
        assert_eq!(sequential.successes, legacy.successes);
    }

    #[test]
    fn run_many_matches_k_sequential_runs() {
        let (g, x, ids) = fixture(150);
        let inst = Instance::new(&g, &x, &ids);
        let plan = ExecutionPlan::for_instance(&inst, 1);
        let a1 = FnAlgorithm::new(1, "ids", |v: &View| Label::from_u64(v.center_id()));
        let a2 = FnAlgorithm::new(1, "deg", |v: &View| {
            Label::from_u64(v.center_degree() as u64)
        });
        let a3 = FnAlgorithm::new(1, "rank", |v: &View| {
            Label::from_u64(v.center_rank() as u64)
        });
        let algos: Vec<&dyn LocalAlgorithm> = vec![&a1, &a2, &a3];
        for runner in [
            BatchRunner::new(),
            BatchRunner::sequential(),
            BatchRunner::new().with_block(7),
        ] {
            let many = runner.run_many(&algos, &plan);
            assert_eq!(many.len(), 3);
            for (algo, out) in algos.iter().zip(&many) {
                assert_eq!(out, &runner.run(*algo, &plan));
            }
        }
        let empty: [&dyn LocalAlgorithm; 0] = [];
        assert!(BatchRunner::new().run_many(&empty, &plan).is_empty());
    }

    #[test]
    fn acceptance_many_matches_k_sequential_acceptances() {
        let (g, x, ids) = fixture(48);
        let y = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0 % 2)));
        let io = IoConfig::new(&g, &x, &y);
        let plan = ExecutionPlan::for_io(&io, &ids, 1);
        // Different acceptance rates so the verdict bits settle at
        // different views within a trial.
        let d1 = FnRandomizedDecider::new(1, "p99", |view: &View, coins: &Coins| {
            coins.for_center(view).random_bool(0.99)
        });
        let d2 = FnRandomizedDecider::new(1, "p70", |view: &View, coins: &Coins| {
            coins.for_center(view).random_bool(0.7) || view.output(0).as_u64() == 7
        });
        let d3 = FnRandomizedDecider::new(1, "p30", |view: &View, coins: &Coins| {
            coins.for_center(view).random_bool(0.3)
        });
        let deciders: Vec<&dyn RandomizedDecider> = vec![&d1, &d2, &d3];
        for runner in [
            BatchRunner::new(),
            BatchRunner::sequential(),
            BatchRunner::new().with_block(5),
        ] {
            let many = runner.acceptance_many(&deciders, &plan, 300, 11);
            assert_eq!(many.len(), 3);
            for (decider, estimate) in deciders.iter().zip(&many) {
                let solo = runner.acceptance(*decider, &plan, 300, 11);
                assert_eq!(estimate.successes, solo.successes);
                assert_eq!(estimate.p_hat, solo.p_hat);
            }
        }
    }

    #[test]
    fn acceptance_many_handles_more_than_one_bitset_word() {
        let (g, x, ids) = fixture(20);
        let y = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0 % 3)));
        let io = IoConfig::new(&g, &x, &y);
        let plan = ExecutionPlan::for_io(&io, &ids, 1);
        let deciders: Vec<_> = (0..70u32)
            .map(|i| {
                FnRandomizedDecider::new(1, "graded", move |view: &View, coins: &Coins| {
                    coins.for_center(view).random_bool(0.4 + f64::from(i) * 0.008)
                })
            })
            .collect();
        let refs: Vec<&_> = deciders.iter().collect();
        let many = BatchRunner::new().acceptance_many(&refs, &plan, 64, 3);
        assert_eq!(many.len(), 70);
        for (decider, estimate) in deciders.iter().zip(&many) {
            let solo = BatchRunner::new().acceptance(decider, &plan, 64, 3);
            assert_eq!(estimate.successes, solo.successes);
        }
    }

    #[test]
    #[should_panic(expected = "does not match plan radius")]
    fn run_many_rejects_mixed_radius() {
        let (g, x, ids) = fixture(8);
        let inst = Instance::new(&g, &x, &ids);
        let plan = ExecutionPlan::for_instance(&inst, 1);
        let good = FnAlgorithm::new(1, "ok", |_: &View| Label::from_u64(0));
        let bad = FnAlgorithm::new(2, "wrong", |_: &View| Label::from_u64(0));
        let algos: Vec<&dyn LocalAlgorithm> = vec![&good, &bad];
        let _ = BatchRunner::new().run_many(&algos, &plan);
    }

    #[test]
    fn map_executions_preserves_trial_order() {
        let (g, x, ids) = fixture(16);
        let inst = Instance::new(&g, &x, &ids);
        let algo = FnRandomizedAlgorithm::new(0, "trial-echo", |v: &View, c: &Coins| {
            let mut rng = c.for_center(v);
            Label::from_u64(rng.random::<u64>() & 0xFFFF)
        });
        let plan = ExecutionPlan::for_instance(&inst, 0);
        let root = SeedSequence::new(4);
        let seeds: Vec<SeedSequence> = (0..40).map(|i| root.child(i)).collect();
        let got = BatchRunner::new().with_block(3).map_executions(&algo, &plan, &seeds, |t, out| {
            (t, out.get(rlnc_graph::NodeId(0)).as_u64())
        });
        for (i, (t, value)) in got.iter().enumerate() {
            assert_eq!(i, *t);
            let direct = plan.run_randomized(&algo, seeds[i]);
            assert_eq!(*value, direct.get(rlnc_graph::NodeId(0)).as_u64());
        }
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_rejected() {
        let _ = BatchRunner::new().with_block(0);
    }
}

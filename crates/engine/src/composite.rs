//! Composite plans: construct-then-decide kernels over disjoint unions and
//! connected gluings.
//!
//! The derandomization argument of Theorem 1 spends almost all of its
//! Monte-Carlo budget on one shape: *run a randomized constructor on a
//! composite instance (a disjoint union of hard instances, or their
//! connected gluing), then run a randomized decider on the result*. The
//! legacy estimators in `rlnc_core::derand` re-extract every node's ball on
//! every trial and, for the gluing's "far from every anchor" event, re-run
//! one BFS per anchor per trial. The plan kinds here amortize all of that:
//!
//! * [`ConstructDecidePlan`] caches two view sets over one fixed instance —
//!   construction views at the constructor's radius and decision views at
//!   the decider's radius — via one [`BallArena`](rlnc_graph::arena::BallArena)
//!   pass each over the combined CSR. A trial only evaluates output
//!   functions and refreshes output labels.
//! * [`UnionPlan`] assembles the disjoint union of `ν` component instances
//!   (identity ranges made disjoint exactly as in Claim 3) and plans it
//!   once, remembering the per-component offsets.
//! * [`GluedPlan`] plans a glued connected instance and precomputes the
//!   participation set of the Claims-4/5 event — the nodes at distance
//!   greater than `t + t'` from at least one anchor — so the far-from
//!   verdict needs no per-trial BFS.
//!
//! All kernels follow the `(master seed, trial)` derivation of
//! [`MonteCarlo`](rlnc_par::MonteCarlo) and split each trial seed into
//! `child(0)` (constructor coins) and `child(1)` (decider coins), exactly
//! like the legacy estimators — the equivalence suite pins the streams
//! down bit-for-bit.

use crate::plan::{DecisionScratch, ExecutionPlan};
use crate::runner::BatchRunner;
use rlnc_core::algorithm::{Coins, RandomizedLocalAlgorithm};
use rlnc_core::config::Instance;
use rlnc_core::decision::RandomizedDecider;
use rlnc_core::labels::Labeling;
use rlnc_graph::ops::{concatenate_ids, disjoint_union};
use rlnc_graph::traversal::nodes_far_from_any;
use rlnc_graph::{Graph, IdAssignment, NodeId};
use rlnc_par::rng::SeedSequence;
use rlnc_par::stats::Estimate;

/// Cached construction and decision views of one fixed composite instance.
///
/// The construction half drives a [`RandomizedLocalAlgorithm`]; the
/// decision half holds construction views at the decider's radius whose
/// output labels a per-block [`DecisionScratch`] refreshes from each
/// trial's constructed labeling.
#[derive(Debug, Clone)]
pub struct ConstructDecidePlan {
    construction: ExecutionPlan,
    decision: ExecutionPlan,
}

impl ConstructDecidePlan {
    /// Plans `instance` at the two radii (one arena pass per distinct
    /// radius — equal radii share a single pass and view set).
    pub fn new(instance: &Instance<'_>, construction_radius: u32, decision_radius: u32) -> Self {
        let construction = ExecutionPlan::for_instance(instance, construction_radius);
        let decision = if decision_radius == construction_radius {
            construction.clone()
        } else {
            ExecutionPlan::for_instance(instance, decision_radius)
        };
        ConstructDecidePlan {
            construction,
            decision,
        }
    }

    /// The cached construction views.
    pub fn construction(&self) -> &ExecutionPlan {
        &self.construction
    }

    /// The cached decision views (outputs refreshed per trial).
    pub fn decision(&self) -> &ExecutionPlan {
        &self.decision
    }

    /// Number of nodes in the planned instance.
    pub fn node_count(&self) -> usize {
        self.construction.node_count()
    }

    /// Total view membership one construct-then-decide trial touches.
    pub fn work_per_trial(&self) -> usize {
        self.construction.work_per_execution() + self.decision.work_per_execution()
    }

    /// Approximate heap bytes of both cached view sets — the working-set
    /// proxy `bench-export` records per composite-kernel group.
    pub fn working_set_bytes(&self) -> u64 {
        self.construction.working_set_bytes() + self.decision.working_set_bytes()
    }

    /// One trial against caller-provided reusable buffers: constructs with
    /// coins `trial_seed.child(0)` into `out`, then decides `out` with
    /// coins `trial_seed.child(1)`. When `nodes` is `Some`, only the listed
    /// nodes are quantified over (the far-from-anchors event); `None` means
    /// every node must accept.
    pub fn accept_once<C, D>(
        &self,
        scratch: &mut DecisionScratch,
        out: &mut Labeling,
        constructor: &C,
        decider: &D,
        nodes: Option<&[usize]>,
        trial_seed: SeedSequence,
    ) -> bool
    where
        C: RandomizedLocalAlgorithm + ?Sized,
        D: RandomizedDecider + ?Sized,
    {
        assert_eq!(
            scratch.plan_id(),
            self.decision.id(),
            "decision scratch does not belong to this plan"
        );
        assert_eq!(
            constructor.radius(),
            self.construction.radius(),
            "constructor radius {} does not match plan radius {}",
            constructor.radius(),
            self.construction.radius()
        );
        let coins = Coins::new(trial_seed.child(0));
        for (i, view) in self.construction.views().iter().enumerate() {
            out.set(NodeId::from_index(i), constructor.output(view, &coins));
        }
        let decision_seed = trial_seed.child(1);
        match nodes {
            Some(nodes) => scratch.decide_randomized_at(decider, out, nodes, decision_seed),
            None => scratch.decide_randomized(decider, out, decision_seed),
        }
    }

    /// A fresh decision scratch for this plan (clone once per trial block).
    pub fn decision_scratch(&self) -> DecisionScratch {
        self.decision.decision_scratch()
    }
}

/// A [`ConstructDecidePlan`] over the disjoint union of `ν` component
/// instances — the Claim-3 composite, planned once.
#[derive(Debug, Clone)]
pub struct UnionPlan {
    plan: ConstructDecidePlan,
    offsets: Vec<usize>,
}

impl UnionPlan {
    /// Builds and plans the disjoint union of `nu` components, cycling
    /// through `parts` (graph, input, identity triples) when `nu` exceeds
    /// their number and shifting identity ranges pairwise disjoint —
    /// mirroring `rlnc_core::derand::boosting::build_disjoint_union`
    /// exactly, so the planned instance is the one the legacy estimator
    /// sees.
    ///
    /// # Panics
    /// Panics if `parts` is empty or `nu` is zero.
    pub fn for_parts(
        parts: &[(&Graph, &Labeling, &IdAssignment)],
        nu: usize,
        construction_radius: u32,
        decision_radius: u32,
    ) -> UnionPlan {
        assert!(!parts.is_empty(), "need at least one component instance");
        assert!(nu >= 1, "need at least one copy");
        let chosen: Vec<&(&Graph, &Labeling, &IdAssignment)> =
            (0..nu).map(|i| &parts[i % parts.len()]).collect();
        let graphs: Vec<&Graph> = chosen.iter().map(|(g, _, _)| *g).collect();
        let union = disjoint_union(&graphs);
        let ids = concatenate_ids(&chosen.iter().map(|(_, _, ids)| *ids).collect::<Vec<_>>());
        let mut input = Labeling::empty(0);
        for (_, part_input, _) in &chosen {
            input = input.concatenate(part_input);
        }
        let instance = Instance::new(&union.graph, &input, &ids);
        UnionPlan {
            plan: ConstructDecidePlan::new(&instance, construction_radius, decision_radius),
            offsets: union.offsets,
        }
    }

    /// The underlying construct-then-decide plan.
    pub fn plan(&self) -> &ConstructDecidePlan {
        &self.plan
    }

    /// Number of components in the union.
    pub fn components(&self) -> usize {
        self.offsets.len()
    }

    /// `offsets()[i]` is the union-graph index of node 0 of component `i`.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Total node count of the union.
    pub fn node_count(&self) -> usize {
        self.plan.node_count()
    }
}

/// A [`ConstructDecidePlan`] over a glued connected instance, with the
/// Claims-4/5 participation set precomputed.
#[derive(Debug, Clone)]
pub struct GluedPlan {
    plan: ConstructDecidePlan,
    anchors: Vec<NodeId>,
    exclusion_radius: u32,
    participants: Vec<usize>,
}

impl GluedPlan {
    /// Plans the glued instance and precomputes the nodes participating in
    /// the "accepts far from every anchor" event (distance greater than
    /// `exclusion_radius` from at least one anchor).
    ///
    /// # Panics
    /// Panics if no anchors are supplied.
    pub fn new(
        instance: &Instance<'_>,
        anchors: Vec<NodeId>,
        exclusion_radius: u32,
        construction_radius: u32,
        decision_radius: u32,
    ) -> GluedPlan {
        assert!(!anchors.is_empty(), "a glued plan needs at least one anchor");
        let participants = nodes_far_from_any(instance.graph, &anchors, exclusion_radius)
            .into_iter()
            .map(|v| v.index())
            .collect();
        GluedPlan {
            plan: ConstructDecidePlan::new(instance, construction_radius, decision_radius),
            anchors,
            exclusion_radius,
            participants,
        }
    }

    /// The underlying construct-then-decide plan.
    pub fn plan(&self) -> &ConstructDecidePlan {
        &self.plan
    }

    /// The glued-graph anchor nodes.
    pub fn anchors(&self) -> &[NodeId] {
        &self.anchors
    }

    /// The exclusion radius `t + t'` of the far-from event.
    pub fn exclusion_radius(&self) -> u32 {
        self.exclusion_radius
    }

    /// The nodes quantified over by the far-from-every-anchor event, in
    /// ascending order.
    pub fn participants(&self) -> &[usize] {
        &self.participants
    }

    /// Total node count of the glued instance.
    pub fn node_count(&self) -> usize {
        self.plan.node_count()
    }
}

impl BatchRunner {
    /// Estimates `Pr[D accepts C(G)]` over `trials` construct-then-decide
    /// executions of a composite plan, with the `(master seed, trial)` seed
    /// derivation of [`MonteCarlo`](rlnc_par::MonteCarlo) and the
    /// `child(0)`/`child(1)` constructor/decider split of the legacy
    /// `acceptance_of_constructed` — bit-identical success streams.
    pub fn construct_decide_acceptance<C, D>(
        &self,
        plan: &ConstructDecidePlan,
        constructor: &C,
        decider: &D,
        trials: u64,
        master_seed: u64,
    ) -> Estimate
    where
        C: RandomizedLocalAlgorithm + ?Sized,
        D: RandomizedDecider + ?Sized,
    {
        self.composite_acceptance(plan, constructor, decider, None, trials, master_seed)
    }

    /// [`BatchRunner::construct_decide_acceptance`] over a union plan.
    pub fn union_acceptance<C, D>(
        &self,
        union: &UnionPlan,
        constructor: &C,
        decider: &D,
        trials: u64,
        master_seed: u64,
    ) -> Estimate
    where
        C: RandomizedLocalAlgorithm + ?Sized,
        D: RandomizedDecider + ?Sized,
    {
        self.construct_decide_acceptance(union.plan(), constructor, decider, trials, master_seed)
    }

    /// All-nodes acceptance `Pr[D accepts C(G)]` on a glued plan.
    pub fn glued_acceptance<C, D>(
        &self,
        glued: &GluedPlan,
        constructor: &C,
        decider: &D,
        trials: u64,
        master_seed: u64,
    ) -> Estimate
    where
        C: RandomizedLocalAlgorithm + ?Sized,
        D: RandomizedDecider + ?Sized,
    {
        self.construct_decide_acceptance(glued.plan(), constructor, decider, trials, master_seed)
    }

    /// The Claims-4/5 event: `Pr[D accepts C(G) far from every anchor]` —
    /// every precomputed participant accepts. Bit-identical to the legacy
    /// `GluingExperiment::acceptance_far_from_all_anchors`, which re-ran
    /// one BFS per anchor per trial to find the same participants.
    pub fn glued_far_acceptance<C, D>(
        &self,
        glued: &GluedPlan,
        constructor: &C,
        decider: &D,
        trials: u64,
        master_seed: u64,
    ) -> Estimate
    where
        C: RandomizedLocalAlgorithm + ?Sized,
        D: RandomizedDecider + ?Sized,
    {
        self.composite_acceptance(
            glued.plan(),
            constructor,
            decider,
            Some(glued.participants()),
            trials,
            master_seed,
        )
    }

    fn composite_acceptance<C, D>(
        &self,
        plan: &ConstructDecidePlan,
        constructor: &C,
        decider: &D,
        nodes: Option<&[usize]>,
        trials: u64,
        master_seed: u64,
    ) -> Estimate
    where
        C: RandomizedLocalAlgorithm + ?Sized,
        D: RandomizedDecider + ?Sized,
    {
        assert_eq!(
            constructor.radius(),
            plan.construction().radius(),
            "constructor radius {} does not match plan radius {}",
            constructor.radius(),
            plan.construction().radius()
        );
        let root = SeedSequence::new(master_seed);
        let n = plan.node_count();
        let run_block = |range: &std::ops::Range<usize>| -> u64 {
            let mut scratch = plan.decision_scratch();
            let mut out = Labeling::empty(n);
            range
                .clone()
                .filter(|&trial| {
                    plan.accept_once(
                        &mut scratch,
                        &mut out,
                        constructor,
                        decider,
                        nodes,
                        root.child(trial as u64),
                    )
                })
                .count() as u64
        };
        let work = (plan.work_per_trial() as u64).saturating_mul(trials);
        let counts = self.run_blocked(trials, work, run_block);
        Estimate::from_counts(counts.into_iter().sum(), trials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rlnc_core::algorithm::FnRandomizedAlgorithm;
    use rlnc_core::decision::FnRandomizedDecider;
    use rlnc_core::derand::boosting::{acceptance_of_constructed, build_disjoint_union};
    use rlnc_core::derand::hard_instances::consecutive_cycle_candidates;
    use rlnc_core::labels::Label;
    use rlnc_core::view::View;

    fn parts_of(
        hard: &[rlnc_core::derand::HardInstance],
    ) -> Vec<(&Graph, &Labeling, &IdAssignment)> {
        hard.iter().map(|h| (&h.graph, &h.input, &h.ids)).collect()
    }

    fn bernoulli_constructor(q: f64) -> FnRandomizedAlgorithm<impl Fn(&View, &Coins) -> Label + Sync> {
        FnRandomizedAlgorithm::new(0, "bernoulli-bit", move |v: &View, c: &Coins| {
            Label::from_bool(c.for_center(v).random_bool(q))
        })
    }

    fn zero_rejecting_decider(p: f64) -> FnRandomizedDecider<impl Fn(&View, &Coins) -> bool + Sync> {
        FnRandomizedDecider::new(0, "reject-zeros", move |v: &View, c: &Coins| {
            v.output(v.center_local()).as_bool() || !c.for_center(v).random_bool(p)
        })
    }

    #[test]
    fn union_plan_builds_the_claim3_union() {
        let hard = consecutive_cycle_candidates([5, 7]);
        let union = UnionPlan::for_parts(&parts_of(&hard), 3, 0, 0);
        let reference = build_disjoint_union(&hard, 3);
        assert_eq!(union.node_count(), reference.node_count());
        assert_eq!(union.components(), 3);
        assert_eq!(union.offsets(), &[0, 5, 12]);
    }

    #[test]
    fn construct_decide_matches_legacy_acceptance_of_constructed() {
        let hard = consecutive_cycle_candidates([6]);
        let constructor = bernoulli_constructor(0.8);
        let decider = zero_rejecting_decider(0.7);
        let legacy = acceptance_of_constructed(&constructor, &decider, &hard[0], 300, 0);
        let plan = ConstructDecidePlan::new(&hard[0].as_instance(), 0, 0);
        for runner in [BatchRunner::new(), BatchRunner::sequential()] {
            let engine =
                runner.construct_decide_acceptance(&plan, &constructor, &decider, 300, 0);
            assert_eq!(engine.successes, legacy.successes);
            assert_eq!(engine.p_hat, legacy.p_hat);
        }
    }

    #[test]
    fn glued_plan_precomputes_participants() {
        let hard = consecutive_cycle_candidates([10, 10]);
        let parts: Vec<rlnc_core::derand::HardInstance> = hard.clone();
        let exp = rlnc_core::derand::GluingExperiment::build(
            parts,
            vec![NodeId(0), NodeId(0)],
            0,
            1,
        );
        let anchors: Vec<NodeId> = (0..2).map(|i| exp.glued_anchor(i)).collect();
        let glued_hard = exp.as_hard_instance();
        let plan = GluedPlan::new(&glued_hard.as_instance(), anchors.clone(), 1, 0, 0);
        assert_eq!(plan.exclusion_radius(), 1);
        assert_eq!(plan.anchors(), &anchors[..]);
        // Every node far from at least one anchor participates.
        for v in exp.graph().nodes() {
            let expected = anchors.iter().any(|&a| {
                rlnc_graph::traversal::distance(exp.graph(), a, v).unwrap() > 1
            });
            assert_eq!(plan.participants().contains(&v.index()), expected);
        }
    }

    #[test]
    #[should_panic(expected = "does not belong to this plan")]
    fn foreign_scratch_is_rejected() {
        let hard = consecutive_cycle_candidates([6, 6]);
        let plan_a = ConstructDecidePlan::new(&hard[0].as_instance(), 0, 0);
        let plan_b = ConstructDecidePlan::new(&hard[1].as_instance(), 0, 0);
        let constructor = bernoulli_constructor(0.5);
        let decider = zero_rejecting_decider(0.5);
        let mut scratch = plan_b.decision_scratch();
        let mut out = Labeling::empty(plan_a.node_count());
        let _ = plan_a.accept_once(
            &mut scratch,
            &mut out,
            &constructor,
            &decider,
            None,
            SeedSequence::new(0),
        );
    }
}

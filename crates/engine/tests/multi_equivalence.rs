//! Batched multi-algorithm equivalence: `run_many` / `acceptance_many`
//! must be **bit-identical** to K sequential `run` / `acceptance` calls —
//! across the registry's language cases, the connected regular families
//! the Claim-2 scan sweeps (cycle, circulant-2, prism), identity schemes,
//! and seeds. The schedule axis is covered twice: in-process by running
//! every property through the parallel, sequential, and odd-block
//! runners, and across processes by CI running this suite in both the
//! default and `RLNC_THREADS=1` legs (the pool reads the variable once
//! per process).

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rlnc_core::algorithm::LocalAlgorithm;
use rlnc_core::decision::RandomizedDecider;
use rlnc_core::prelude::*;
use rlnc_engine::{BatchRunner, ExecutionPlan};
use rlnc_graph::generators::Family;
use rlnc_graph::IdAssignment;
use rlnc_langs::registry::{CaseId, CaseRegistry};

/// The families the `claim2-scan` scenario sweeps.
const FAMILIES: [Family; 3] = [Family::Cycle, Family::Circulant2, Family::Prism];

/// The schedule variants every property runs through.
fn runners() -> [BatchRunner; 3] {
    [
        BatchRunner::new(),
        BatchRunner::sequential(),
        BatchRunner::new().with_block(7),
    ]
}

/// Graph + identity assignment for one property case; odd seeds take the
/// random-permutation identity scheme.
fn graph_and_ids(family: Family, n: usize, seed: u64) -> (rlnc_graph::Graph, IdAssignment) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let graph = family.generate(n, &mut rng);
    let ids = if seed % 2 == 0 {
        IdAssignment::consecutive(&graph)
    } else {
        IdAssignment::random_permutation(&graph, &mut rng)
    };
    (graph, ids)
}

/// A family of output-and-coin-mixing radius-1 deciders with distinct
/// accept rates, so the per-trial verdict bitset settles at different
/// views for different members.
fn graded_decider(j: u64) -> FnRandomizedDecider<impl Fn(&View, &Coins) -> bool + Sync> {
    FnRandomizedDecider::new(1, "graded-mix", move |view: &View, coins: &Coins| {
        let mut digest = view.output(view.center_local()).as_u64().wrapping_mul(j + 2);
        for &i in &view.center_neighbors() {
            digest = digest.wrapping_mul(31).wrapping_add(view.output(i).as_u64());
        }
        let mut rng = coins.for_center(view);
        (digest ^ rng.random::<u64>()) % (3 + j) != 0
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn batched_runs_match_sequential_runs_across_registry_cases(
        family_index in 0usize..FAMILIES.len(),
        case_index in 0u64..CaseRegistry::builtin().len() as u64,
        n in 8usize..32,
        seed in 0u64..1_000_000,
    ) {
        let case = CaseId::from_index(case_index).case();
        let family = case.candidate_family(FAMILIES[family_index]);
        let (graph, ids) = graph_and_ids(family, n, seed);
        let input = case.build_input(&graph, &ids);
        let instance = Instance::new(&graph, &input, &ids);
        // The registry's deterministic families can mix radii; the
        // batched kernel runs one same-radius slice per plan, exactly
        // like the rewired Claim-2 scan does.
        let mut radii: Vec<u32> = case.det_family.iter().map(|a| a.radius()).collect();
        radii.sort_unstable();
        radii.dedup();
        for radius in radii {
            let refs: Vec<&dyn LocalAlgorithm> = case
                .det_family
                .iter()
                .map(|a| &**a)
                .filter(|a| a.radius() == radius)
                .collect();
            let plan = ExecutionPlan::for_instance(&instance, radius);
            for runner in runners() {
                let many = runner.run_many(&refs, &plan);
                prop_assert_eq!(many.len(), refs.len());
                for (algo, batched) in refs.iter().zip(&many) {
                    prop_assert_eq!(batched, &runner.run(*algo, &plan));
                }
            }
        }
    }

    #[test]
    fn batched_acceptances_match_sequential_acceptances(
        family_index in 0usize..FAMILIES.len(),
        k in 1u64..10,
        n in 8usize..28,
        seed in 0u64..1_000_000,
        trials in 10u64..60,
    ) {
        let (graph, ids) = graph_and_ids(FAMILIES[family_index], n, seed);
        let input = Labeling::from_fn(&graph, |v| Label::from_u64(u64::from(v.0) % 3));
        let output = Labeling::from_fn(&graph, |v| Label::from_u64(u64::from(v.0) % 2));
        let io = IoConfig::new(&graph, &input, &output);
        let plan = ExecutionPlan::for_io(&io, &ids, 1);
        let deciders: Vec<_> = (0..k).map(graded_decider).collect();
        let refs: Vec<&dyn RandomizedDecider> =
            deciders.iter().map(|d| d as &dyn RandomizedDecider).collect();
        for runner in runners() {
            let many = runner.acceptance_many(&refs, &plan, trials, seed ^ 0xA5);
            prop_assert_eq!(many.len(), refs.len());
            for (decider, batched) in refs.iter().zip(&many) {
                let solo = runner.acceptance(*decider, &plan, trials, seed ^ 0xA5);
                prop_assert_eq!(batched.successes, solo.successes);
                prop_assert_eq!(batched.p_hat, solo.p_hat);
            }
        }
    }
}

/// Pinned full-catalog pass at the default seed: every registry case's
/// whole deterministic family (all radii) through the batched kernel on
/// one prism instance, byte-compared against the sequential loop.
#[test]
fn every_registry_case_batches_bit_identically_at_seed_zero() {
    for case_index in 0..CaseRegistry::builtin().len() as u64 {
        let case = CaseId::from_index(case_index).case();
        let family = case.candidate_family(Family::Prism);
        let (graph, ids) = graph_and_ids(family, 16, 0);
        let input = case.build_input(&graph, &ids);
        let instance = Instance::new(&graph, &input, &ids);
        let mut radii: Vec<u32> = case.det_family.iter().map(|a| a.radius()).collect();
        radii.sort_unstable();
        radii.dedup();
        for radius in radii {
            let refs: Vec<&dyn LocalAlgorithm> = case
                .det_family
                .iter()
                .map(|a| &**a)
                .filter(|a| a.radius() == radius)
                .collect();
            let plan = ExecutionPlan::for_instance(&instance, radius);
            let many = BatchRunner::new().run_many(&refs, &plan);
            for (algo, batched) in refs.iter().zip(&many) {
                assert_eq!(
                    batched,
                    &BatchRunner::new().run(*algo, &plan),
                    "case '{}' radius {radius}",
                    case.name
                );
            }
        }
    }
}

//! Property-based equivalence suite for the **round backend**: fault-free
//! executions through explicit message passing ([`RoundPlan`] /
//! [`RoundRunner`]) must be **bit-identical** to the ball-extraction
//! engine ([`ExecutionPlan`] / [`BatchRunner`] / [`DecisionScratch`]) for
//! the same `(seed, node)` coin derivation — across random graph
//! families, sizes, radii, identity assignments, seeds, synthetic
//! coin-mixing algorithms, and **every language case in the registry**
//! (constructor and decider alike).
//!
//! This is the proof obligation that makes the fault axis trustworthy:
//! once the fault-free round backend is pinned to the engine bit-for-bit,
//! any divergence under a [`FaultPlan`](rlnc_core::FaultPlan) is
//! attributable to the injected faults alone.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rlnc_core::prelude::*;
use rlnc_engine::{BatchRunner, ExecutionPlan, RoundPlan, RoundRunner};
use rlnc_graph::generators::Family;
use rlnc_graph::{IdAssignment, NodeId};
use rlnc_langs::registry::{CaseId, LanguageCase};
use rlnc_par::rng::SeedSequence;

/// The candidate families the `fault-matrix` sweep scenario exercises —
/// the registry equivalence tests draw from the same pool (each case may
/// still pin its own family, e.g. Cole–Vishkin pins the cycle).
const SWEEP_FAMILIES: [Family; 3] = [Family::Cycle, Family::Circulant2, Family::Prism];

/// Builds a family member plus inputs and an identity assignment, all
/// derived from one seed — same shape as the engine equivalence suite.
fn instance_parts(
    family: Family,
    n: usize,
    seed: u64,
) -> (rlnc_graph::Graph, Labeling, IdAssignment) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let graph = family.generate(n, &mut rng);
    let input = Labeling::from_fn(&graph, |v| Label::from_u64(u64::from(v.0) % 5));
    let ids = if seed % 2 == 0 {
        IdAssignment::consecutive(&graph)
    } else {
        IdAssignment::random_permutation(&graph, &mut rng)
    };
    (graph, input, ids)
}

/// A candidate instance for a registry case: the case's candidate family
/// (honoring pinned families), an identity scheme below every case's id
/// bound, and the case's own input convention.
fn case_instance_parts(
    case: &LanguageCase,
    requested: Family,
    n: usize,
    seed: u64,
) -> (rlnc_graph::Graph, Labeling, IdAssignment) {
    let family = case.candidate_family(requested);
    let mut rng = SmallRng::seed_from_u64(seed);
    let graph = family.generate(n, &mut rng);
    let ids = match seed % 3 {
        0 => IdAssignment::consecutive(&graph),
        1 => IdAssignment::random_permutation(&graph, &mut rng),
        _ => IdAssignment::spread(&graph, 7),
    };
    let input = case.build_input(&graph, &ids);
    (graph, input, ids)
}

/// A randomized algorithm that reads its own coins **and** the coins of
/// every node in its view — the shared-randomness semantics the gathered
/// views must preserve exactly (host-keyed coin streams).
fn coin_mixing_algo(radius: u32) -> FnRandomizedAlgorithm<impl Fn(&View, &Coins) -> Label + Sync> {
    FnRandomizedAlgorithm::new(radius, "coin-mixing", |v: &View, c: &Coins| {
        let mut digest = 0u64;
        for i in 0..v.len() {
            let mut rng = c.for_view_node(v, i);
            digest = digest.wrapping_mul(37).wrapping_add(rng.random::<u64>() >> 8);
        }
        let mut own = c.for_center(v);
        Label::from_u64(digest ^ own.random::<u64>())
    })
}

/// A decider mixing structure, outputs, and coins — enough entropy to
/// catch any divergence in reconstructed decision views.
fn mixing_decider(radius: u32) -> FnRandomizedDecider<impl Fn(&View, &Coins) -> bool + Sync> {
    FnRandomizedDecider::new(radius, "mixing", |view: &View, coins: &Coins| {
        let mut digest = view.center_id() ^ u64::from(view.center_degree() as u32);
        for i in 0..view.len() {
            digest = digest
                .wrapping_mul(31)
                .wrapping_add(view.output(i).as_u64() ^ view.id(i))
                .wrapping_add(u64::from(view.distance(i)));
        }
        let mut rng = coins.for_center(view);
        (digest ^ rng.random::<u64>()) % 7 != 0
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fault-free round executions equal ball-extraction executions for
    /// an algorithm that drains every node's coin stream — across all
    /// graph families, radii (including 0), id schemes, and seeds.
    #[test]
    fn round_runs_are_bit_identical_to_the_engine(
        family_index in 0usize..Family::ALL.len(),
        n in 8usize..40,
        radius in 0u32..3,
        seed in 0u64..1_000_000,
        execution in 0u64..1_000,
    ) {
        let family = Family::ALL[family_index];
        let (graph, input, ids) = instance_parts(family, n, seed);
        let instance = Instance::new(&graph, &input, &ids);
        let algo = coin_mixing_algo(radius);
        let ball_plan = ExecutionPlan::for_instance(&instance, radius);
        let round_plan = RoundPlan::for_instance(&instance, radius);
        let execution_seed = SeedSequence::new(seed).child(execution);
        let reference = ball_plan.run_randomized(&algo, execution_seed);
        prop_assert_eq!(&round_plan.run_randomized(&algo, execution_seed), &reference);
        // A fault-free schedule must change nothing.
        let schedule = FaultSchedule::fault_free(graph.node_count(), SeedSequence::new(seed));
        prop_assert_eq!(
            &round_plan.run_with_faults(&algo, execution_seed, &schedule),
            &reference
        );
    }

    /// The round runner's Monte-Carlo success stream equals the batch
    /// runner's — same `(master, trial)` seed derivation, any blocking.
    #[test]
    fn round_runner_success_streams_are_bit_identical(
        family_index in 0usize..Family::ALL.len(),
        n in 8usize..32,
        seed in 0u64..1_000_000,
    ) {
        let family = Family::ALL[family_index];
        let (graph, input, ids) = instance_parts(family, n, seed);
        let instance = Instance::new(&graph, &input, &ids);
        let algo = coin_mixing_algo(1);
        let ball_plan = ExecutionPlan::for_instance(&instance, 1);
        let round_plan = RoundPlan::for_instance(&instance, 1);
        let success = |out: &Labeling| out.get(NodeId(0)).as_u64() % 3 == 0;
        let reference = BatchRunner::new().estimate(&algo, &ball_plan, 40, seed ^ 0xBEEF, success);
        for runner in [RoundRunner::new(), RoundRunner::sequential(), RoundRunner::new().with_block(7)] {
            let got = runner.estimate(&algo, &round_plan, 40, seed ^ 0xBEEF, success);
            prop_assert_eq!(got.successes, reference.successes);
            prop_assert_eq!(got.p_hat, reference.p_hat);
        }
    }

    /// Decision by gathered views equals decision by extracted balls —
    /// the all-nodes-accept verdict is bit-identical per seed.
    #[test]
    fn round_decisions_are_bit_identical_to_the_scratch(
        family_index in 0usize..Family::ALL.len(),
        n in 8usize..32,
        radius in 1u32..3,
        seed in 0u64..1_000_000,
        trial in 0u64..500,
    ) {
        let family = Family::ALL[family_index];
        let (graph, input, ids) = instance_parts(family, n, seed);
        let instance = Instance::new(&graph, &input, &ids);
        let output = Labeling::from_fn(&graph, |v| Label::from_u64(u64::from(v.0) % 2));
        let decider = mixing_decider(radius);
        let ball_plan = ExecutionPlan::for_instance(&instance, radius);
        let mut scratch = ball_plan.decision_scratch();
        let round_plan = RoundPlan::for_instance(&instance, radius);
        let execution_seed = SeedSequence::new(seed ^ 0xD0).child(trial);
        prop_assert_eq!(
            round_plan.decide_randomized(&decider, &output, execution_seed),
            scratch.decide_randomized(&decider, &output, execution_seed)
        );
    }

    /// **Every registry case**: the case's own randomized constructor
    /// run through the round backend is bit-identical to the engine, and
    /// the case's own decider reaches the same verdict on the constructed
    /// output — the construct-then-decide shape the fault-matrix sweep
    /// runs, proven fault-free-equivalent case by case.
    #[test]
    fn registry_cases_construct_and_decide_identically(
        case_index in 0usize..CaseId::ALL.len(),
        family_index in 0usize..SWEEP_FAMILIES.len(),
        half_n in 5usize..12,
        seed in 0u64..1_000_000,
        trial in 0u64..200,
    ) {
        let case = CaseId::ALL[case_index].case();
        let n = 2 * half_n;
        let (graph, input, ids) =
            case_instance_parts(&case, SWEEP_FAMILIES[family_index], n, seed);
        let instance = Instance::new(&graph, &input, &ids);
        let t = case.constructor_radius();
        let t_prime = case.checking_radius();

        let trial_seed = SeedSequence::new(seed).child(trial);
        let construct_seed = trial_seed.child(1);
        let decide_seed = trial_seed.child(2);

        let ball_plan = ExecutionPlan::for_instance(&instance, t);
        let round_plan = RoundPlan::for_instance(&instance, t);
        let reference = ball_plan.run_randomized(case.constructor.as_ref(), construct_seed);
        let output = round_plan.run_randomized(case.constructor.as_ref(), construct_seed);
        prop_assert_eq!(&output, &reference);

        let decision_plan = ExecutionPlan::for_instance(&instance, t_prime);
        let mut scratch = decision_plan.decision_scratch();
        let decision_round_plan = RoundPlan::for_instance(&instance, t_prime);
        prop_assert_eq!(
            decision_round_plan.decide_randomized(case.decider.as_ref(), &output, decide_seed),
            scratch.decide_randomized(case.decider.as_ref(), &output, decide_seed)
        );
    }
}

/// Pinned seed-0 regression across the **whole catalog**: for every one of
/// the ten registry cases, eight construct-then-decide trials at master
/// seed 0 go through both backends and must agree bit-for-bit on outputs
/// and verdicts. This is the exact seed discipline the `fault-matrix`
/// scenario uses (`trial.child(1)` constructor coins, `trial.child(2)`
/// decider coins).
#[test]
fn all_registry_cases_match_the_engine_at_seed_zero() {
    let root = SeedSequence::new(0);
    for id in CaseId::ALL {
        let case = id.case();
        let (graph, input, ids) = case_instance_parts(&case, Family::Cycle, 12, 0);
        let instance = Instance::new(&graph, &input, &ids);
        let t = case.constructor_radius();
        let t_prime = case.checking_radius();

        let ball_plan = ExecutionPlan::for_instance(&instance, t);
        let round_plan = RoundPlan::for_instance(&instance, t);
        let decision_plan = ExecutionPlan::for_instance(&instance, t_prime);
        let mut scratch = decision_plan.decision_scratch();
        let decision_round_plan = RoundPlan::for_instance(&instance, t_prime);

        for trial in 0..8u64 {
            let trial_seed = root.child(trial);
            let reference = ball_plan.run_randomized(case.constructor.as_ref(), trial_seed.child(1));
            let output = round_plan.run_randomized(case.constructor.as_ref(), trial_seed.child(1));
            assert_eq!(output, reference, "case {} trial {trial} output", case.name);
            assert_eq!(
                decision_round_plan.decide_randomized(
                    case.decider.as_ref(),
                    &output,
                    trial_seed.child(2)
                ),
                scratch.decide_randomized(case.decider.as_ref(), &output, trial_seed.child(2)),
                "case {} trial {trial} verdict",
                case.name
            );
        }
    }
}

/// Pinned fault-schedule determinism: the same `(plan, graph, seed)`
/// triple materializes byte-identical schedules no matter how many times
/// or in what order it is drawn, and distinct seeds diverge.
#[test]
fn fault_schedules_are_pinned_at_seed_zero() {
    let (graph, _, _) = instance_parts(Family::Circulant2, 24, 0);
    let mut fingerprints = Vec::new();
    for kind in 0..rlnc_core::FAULT_PLAN_KINDS {
        let plan = FaultPlan::from_index(kind, 0.4);
        let a = plan.schedule(&graph, SeedSequence::new(0).child(7));
        let b = plan.schedule(&graph, SeedSequence::new(0).child(7));
        assert_eq!(a.fingerprint(), b.fingerprint(), "plan {} replay", plan.name());
        let other = plan.schedule(&graph, SeedSequence::new(0).child(8));
        assert_ne!(a.fingerprint(), other.fingerprint(), "plan {} seed split", plan.name());
        fingerprints.push(a.fingerprint());
    }
    // The four plan kinds draw from disjoint coin streams — at a fixed
    // seed their schedules are pairwise distinct.
    fingerprints.sort_unstable();
    fingerprints.dedup();
    assert_eq!(fingerprints.len(), rlnc_core::FAULT_PLAN_KINDS);
}
